"""Tests for named scenarios."""

import pytest

from repro.workloads import paper_registry, paper_traces, scaled_scenario
from repro.workloads.scenarios import PAPER_ITEM_COUNT


class TestPaperDefaults:
    def test_registry_scale(self):
        assert len(paper_registry()) == PAPER_ITEM_COUNT == 100

    def test_traces_kinds(self):
        registry = paper_registry(5)
        for kind in ("gbm", "random_walk", "monotonic"):
            traces = paper_traces(registry, length=50, kind=kind, seed=1)
            assert len(traces) == 5
            assert traces.duration == 49

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown trace kind"):
            paper_traces(paper_registry(2), length=50, kind="levy")

    def test_generator_kwargs_forwarded(self):
        registry = paper_registry(2)
        quiet = paper_traces(registry, 200, kind="gbm", seed=3, volatility=0.0001)
        noisy = paper_traces(registry, 200, kind="gbm", seed=3, volatility=0.01)
        import numpy as np

        def movement(tr):
            return float(np.abs(np.diff(tr["x0"].values)).mean())
        assert movement(noisy) > movement(quiet)


class TestScaledScenario:
    def test_portfolio(self):
        sc = scaled_scenario(query_count=3, item_count=20, trace_length=60,
                             source_count=4, seed=1)
        assert len(sc.queries) == 3
        assert all(q.is_positive_coefficient for q in sc.queries)
        assert sc.source_count == 4
        assert set(sc.initial_values) == set(sc.registry.names)

    def test_arbitrage(self):
        sc = scaled_scenario(query_count=3, item_count=20, trace_length=60,
                             query_kind="arbitrage", seed=1)
        assert all(not q.is_positive_coefficient for q in sc.queries)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown query kind"):
            scaled_scenario(query_count=1, query_kind="join")

    def test_all_query_items_have_traces(self):
        sc = scaled_scenario(query_count=5, item_count=25, trace_length=60, seed=2)
        for q in sc.queries:
            for item in q.variables:
                assert item in sc.traces
