"""Tests for the 80-20 workload generator (paper Section V-A)."""

import pytest

from repro.exceptions import SimulationError
from repro.queries import ItemRegistry
from repro.workloads import (
    WorkloadConfig,
    generate_arbitrage_queries,
    generate_portfolio_queries,
    split_items_80_20,
)


@pytest.fixture(scope="module")
def registry():
    return ItemRegistry.numbered(100)


@pytest.fixture(scope="module")
def initial_values(registry):
    return {name: 50.0 + i for i, name in enumerate(registry.names)}


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"group1_fraction": 0.0},
        {"group1_probability": 1.5},
        {"pairs_per_query": (0, 3)},
        {"pairs_per_query": (5, 3)},
        {"weight_range": (0.0, 10.0)},
        {"shared_item_probability": -0.1},
    ])
    def test_bad_configs(self, kwargs):
        with pytest.raises(SimulationError):
            WorkloadConfig(**kwargs)


class TestSplit:
    def test_80_20_split(self, registry):
        group1, group2 = split_items_80_20(registry)
        assert len(group1) == 20
        assert len(group2) == 80
        assert set(group1) | set(group2) == set(registry.names)


class TestPortfolioQueries:
    def test_paper_shape(self, registry, initial_values):
        queries = generate_portfolio_queries(registry, initial_values, 30, seed=1)
        assert len(queries) == 30
        for q in queries:
            assert q.is_positive_coefficient
            assert q.degree == 2
            # 12-14 distinct items per query
            assert 12 <= len(q.variables) <= 14
            # weights in [1, 100]
            assert all(1.0 <= t.weight <= 100.0 for t in q.terms)

    def test_qab_one_percent_of_initial(self, registry, initial_values):
        queries = generate_portfolio_queries(registry, initial_values, 5, seed=2)
        for q in queries:
            assert q.qab == pytest.approx(0.01 * q.evaluate(initial_values), rel=1e-9)

    def test_group1_dominates(self, registry, initial_values):
        """~80 % of item references should hit the hot 20 % of the items."""
        queries = generate_portfolio_queries(registry, initial_values, 50, seed=3)
        group1, _ = split_items_80_20(registry)
        hot = set(group1)
        hits = sum(1 for q in queries for v in q.variables if v in hot)
        total = sum(len(q.variables) for q in queries)
        assert 0.6 < hits / total < 0.95

    def test_reproducible(self, registry, initial_values):
        a = generate_portfolio_queries(registry, initial_values, 5, seed=4)
        b = generate_portfolio_queries(registry, initial_values, 5, seed=4)
        assert [q.terms for q in a] == [q.terms for q in b]

    def test_unique_names(self, registry, initial_values):
        queries = generate_portfolio_queries(registry, initial_values, 10, seed=5)
        names = [q.name for q in queries]
        assert len(set(names)) == len(names)

    def test_items_distinct_within_query(self, registry, initial_values):
        queries = generate_portfolio_queries(registry, initial_values, 20, seed=6)
        for q in queries:
            items = [n for t in q.terms for n in t.variables]
            assert len(items) == len(set(items))


class TestArbitrageQueries:
    def test_mixed_signs(self, registry, initial_values):
        queries = generate_arbitrage_queries(registry, initial_values, 10, seed=7)
        for q in queries:
            assert not q.is_positive_coefficient
            p1, p2 = q.split()
            assert p1 and p2

    def test_independent_by_default(self, registry, initial_values):
        queries = generate_arbitrage_queries(registry, initial_values, 20, seed=8)
        assert all(q.halves_are_independent() for q in queries)

    def test_dependent_with_sharing(self, registry, initial_values):
        config = WorkloadConfig(shared_item_probability=1.0)
        queries = generate_arbitrage_queries(registry, initial_values, 20,
                                             config=config, seed=9)
        dependent = [q for q in queries if not q.halves_are_independent()]
        assert len(dependent) >= len(queries) // 2

    def test_qab_positive_even_near_zero_value(self, registry, initial_values):
        queries = generate_arbitrage_queries(registry, initial_values, 30, seed=10)
        assert all(q.qab > 0 for q in queries)

    def test_too_small_population_rejected(self, initial_values):
        tiny = ItemRegistry.numbered(4)
        values = {name: 10.0 for name in tiny.names}
        with pytest.raises(SimulationError, match="not enough items"):
            generate_portfolio_queries(tiny, values, 1,
                                       config=WorkloadConfig(pairs_per_query=(7, 7)),
                                       seed=0)
