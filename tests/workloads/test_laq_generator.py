"""Tests for the LAQ workload generator."""

import pytest

from repro.filters import CostModel, assign_laq
from repro.queries import ItemRegistry
from repro.workloads import generate_laq_queries


@pytest.fixture(scope="module")
def registry():
    return ItemRegistry.numbered(60)


@pytest.fixture(scope="module")
def initial_values(registry):
    return {name: 40.0 + i for i, name in enumerate(registry.names)}


class TestLaqGenerator:
    def test_all_linear(self, registry, initial_values):
        queries = generate_laq_queries(registry, initial_values, 15, seed=1)
        assert len(queries) == 15
        for q in queries:
            assert q.is_linear
            assert q.is_positive_coefficient
            assert 12 <= len(q.variables) <= 14

    def test_qab_fraction(self, registry, initial_values):
        queries = generate_laq_queries(registry, initial_values, 5, seed=2)
        for q in queries:
            assert q.qab == pytest.approx(0.01 * q.evaluate(initial_values),
                                          rel=1e-9)

    def test_reproducible(self, registry, initial_values):
        a = generate_laq_queries(registry, initial_values, 4, seed=3)
        b = generate_laq_queries(registry, initial_values, 4, seed=3)
        assert [q.terms for q in a] == [q.terms for q in b]

    def test_feeds_closed_form_directly(self, registry, initial_values):
        """The generated queries plug straight into the LAQ closed form."""
        queries = generate_laq_queries(registry, initial_values, 3, seed=4)
        model = CostModel(rates={name: 0.1 for name in registry.names})
        for q in queries:
            plan = assign_laq(q, model)
            assert set(plan.primary) == set(q.variables)

    def test_end_to_end_simulation(self, registry, initial_values):
        from repro.simulation import SimulationConfig, run_simulation
        from repro.workloads import paper_traces

        small = ItemRegistry.numbered(20)
        traces = paper_traces(small, length=121, seed=5)
        queries = generate_laq_queries(small, traces.initial_values(), 3, seed=5)
        config = SimulationConfig(queries=queries, traces=traces,
                                  algorithm="laq", recompute_cost=2.0,
                                  source_count=4, seed=5, fidelity_interval=4)
        metrics = run_simulation(config).metrics
        assert metrics.refreshes > 0
        assert metrics.recomputations == 0
