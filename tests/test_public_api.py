"""Public-API hygiene: everything exported exists and is documented."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.gp", "repro.queries", "repro.filters", "repro.dynamics",
    "repro.simulation", "repro.workloads", "repro.experiments",
]


class TestExports:
    def test_top_level_all_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name!r}"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolvable(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.__all__ lists {name!r}"

    def test_version_string(self):
        assert repro.__version__.count(".") == 2


class TestDocumentation:
    @pytest.mark.parametrize("module_name", SUBPACKAGES + ["repro"])
    def test_modules_have_docstrings(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip()

    def test_public_classes_and_functions_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
        assert not undocumented, f"undocumented public items: {undocumented}"

    def test_public_methods_documented_on_core_classes(self):
        from repro import (
            CostModel,
            DABAssignment,
            DualDABPlanner,
            GeometricProgram,
            PolynomialQuery,
        )

        undocumented = []
        for cls in (GeometricProgram, PolynomialQuery, DualDABPlanner,
                    DABAssignment, CostModel):
            for name, member in inspect.getmembers(cls):
                if name.startswith("_") or not callable(member):
                    continue
                if not (getattr(member, "__doc__", None) or "").strip():
                    undocumented.append(f"{cls.__name__}.{name}")
        assert not undocumented, f"undocumented methods: {undocumented}"


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import exceptions

        for name in dir(exceptions):
            obj = getattr(exceptions, name)
            if inspect.isclass(obj) and issubclass(obj, Exception) \
                    and obj.__module__ == "repro.exceptions":
                assert issubclass(obj, exceptions.ReproError), name

    def test_catching_base_class_is_sufficient(self):
        from repro import ReproError, parse_query

        with pytest.raises(ReproError):
            parse_query("x*y")  # missing QAB -> QueryParseError -> ReproError
