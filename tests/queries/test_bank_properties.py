"""Property-based flat/shared bank-index equivalence suite (ISSUE 8).

Hypothesis-generated high-overlap banks, perturbation walks and churn
sequences, asserting the shared-structure index is *observably identical*
to the flat per-query path:

1. **Value equivalence** — ``SharedStructureBank.values_all`` matches the
   per-query :class:`CompiledPolynomial` evaluation at every walk step.
2. **Notification equivalence** — the slack-screened mover set from
   ``refresh_movers`` equals the flat path's exact per-member QAB check;
   screening may evaluate extra members, never skip a real mover.
3. **Churn** — arbitrary add/remove interleavings (with swap-remove
   position maintenance, as the live QUERY_SUB path performs it) keep
   every surviving member's value and the stats plane consistent.
4. **Edge cases** — empty bank, all-distinct structures, duplicate
   registration, re-registration after removal, and sibling warm-start
   seeding on the delta planner.

Budget: the default ``ci`` profile keeps this in tier-1 seconds; set
``REPRO_HYPOTHESIS_PROFILE=nightly`` for the >=200-example sweep (wired
into the nightly-properties CI job).
"""

import os

import numpy as np
import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.filters import CostModel, DualDABPlanner
from repro.filters.delta_recompute import DeltaRecomputePlanner
from repro.queries import PolynomialQuery, QueryTerm
from repro.queries.bank_index import SharedStructureBank, template_key
from repro.queries.compiled import CompiledPolynomial, PowerTable
from repro.workloads import generate_template_bank, paper_registry

settings.register_profile("ci", max_examples=25, deadline=None)
settings.register_profile("nightly", max_examples=200, deadline=None)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "ci"))

REGISTRY = paper_registry(20)


def _world(seed, count, distinct_frac):
    """A deterministic (queries, values) world from one seed."""
    rng = np.random.default_rng(seed)
    values = {name: float(rng.uniform(5.0, 50.0)) for name in REGISTRY.names}
    distinct = max(1, min(count, int(round(count * distinct_frac))))
    queries = generate_template_bank(REGISTRY, values, count, distinct,
                                     seed=seed)
    return queries, values, distinct


def _indexed(queries):
    table = PowerTable()
    bank = SharedStructureBank(table)
    for position, query in enumerate(queries):
        bank.add_query(query, position)
    return table, bank


class TestValueEquivalence:
    @given(seed=st.integers(0, 2**20),
           count=st.integers(1, 30),
           distinct_frac=st.floats(0.05, 1.0),
           ticks=st.integers(0, 25))
    @example(seed=0, count=1, distinct_frac=1.0, ticks=0)
    @example(seed=7, count=30, distinct_frac=0.1, ticks=25)
    def test_values_all_matches_flat_path_along_walk(
            self, seed, count, distinct_frac, ticks):
        queries, values, distinct = _world(seed, count, distinct_frac)
        table, bank = _indexed(queries)
        flat = [CompiledPolynomial(q, table) for q in queries]
        assert bank.stats()["distinct_structures"] == distinct
        rng = np.random.default_rng(seed + 1)
        pvec = table.vector(values)
        items = sorted({name for q in queries for name in q.variables})
        for _ in range(ticks + 1):
            out = bank.values_all(pvec, count)
            for i, compiled in enumerate(flat):
                exact = compiled.evaluate_vector(pvec)
                assert out[i] == pytest.approx(exact, rel=1e-9, abs=1e-9)
            item = items[int(rng.integers(len(items)))]
            values[item] *= float(1.0 + rng.uniform(-0.08, 0.08))
            table.update(pvec, item, values[item])


class TestNotificationEquivalence:
    @given(seed=st.integers(0, 2**20),
           count=st.integers(1, 30),
           distinct_frac=st.floats(0.05, 1.0),
           ticks=st.integers(1, 40))
    @example(seed=3, count=30, distinct_frac=0.1, ticks=40)
    @example(seed=11, count=12, distinct_frac=1.0, ticks=20)
    def test_screened_movers_equal_flat_exact_check(
            self, seed, count, distinct_frac, ticks):
        queries, values, _ = _world(seed, count, distinct_frac)
        table, bank = _indexed(queries)
        qab = np.array([q.qab for q in queries])
        pvec = table.vector(values)
        last_user = bank.values_all(pvec, count).copy()
        rng = np.random.default_rng(seed + 2)
        items = sorted({name for q in queries for name in q.variables})
        for _ in range(ticks):
            item = items[int(rng.integers(len(items)))]
            values[item] *= float(1.0 + rng.uniform(-0.05, 0.05))
            table.update(pvec, item, values[item])
            exact = bank.values_all(pvec, count)
            affected = set()
            for tid in bank.templates_of_item(item):
                affected.update(bank.template_positions(tid).tolist())
            brute = {p for p in affected
                     if abs(exact[p] - last_user[p]) > qab[p]}
            positions, moved = bank.refresh_movers(item, pvec, last_user, qab)
            assert set(positions) == brute
            for p, v in zip(positions, moved):
                last_user[p] = v


class TestChurn:
    @given(seed=st.integers(0, 2**20),
           count=st.integers(2, 16),
           distinct_frac=st.floats(0.1, 1.0),
           ops=st.lists(st.integers(0, 2**16), min_size=1, max_size=40))
    @example(seed=1, count=16, distinct_frac=0.2, ops=[0, 1, 2, 3, 4, 5])
    def test_add_remove_interleavings_stay_consistent(
            self, seed, count, distinct_frac, ops):
        queries, values, _ = _world(seed, count, distinct_frac)
        table, bank = _indexed([])
        pvec = None
        order = []                       # caller-side bank positions
        pending = list(queries)
        for op in ops:
            if pending and (op % 2 == 0 or not order):
                query = pending.pop(0)
                bank.add_query(query, len(order))
                order.append(query)
            else:
                victim = order[op % len(order)]
                # Swap-remove exactly as the live core does: move the
                # last member into the vacated position first.
                row = order.index(victim)
                last = order[-1]
                if last.name != victim.name:
                    order[row] = last
                    bank.set_position(last.name, row)
                order.pop()
                bank.remove_query(victim.name)
                pending.append(victim)   # may be re-registered later
            pvec = table.vector(values)
            out = bank.values_all(pvec, len(order))
            assert len(bank) == len(order)
            for position, query in enumerate(order):
                exact = CompiledPolynomial(query, table).evaluate_vector(pvec)
                assert out[position] == pytest.approx(exact, rel=1e-9,
                                                      abs=1e-9)
        stats = bank.stats()
        assert stats["queries"] == len(order)
        assert stats["appends"] - stats["removals"] == len(order)


class TestEdgeCases:
    def test_empty_bank(self):
        table, bank = _indexed([])
        assert len(bank) == 0
        out = bank.values_all(table.vector({}), 0)
        assert out.shape == (0,)
        assert bank.stats()["distinct_structures"] == 0

    def test_all_distinct_structures_dedup_ratio_one(self):
        queries, values, distinct = _world(5, 8, 1.0)
        assert distinct == 8
        _, bank = _indexed(queries)
        stats = bank.stats()
        assert stats["distinct_structures"] == 8
        assert stats["dedup_ratio"] == 1.0
        assert stats["structure_hits"] == 0

    def test_duplicate_registration_rejected_then_reusable(self):
        queries, values, _ = _world(9, 2, 0.5)
        table, bank = _indexed(queries)
        with pytest.raises(ValueError, match="already indexed"):
            bank.add_query(queries[0], 7)
        bank.remove_query(queries[0].name)
        bank.add_query(queries[0], 0)    # re-registration after removal
        pvec = table.vector(values)
        exact = CompiledPolynomial(queries[0], table).evaluate_vector(pvec)
        assert bank.value_of(pvec, queries[0].name) == pytest.approx(exact)


class TestTemplateSeeding:
    """Sibling warm-start anchors on the delta planner (structurally
    identical queries share a GP start point; never the solution)."""

    def _pair(self):
        q1 = PolynomialQuery([QueryTerm.product(2.0, "x", "y"),
                              QueryTerm.product(3.0, "u", "v")],
                             qab=4.0, name="s1")
        q2 = PolynomialQuery([QueryTerm.product(5.0, "x", "y"),
                              QueryTerm.product(1.5, "u", "v")],
                             qab=3.0, name="s2")
        values = {"x": 4.0, "y": 5.0, "u": 2.0, "v": 3.0}
        model = CostModel(rates={k: 1.0 for k in values},
                          recompute_cost=5.0)
        return q1, q2, values, model

    def test_sibling_cold_solve_is_seeded(self):
        q1, q2, values, model = self._pair()
        assert template_key(q1) == template_key(q2)
        planner = DeltaRecomputePlanner(
            DualDABPlanner(model, use_compiled=True), mode="delta",
            share_templates=True)
        plan1 = planner.plan(q1, values)
        assert planner.stats.template_seeds == 0
        plan2 = planner.plan(q2, values)
        assert planner.stats.template_seeds == 1
        assert plan1.guarantees_qab_over_window(q1)
        assert plan2.guarantees_qab_over_window(q2)

    def test_seeding_does_not_change_the_plan(self):
        q1, q2, values, model = self._pair()
        seeded = DeltaRecomputePlanner(
            DualDABPlanner(model, use_compiled=True), mode="delta",
            share_templates=True)
        bare = DeltaRecomputePlanner(
            DualDABPlanner(model, use_compiled=True), mode="delta")
        seeded.plan(q1, values)
        bare.plan(q1, values)
        plan_seeded = seeded.plan(q2, values)
        plan_bare = bare.plan(q2, values)
        # The GP is convex: a different start point converges to the same
        # optimum (solver tolerance), it only gets there faster.
        assert plan_seeded.objective == pytest.approx(plan_bare.objective,
                                                      rel=1e-6)
        assert bare.stats.template_seeds == 0
