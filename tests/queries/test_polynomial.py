"""Unit tests for :mod:`repro.queries.polynomial`."""

import pytest

from repro.exceptions import InvalidQueryError
from repro.queries import PolynomialQuery, QueryTerm


def make_mixed():
    """``3·x·y − 2·u·v : 5`` — independent halves."""
    return PolynomialQuery(
        [QueryTerm.product(3.0, "x", "y"), QueryTerm.product(-2.0, "u", "v")],
        qab=5.0, name="mixed",
    )


class TestConstruction:
    def test_like_terms_combined(self):
        q = PolynomialQuery(
            [QueryTerm.product(1.0, "x", "y"), QueryTerm.product(2.0, "x", "y")],
            qab=1.0,
        )
        assert len(q.terms) == 1
        assert q.terms[0].weight == pytest.approx(3.0)

    def test_cancellation_rejected(self):
        with pytest.raises(InvalidQueryError, match="zero"):
            PolynomialQuery(
                [QueryTerm.product(1.0, "x"), QueryTerm.product(-1.0, "x")],
                qab=1.0,
            )

    def test_nonpositive_qab_rejected(self):
        for bad in (0.0, -1.0, float("inf")):
            with pytest.raises(InvalidQueryError):
                PolynomialQuery([QueryTerm.product(1.0, "x")], qab=bad)

    def test_auto_names_unique(self):
        a = PolynomialQuery([QueryTerm.product(1.0, "x")], qab=1.0)
        b = PolynomialQuery([QueryTerm.product(1.0, "x")], qab=1.0)
        assert a.name != b.name

    def test_product_factory(self):
        q = PolynomialQuery.product(5.0, "x", "y")
        assert q.qab == 5.0
        assert q.degree == 2
        assert q.variables == ("x", "y")

    def test_single_term_factory(self):
        q = PolynomialQuery.single_term(2.0, {"x": 2}, qab=1.0)
        assert q.evaluate({"x": 3.0}) == pytest.approx(18.0)


class TestStructure:
    def test_is_positive_coefficient(self):
        assert PolynomialQuery.product(1.0, "x", "y").is_positive_coefficient
        assert not make_mixed().is_positive_coefficient

    def test_degree_and_linearity(self):
        linear = PolynomialQuery([QueryTerm(1.0, {"x": 1})], qab=1.0)
        assert linear.is_linear and not linear.is_nonlinear
        assert make_mixed().is_nonlinear

    def test_split(self):
        p1, p2 = make_mixed().split()
        assert [t.weight for t in p1] == [3.0]
        assert [t.weight for t in p2] == [2.0]  # negated to positive
        assert all(t.is_positive for t in p1 + p2)

    def test_split_all_positive(self):
        p1, p2 = PolynomialQuery.product(1.0, "x", "y").split()
        assert len(p1) == 1 and len(p2) == 0

    def test_positive_mirror(self):
        mirror = make_mixed().positive_mirror()
        assert mirror.is_positive_coefficient
        assert mirror.qab == 5.0
        assert mirror.evaluate({"x": 1, "y": 1, "u": 1, "v": 1}) == pytest.approx(5.0)

    def test_halves_independence(self):
        assert make_mixed().halves_are_independent()
        dependent = PolynomialQuery(
            [QueryTerm(1.0, {"x": 2}), QueryTerm(-1.0, {"x": 1, "y": 1})], qab=1.0
        )
        assert not dependent.halves_are_independent()

    def test_with_qab(self):
        q = make_mixed().with_qab(9.0)
        assert q.qab == 9.0
        assert q.terms == make_mixed().terms

    def test_sub_query(self):
        q = make_mixed()
        p1, _ = q.split()
        half = q.sub_query(p1, q.qab / 2, name="half")
        assert half.qab == 2.5
        assert half.is_positive_coefficient


class TestEvaluation:
    def test_evaluate_mixed(self):
        q = make_mixed()
        values = {"x": 2.0, "y": 3.0, "u": 1.0, "v": 4.0}
        assert q.evaluate(values) == pytest.approx(3 * 6 - 2 * 4)

    def test_within_bound(self):
        q = make_mixed()
        assert q.within_bound(10.0, 14.9)
        assert not q.within_bound(10.0, 15.1)

    def test_equality_and_hash(self):
        assert make_mixed() == make_mixed()
        assert hash(make_mixed()) == hash(make_mixed())
        assert make_mixed() != make_mixed().with_qab(6.0)

    def test_repr_contains_body(self):
        text = repr(make_mixed())
        assert "x*y" in text and ": 5" in text
