"""Property test: queries survive a format → parse round trip."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.queries import PolynomialQuery, QueryTerm, parse_query

item_names = ["alpha", "b2", "x", "y_z"]
weights = st.floats(min_value=0.001, max_value=1000.0, allow_nan=False)
powers = st.integers(min_value=1, max_value=4)
qabs = st.floats(min_value=0.001, max_value=1e6, allow_nan=False)


@st.composite
def random_queries(draw):
    term_count = draw(st.integers(min_value=1, max_value=4))
    terms = []
    signatures = set()
    for index in range(term_count):
        names = draw(st.permutations(item_names))[
            : draw(st.integers(min_value=1, max_value=3))]
        exponents = {name: draw(powers) for name in names}
        signature = tuple(sorted(exponents.items()))
        if signature in signatures:
            continue  # avoid like terms combining and changing counts
        signatures.add(signature)
        sign = -1.0 if draw(st.booleans()) and index > 0 else 1.0
        terms.append(QueryTerm(sign * draw(weights), exponents))
    return PolynomialQuery(terms, qab=draw(qabs))


def format_query(query: PolynomialQuery) -> str:
    """Render a query in the parser's input syntax."""
    pieces = []
    for index, term in enumerate(query.terms):
        body = "*".join(
            name if exp == 1 else f"{name}^{exp}" for name, exp in term.key)
        weight = abs(term.weight)
        sign = "-" if term.weight < 0 else ("+" if index else "")
        pieces.append(f"{sign} {weight!r} {body}")
    return " ".join(pieces) + f" : {query.qab!r}"


class TestRoundTrip:
    @given(random_queries())
    @settings(max_examples=100, deadline=None)
    def test_format_parse_identity(self, query):
        text = format_query(query)
        parsed = parse_query(text, name=query.name)
        assert len(parsed.terms) == len(query.terms)
        assert parsed.qab == pytest.approx(query.qab, rel=1e-12)
        original = {t.key: t.weight for t in query.terms}
        for term in parsed.terms:
            assert term.key in original
            assert term.weight == pytest.approx(original[term.key], rel=1e-12)

    @given(random_queries(), st.dictionaries(
        st.sampled_from(item_names),
        st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
        min_size=len(item_names), max_size=len(item_names)))
    @settings(max_examples=60, deadline=None)
    def test_round_trip_preserves_evaluation(self, query, values):
        parsed = parse_query(format_query(query))
        assert parsed.evaluate(values) == pytest.approx(
            query.evaluate(values), rel=1e-9)
