"""Unit tests for the worst-case-deviation expansion (paper Eq. 1 and 2)."""

import pytest

from repro.exceptions import InvalidQueryError
from repro.queries import (
    PolynomialQuery,
    QueryTerm,
    deviation_posynomial,
    dual_dab_condition,
    max_query_deviation,
    max_term_deviation,
    parse_query,
    primary_variable,
    secondary_variable,
)
from repro.queries.deviation import assignment_feasible_for_query, item_of_variable


class TestVariableNames:
    def test_roundtrip(self):
        assert item_of_variable(primary_variable("x1")) == "x1"
        assert item_of_variable(secondary_variable("x1")) == "x1"

    def test_item_of_non_dab_variable(self):
        with pytest.raises(ValueError):
            item_of_variable("x1")


class TestEquation1:
    """Single-DAB condition for Q = xy (paper Eq. 1):
    Vx·by + Vy·bx + bx·by <= B."""

    def test_product_expansion_matches_paper(self):
        q = parse_query("x*y : 5")
        p = deviation_posynomial(q.terms, {"x": 2.0, "y": 2.0})
        # evaluate at bx = by = 1: 2 + 2 + 1 = 5 (the Fig. 2 numbers)
        value = p.evaluate({primary_variable("x"): 1.0, primary_variable("y"): 1.0})
        assert value == pytest.approx(5.0)

    def test_asymmetric_values(self):
        q = parse_query("x*y : 50")
        p = deviation_posynomial(q.terms, {"x": 40.0, "y": 20.0})
        value = p.evaluate({primary_variable("x"): 1.0, primary_variable("y"): 2.0})
        # Vx·by + Vy·bx + bx·by = 80 + 20 + 2
        assert value == pytest.approx(102.0)

    def test_square_expansion(self):
        q = parse_query("x^2 : 1")
        p = deviation_posynomial(q.terms, {"x": 3.0})
        # (3+b)^2 - 9 = 6b + b^2
        value = p.evaluate({primary_variable("x"): 0.5})
        assert value == pytest.approx(6 * 0.5 + 0.25)

    def test_weight_applied_absolutely(self):
        negative = deviation_posynomial(
            [QueryTerm.product(-2.0, "x", "y")], {"x": 1.0, "y": 1.0})
        positive = deviation_posynomial(
            [QueryTerm.product(2.0, "x", "y")], {"x": 1.0, "y": 1.0})
        assert negative == positive

    def test_matches_numeric_deviation_for_ppq(self):
        q = parse_query("2 x*y + x^2 : 1")
        values = {"x": 3.0, "y": 5.0}
        bounds = {"x": 0.2, "y": 0.7}
        p = deviation_posynomial(q.terms, values)
        symbolic = p.evaluate({primary_variable(k): v for k, v in bounds.items()})
        numeric = max_query_deviation(q.terms, values, bounds)
        assert symbolic == pytest.approx(numeric)

    def test_nonpositive_value_rejected(self):
        with pytest.raises(InvalidQueryError, match="positive"):
            deviation_posynomial([QueryTerm.product(1.0, "x")], {"x": 0.0})

    def test_missing_value_raises(self):
        with pytest.raises(KeyError):
            deviation_posynomial([QueryTerm.product(1.0, "x")], {})


class TestEquation2:
    """Dual-DAB condition (paper Eq. 2):
    (Vx+cx)·by + (Vy+cy)·bx + bx·by <= B."""

    def test_product_dual_expansion(self):
        q = parse_query("x*y : 5")
        p = deviation_posynomial(q.terms, {"x": 2.0, "y": 2.0}, include_secondary=True)
        point = {
            primary_variable("x"): 0.5, primary_variable("y"): 0.5,
            secondary_variable("x"): 3.5, secondary_variable("y"): 2.5,
        }
        expected = (2 + 3.5) * 0.5 + (2 + 2.5) * 0.5 + 0.25
        assert p.evaluate(point) == pytest.approx(expected)

    def test_every_term_contains_a_primary(self):
        q = parse_query("x*y + x^2 : 1")
        p = deviation_posynomial(q.terms, {"x": 2.0, "y": 3.0}, include_secondary=True)
        for term in p.terms:
            assert any(v.startswith("b__") for v in term.variables)

    def test_dual_dab_condition_normalised(self):
        q = parse_query("x*y : 5")
        condition = dual_dab_condition(q.terms, {"x": 2.0, "y": 2.0}, q.qab)
        point = {
            primary_variable("x"): 1.0, primary_variable("y"): 1.0,
            secondary_variable("x"): 1e-9, secondary_variable("y"): 1e-9,
        }
        # at c ~ 0, b = 1 the Eq.-1 value is 5 = B, so normalised ~ 1
        assert condition.evaluate(point) == pytest.approx(1.0, rel=1e-6)

    def test_dual_dab_condition_rejects_bad_qab(self):
        q = parse_query("x*y : 5")
        with pytest.raises(InvalidQueryError):
            dual_dab_condition(q.terms, {"x": 2.0, "y": 2.0}, 0.0)


class TestNumericDeviation:
    def test_term_deviation_exact(self):
        term = QueryTerm.product(1.0, "x", "y")
        values = {"x": 3.0, "y": 2.0}
        # (3.5 * 2.5) - 6 = 2.75
        assert max_term_deviation(term, values, {"x": 0.5, "y": 0.5}) == pytest.approx(2.75)

    def test_items_without_bounds_are_exact(self):
        term = QueryTerm.product(1.0, "x", "y")
        assert max_term_deviation(term, {"x": 3.0, "y": 2.0}, {"x": 1.0}) == pytest.approx(2.0)

    def test_negative_bound_rejected(self):
        term = QueryTerm.product(1.0, "x")
        with pytest.raises(InvalidQueryError):
            max_term_deviation(term, {"x": 1.0}, {"x": -0.1})

    def test_fig2_invalidation_story(self):
        """Paper Fig. 2: at V=(2,2), b=(1,1) is valid for B=5; at V=(3,2)
        the same DABs are no longer valid."""
        q = parse_query("x*y : 5")
        bounds = {"x": 1.0, "y": 1.0}
        assert assignment_feasible_for_query(q.terms, {"x": 2.0, "y": 2.0}, bounds, q.qab)
        assert not assignment_feasible_for_query(q.terms, {"x": 3.0, "y": 2.0}, bounds, q.qab)
        # the concrete drift the paper uses: 3.9 * 2.9 - 6 = 5.31 > 5
        assert 3.9 * 2.9 - 6.0 > q.qab

    def test_mixed_sign_uses_triangle_bound(self):
        q = parse_query("x*y - u*v : 5")
        values = {"x": 2.0, "y": 2.0, "u": 3.0, "v": 1.0}
        bounds = {"x": 0.5, "y": 0.5, "u": 0.5, "v": 0.5}
        total = max_query_deviation(q.terms, values, bounds)
        per_term = [max_term_deviation(t, values, bounds) for t in q.terms]
        assert total == pytest.approx(sum(per_term))
