"""Bitwise-equality tests for the compiled query/deviation evaluators.

The vectorized simulation paths are only admissible because every compiled
evaluator reproduces its scalar counterpart *bit for bit* — these tests pin
that contract (note ``==``, never ``pytest.approx``).
"""

import math

import numpy as np
import pytest

from repro.dynamics.traces import generate_trace_set
from repro.queries.items import ItemRegistry
from repro.gp.posynomial import substitute
from repro.queries import (
    PolynomialQuery,
    QueryTerm,
    deviation_posynomial,
    dual_dab_condition,
    parse_query,
    primary_variable,
)
from repro.queries.compiled import (
    CompiledDeviation,
    CompiledPolynomial,
    CompiledQueryBank,
    PowerTable,
)


def _random_query(rng, n_terms, items, max_degree=3):
    terms = []
    for _ in range(n_terms):
        width = int(rng.integers(1, min(4, len(items)) + 1))
        names = rng.choice(items, size=width, replace=False)
        exponents = {str(n): int(rng.integers(1, max_degree + 1)) for n in names}
        weight = float(rng.uniform(-4.0, 4.0)) or 1.0
        terms.append(QueryTerm(weight, exponents))
    return PolynomialQuery(terms, qab=float(rng.uniform(0.5, 10.0)))


def _random_values(rng, items):
    return {name: float(rng.uniform(0.1, 50.0)) for name in items}


ITEMS = [f"x{i}" for i in range(6)]


class TestCompiledPolynomial:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_bitwise_equal_to_scalar_evaluate(self, seed):
        rng = np.random.default_rng(seed)
        for n_terms in (1, 2, 5, 8, 12):
            query = _random_query(rng, n_terms, ITEMS)
            compiled = CompiledPolynomial(query)
            for _ in range(5):
                values = _random_values(rng, ITEMS)
                assert compiled.evaluate(values) == query.evaluate(values)

    def test_shared_table_and_incremental_update(self):
        rng = np.random.default_rng(7)
        table = PowerTable()
        queries = [_random_query(rng, 6, ITEMS) for _ in range(4)]
        compiled = [CompiledPolynomial(q, table) for q in queries]
        values = _random_values(rng, ITEMS)
        vector = table.vector(values)
        for q, c in zip(queries, compiled):
            assert c.evaluate_vector(vector) == q.evaluate(values)
        # mutate one item and refresh only its slots
        values["x3"] = 17.25
        table.update(vector, "x3", values["x3"])
        for q, c in zip(queries, compiled):
            assert c.evaluate_vector(vector) == q.evaluate(values)

    def test_sentinel_survives_table_growth(self):
        table = PowerTable()
        q1 = parse_query("x*y : 1", name="q1")
        c1 = CompiledPolynomial(q1, table)
        values = {"x": 3.0, "y": 5.0, "z": 7.0}
        # registering a second query must not shift q1's gather slots
        c2 = CompiledPolynomial(parse_query("z^3 + x : 1", name="q2"), table)
        vector = table.vector(values)
        assert c1.evaluate_vector(vector) == q1.evaluate(values)
        assert c2.evaluate_vector(vector) == c2.query.evaluate(values)

    def test_power_slab_matches_per_tick_vectors(self):
        traces = generate_trace_set(
            ItemRegistry.from_names(["x", "y"]), length=20, seed=3)
        table = PowerTable()
        query = parse_query("2 x^2*y + y^3 : 1")
        compiled = CompiledPolynomial(query, table)
        slab = table.slab(traces)
        assert slab.shape == (20, len(table.pairs) + 1)
        for tick in (0, 1, 7, 19):
            values = traces.values_at(tick, ["x", "y"])
            assert np.array_equal(slab[tick], table.vector(values))
            assert compiled.evaluate_vector(slab[tick]) == query.evaluate(values)


class TestEvaluateSlab:
    @pytest.mark.parametrize("seed", [0, 5])
    def test_rows_bitwise_equal_to_evaluate_vector(self, seed):
        rng = np.random.default_rng(seed)
        traces = generate_trace_set(ItemRegistry.from_names(ITEMS),
                                    length=30, seed=seed)
        table = PowerTable()
        compiled = [CompiledPolynomial(_random_query(rng, n, ITEMS), table)
                    for n in (1, 3, 7)]
        slab = table.slab(traces)
        for one in compiled:
            rows = one.evaluate_slab(slab)
            for tick in range(30):
                assert rows[tick] == one.evaluate_vector(slab[tick])


class TestCompiledQueryBank:
    def _bank(self, seed, n_queries=5):
        rng = np.random.default_rng(seed)
        table = PowerTable()
        compiled = [
            CompiledPolynomial(_random_query(rng, int(rng.integers(1, 9)),
                                             ITEMS), table)
            for _ in range(n_queries)
        ]
        return rng, table, compiled, CompiledQueryBank(compiled)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_value_of_bitwise_equal_to_evaluate_vector(self, seed):
        rng, table, compiled, bank = self._bank(seed)
        for _ in range(5):
            vector = table.vector(_random_values(rng, ITEMS))
            products = bank.products(vector)
            for index, one in enumerate(compiled):
                assert bank.value_of(index, products) == \
                    one.evaluate_vector(vector)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_values_vector_bitwise_equal_to_values(self, seed):
        rng, table, compiled, bank = self._bank(seed)
        for _ in range(5):
            vector = table.vector(_random_values(rng, ITEMS))
            listed = bank.values(vector)
            batched = bank.values_vector(vector)
            assert batched.tolist() == listed
            # buffer reuse across calls must not leak padding state
            assert bank.values_vector(vector).tolist() == listed

    def test_single_query_bank(self):
        _rng, table, compiled, bank = self._bank(3, n_queries=1)
        vector = table.vector({name: 2.5 for name in ITEMS})
        assert bank.values(vector) == [compiled[0].evaluate_vector(vector)]

    def test_empty_bank_rejected(self):
        with pytest.raises(ValueError):
            CompiledQueryBank([])

    def test_mixed_tables_rejected(self):
        rng = np.random.default_rng(4)
        a = CompiledPolynomial(_random_query(rng, 2, ITEMS), PowerTable())
        b = CompiledPolynomial(_random_query(rng, 2, ITEMS), PowerTable())
        with pytest.raises(ValueError):
            CompiledQueryBank([a, b])


class TestCompiledDeviation:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("include_secondary", [False, True])
    def test_coefficients_bitwise_equal(self, seed, include_secondary):
        rng = np.random.default_rng(seed)
        for n_terms in (1, 3, 8):
            query = _random_query(rng, n_terms, ITEMS)
            compiled = CompiledDeviation(
                query.terms, include_secondary=include_secondary)
            for _ in range(4):
                values = _random_values(rng, ITEMS)
                scalar = deviation_posynomial(
                    query.terms, values, include_secondary=include_secondary)
                assert compiled.signatures == tuple(
                    t.key for t in scalar.terms)
                assert compiled.coefficients(values) == [
                    t.coefficient for t in scalar.terms]

    def test_qab_division_matches_dual_dab_condition(self):
        rng = np.random.default_rng(11)
        query = _random_query(rng, 5, ITEMS)
        values = _random_values(rng, ITEMS)
        compiled = CompiledDeviation(query.terms, include_secondary=True)
        scalar = dual_dab_condition(query.terms, values, query.qab)
        assert compiled.coefficients(values, qab=query.qab) == [
            t.coefficient for t in scalar.terms]
        # exponent matrix + log-coefficients against the scalar compile
        order = sorted(scalar.variables)
        A_scalar, log_scalar = scalar.exponent_matrix(order)
        assert np.array_equal(compiled.exponent_matrix(order), A_scalar)
        assert np.array_equal(
            compiled.log_coefficients(values, qab=query.qab), log_scalar)

    def test_cross_term_like_term_combining(self):
        # x^2 and (x)^2-ish overlap: both terms contribute b__x rows that the
        # Posynomial algebra combines; the compiled path must fold them in
        # the same order.
        query = parse_query("x^2 + 3 x^2*y + 2 x : 1")
        values = {"x": 2.5, "y": 1.75}
        for include_secondary in (False, True):
            compiled = CompiledDeviation(
                query.terms, include_secondary=include_secondary)
            scalar = deviation_posynomial(
                query.terms, values, include_secondary=include_secondary)
            assert compiled.coefficients(values) == [
                t.coefficient for t in scalar.terms]

    def test_missing_and_nonpositive_values_raise_like_scalar(self):
        compiled = CompiledDeviation(parse_query("x*y : 1").terms)
        with pytest.raises(KeyError):
            compiled.coefficients({"x": 1.0})
        from repro.exceptions import InvalidQueryError
        with pytest.raises(InvalidQueryError):
            compiled.coefficients({"x": 1.0, "y": 0.0})


class TestCompiledSubstitution:
    @pytest.mark.parametrize("seed", [0, 5])
    def test_matches_scalar_substitute(self, seed):
        rng = np.random.default_rng(seed)
        query = _random_query(rng, 6, ITEMS)
        values = _random_values(rng, ITEMS)
        compiled = CompiledDeviation(query.terms, include_secondary=True)
        scalar = dual_dab_condition(query.terms, values, query.qab)
        fixed = {primary_variable(name): float(rng.uniform(0.05, 2.0))
                 for name in query.variables}
        widened_scalar = substitute(scalar, fixed)
        widened = compiled.substituted(fixed)
        parent = compiled.coefficients(values, qab=query.qab)
        assert widened.signatures == tuple(t.key for t in widened_scalar.terms)
        assert widened.coefficients(parent, fixed) == [
            t.coefficient for t in widened_scalar.terms]

    def test_fully_substituted_row_is_constant(self):
        query = parse_query("x : 1")
        compiled = CompiledDeviation(query.terms, include_secondary=True)
        widened = compiled.substituted([primary_variable("x")])
        assert widened.is_constant
        values = {"x": 4.0}
        parent = compiled.coefficients(values, qab=query.qab)
        coeffs = widened.coefficients(parent, {primary_variable("x"): 0.5})
        scalar = substitute(dual_dab_condition(query.terms, values, query.qab),
                            {primary_variable("x"): 0.5})
        assert coeffs == [t.coefficient for t in scalar.terms]
