"""Unit tests for the shared-structure bank index (ISSUE 8 tentpole).

Covers the index layer in isolation: template-key canonicalization,
structure dedup, swap-remove bookkeeping, exact evaluation against the
per-query compiled path, slack-screening soundness (screened-out members
never actually moved), and the per-template window matrices.
"""

import numpy as np
import pytest

from repro.queries import PolynomialQuery, QueryTerm
from repro.queries.bank_index import (
    BANK_INDEX_MODES,
    SharedStructureBank,
    TemplateWindowState,
    template_key,
)
from repro.queries.compiled import CompiledPolynomial, PowerTable


def _pq(name, terms, qab=1.0):
    return PolynomialQuery(terms, qab=qab, name=name)


def _pair(weight, a, b):
    return QueryTerm.product(weight, a, b)


def _values(items, seed=0):
    rng = np.random.default_rng(seed)
    return {name: float(rng.uniform(1.0, 10.0)) for name in items}


class TestTemplateKey:
    def test_same_structure_different_weights_share_key(self):
        q1 = _pq("a", [_pair(2.0, "x", "y"), _pair(3.0, "u", "v")])
        q2 = _pq("b", [_pair(7.5, "x", "y"), _pair(-1.25, "u", "v")])
        assert template_key(q1) == template_key(q2)

    def test_term_order_is_canonical(self):
        # PolynomialQuery sorts terms by signature, so authoring order
        # cannot split a structure into two templates.
        q1 = _pq("a", [_pair(2.0, "x", "y"), _pair(3.0, "u", "v")])
        q2 = _pq("b", [_pair(3.0, "u", "v"), _pair(2.0, "x", "y")])
        assert template_key(q1) == template_key(q2)

    def test_different_items_or_exponents_split(self):
        base = _pq("a", [_pair(1.0, "x", "y")])
        other_items = _pq("b", [_pair(1.0, "x", "z")])
        other_exp = _pq("c", [QueryTerm(1.0, {"x": 2, "y": 1})])
        assert template_key(base) != template_key(other_items)
        assert template_key(base) != template_key(other_exp)

    def test_modes_tuple(self):
        assert BANK_INDEX_MODES == ("flat", "shared")


class TestMembership:
    def test_dedup_counts_structure_hits(self):
        table = PowerTable()
        bank = SharedStructureBank(table)
        queries = [_pq(f"q{i}", [_pair(1.0 + i, "x", "y")]) for i in range(5)]
        tids = [bank.add_query(q, i) for i, q in enumerate(queries)]
        assert len(set(tids)) == 1
        assert bank.structure_hits == 4
        assert len(bank) == 5
        stats = bank.stats()
        assert stats["distinct_structures"] == 1
        assert stats["queries"] == 5
        assert stats["dedup_ratio"] == 5.0
        assert stats["appends"] == 5

    def test_duplicate_name_rejected(self):
        bank = SharedStructureBank(PowerTable())
        q = _pq("dup", [_pair(1.0, "x", "y")])
        bank.add_query(q, 0)
        with pytest.raises(ValueError, match="already indexed"):
            bank.add_query(q, 1)

    def test_swap_remove_remaps_moved_member(self):
        table = PowerTable()
        bank = SharedStructureBank(table)
        for i in range(4):
            bank.add_query(_pq(f"q{i}", [_pair(float(i + 1), "x", "y")]), i)
        version = bank.template_version(0)
        bank.remove_query("q1")         # q3's row swaps into q1's slot
        assert "q1" not in bank
        assert len(bank) == 3
        assert bank.template_version(0) == version + 1
        values = _values(["x", "y"])
        pvec = table.vector(values)
        for i in (0, 2, 3):
            expected = (i + 1) * values["x"] * values["y"]
            assert bank.value_of(pvec, f"q{i}") == pytest.approx(expected)

    def test_set_position_rescatters(self):
        table = PowerTable()
        bank = SharedStructureBank(table)
        bank.add_query(_pq("q0", [_pair(2.0, "x", "y")]), 0)
        bank.add_query(_pq("q1", [_pair(3.0, "x", "y")]), 1)
        bank.set_position("q1", 5)
        values = _values(["x", "y"])
        pvec = table.vector(values)
        out = bank.values_all(pvec, 6)
        assert out[5] == pytest.approx(3.0 * values["x"] * values["y"])
        assert out[1] == 0.0

    def test_capacity_growth_preserves_members(self):
        table = PowerTable()
        bank = SharedStructureBank(table)
        n = 37                          # forces several capacity doublings
        for i in range(n):
            bank.add_query(_pq(f"q{i}", [_pair(float(i + 1), "x", "y")]), i)
        values = _values(["x", "y"])
        pvec = table.vector(values)
        out = bank.values_all(pvec, n)
        expected = np.array([(i + 1) * values["x"] * values["y"]
                             for i in range(n)])
        np.testing.assert_allclose(out, expected, rtol=1e-12)


class TestEvaluation:
    def _mixed_bank(self, seed=7):
        rng = np.random.default_rng(seed)
        table = PowerTable()
        bank = SharedStructureBank(table)
        structures = [
            [("x", "y"), ("u", "v")],
            [("x", "z")],
            [("a", "b"), ("c", "d"), ("x", "y")],
        ]
        queries = []
        for i in range(24):
            pairs = structures[i % len(structures)]
            terms = [_pair(float(rng.uniform(0.5, 5.0)), a, b)
                     for a, b in pairs]
            q = _pq(f"q{i}", terms, qab=float(rng.uniform(0.5, 2.0)))
            queries.append(q)
            bank.add_query(q, i)
        items = sorted({name for s in structures for ab in s for name in ab})
        return table, bank, queries, items

    def test_values_all_matches_compiled_per_query(self):
        table, bank, queries, items = self._mixed_bank()
        values = _values(items, seed=3)
        pvec = table.vector(values)
        out = bank.values_all(pvec, len(queries))
        for i, q in enumerate(queries):
            exact = CompiledPolynomial(q, table).evaluate_vector(pvec)
            assert out[i] == pytest.approx(exact, rel=1e-12)
            assert bank.value_of(pvec, q.name) == pytest.approx(exact,
                                                                rel=1e-12)

    def test_inverted_index_covers_exactly_item_templates(self):
        table, bank, queries, items = self._mixed_bank()
        for item in items:
            for tid in bank.templates_of_item(item):
                assert item in bank.template_items(tid)
        # "x" appears in all three structures, "a" in exactly one.
        assert len(bank.templates_of_item("x")) == 3
        assert len(bank.templates_of_item("a")) == 1
        assert bank.templates_of_item("nope") == ()

    def test_screening_soundness_random_walk(self):
        """Screened-out members must never actually be movers: every tick,
        the mover set from ``refresh_movers`` equals the brute-force exact
        check over the affected templates."""
        table, bank, queries, items = self._mixed_bank(seed=11)
        rng = np.random.default_rng(42)
        values = _values(items, seed=5)
        pvec = table.vector(values)
        n = len(queries)
        qab = np.array([q.qab for q in queries])
        last_user = bank.values_all(pvec, n).copy()
        notified = 0
        for tick in range(400):
            item = items[int(rng.integers(len(items)))]
            values[item] *= float(1.0 + rng.uniform(-0.05, 0.05))
            table.update(pvec, item, values[item])
            affected = set()
            for tid in bank.templates_of_item(item):
                affected.update(bank.template_positions(tid).tolist())
            exact = bank.values_all(pvec, n)
            brute = {p for p in affected
                     if abs(exact[p] - last_user[p]) > qab[p]}
            positions, moved_values = bank.refresh_movers(
                item, pvec, last_user, qab)
            assert set(positions) == brute
            for p, v in zip(positions, moved_values):
                assert v == pytest.approx(exact[p], rel=1e-12)
                last_user[p] = v
            notified += len(positions)
        assert notified > 0                      # the walk exercised movers
        stats = bank.stats()
        assert stats["screen_evaluated"] > 0
        total = stats["screen_evaluated"] + stats["screen_skipped"]
        assert total >= notified

    def test_invalidate_forces_resync(self):
        table, bank, queries, items = self._mixed_bank()
        values = _values(items, seed=5)
        pvec = table.vector(values)
        n = len(queries)
        qab = np.array([q.qab for q in queries])
        last_user = bank.values_all(pvec, n).copy()
        bank.refresh_movers("x", pvec, last_user, qab)
        syncs = bank.template_syncs
        assert syncs > 0
        bank.invalidate()
        bank.refresh_movers("x", pvec, last_user, qab)
        assert bank.template_syncs > syncs


class TestStatsPlane:
    def test_stats_shape(self):
        table = PowerTable()
        bank = SharedStructureBank(table)
        bank.add_query(_pq("q0", [_pair(1.0, "x", "y")]), 0)
        bank.add_query(_pq("q1", [_pair(2.0, "x", "y")]), 1)
        bank.remove_query("q0")
        stats = bank.stats()
        for key in ("mode", "queries", "distinct_structures", "dedup_ratio",
                    "min_template_queries", "max_template_queries",
                    "mean_template_queries", "appends", "removals",
                    "structure_hits", "screen_evaluated", "screen_skipped",
                    "template_syncs", "nbytes"):
            assert key in stats
        assert stats["mode"] == "shared"
        assert stats["removals"] == 1
        assert stats["nbytes"] > 0
        latency = stats["update_latency_us"]
        assert latency["samples"] == 3
        assert latency["p50"] <= latency["p95"] <= latency["p99"]

    def test_empty_bank_stats(self):
        bank = SharedStructureBank(PowerTable())
        stats = bank.stats()
        assert stats["queries"] == 0
        assert stats["distinct_structures"] == 0
        assert stats["dedup_ratio"] == 0.0
        assert "update_latency_us" not in stats


class TestTemplateWindowState:
    def _state(self):
        return TemplateWindowState(["x", "y"], np.array([10, 11, 12]),
                                   version=1)

    def test_set_row_and_update_item(self):
        state = self._state()
        state.set_row(0, refs={"x": 5.0, "y": 2.0},
                      wids={"x": 1.0, "y": 1.0},
                      values={"x": 5.0, "y": 2.0})
        state.set_row(1, refs={"x": 5.0}, wids={"x": 0.5},
                      values={"x": 5.0})
        state.set_row(2, refs={"y": 2.0}, wids={"y": 10.0},
                      values={"y": 2.0})
        assert state.update_item("x", 5.2).tolist() == []
        # x=6.0 breaches row 0 (width 1.0 exceeded? |6-5|=1 not > 1) — no;
        # row 1 width 0.5 → breach.
        assert state.update_item("x", 6.0).tolist() == [1]
        # y is unconstrained for row 1; row 2's width 10 never breaks.
        assert state.update_item("y", 4.0).tolist() == [0, 1]
        # x back inside: row 1 clears, row 0 still breached on y.
        assert state.update_item("x", 5.0).tolist() == [0]
        assert state.update_item("y", 2.0).tolist() == []

    def test_breach_at_initial_values_counts(self):
        state = self._state()
        state.set_row(0, refs={"x": 5.0}, wids={"x": 0.1},
                      values={"x": 9.0})            # already outside
        assert state.counts[0] == 1
        assert state.update_item("y", 1.0).tolist() == [0]

    def test_fallback_rows_excluded(self):
        state = self._state()
        state.set_row(0, refs={"x": 5.0}, wids={"x": 0.1},
                      values={"x": 5.0})
        state.set_fallback(1)
        state.set_row(2, refs={"x": 5.0}, wids={"x": 0.1},
                      values={"x": 5.0})
        rows = state.update_item("x", 50.0)
        assert rows.tolist() == [0, 2]
        assert state.fallback_rows().tolist() == [1]

    def test_version_tag_round_trips(self):
        state = self._state()
        assert state.version == 1
