"""Unit tests for :mod:`repro.queries.items`."""

import pytest

from repro.exceptions import InvalidQueryError
from repro.queries import DataItem, ItemRegistry


class TestDataItem:
    def test_valid_name(self):
        item = DataItem("stock_AAPL", description="Apple stock price")
        assert str(item) == "stock_AAPL"
        assert item.description == "Apple stock price"

    @pytest.mark.parametrize("bad", ["", "1x", "a-b", "a b", "x.y", None, 5])
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(InvalidQueryError):
            DataItem(bad)

    def test_frozen(self):
        item = DataItem("x")
        with pytest.raises(AttributeError):
            item.name = "y"


class TestItemRegistry:
    def test_from_names_preserves_order(self):
        registry = ItemRegistry.from_names(["b", "a", "c"])
        assert registry.names == ["b", "a", "c"]

    def test_numbered(self):
        registry = ItemRegistry.numbered(3, prefix="s")
        assert registry.names == ["s0", "s1", "s2"]

    def test_numbered_rejects_nonpositive(self):
        with pytest.raises(InvalidQueryError):
            ItemRegistry.numbered(0)

    def test_duplicate_rejected(self):
        registry = ItemRegistry.from_names(["x"])
        with pytest.raises(InvalidQueryError):
            registry.register(DataItem("x"))

    def test_get_and_contains(self):
        registry = ItemRegistry.from_names(["x", "y"])
        assert registry.get("x").name == "x"
        assert "y" in registry
        assert "z" not in registry

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError, match="z"):
            ItemRegistry.from_names(["x"]).get("z")

    def test_len_and_iter(self):
        registry = ItemRegistry.numbered(5)
        assert len(registry) == 5
        assert [item.name for item in registry] == registry.names

    def test_subset(self):
        registry = ItemRegistry.numbered(5)
        sub = registry.subset(["x1", "x3"])
        assert sub.names == ["x1", "x3"]

    def test_repr(self):
        assert "3 items" in repr(ItemRegistry.numbered(3))
