"""Unit tests for :mod:`repro.queries.parser`."""

import pytest

from repro.exceptions import QueryParseError
from repro.queries import parse_query
from repro.queries.parser import parse_terms


class TestBasics:
    def test_paper_running_example(self):
        q = parse_query("x*y : 5")
        assert q.qab == 5.0
        assert q.degree == 2
        assert q.evaluate({"x": 2.0, "y": 2.0}) == 4.0

    def test_weights_by_juxtaposition(self):
        q = parse_query("3 x*y - 2 u*v : 5")
        weights = sorted(t.weight for t in q.terms)
        assert weights == [-2.0, 3.0]

    def test_explicit_star_between_weight_and_items(self):
        q = parse_query("3*x*y : 1")
        assert q.terms[0].weight == 3.0

    def test_powers_both_syntaxes(self):
        q1 = parse_query("x^2 + y^2 : 1")
        q2 = parse_query("x**2 + y**2 : 1")
        assert q1.terms == q2.terms

    def test_leading_minus(self):
        q = parse_query("-x*y + u*v : 1")
        assert sorted(t.weight for t in q.terms) == [-1.0, 1.0]

    def test_repeated_item_multiplies(self):
        q = parse_query("x*x : 1")
        assert q.terms[0].exponents == {"x": 2}

    def test_scientific_notation_weight(self):
        q = parse_query("2e2 x : 1")
        assert q.terms[0].weight == 200.0

    def test_qab_argument_overrides_text(self):
        q = parse_query("x*y : 5", qab=9.0)
        assert q.qab == 9.0

    def test_qab_argument_when_missing_in_text(self):
        q = parse_query("x*y", qab=3.0)
        assert q.qab == 3.0

    def test_name_argument(self):
        assert parse_query("x : 1", name="named").name == "named"


class TestErrors:
    def test_missing_qab(self):
        with pytest.raises(QueryParseError, match="no QAB"):
            parse_query("x*y")

    def test_unexpected_character(self):
        with pytest.raises(QueryParseError, match="unexpected character"):
            parse_query("x @ y : 1")

    def test_fractional_exponent(self):
        with pytest.raises(QueryParseError, match="integers"):
            parse_query("x^1.5 : 1")

    def test_constant_only_term(self):
        with pytest.raises(QueryParseError, match="constant"):
            parse_query("5 : 1")

    def test_dangling_operator(self):
        with pytest.raises(QueryParseError):
            parse_query("x + : 1")

    def test_empty_input(self):
        with pytest.raises(QueryParseError):
            parse_query("")

    def test_error_carries_position(self):
        try:
            parse_query("x @ y : 1")
        except QueryParseError as error:
            assert error.position == 2
            assert "x @ y : 1" in str(error)
        else:  # pragma: no cover
            pytest.fail("expected QueryParseError")


class TestParseTerms:
    def test_terms_only(self):
        terms = parse_terms("x*y + 2 u")
        assert len(terms) == 2

    def test_terms_only_rejects_qab(self):
        with pytest.raises(QueryParseError):
            parse_terms("x : 5")
