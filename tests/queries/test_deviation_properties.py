"""Property-based tests for the deviation expansion.

The central invariant of the whole system: the symbolic posynomial equals
the exact worst-case deviation for PPQs, and the worst case really is the
worst over random in-window movements.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.queries import (
    PolynomialQuery,
    QueryTerm,
    deviation_posynomial,
    max_query_deviation,
    primary_variable,
    secondary_variable,
)

item_names = ["x", "y", "z", "w"]

weights = st.floats(min_value=0.1, max_value=50.0,
                    allow_nan=False, allow_infinity=False)
powers = st.integers(min_value=1, max_value=3)
base_values = st.floats(min_value=0.5, max_value=100.0,
                        allow_nan=False, allow_infinity=False)
bound_values = st.floats(min_value=0.001, max_value=5.0,
                         allow_nan=False, allow_infinity=False)


@st.composite
def ppq_terms(draw):
    term_count = draw(st.integers(min_value=1, max_value=3))
    terms = []
    for _ in range(term_count):
        item_count = draw(st.integers(min_value=1, max_value=3))
        chosen = draw(st.permutations(item_names))[:item_count]
        exponents = {name: draw(powers) for name in chosen}
        terms.append(QueryTerm(draw(weights), exponents))
    return terms


@st.composite
def worlds(draw):
    terms = draw(ppq_terms())
    items = sorted({n for t in terms for n in t.variables})
    values = {n: draw(base_values) for n in items}
    bounds = {n: draw(bound_values) for n in items}
    return terms, values, bounds


class TestExpansionProperties:
    @given(worlds())
    @settings(max_examples=80, deadline=None)
    def test_symbolic_equals_numeric_worst_case(self, world):
        terms, values, bounds = world
        posy = deviation_posynomial(terms, values)
        symbolic = posy.evaluate({primary_variable(k): v for k, v in bounds.items()})
        numeric = max_query_deviation(terms, values, bounds)
        assert symbolic == pytest.approx(numeric, rel=1e-9)

    @given(worlds())
    @settings(max_examples=80, deadline=None)
    def test_dual_form_reduces_to_single_as_c_vanishes(self, world):
        terms, values, bounds = world
        single = deviation_posynomial(terms, values)
        dual = deviation_posynomial(terms, values, include_secondary=True)
        point = {primary_variable(k): v for k, v in bounds.items()}
        point.update({secondary_variable(k): 1e-12 for k in bounds})
        assert dual.evaluate(point) == pytest.approx(
            single.evaluate({primary_variable(k): v for k, v in bounds.items()}),
            rel=1e-6)

    @given(worlds())
    @settings(max_examples=80, deadline=None)
    def test_deviation_monotone_in_base_values(self, world):
        """Feasibility at inflated values implies feasibility at true ones —
        the soundness argument of the quantised solve cache."""
        terms, values, bounds = world
        inflated = {k: v * 1.07 for k, v in values.items()}
        assert max_query_deviation(terms, values, bounds) <= \
            max_query_deviation(terms, inflated, bounds) + 1e-12

    @given(worlds())
    @settings(max_examples=80, deadline=None)
    def test_deviation_monotone_in_bounds(self, world):
        terms, values, bounds = world
        tighter = {k: v * 0.5 for k, v in bounds.items()}
        assert max_query_deviation(terms, values, tighter) <= \
            max_query_deviation(terms, values, bounds) + 1e-12

    @given(worlds(), st.data())
    @settings(max_examples=80, deadline=None)
    def test_worst_case_dominates_random_movements(self, world, data):
        """For a PPQ, any |d_i| <= b_i movement changes the query by at most
        the computed worst case."""
        terms, values, bounds = world
        moved = {}
        for name, value in values.items():
            delta = data.draw(st.floats(min_value=-1.0, max_value=1.0,
                                        allow_nan=False)) * bounds[name]
            moved[name] = max(value + delta, 1e-9)
        query = PolynomialQuery(terms, qab=1.0)
        change = abs(query.evaluate(moved) - query.evaluate(values))
        worst = max_query_deviation(terms, values, bounds)
        assert change <= worst * (1 + 1e-9) + 1e-9

    @given(worlds())
    @settings(max_examples=50, deadline=None)
    def test_dual_window_edge_guarantee(self, world):
        """Eq. 2 evaluated at (b, c) dominates Eq. 1 evaluated with base
        values anywhere inside the window [V, V+c]."""
        terms, values, bounds = world
        windows = {k: 2.0 * v for k, v in bounds.items()}
        dual = deviation_posynomial(terms, values, include_secondary=True)
        point = {primary_variable(k): v for k, v in bounds.items()}
        point.update({secondary_variable(k): windows[k] for k in windows})
        edge_value = dual.evaluate(point)
        # any interior base point: V + 0.4 * c
        interior = {k: values[k] + 0.4 * windows[k] for k in values}
        interior_deviation = max_query_deviation(terms, interior, bounds)
        assert interior_deviation <= edge_value * (1 + 1e-9)
