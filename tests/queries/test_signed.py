"""Tests for the signed (Eq.-4) expansion, both directions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import InvalidQueryError
from repro.queries import PolynomialQuery, QueryTerm, parse_query
from repro.queries.deviation import primary_variable, secondary_variable
from repro.queries.signed import mixed_dual_condition, mixed_worst_deviation


def eval_condition(pos, neg, b, c):
    point = {primary_variable(k): v for k, v in b.items()}
    point.update({secondary_variable(k): v for k, v in c.items()})
    return pos.evaluate(point) - (neg.evaluate(point) if neg else 0.0)


class TestEq4HandChecks:
    """The paper's Eq. 4 for Q = xy - uv, verified coefficient by
    coefficient."""

    QUERY = "x*y - u*v : 5"
    VALUES = {"x": 5.0, "y": 4.0, "u": 3.0, "v": 2.0}
    B = {"x": 0.3, "y": 0.2, "u": 0.25, "v": 0.15}
    C = {"x": 0.5, "y": 0.4, "u": 0.6, "v": 0.3}

    def test_query_up_matches_paper_formula(self):
        q = parse_query(self.QUERY)
        pos, neg = mixed_dual_condition(q.terms, self.VALUES, "query_up")
        V, b, c = self.VALUES, self.B, self.C
        hand = ((V["x"] + c["x"]) * b["y"] + (V["y"] + c["y"]) * b["x"]
                + b["x"] * b["y"]
                + (V["u"] - c["u"]) * b["v"] + (V["v"] - c["v"]) * b["u"]
                - b["u"] * b["v"])
        assert eval_condition(pos, neg, b, c) == pytest.approx(hand)

    def test_query_down_is_the_mirror(self):
        q = parse_query(self.QUERY)
        pos, neg = mixed_dual_condition(q.terms, self.VALUES, "query_down")
        V, b, c = self.VALUES, self.B, self.C
        hand = ((V["x"] - c["x"]) * b["y"] + (V["y"] - c["y"]) * b["x"]
                - b["x"] * b["y"]
                + (V["u"] + c["u"]) * b["v"] + (V["v"] + c["v"]) * b["u"]
                + b["u"] * b["v"])
        assert eval_condition(pos, neg, b, c) == pytest.approx(hand)

    def test_numeric_oracle_agrees(self):
        q = parse_query(self.QUERY)
        for direction in ("query_up", "query_down"):
            pos, neg = mixed_dual_condition(q.terms, self.VALUES, direction)
            expanded = eval_condition(pos, neg, self.B, self.C)
            direct = mixed_worst_deviation(q.terms, self.VALUES,
                                           self.B, self.C, direction)
            assert expanded == pytest.approx(direct)

    def test_both_takes_max(self):
        q = parse_query(self.QUERY)
        both = mixed_worst_deviation(q.terms, self.VALUES, self.B, self.C)
        up = mixed_worst_deviation(q.terms, self.VALUES, self.B, self.C,
                                   "query_up")
        down = mixed_worst_deviation(q.terms, self.VALUES, self.B, self.C,
                                     "query_down")
        assert both == pytest.approx(max(up, down))

    def test_heavy_negative_half_flips_dominant_direction(self):
        """With P2 ten times heavier, the query-*down* case dominates —
        the reason Eq. 4 alone is not sufficient."""
        q = parse_query("x*y - 10 u*v : 5")
        up = mixed_worst_deviation(q.terms, self.VALUES, self.B, self.C,
                                   "query_up")
        down = mixed_worst_deviation(q.terms, self.VALUES, self.B, self.C,
                                     "query_down")
        assert down > up

    def test_ppq_has_no_negative_part(self):
        q = parse_query("x*y : 5")
        pos, neg = mixed_dual_condition(q.terms, {"x": 2.0, "y": 2.0},
                                        "query_up")
        assert neg is None

    def test_bad_direction(self):
        q = parse_query("x*y : 5")
        with pytest.raises(InvalidQueryError):
            mixed_dual_condition(q.terms, {"x": 2.0, "y": 2.0}, "sideways")
        with pytest.raises(InvalidQueryError):
            mixed_worst_deviation(q.terms, {"x": 2.0, "y": 2.0},
                                  {"x": 0.1, "y": 0.1}, {"x": 0.2, "y": 0.2},
                                  "sideways")

    def test_window_overshoot_rejected(self):
        q = parse_query("x*y - u*v : 5")
        with pytest.raises(InvalidQueryError, match="exceed"):
            mixed_worst_deviation(q.terms, self.VALUES, {"u": 2.0, "v": 0.1,
                                                         "x": 0.1, "y": 0.1},
                                  {"u": 2.0, "v": 0.1, "x": 0.1, "y": 0.1})


weights = st.floats(min_value=0.2, max_value=10.0, allow_nan=False)
values_st = st.floats(min_value=2.0, max_value=50.0, allow_nan=False)
fracs = st.floats(min_value=0.01, max_value=0.3, allow_nan=False)


@st.composite
def signed_worlds(draw):
    w1, w2 = draw(weights), draw(weights)
    terms = [QueryTerm.product(w1, "x", "y"), QueryTerm.product(-w2, "u", "v")]
    values = {n: draw(values_st) for n in ("x", "y", "u", "v")}
    bf = draw(fracs)
    cf = draw(st.floats(min_value=bf, max_value=0.4))
    b = {n: bf * v for n, v in values.items()}
    c = {n: cf * v for n, v in values.items()}
    return terms, values, b, c


class TestSignedProperties:
    @given(signed_worlds())
    @settings(max_examples=60, deadline=None)
    def test_expansion_matches_oracle(self, world):
        terms, values, b, c = world
        for direction in ("query_up", "query_down"):
            pos, neg = mixed_dual_condition(terms, values, direction)
            expanded = eval_condition(pos, neg, b, c)
            direct = mixed_worst_deviation(terms, values, b, c, direction)
            assert expanded == pytest.approx(direct, rel=1e-9, abs=1e-9)

    @given(signed_worlds(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_condition_bounds_actual_movement(self, world, data):
        """Any joint movement — windows drifting anywhere within ±c, then
        filters moving within ±b — changes the query by at most the
        two-direction worst case."""
        terms, values, b, c = world
        query = PolynomialQuery(terms, qab=1.0)
        worst = mixed_worst_deviation(terms, values, b, c)
        cached = {}
        truth = {}
        for name, value in values.items():
            drift = data.draw(st.floats(min_value=-1.0, max_value=1.0)) * c[name]
            cached[name] = max(value + drift, 1e-9)
            move = data.draw(st.floats(min_value=-1.0, max_value=1.0)) * b[name]
            truth[name] = max(cached[name] + move, 1e-9)
        change = abs(query.evaluate(truth) - query.evaluate(cached))
        assert change <= worst * (1 + 1e-9) + 1e-9

    @given(signed_worlds())
    @settings(max_examples=60, deadline=None)
    def test_mirror_condition_dominates_both_directions(self, world):
        """Claim 1 extended: the Different-Sum mirror condition evaluated
        at the up-edge dominates both directional signed conditions — the
        formal reason DS is a sound (conservative) seed."""
        from repro.queries.deviation import max_query_deviation

        terms, values, b, c = world
        mirror_terms = [t.abs() for t in terms]
        edge = {n: values[n] + c[n] for n in values}
        mirror = max_query_deviation(mirror_terms, edge, b)
        signed = mixed_worst_deviation(terms, values, b, c)
        assert signed <= mirror * (1 + 1e-9)
