"""Unit tests for :mod:`repro.queries.terms`."""

import pytest

from repro.exceptions import InvalidQueryError
from repro.queries import QueryTerm


class TestConstruction:
    def test_basic(self):
        term = QueryTerm(3.0, {"x": 1, "y": 2})
        assert term.weight == 3.0
        assert term.exponents == {"x": 1, "y": 2}
        assert term.degree == 3

    def test_product_factory_counts_repeats(self):
        term = QueryTerm.product(2.0, "x", "x", "y")
        assert term.exponents == {"x": 2, "y": 1}

    def test_zero_weight_rejected(self):
        with pytest.raises(InvalidQueryError):
            QueryTerm(0.0, {"x": 1})

    def test_nan_weight_rejected(self):
        with pytest.raises(InvalidQueryError):
            QueryTerm(float("nan"), {"x": 1})

    def test_fractional_exponent_rejected(self):
        with pytest.raises(InvalidQueryError, match="integer"):
            QueryTerm(1.0, {"x": 1.5})

    def test_negative_exponent_rejected(self):
        with pytest.raises(InvalidQueryError):
            QueryTerm(1.0, {"x": -1})

    def test_zero_exponent_items_dropped(self):
        term = QueryTerm(1.0, {"x": 0, "y": 1})
        assert term.variables == ("y",)

    def test_all_zero_exponents_rejected(self):
        with pytest.raises(InvalidQueryError, match="at least one"):
            QueryTerm(1.0, {"x": 0})

    def test_integral_float_exponent_accepted(self):
        term = QueryTerm(1.0, {"x": 2.0})
        assert term.exponents == {"x": 2}


class TestSemantics:
    def test_evaluate(self):
        term = QueryTerm(2.0, {"x": 2, "y": 1})
        assert term.evaluate({"x": 3.0, "y": 4.0}) == pytest.approx(72.0)

    def test_evaluate_missing_item(self):
        with pytest.raises(KeyError, match="y"):
            QueryTerm(1.0, {"y": 1}).evaluate({"x": 1.0})

    def test_is_positive_and_neg(self):
        term = QueryTerm(2.0, {"x": 1})
        assert term.is_positive
        assert not (-term).is_positive
        assert (-term).weight == -2.0
        assert (-term).abs() == term

    def test_is_linear(self):
        assert QueryTerm(1.0, {"x": 1}).is_linear
        assert not QueryTerm(1.0, {"x": 2}).is_linear

    def test_with_weight_and_scaled(self):
        term = QueryTerm(2.0, {"x": 1})
        assert term.with_weight(5.0).weight == 5.0
        assert term.scaled(0.5).weight == 1.0

    def test_exponent_of(self):
        term = QueryTerm(1.0, {"x": 2})
        assert term.exponent_of("x") == 2
        assert term.exponent_of("z") == 0

    def test_equality_and_hash(self):
        a = QueryTerm(2.0, {"x": 1, "y": 1})
        b = QueryTerm(2.0, {"y": 1, "x": 1})
        assert a == b
        assert hash(a) == hash(b)
        assert a != QueryTerm(2.0, {"x": 1})

    def test_key_excludes_weight(self):
        assert QueryTerm(1.0, {"x": 1}).key == QueryTerm(9.0, {"x": 1}).key

    def test_repr(self):
        assert "x^2" in repr(QueryTerm(1.0, {"x": 2}))
