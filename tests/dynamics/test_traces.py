"""Tests for trace containers and synthetic generators."""

import numpy as np
import pytest

from repro.exceptions import TraceError
from repro.dynamics import (
    GBMTraceGenerator,
    MonotonicTraceGenerator,
    RandomWalkTraceGenerator,
    Trace,
    TraceSet,
    generate_trace_set,
)
from repro.queries import ItemRegistry


class TestTrace:
    def test_basics(self):
        t = Trace("x", np.array([1.0, 2.0, 3.0]))
        assert len(t) == 3
        assert t.duration == 2
        assert t.initial == 1.0
        assert t.at(1) == 2.0

    def test_held_constant_past_end(self):
        t = Trace("x", np.array([1.0, 2.0]))
        assert t.at(100) == 2.0

    def test_negative_tick_rejected(self):
        t = Trace("x", np.array([1.0, 2.0]))
        with pytest.raises(TraceError):
            t.at(-1)

    def test_segment(self):
        t = Trace("x", np.array([1.0, 2.0, 3.0, 4.0]))
        assert list(t.segment(1, 3)) == [2.0, 3.0]

    @pytest.mark.parametrize("values", [
        [1.0],                      # too short
        [1.0, -1.0],                # non-positive
        [1.0, float("nan")],        # non-finite
        [[1.0, 2.0], [3.0, 4.0]],   # wrong shape
    ])
    def test_invalid_series_rejected(self, values):
        with pytest.raises(TraceError):
            Trace("x", np.array(values))


class TestTraceSet:
    def make(self):
        return TraceSet([
            Trace("x", np.array([1.0, 2.0, 3.0])),
            Trace("y", np.array([5.0, 5.0, 5.0])),
        ])

    def test_lookup(self):
        traces = self.make()
        assert traces["x"].initial == 1.0
        assert "y" in traces
        assert len(traces) == 2
        assert traces.duration == 2

    def test_unknown_item(self):
        with pytest.raises(KeyError):
            self.make()["z"]

    def test_values_at(self):
        traces = self.make()
        assert traces.values_at(1) == {"x": 2.0, "y": 5.0}
        assert traces.values_at(1, ["x"]) == {"x": 2.0}
        assert traces.initial_values() == {"x": 1.0, "y": 5.0}

    def test_duplicate_rejected(self):
        with pytest.raises(TraceError, match="duplicate"):
            TraceSet([Trace("x", np.array([1.0, 2.0])),
                      Trace("x", np.array([1.0, 2.0]))])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(TraceError, match="length"):
            TraceSet([Trace("x", np.array([1.0, 2.0])),
                      Trace("y", np.array([1.0, 2.0, 3.0]))])

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            TraceSet([])


class TestGenerators:
    @pytest.mark.parametrize("generator", [
        GBMTraceGenerator(),
        RandomWalkTraceGenerator(),
        MonotonicTraceGenerator(),
    ])
    def test_positive_and_right_length(self, generator):
        rng = np.random.default_rng(0)
        trace = generator.generate("x", 500, rng)
        assert len(trace) == 500
        assert np.all(trace.values > 0.0)

    def test_gbm_volatility_scales_movement(self):
        rng1, rng2 = np.random.default_rng(0), np.random.default_rng(0)
        quiet = GBMTraceGenerator(volatility=0.001).generate("x", 1000, rng1)
        noisy = GBMTraceGenerator(volatility=0.01).generate("x", 1000, rng2)
        def movement(t):
            return np.abs(np.diff(np.log(t.values))).mean()
        assert movement(noisy) > movement(quiet) * 3

    def test_monotonic_runs_are_long(self):
        rng = np.random.default_rng(1)
        trace = MonotonicTraceGenerator(flip_probability=0.01).generate("x", 2000, rng)
        signs = np.sign(np.diff(trace.values))
        flips = np.count_nonzero(np.diff(signs))
        assert flips < 100  # far fewer direction changes than ticks

    def test_invalid_parameters(self):
        with pytest.raises(TraceError):
            GBMTraceGenerator(volatility=-1.0)
        with pytest.raises(TraceError):
            RandomWalkTraceGenerator(step_scale=-1.0)
        with pytest.raises(TraceError):
            MonotonicTraceGenerator(flip_probability=2.0)
        with pytest.raises(TraceError):
            GBMTraceGenerator(initial_range=(0.0, 10.0))

    def test_length_too_short(self):
        with pytest.raises(TraceError):
            GBMTraceGenerator().generate("x", 1, np.random.default_rng(0))


class TestGenerateTraceSet:
    def test_reproducible(self):
        registry = ItemRegistry.numbered(5)
        a = generate_trace_set(registry, 100, seed=42)
        b = generate_trace_set(registry, 100, seed=42)
        for item in registry.names:
            assert np.array_equal(a[item].values, b[item].values)

    def test_seed_changes_traces(self):
        registry = ItemRegistry.numbered(2)
        a = generate_trace_set(registry, 100, seed=1)
        b = generate_trace_set(registry, 100, seed=2)
        assert not np.array_equal(a["x0"].values, b["x0"].values)

    def test_adding_items_preserves_existing(self):
        """Per-item substreams: item x0's trace must not depend on how many
        other items exist."""
        small = generate_trace_set(ItemRegistry.numbered(2), 100, seed=5)
        large = generate_trace_set(ItemRegistry.numbered(10), 100, seed=5)
        assert np.array_equal(small["x0"].values, large["x0"].values)

    def test_bad_generator_rejected(self):
        with pytest.raises(TraceError, match="generate"):
            generate_trace_set(ItemRegistry.numbered(1), 100, generator=object())
