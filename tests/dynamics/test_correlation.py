"""Tests for correlation estimation and the online rate tracker."""

import numpy as np
import pytest

from repro.exceptions import TraceError
from repro.dynamics import Trace, TraceSet
from repro.dynamics.correlation import (
    CorrelationMatrix,
    OnlineRateTracker,
    co_movement_factor,
    correlation_adjusted_rates,
    estimate_correlations,
)
from repro.queries import parse_query


def correlated_traces(rho: float, length: int = 600, seed: int = 0) -> TraceSet:
    """Two positive traces whose increments correlate with coefficient rho."""
    rng = np.random.default_rng(seed)
    shared = rng.standard_normal(length - 1)
    own_a = rng.standard_normal(length - 1)
    own_b = rng.standard_normal(length - 1)
    mix = np.sqrt(abs(rho))
    inc_a = mix * shared + np.sqrt(1 - abs(rho)) * own_a
    inc_b = np.sign(rho) * mix * shared + np.sqrt(1 - abs(rho)) * own_b
    base = 1000.0
    a = base + np.concatenate(([0.0], np.cumsum(inc_a)))
    b = base + np.concatenate(([0.0], np.cumsum(inc_b)))
    return TraceSet([Trace("a", a), Trace("b", b)])


class TestEstimateCorrelations:
    def test_positive_correlation_detected(self):
        corr = estimate_correlations(correlated_traces(0.9), interval=1)
        assert corr.between("a", "b") > 0.5

    def test_negative_correlation_detected(self):
        corr = estimate_correlations(correlated_traces(-0.9), interval=1)
        assert corr.between("a", "b") < -0.5

    def test_independent_near_zero(self):
        corr = estimate_correlations(correlated_traces(0.0), interval=1)
        assert abs(corr.between("a", "b")) < 0.3

    def test_diagonal_is_one(self):
        corr = estimate_correlations(correlated_traces(0.5), interval=1)
        assert corr.between("a", "a") == pytest.approx(1.0)

    def test_symmetry(self):
        corr = estimate_correlations(correlated_traces(0.7), interval=1)
        assert corr.between("a", "b") == pytest.approx(corr.between("b", "a"))

    def test_interval_validation(self):
        with pytest.raises(TraceError):
            estimate_correlations(correlated_traces(0.5), interval=0)

    def test_too_short_for_interval(self):
        with pytest.raises(TraceError, match="too short"):
            estimate_correlations(correlated_traces(0.5, length=30), interval=20)

    def test_unknown_item_lookup(self):
        corr = estimate_correlations(correlated_traces(0.5), interval=1)
        with pytest.raises(KeyError):
            corr.between("a", "zzz")

    def test_flat_trace_yields_zero_not_nan(self):
        traces = TraceSet([
            Trace("flat", np.full(100, 7.0)),
            Trace("moving", 7.0 + 0.1 * np.arange(100)),
        ])
        corr = estimate_correlations(traces, interval=1)
        assert corr.between("flat", "moving") == 0.0


class TestCoMovementFactor:
    def make_matrix(self, rho):
        return CorrelationMatrix(items=("a", "b"),
                                 matrix=np.array([[1.0, rho], [rho, 1.0]]))

    def test_independent_is_one(self):
        assert co_movement_factor("a", ["b"], self.make_matrix(0.0)) == 1.0

    def test_positive_raises_factor(self):
        assert co_movement_factor("a", ["b"], self.make_matrix(0.8)) == pytest.approx(1.8)

    def test_negative_lowers_factor(self):
        assert co_movement_factor("a", ["b"], self.make_matrix(-0.4)) == pytest.approx(0.6)

    def test_clamped(self):
        assert co_movement_factor("a", ["b"], self.make_matrix(-0.99)) == 0.5

    def test_no_partners(self):
        assert co_movement_factor("a", [], self.make_matrix(0.9)) == 1.0
        assert co_movement_factor("a", ["a"], self.make_matrix(0.9)) == 1.0


class TestCorrelationAdjustedRates:
    def test_partners_from_query_terms(self):
        corr = estimate_correlations(correlated_traces(0.9), interval=1)
        query = parse_query("a*b : 1", name="corr_q")
        adjusted = correlation_adjusted_rates({"a": 2.0, "b": 3.0}, corr, [query])
        assert adjusted["a"] > 2.0  # co-moving partner raises the weight
        assert adjusted["b"] > 3.0

    def test_items_without_partners_untouched(self):
        corr = estimate_correlations(correlated_traces(0.9), interval=1)
        query = parse_query("a^2 : 1", name="solo")  # a has no partners
        adjusted = correlation_adjusted_rates({"a": 2.0, "b": 3.0}, corr, [query])
        assert adjusted["a"] == 2.0
        assert adjusted["b"] == 3.0


class TestOnlineRateTracker:
    def test_ewma_converges_to_true_rate(self):
        tracker = OnlineRateTracker({"x": 0.0}, alpha=0.3)
        for t in range(1, 60):
            tracker.observe("x", 100.0 + 0.5 * t, float(t))
        assert tracker.rate_of("x") == pytest.approx(0.5, rel=0.05)

    def test_first_observation_records_baseline_only(self):
        tracker = OnlineRateTracker({"x": 1.0}, alpha=0.5)
        tracker.observe("x", 100.0, 1.0)
        assert tracker.rate_of("x") == 1.0  # unchanged until a delta exists

    def test_zero_elapsed_ignored(self):
        tracker = OnlineRateTracker({"x": 1.0}, alpha=0.5)
        tracker.observe("x", 100.0, 1.0)
        tracker.observe("x", 105.0, 1.0)
        assert tracker.rate_of("x") == 1.0

    def test_alpha_validation(self):
        with pytest.raises(TraceError):
            OnlineRateTracker({}, alpha=0.0)

    def test_unknown_item_rate(self):
        assert OnlineRateTracker({}).rate_of("nope") == 0.0

    def test_shared_dict_updates_cost_model(self):
        """The wiring contract used by the harness: the tracker mutates the
        very dict the cost model reads."""
        from repro.filters import CostModel

        model = CostModel(rates={"x": 1.0})
        tracker = OnlineRateTracker(model.rates, alpha=1.0)
        tracker.rates = model.rates
        tracker.observe("x", 100.0, 1.0)
        tracker.observe("x", 104.0, 2.0)
        assert model.rate_of("x") == pytest.approx(4.0)


class TestHarnessIntegration:
    def test_adaptive_and_correlation_options_run(self):
        from repro.simulation import SimulationConfig, run_simulation
        from repro.workloads import scaled_scenario

        scenario = scaled_scenario(query_count=3, item_count=16,
                                   trace_length=121, source_count=3, seed=41)
        config = SimulationConfig(
            queries=scenario.queries, traces=scenario.traces,
            algorithm="dual_dab", recompute_cost=2.0, source_count=3,
            seed=41, fidelity_interval=4,
            adaptive_rate_alpha=0.2, correlation_aware=True, cache_grid=None,
        )
        metrics = run_simulation(config).metrics
        assert metrics.refreshes > 0
        assert metrics.fidelity_loss_percent <= 5.0
