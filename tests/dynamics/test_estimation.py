"""Tests for rate-of-change estimation (paper Section V methodology)."""

import numpy as np
import pytest

from repro.exceptions import TraceError
from repro.dynamics import (
    EwmaRateEstimator,
    SampledRateEstimator,
    Trace,
    TraceSet,
    UnitRateEstimator,
    estimate_rates,
)


def linear_trace(slope: float, length: int = 301, start: float = 100.0) -> Trace:
    return Trace("lin", start + slope * np.arange(length))


class TestSampledRateEstimator:
    def test_linear_trace_recovers_slope(self):
        """For v(t) = v0 + s·t the sampled estimator must return exactly s
        regardless of the sampling interval."""
        trace = linear_trace(slope=0.05)
        for interval in (1, 10, 60):
            estimate = SampledRateEstimator(interval).estimate(trace)
            assert estimate == pytest.approx(0.05, rel=1e-9)

    def test_flat_trace_is_zero(self):
        trace = Trace("flat", np.full(200, 42.0))
        assert SampledRateEstimator().estimate(trace) == 0.0

    def test_short_trace_falls_back_to_endpoints(self):
        trace = Trace("short", np.array([10.0, 10.5, 11.0]))
        estimate = SampledRateEstimator(60).estimate(trace)
        assert estimate == pytest.approx(0.5)

    def test_interval_validation(self):
        with pytest.raises(TraceError):
            SampledRateEstimator(0)

    def test_sampling_smooths_oscillation(self):
        """A fast oscillation looks slower at coarse sampling — the reason
        the paper samples at one minute rather than every tick."""
        values = 100.0 + np.tile([0.0, 1.0], 150)
        trace = Trace("osc", values)
        fine = SampledRateEstimator(1).estimate(trace)
        coarse = SampledRateEstimator(60).estimate(trace)
        assert coarse < fine


class TestEwmaRateEstimator:
    def test_linear_trace(self):
        assert EwmaRateEstimator().estimate(linear_trace(0.05)) == pytest.approx(0.05)

    def test_recency_weighting(self):
        """Quiet history then a burst: EWMA must sit above the whole-trace
        mean estimator's view of the same data."""
        values = np.concatenate([np.full(200, 100.0),
                                 100.0 + np.cumsum(np.full(50, 0.5))])
        trace = Trace("burst", values)
        ewma = EwmaRateEstimator(alpha=0.2).estimate(trace)
        mean = SampledRateEstimator(1).estimate(trace)
        assert ewma > mean

    def test_alpha_validation(self):
        with pytest.raises(TraceError):
            EwmaRateEstimator(alpha=0.0)
        with pytest.raises(TraceError):
            EwmaRateEstimator(alpha=1.5)


class TestUnitRateEstimator:
    def test_constant(self):
        assert UnitRateEstimator().estimate(linear_trace(5.0)) == 1.0
        assert UnitRateEstimator(3.0).estimate(linear_trace(5.0)) == 3.0

    def test_validation(self):
        with pytest.raises(TraceError):
            UnitRateEstimator(0.0)


class TestEstimateRates:
    def make_traces(self):
        return TraceSet([
            Trace("a", 10.0 + 0.1 * np.arange(200)),
            Trace("b", 10.0 + 0.4 * np.arange(200)),
        ])

    def test_default_estimator(self):
        rates = estimate_rates(self.make_traces())
        assert rates["a"] == pytest.approx(0.1, rel=1e-9)
        assert rates["b"] == pytest.approx(0.4, rel=1e-9)

    def test_item_subset(self):
        rates = estimate_rates(self.make_traces(), items=["a"])
        assert set(rates) == {"a"}

    def test_custom_estimator(self):
        rates = estimate_rates(self.make_traces(), estimator=UnitRateEstimator())
        assert rates == {"a": 1.0, "b": 1.0}
