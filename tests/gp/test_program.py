"""Unit tests for :mod:`repro.gp.program`."""

import pytest

from repro.exceptions import InfeasibleProblemError, NotPosynomialError
from repro.gp import Constraint, GeometricProgram, Monomial

x = Monomial.variable("x")
y = Monomial.variable("y")


class TestConstraint:
    def test_leq_normalisation(self):
        c = Constraint.leq(x + y, 2 * x)
        normalised = c.normalised()
        assert normalised.evaluate({"x": 1.0, "y": 1.0}) == pytest.approx(1.0)

    def test_posynomial_rhs_rejected(self):
        with pytest.raises(NotPosynomialError):
            Constraint.leq(x, x + y)

    def test_violation_sign(self):
        c = Constraint.leq(x, 2.0)
        assert c.violation({"x": 1.0}) < 0
        assert c.violation({"x": 3.0}) > 0
        assert c.is_satisfied({"x": 2.0})

    def test_scalar_rhs(self):
        c = Constraint.leq(x + y, 4.0)
        assert c.is_satisfied({"x": 2.0, "y": 2.0})
        assert not c.is_satisfied({"x": 3.0, "y": 2.0})


class TestGeometricProgram:
    def test_variables_collected_sorted(self):
        gp = GeometricProgram(objective=1 / x)
        gp.add_constraint(y, 2.0)
        assert gp.variables == ("x", "y")

    def test_add_constraint_returns_constraint(self):
        gp = GeometricProgram(objective=1 / x)
        c = gp.add_constraint(x, 2.0, name="cap")
        assert c.name == "cap"
        assert gp.constraints == (c,)

    def test_check_feasible(self):
        gp = GeometricProgram(objective=1 / x)
        gp.add_constraint(x, 2.0)
        assert gp.check_feasible({"x": 1.5})
        assert not gp.check_feasible({"x": 2.5})

    def test_worst_violation_names_constraint(self):
        gp = GeometricProgram(objective=1 / x)
        gp.add_constraint(x, 2.0, name="cap")
        gp.add_constraint(x * y, 1.0, name="product")
        name, violation = gp.worst_violation({"x": 3.0, "y": 3.0})
        assert name == "product"
        assert violation == pytest.approx(8.0)

    def test_compile_drops_trivial_constant_constraints(self):
        gp = GeometricProgram(objective=1 / x)
        gp.add_constraint(Monomial.constant(0.5), 1.0)
        compiled = gp.compile()
        assert compiled.constraints == []

    def test_compile_rejects_violated_constant_constraint(self):
        gp = GeometricProgram(objective=1 / x)
        gp.add_constraint(Monomial.constant(2.0), 1.0, name="impossible")
        with pytest.raises(InfeasibleProblemError, match="impossible"):
            gp.compile()

    def test_compile_requires_variables(self):
        gp = GeometricProgram(objective=2.0)
        with pytest.raises(NotPosynomialError):
            gp.compile()

    def test_repr(self):
        gp = GeometricProgram(objective=1 / x + 1 / y)
        gp.add_constraint(x + y, 2.0)
        assert "2 variables" in repr(gp)
