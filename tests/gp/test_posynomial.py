"""Unit tests for :mod:`repro.gp.posynomial`."""

import numpy as np
import pytest

from repro.exceptions import NotPosynomialError
from repro.gp.monomial import Monomial
from repro.gp.posynomial import Posynomial, as_posynomial, substitute

x = Monomial.variable("x")
y = Monomial.variable("y")


class TestConstruction:
    def test_like_terms_combined(self):
        p = Posynomial([x, x, 2 * y])
        assert len(p) == 2
        assert p.evaluate({"x": 1.0, "y": 1.0}) == pytest.approx(4.0)

    def test_empty_rejected(self):
        with pytest.raises(NotPosynomialError):
            Posynomial([])

    def test_non_monomial_rejected(self):
        with pytest.raises(TypeError):
            Posynomial([1.0])

    def test_as_posynomial_coercions(self):
        assert as_posynomial(2.0).is_constant
        assert as_posynomial(x).is_monomial
        p = x + y
        assert as_posynomial(p) is p

    def test_as_posynomial_rejects_junk(self):
        with pytest.raises(TypeError):
            as_posynomial("x + y")


class TestAccessors:
    def test_variables_sorted(self):
        p = y + x + 1
        assert p.variables == ("x", "y")

    def test_constant_part(self):
        assert (x + 3 + 2).constant_part == pytest.approx(5.0)
        assert (x + y).constant_part == 0.0

    def test_degree(self):
        p = x * y + x
        assert p.degree == pytest.approx(2.0)

    def test_as_monomial_roundtrip(self):
        p = Posynomial([2 * x])
        assert p.as_monomial() == 2 * x

    def test_adding_nonpositive_scalar_rejected(self):
        with pytest.raises(TypeError):
            Posynomial([2 * x]) + 0.0

    def test_as_monomial_rejects_sums(self):
        with pytest.raises(NotPosynomialError):
            (x + y).as_monomial()


class TestAlgebra:
    def test_addition(self):
        p = (x + y) + 2
        assert p.evaluate({"x": 1.0, "y": 1.0}) == pytest.approx(4.0)

    def test_multiplication_distributes(self):
        p = (x + y) * (x + y)
        # x^2 + 2xy + y^2
        assert len(p) == 3
        assert p.evaluate({"x": 1.0, "y": 2.0}) == pytest.approx(9.0)

    def test_scalar_multiplication(self):
        p = 3 * (x + y)
        assert p.evaluate({"x": 1.0, "y": 1.0}) == pytest.approx(6.0)

    def test_division_by_monomial(self):
        p = (x * y + y) / y
        assert p.evaluate({"x": 5.0, "y": 7.0}) == pytest.approx(6.0)

    def test_division_by_posynomial_rejected(self):
        with pytest.raises(NotPosynomialError):
            (x + y) / (x + y)

    def test_integer_power(self):
        p = (x + 1) ** 3
        assert p.evaluate({"x": 2.0}) == pytest.approx(27.0)

    def test_non_integer_power_of_sum_rejected(self):
        with pytest.raises(NotPosynomialError):
            (x + y) ** 0.5

    def test_fractional_power_of_monomial_posynomial(self):
        p = Posynomial([4 * x ** 2]) ** 0.5
        assert p.evaluate({"x": 3.0}) == pytest.approx(6.0)


class TestExponentMatrix:
    def test_shapes_and_values(self):
        p = 2 * x * y + 3 * x
        A, log_c = p.exponent_matrix(["x", "y"])
        assert A.shape == (2, 2)
        assert log_c.shape == (2,)
        # evaluate through the log-space form
        point = np.log([2.0, 5.0])
        direct = p.evaluate({"x": 2.0, "y": 5.0})
        via_matrix = np.exp(A @ point + log_c).sum()
        assert via_matrix == pytest.approx(direct)

    def test_unknown_variable_raises(self):
        with pytest.raises(KeyError):
            (x + y).exponent_matrix(["x"])


class TestSubstitute:
    def test_partial_evaluation(self):
        p = 2 * x * y + y
        q = substitute(p, {"x": 3.0})
        assert q.variables == ("y",)
        assert q.evaluate({"y": 2.0}) == pytest.approx(p.evaluate({"x": 3.0, "y": 2.0}))

    def test_full_evaluation_leaves_constant(self):
        p = x + y
        q = substitute(p, {"x": 1.0, "y": 2.0})
        assert q.is_constant
        assert q.constant_part == pytest.approx(3.0)

    def test_nonpositive_value_rejected(self):
        with pytest.raises(NotPosynomialError):
            substitute(x + y, {"x": -1.0})


class TestProtocol:
    def test_equality_structural(self):
        assert x + y == y + x
        assert x + y != x + 2 * y

    def test_equality_with_monomial(self):
        assert Posynomial([2 * x]) == 2 * x

    def test_hash_consistency(self):
        assert hash(x + y) == hash(y + x)

    def test_iteration(self):
        terms = list(x + y)
        assert len(terms) == 2
