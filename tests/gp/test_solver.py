"""Solver tests against analytically solvable geometric programs."""

import math

import pytest

from repro.exceptions import InfeasibleProblemError
from repro.gp import GeometricProgram, Monomial, solve

x = Monomial.variable("x")
y = Monomial.variable("y")
z = Monomial.variable("z")


class TestKnownOptima:
    def test_symmetric_budget(self):
        # min 1/x + 1/y s.t. x + y <= 2  ->  x = y = 1 (AM-HM equality).
        gp = GeometricProgram(objective=1 / x + 1 / y)
        gp.add_constraint(x + y, 2.0)
        sol = gp.solve()
        assert sol.values["x"] == pytest.approx(1.0, abs=1e-5)
        assert sol.values["y"] == pytest.approx(1.0, abs=1e-5)
        assert sol.objective == pytest.approx(2.0, abs=1e-5)

    def test_asymmetric_budget(self):
        # min 4/x + 1/y s.t. x + y <= 3: Lagrange gives x = 2y -> x=2, y=1.
        gp = GeometricProgram(objective=4 / x + 1 / y)
        gp.add_constraint(x + y, 3.0)
        sol = gp.solve()
        assert sol.values["x"] == pytest.approx(2.0, abs=1e-4)
        assert sol.values["y"] == pytest.approx(1.0, abs=1e-4)

    def test_monomial_objective_with_product_constraint(self):
        # min x s.t. 1/(x*y) <= 1, y <= 2  ->  x = 0.5.
        gp = GeometricProgram(objective=x)
        gp.add_constraint(1 / (x * y), 1.0)
        gp.add_constraint(y, 2.0)
        sol = gp.solve()
        assert sol.values["x"] == pytest.approx(0.5, abs=1e-5)

    def test_three_variable_volume(self):
        # min surface 2(xy + yz + xz) s.t. volume xyz >= 1 -> cube x=y=z=1.
        gp = GeometricProgram(objective=2 * x * y + 2 * y * z + 2 * x * z)
        gp.add_constraint(1 / (x * y * z), 1.0)
        sol = gp.solve()
        for name in ("x", "y", "z"):
            assert sol.values[name] == pytest.approx(1.0, abs=1e-4)
        assert sol.objective == pytest.approx(6.0, abs=1e-3)

    def test_equality_via_two_inequalities(self):
        # x <= 2 and 2/x <= 1 pin x = 2.
        gp = GeometricProgram(objective=x + 1 / x)
        gp.add_constraint(x, 2.0)
        gp.add_constraint(2 / x, 1.0)
        sol = gp.solve()
        assert sol.values["x"] == pytest.approx(2.0, abs=1e-5)


class TestRobustness:
    def test_warm_start_agrees_with_cold(self):
        gp = GeometricProgram(objective=1 / x + 1 / y)
        gp.add_constraint(2 * x + y, 4.0)
        cold = gp.solve()
        warm = gp.solve(initial=cold.values)
        assert warm.objective == pytest.approx(cold.objective, rel=1e-6)

    def test_bad_warm_start_ignored_gracefully(self):
        gp = GeometricProgram(objective=1 / x)
        gp.add_constraint(x, 2.0)
        sol = gp.solve(initial={"x": -5.0})  # non-positive -> ignored
        assert sol.values["x"] == pytest.approx(2.0, abs=1e-5)

    def test_extreme_scales(self):
        # Optimal x = 1e6: far from the t=1 default start.
        gp = GeometricProgram(objective=1 / x)
        gp.add_constraint(x, 1e6)
        sol = gp.solve(initial={"x": 1e6})
        assert sol.values["x"] == pytest.approx(1e6, rel=1e-4)

    def test_solution_getitem(self):
        gp = GeometricProgram(objective=1 / x)
        gp.add_constraint(x, 2.0)
        sol = gp.solve()
        assert sol["x"] == sol.values["x"]

    def test_report_is_optimal_and_feasible(self):
        gp = GeometricProgram(objective=1 / x + 1 / y)
        gp.add_constraint(x + y, 2.0)
        report = gp.solve().report
        assert report.is_optimal
        assert report.max_violation <= 1e-6
        assert report.starts_tried >= 1
        assert "status=optimal" in report.summary()

    def test_active_constraint_detection(self):
        gp = GeometricProgram(objective=1 / x + 1 / y)
        gp.add_constraint(x + y, 2.0, name="budget")
        gp.add_constraint(x, 100.0, name="slack_cap")
        report = gp.solve().report
        active = report.active_constraints()
        assert "budget" in active
        assert "slack_cap" not in active


class TestInfeasibility:
    def test_contradictory_monomials(self):
        # x <= 1 and 3/x <= 1 (x >= 3) cannot both hold.
        gp = GeometricProgram(objective=x)
        gp.add_constraint(x, 1.0, name="upper")
        gp.add_constraint(3 / x, 1.0, name="lower")
        with pytest.raises(InfeasibleProblemError) as excinfo:
            gp.solve()
        assert excinfo.value.report is not None
        assert excinfo.value.report.status == "infeasible"

    def test_infeasible_posynomial(self):
        # x + 1/x >= 2 always, so x + 1/x <= 1 is infeasible.
        gp = GeometricProgram(objective=x)
        gp.add_constraint(x + 1 / x, 1.0)
        with pytest.raises(InfeasibleProblemError):
            gp.solve()

    def test_unconstrained_program_solves(self):
        # min x + 1/x -> x = 1 without constraints.
        gp = GeometricProgram(objective=x + 1 / x)
        sol = gp.solve()
        assert sol.values["x"] == pytest.approx(1.0, abs=1e-5)
        assert sol.objective == pytest.approx(2.0, abs=1e-6)
