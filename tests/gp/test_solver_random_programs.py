"""Randomised GP verification: the solver must match (or beat) a dense
grid search on random two-variable programs."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import InfeasibleProblemError
from repro.gp import GeometricProgram, Monomial, Posynomial

coefficients = st.floats(min_value=0.1, max_value=5.0, allow_nan=False)
exponents = st.sampled_from([-2.0, -1.0, -0.5, 0.5, 1.0, 2.0])


@st.composite
def random_programs(draw):
    """Objective: sum of 2-3 monomials over x, y with mixed exponents.
    Constraint: a posynomial budget that keeps the feasible set compact
    (every variable appears with a positive exponent somewhere)."""
    objective_terms = []
    for _ in range(draw(st.integers(min_value=2, max_value=3))):
        objective_terms.append(Monomial(draw(coefficients), {
            "x": draw(exponents), "y": draw(exponents)}))
    budget_terms = [
        Monomial(draw(coefficients), {"x": 1.0}),
        Monomial(draw(coefficients), {"y": 1.0}),
    ]
    if draw(st.booleans()):
        budget_terms.append(Monomial(draw(coefficients), {"x": 1.0, "y": 1.0}))
    budget = draw(st.floats(min_value=2.0, max_value=30.0))
    gp = GeometricProgram(objective=Posynomial(objective_terms))
    gp.add_constraint(Posynomial(budget_terms), budget, name="budget")
    # keep variables bounded away from 0 so the grid is meaningful
    gp.add_constraint(0.05 / Monomial.variable("x"), 1.0, name="x_floor")
    gp.add_constraint(0.05 / Monomial.variable("y"), 1.0, name="y_floor")
    return gp


class TestAgainstGridSearch:
    @given(random_programs())
    @settings(max_examples=25, deadline=None)
    def test_solver_not_beaten_by_grid(self, gp):
        try:
            solution = gp.solve()
        except InfeasibleProblemError:
            # floors + budget can genuinely clash; nothing to compare then
            return
        assert solution.report.max_violation <= 1e-6

        grid = np.geomspace(0.05, 50.0, 60)
        best_grid = np.inf
        objective = gp.objective
        for x, y in itertools.product(grid, grid):
            point = {"x": float(x), "y": float(y)}
            if gp.check_feasible(point, tol=1e-9):
                best_grid = min(best_grid, objective.evaluate(point))
        if np.isfinite(best_grid):
            assert solution.objective <= best_grid * (1 + 1e-3), \
                "a grid point beat the 'optimal' solution"

    @given(random_programs())
    @settings(max_examples=15, deadline=None)
    def test_resolve_from_solution_is_stable(self, gp):
        try:
            first = gp.solve()
        except InfeasibleProblemError:
            return
        second = gp.solve(initial=first.values)
        assert second.objective == pytest.approx(first.objective, rel=1e-4)
