"""Unit tests for solve diagnostics."""

from repro.gp.diagnostics import SolveReport


class TestSolveReport:
    def make(self, **overrides):
        defaults = dict(
            status="optimal", method="SLSQP", iterations=12, starts_tried=1,
            max_violation=1e-9,
            residuals={"qab": -2e-7, "order[x]": -0.4, "window[x]": -0.9},
            message="Optimization terminated successfully",
        )
        defaults.update(overrides)
        return SolveReport(**defaults)

    def test_is_optimal(self):
        assert self.make().is_optimal
        assert not self.make(status="failed").is_optimal

    def test_active_constraints_default_tolerance(self):
        report = self.make()
        assert report.active_constraints() == ["qab"]

    def test_active_constraints_custom_tolerance(self):
        report = self.make()
        assert set(report.active_constraints(tol=0.5)) == {"qab", "order[x]"}

    def test_summary_contains_key_fields(self):
        text = self.make().summary()
        assert "status=optimal" in text
        assert "method=SLSQP" in text
        assert "iterations=12" in text
        assert "Optimization terminated successfully" in text

    def test_summary_without_message(self):
        text = self.make(message="").summary()
        assert "message:" not in text
