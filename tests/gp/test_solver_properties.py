"""Property-based tests for the GP layer (hypothesis).

Invariants:
* posynomial algebra is consistent with numeric evaluation,
* the solver returns feasible points whose objective is no worse than any
  random feasible point (convexity ⇒ global optimality),
* substitution commutes with evaluation.
"""

import math

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.gp import GeometricProgram, Monomial, Posynomial
from repro.gp.posynomial import substitute

coefficients = st.floats(min_value=0.01, max_value=100.0,
                         allow_nan=False, allow_infinity=False)
exponents = st.floats(min_value=-3.0, max_value=3.0,
                      allow_nan=False, allow_infinity=False)
values = st.floats(min_value=0.1, max_value=10.0,
                   allow_nan=False, allow_infinity=False)
names = st.sampled_from(["x", "y", "z"])


@st.composite
def monomials(draw):
    coefficient = draw(coefficients)
    variable_count = draw(st.integers(min_value=0, max_value=3))
    exps = {draw(names): draw(exponents) for _ in range(variable_count)}
    return Monomial(coefficient, exps)


@st.composite
def posynomials(draw):
    terms = draw(st.lists(monomials(), min_size=1, max_size=5))
    return Posynomial(terms)


@st.composite
def points(draw):
    return {name: draw(values) for name in ("x", "y", "z")}


class TestAlgebraProperties:
    @given(posynomials(), posynomials(), points())
    @settings(max_examples=60, deadline=None)
    def test_addition_matches_evaluation(self, p, q, point):
        assert (p + q).evaluate(point) == pytest.approx(
            p.evaluate(point) + q.evaluate(point), rel=1e-9)

    @given(posynomials(), posynomials(), points())
    @settings(max_examples=60, deadline=None)
    def test_multiplication_matches_evaluation(self, p, q, point):
        assert (p * q).evaluate(point) == pytest.approx(
            p.evaluate(point) * q.evaluate(point), rel=1e-9)

    @given(posynomials(), points())
    @settings(max_examples=60, deadline=None)
    def test_posynomials_are_positive(self, p, point):
        assert p.evaluate(point) > 0.0

    @given(monomials(), points())
    @settings(max_examples=60, deadline=None)
    def test_monomial_inverse(self, m, point):
        product = m * m ** -1
        assert product.evaluate(point) == pytest.approx(1.0, rel=1e-9)

    @given(posynomials(), points())
    @settings(max_examples=60, deadline=None)
    def test_substitute_commutes_with_evaluation(self, p, point):
        partial = {"x": point["x"]}
        rest = {k: v for k, v in point.items() if k != "x"}
        substituted = substitute(p, partial)
        assert substituted.evaluate(rest) == pytest.approx(
            p.evaluate(point), rel=1e-9)

    @given(posynomials(), points())
    @settings(max_examples=40, deadline=None)
    def test_exponent_matrix_roundtrip(self, p, point):
        import numpy as np

        order = ["x", "y", "z"]
        A, log_c = p.exponent_matrix(order)
        log_point = np.log([point[n] for n in order])
        reconstructed = float(np.exp(A @ log_point + log_c).sum())
        assert reconstructed == pytest.approx(p.evaluate(point), rel=1e-9)


class TestSolverProperties:
    @given(
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=0.5, max_value=20.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_weighted_budget_matches_lagrange(self, wx, wy, budget):
        """min wx/x + wy/y s.t. x + y <= B has the closed form
        x = B·sqrt(wx)/(sqrt(wx)+sqrt(wy))."""
        x, y = Monomial.variable("x"), Monomial.variable("y")
        gp = GeometricProgram(objective=wx / x + wy / y)
        gp.add_constraint(x + y, budget)
        sol = gp.solve()
        sx, sy = math.sqrt(wx), math.sqrt(wy)
        assert sol.values["x"] == pytest.approx(budget * sx / (sx + sy), rel=1e-3)
        assert sol.values["y"] == pytest.approx(budget * sy / (sx + sy), rel=1e-3)

    @given(
        st.floats(min_value=0.2, max_value=5.0),
        st.floats(min_value=0.2, max_value=5.0),
        st.floats(min_value=1.0, max_value=4.0),
        st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=25, deadline=None)
    def test_solution_dominates_random_feasible_points(self, vx, vy, budget, split):
        """The solver's objective must be <= that of any feasible point we
        construct by splitting the budget arbitrarily."""
        x, y = Monomial.variable("x"), Monomial.variable("y")
        gp = GeometricProgram(objective=1 / x + 1 / y)
        constraint_lhs = vx * x + vy * y
        gp.add_constraint(constraint_lhs, budget)
        sol = gp.solve()
        # A manual feasible point: give `split` of the budget to x.
        manual = {"x": split * budget / vx, "y": (1 - split) * budget / vy}
        assert constraint_lhs.evaluate(manual) == pytest.approx(budget, rel=1e-9)
        manual_objective = 1 / manual["x"] + 1 / manual["y"]
        assert sol.objective <= manual_objective * (1 + 1e-6)
