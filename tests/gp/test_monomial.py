"""Unit tests for :mod:`repro.gp.monomial`."""

import math

import pytest

from repro.exceptions import NotPosynomialError
from repro.gp.monomial import Monomial, variables
from repro.gp.posynomial import Posynomial


class TestConstruction:
    def test_variable_factory(self):
        x = Monomial.variable("x")
        assert x.coefficient == 1.0
        assert x.exponents == {"x": 1.0}

    def test_constant_factory(self):
        c = Monomial.constant(3.5)
        assert c.is_constant
        assert c.evaluate({}) == 3.5

    def test_zero_exponents_dropped(self):
        m = Monomial(2.0, {"x": 0.0, "y": 1.0})
        assert m.exponents == {"y": 1.0}
        assert m.variables == ("y",)

    def test_negative_coefficient_rejected(self):
        with pytest.raises(NotPosynomialError):
            Monomial(-1.0, {"x": 1.0})

    def test_zero_coefficient_rejected(self):
        with pytest.raises(NotPosynomialError):
            Monomial(0.0, {"x": 1.0})

    def test_nan_coefficient_rejected(self):
        with pytest.raises(ValueError):
            Monomial(float("nan"), {"x": 1.0})

    def test_infinite_exponent_rejected(self):
        with pytest.raises(ValueError):
            Monomial(1.0, {"x": float("inf")})

    def test_bad_variable_name_rejected(self):
        with pytest.raises(TypeError):
            Monomial(1.0, {"": 1.0})

    def test_variables_helper(self):
        x, y = variables(["x", "y"])
        assert x == Monomial.variable("x")
        assert y == Monomial.variable("y")


class TestEvaluation:
    def test_simple(self):
        m = Monomial(2.0, {"x": 2.0, "y": -1.0})
        assert m.evaluate({"x": 3.0, "y": 2.0}) == pytest.approx(9.0)

    def test_missing_variable_raises(self):
        with pytest.raises(KeyError, match="x"):
            Monomial.variable("x").evaluate({"y": 1.0})

    def test_nonpositive_value_raises(self):
        with pytest.raises(ValueError, match="positive"):
            Monomial.variable("x").evaluate({"x": 0.0})

    def test_fractional_exponent(self):
        m = Monomial(1.0, {"x": 0.5})
        assert m.evaluate({"x": 4.0}) == pytest.approx(2.0)


class TestAlgebra:
    def test_multiplication_merges_exponents(self):
        x, y = Monomial.variable("x"), Monomial.variable("y")
        product = (2 * x) * (3 * x * y)
        assert product.coefficient == pytest.approx(6.0)
        assert product.exponents == {"x": 2.0, "y": 1.0}

    def test_multiplication_cancels_exponents(self):
        x = Monomial.variable("x")
        assert (x * x ** -1).is_constant

    def test_scalar_multiplication_commutes(self):
        x = Monomial.variable("x")
        assert 2 * x == x * 2

    def test_division_by_monomial(self):
        x, y = Monomial.variable("x"), Monomial.variable("y")
        q = (6 * x * y) / (2 * y)
        assert q.coefficient == pytest.approx(3.0)
        assert q.exponents == {"x": 1.0}

    def test_division_by_scalar(self):
        x = Monomial.variable("x")
        assert (x / 4).coefficient == pytest.approx(0.25)

    def test_rtruediv_builds_reciprocal(self):
        x = Monomial.variable("x")
        inv = 1 / x
        assert inv.exponents == {"x": -1.0}

    def test_division_by_nonpositive_scalar_rejected(self):
        with pytest.raises(NotPosynomialError):
            Monomial.variable("x") / 0.0

    def test_power(self):
        m = Monomial(2.0, {"x": 1.0}) ** 3
        assert m.coefficient == pytest.approx(8.0)
        assert m.exponents == {"x": 3.0}

    def test_fractional_power(self):
        m = Monomial(4.0, {"x": 2.0}) ** 0.5
        assert m.coefficient == pytest.approx(2.0)
        assert m.exponents == {"x": 1.0}

    def test_addition_promotes_to_posynomial(self):
        x, y = Monomial.variable("x"), Monomial.variable("y")
        s = x + y
        assert isinstance(s, Posynomial)
        assert len(s) == 2

    def test_addition_with_scalar(self):
        x = Monomial.variable("x")
        s = x + 1
        assert isinstance(s, Posynomial)
        assert s.constant_part == pytest.approx(1.0)


class TestProtocol:
    def test_equality_ignores_construction_order(self):
        a = Monomial(2.0, {"x": 1.0, "y": 2.0})
        b = Monomial(2.0, {"y": 2.0, "x": 1.0})
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_on_coefficient(self):
        assert Monomial(2.0, {"x": 1.0}) != Monomial(3.0, {"x": 1.0})

    def test_degree(self):
        assert Monomial(1.0, {"x": 2.0, "y": 1.5}).degree == pytest.approx(3.5)

    def test_exponent_of(self):
        m = Monomial(1.0, {"x": 2.0})
        assert m.exponent_of("x") == 2.0
        assert m.exponent_of("z") == 0.0

    def test_repr_mentions_variables(self):
        assert "x^2" in repr(Monomial(1.0, {"x": 2.0}))
