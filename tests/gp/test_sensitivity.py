"""Tests for GP sensitivity analysis, validated against finite differences."""

import math

import pytest

from repro.exceptions import GPError
from repro.gp import GeometricProgram, Monomial
from repro.gp.sensitivity import analyze, qab_relaxation_value

x = Monomial.variable("x")
y = Monomial.variable("y")


def budget_program(budget: float) -> GeometricProgram:
    gp = GeometricProgram(objective=1 / x + 1 / y)
    gp.add_constraint(x + y, budget, name="budget")
    return gp


class TestAnalyticCase:
    """min 1/x + 1/y s.t. x + y <= B has optimum 4/B, so
    d log(obj)/d log(B) = -1 exactly: the multiplier must be 1."""

    def test_multiplier_is_one(self):
        gp = budget_program(2.0)
        report = analyze(gp, gp.solve())
        assert report.multipliers["budget"] == pytest.approx(1.0, abs=1e-3)
        assert report.elasticities["budget"] == pytest.approx(-1.0, abs=1e-3)
        assert report.stationarity_residual < 1e-4
        assert report.active == ["budget"]

    def test_matches_finite_difference(self):
        base = budget_program(2.0).solve().objective
        bumped = budget_program(2.0 * 1.01).solve().objective
        fd_elasticity = (math.log(bumped) - math.log(base)) / math.log(1.01)
        report = analyze(budget_program(2.0), budget_program(2.0).solve())
        assert report.elasticities["budget"] == pytest.approx(fd_elasticity, abs=1e-2)

    def test_predicted_relative_change(self):
        gp = budget_program(2.0)
        report = analyze(gp, gp.solve())
        # +10% budget -> objective shrinks by ~ 1/1.1 - 1 = -9.09%
        predicted = report.predicted_relative_change("budget", 1.1)
        actual = budget_program(2.2).solve().objective / gp.solve().objective - 1.0
        assert predicted == pytest.approx(actual, abs=5e-3)

    def test_bad_limit_factor(self):
        gp = budget_program(2.0)
        report = analyze(gp, gp.solve())
        with pytest.raises(GPError):
            report.predicted_relative_change("budget", 0.0)


class TestSlackConstraints:
    def test_inactive_constraint_has_zero_multiplier(self):
        gp = budget_program(2.0)
        gp.add_constraint(x, 100.0, name="loose_cap")
        report = analyze(gp, gp.solve())
        assert report.multipliers["loose_cap"] == 0.0
        assert "loose_cap" not in report.active

    def test_most_binding_ranking(self):
        gp = budget_program(2.0)
        gp.add_constraint(x, 100.0, name="loose_cap")
        report = analyze(gp, gp.solve())
        ranked = report.most_binding()
        assert ranked and ranked[0][0] == "budget"
        assert all(v > 0 for _name, v in ranked)


class TestDabProgramSensitivity:
    def test_qab_relaxation_value_on_dual_dab(self):
        """On a real dual-DAB program the QAB constraint is binding: the
        operator-facing shortcut must return a positive saving rate that
        agrees with finite differences."""
        from repro.filters import CostModel
        from repro.filters.dual_dab import build_dual_dab_program
        from repro.queries import parse_query

        values = {"x": 2.0, "y": 2.0}
        model = CostModel(rates={"x": 1.0, "y": 1.0}, recompute_cost=2.0)

        def solve_with_qab(qab):
            query = parse_query("x*y", qab=qab, name="sens")
            program = build_dual_dab_program(query, values, model)
            return program, program.solve()

        program, solution = solve_with_qab(5.0)
        nu = qab_relaxation_value(program, solution)
        assert nu > 0.0

        _p2, bumped = solve_with_qab(5.0 * 1.02)
        fd = (math.log(bumped.objective) - math.log(solution.objective)) \
            / math.log(1.02)
        assert -nu == pytest.approx(fd, abs=0.1)
