"""End-to-end orderings: the paper's Section-V conclusions at small scale.

These are the load-bearing reproduction checks — who wins on which metric —
run on shared fixtures so the suite stays fast.
"""

import pytest

from repro.simulation import SimulationConfig, run_simulation


@pytest.fixture(scope="module")
def results(small_scenario):
    """One run per algorithm on the same world (μ = 5)."""
    out = {}
    for algorithm in ("optimal_refresh", "dual_dab", "sharfman_baseline"):
        config = SimulationConfig(
            queries=small_scenario.queries, traces=small_scenario.traces,
            algorithm=algorithm, recompute_cost=5.0,
            source_count=small_scenario.source_count, seed=7,
            fidelity_interval=2,
        )
        out[algorithm] = run_simulation(config).metrics
    return out


class TestPaperConclusions:
    def test_dual_dab_slashes_recomputations(self, results):
        """Fig. 5(a): 'the number of recomputations reduce by more than a
        factor of 9 as compared to Optimal Refresh' — we require the same
        factor."""
        assert results["dual_dab"].recomputations * 9 <= \
            results["optimal_refresh"].recomputations

    def test_refresh_increase_is_modest(self, results):
        """Fig. 5(b): the refresh increase is small relative to the
        recomputation reduction (we allow 2x; the paper's is ~10-30%)."""
        assert results["dual_dab"].refreshes <= 2 * results["optimal_refresh"].refreshes

    def test_optimal_refresh_is_refresh_optimal(self, results):
        assert results["optimal_refresh"].refreshes <= results["dual_dab"].refreshes
        assert results["optimal_refresh"].refreshes <= \
            results["sharfman_baseline"].refreshes

    def test_total_cost_ordering(self, results):
        """The paper's bottom line: Dual-DAB's total message cost is far
        below both Optimal Refresh and the [5]-style baseline."""
        dual = results["dual_dab"].total_cost
        assert dual * 2 <= results["optimal_refresh"].total_cost
        assert dual * 2 <= results["sharfman_baseline"].total_cost

    def test_baseline_worst_at_everything(self, results):
        baseline = results["sharfman_baseline"]
        optimal = results["optimal_refresh"]
        assert baseline.refreshes >= optimal.refreshes
        assert baseline.recomputations >= optimal.recomputations


class TestDdmRobustness:
    """Section VI conclusion 2: 'the reliance of our techniques on the ddm
    is low' — Dual-DAB keeps its advantage under a wrong ddm and without
    rate information."""

    @pytest.mark.parametrize("overrides", [
        {"ddm": "random_walk"},
        {},  # monotonic (reference)
    ])
    def test_dual_dab_beats_optimal_under_any_ddm(self, small_scenario, overrides):
        runs = {}
        for algorithm in ("dual_dab", "optimal_refresh"):
            config = SimulationConfig(
                queries=small_scenario.queries, traces=small_scenario.traces,
                algorithm=algorithm, recompute_cost=5.0,
                source_count=small_scenario.source_count, seed=7,
                fidelity_interval=4, **overrides,
            )
            runs[algorithm] = run_simulation(config).metrics
        assert runs["dual_dab"].total_cost < runs["optimal_refresh"].total_cost

    def test_rate_information_helps(self):
        """Fig. 6: λ = 1 (no rate info) costs more than estimated rates.
        The advantage needs heterogeneous rates, so this world draws
        per-item volatilities spanning a 10x range."""
        from repro.dynamics import UnitRateEstimator
        from repro.workloads import scaled_scenario

        scenario = scaled_scenario(
            query_count=6, item_count=20, trace_length=201, source_count=4,
            seed=7, volatility_range=(0.0005, 0.005))
        costs = {}
        for label, estimator in (("sampled", None), ("unit", UnitRateEstimator())):
            config = SimulationConfig(
                queries=scenario.queries, traces=scenario.traces,
                algorithm="dual_dab", recompute_cost=5.0,
                source_count=scenario.source_count, seed=7,
                fidelity_interval=4, rate_estimator=estimator,
            )
            costs[label] = run_simulation(config).metrics.total_cost
        assert costs["sampled"] <= costs["unit"]


class TestGeneralQueriesEndToEnd:
    def test_heuristics_run_on_arbitrage_workload(self, arbitrage_scenario):
        metrics = {}
        for algorithm in ("half_and_half", "different_sum"):
            config = SimulationConfig(
                queries=arbitrage_scenario.queries,
                traces=arbitrage_scenario.traces,
                algorithm=algorithm, recompute_cost=1.0,
                source_count=arbitrage_scenario.source_count, seed=11,
                fidelity_interval=4,
            )
            metrics[algorithm] = run_simulation(config).metrics
        for m in metrics.values():
            assert m.refreshes > 0
        # refreshes agree within a few percent (the paper: < 1% apart)
        hh, ds = metrics["half_and_half"], metrics["different_sum"]
        assert abs(hh.refreshes - ds.refreshes) <= 0.2 * hh.refreshes

    def test_zero_delay_fidelity_for_heuristics(self, arbitrage_scenario):
        """Condition 1 end-to-end for general PQs: zero-delay fidelity is
        perfect under both heuristics."""
        for algorithm in ("half_and_half", "different_sum"):
            config = SimulationConfig(
                queries=arbitrage_scenario.queries,
                traces=arbitrage_scenario.traces,
                algorithm=algorithm, recompute_cost=1.0,
                source_count=arbitrage_scenario.source_count, seed=11,
                zero_delay=True, fidelity_interval=1,
            )
            metrics = run_simulation(config).metrics
            assert metrics.fidelity_loss_percent == 0.0
