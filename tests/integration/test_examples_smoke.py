"""Smoke tests: the fast examples must run end to end.

The heavier market-simulation examples (`global_portfolio.py`,
`arbitrage_monitor.py`, `oil_spill_tracking.py`) take tens of seconds and
are exercised implicitly through the harness tests; here we run the
lightweight ones for real so a refactor can't silently break the README's
entry points.
"""

import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestFastExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "Optimal Refresh" in out or "optimal_refresh" in out
        assert "dual_dab" in out
        assert "window guarantee holds? True" in out

    def test_threshold_alert(self, capsys):
        out = run_example("threshold_alert.py", capsys)
        assert ">>> alert at step" in out
        assert "replans:" in out

    def test_qab_negotiation(self, capsys):
        out = run_example("qab_negotiation.py", capsys)
        assert "most renegotiable bound" in out
        assert "predicted objective change" in out

    def test_live_portfolio_service(self, capsys):
        out = run_example("live_portfolio_service.py", capsys)
        assert "coordinator: " in out
        assert "refreshes crossed the wire" in out
        assert "QAB guarantee holds? True" in out

    def test_chaos_portfolio(self, capsys):
        out = run_example("chaos_portfolio.py", capsys)
        assert "chaos schedule:" in out
        assert "unexcused QAB violations: 0" in out
        assert "verdict: PASS" in out


class TestExamplesExist:
    @pytest.mark.parametrize("name", [
        "quickstart.py", "global_portfolio.py", "arbitrage_monitor.py",
        "oil_spill_tracking.py", "threshold_alert.py", "qab_negotiation.py",
        "live_portfolio_service.py", "chaos_portfolio.py",
    ])
    def test_present_and_has_main(self, name):
        source = (EXAMPLES / name).read_text()
        assert "def main()" in source
        assert '__main__' in source
        assert source.lstrip().startswith('"""'), "examples start with a docstring"
