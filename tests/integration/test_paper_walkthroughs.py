"""The paper's worked examples, reproduced number by number.

* Figure 2 — single-DAB invalidation for ``x*y : 5``.
* Figure 4 — dual-DAB validity window for the same query with b = 0.5.
* Section III-A.3 — the μ = 10 example for a 5-source network.
* Section V — the qualitative comparison with [5].
"""

import pytest

from repro.filters import (
    CostModel,
    DualDABPlanner,
    OptimalRefreshPlanner,
    SharfmanStyleBaseline,
)
from repro.queries import parse_query
from repro.queries.deviation import (
    assignment_feasible_for_query,
    max_query_deviation,
)


@pytest.fixture(scope="module")
def query():
    return parse_query("x*y : 5", name="walkthrough")


class TestFigure2:
    """V(S,x), V(S,y): (2,2) -> (3,2) -> (3.9,2.9); b = (1,1)."""

    def test_initial_assignment_valid(self, query):
        assert assignment_feasible_for_query(
            query.terms, {"x": 2.0, "y": 2.0}, {"x": 1.0, "y": 1.0}, query.qab)

    def test_query_validity_interval(self, query):
        """At V(C,Q) = 4 with B = 5 the query validity interval is [-1, 9]."""
        value = 2.0 * 2.0
        assert value - query.qab == pytest.approx(-1.0)
        assert value + query.qab == pytest.approx(9.0)

    def test_assignment_invalid_after_refresh(self, query):
        """After x: 2 -> 3 the old DABs no longer guarantee the QAB."""
        assert not assignment_feasible_for_query(
            query.terms, {"x": 3.0, "y": 2.0}, {"x": 1.0, "y": 1.0}, query.qab)

    def test_missed_violation_magnitude(self, query):
        """(3.9, 2.9): both moves are under b = 1 from (3, 2), yet the query
        moved by 5.31 > B — the paper's motivating failure."""
        drift = abs(3.9 * 2.9 - 3.0 * 2.0)
        assert drift == pytest.approx(5.31, abs=1e-9)
        assert drift > query.qab


class TestFigure4:
    """b = 0.5: valid at (3,2), (3.5,2.5), (3.9,2.9); invalid at (5.5,4.5)."""

    BOUNDS = {"x": 0.5, "y": 0.5}

    @pytest.mark.parametrize("values,valid", [
        ({"x": 2.0, "y": 2.0}, True),
        ({"x": 3.0, "y": 2.0}, True),
        ({"x": 3.5, "y": 2.5}, True),
        ({"x": 3.9, "y": 2.9}, True),
        ({"x": 5.5, "y": 4.5}, False),
    ])
    def test_validity_along_the_walk(self, query, values, valid):
        assert assignment_feasible_for_query(
            query.terms, values, self.BOUNDS, query.qab) is valid

    def test_paper_edge_computation(self, query):
        """(5.5+0.5)(4.5+0.5) - 5.5*4.5 = 30 - 24.75 = 5.25 > 5."""
        deviation = max_query_deviation(query.terms, {"x": 5.5, "y": 4.5}, self.BOUNDS)
        assert deviation == pytest.approx(5.25)
        assert deviation > query.qab

    def test_secondary_dabs_from_the_example(self, query):
        """cx = 3.5, cy = 2.5 (and the swap) are the paper's example
        windows around (2, 2)."""
        for cx, cy in ((3.5, 2.5), (2.5, 3.5)):
            # worst point of the window:
            edge = {"x": 2.0 + cx, "y": 2.0 + cy}
            deviation = max_query_deviation(query.terms, edge, self.BOUNDS)
            # (V+c+b) corners: exactly at or slightly above B marks the
            # boundary of validity; the paper treats these windows as the
            # largest usable ones.
            assert deviation == pytest.approx(5.25, abs=0.3)


class TestMuExample:
    """Section III-A.3: 5 sources, reorganisation ~1 s, message delay
    ~200 ms  =>  μ = 0 + 5 + 5 = 10 messages."""

    def test_mu_arithmetic(self):
        compute_cost = 0
        dab_change_messages = 5
        reorganisation_seconds, message_delay = 1.0, 0.2
        reorganisation_messages = reorganisation_seconds / message_delay
        mu = compute_cost + dab_change_messages + reorganisation_messages
        assert mu == pytest.approx(10.0)

    def test_larger_mu_means_larger_windows(self, query):
        values = {"x": 2.0, "y": 2.0}
        plans = {
            mu: DualDABPlanner(
                CostModel(rates={"x": 1.0, "y": 1.0}, recompute_cost=mu)
            ).plan(query, values)
            for mu in (0.5, 10.0)
        }
        assert plans[10.0].secondary["x"] >= plans[0.5].secondary["x"] * (1 - 1e-6)
        assert plans[10.0].primary["x"] <= plans[0.5].primary["x"] * (1 + 1e-6)


class TestSectionVComparison:
    """Our Optimal Refresh vs the per-item-conditions baseline: the paper's
    point is that [5]'s DABs are more stringent, costing refreshes."""

    def test_baseline_never_beats_optimal(self):
        query = parse_query("x*y : 50")
        values = {"x": 40.0, "y": 20.0}
        model = CostModel(rates={"x": 1.0, "y": 1.0})
        optimal = OptimalRefreshPlanner(model).plan(query, values)
        baseline = SharfmanStyleBaseline(model).plan(query, values)
        assert model.estimated_refresh_rate(optimal.primary) <= \
            model.estimated_refresh_rate(baseline.primary) * (1 + 1e-9)
        # both are sound
        for plan in (optimal, baseline):
            assert max_query_deviation(query.terms, values, plan.primary) <= 50.0 * (1 + 1e-9)
