"""Smoke + shape tests for the figure runners (micro scale).

The benches run these at larger scale and print the paper-style tables;
here we verify the runners produce structurally correct series and that the
paper's qualitative orderings hold even at micro scale.
"""

import pytest

from repro.experiments import (
    run_figure5,
    run_figure7,
    run_figure8ab,
    run_figure8c,
    run_sharfman_comparison,
    run_solver_timing,
)


@pytest.fixture(scope="module")
def fig5():
    return run_figure5(query_counts=(3, 6), mus=(1.0, 5.0),
                       item_count=16, trace_length=121, seed=21)


class TestFigure5:
    def test_series_labels(self, fig5):
        labels = [s.label for s in fig5]
        assert labels[0] == "Optimal Refresh"
        assert "Dual-DAB, mu=1" in labels and "Dual-DAB, mu=5" in labels

    def test_x_axis_is_query_count(self, fig5):
        for series in fig5:
            assert [p.x for p in series.points] == [3, 6]

    def test_dual_dab_reduces_recomputations(self, fig5):
        optimal = {p.x: p.recomputations for p in fig5[0].points}
        dual = {p.x: p.recomputations for p in fig5[1].points}
        for x in (3, 6):
            assert dual[x] * 5 <= optimal[x]

    def test_optimal_refresh_fewest_refreshes(self, fig5):
        optimal = {p.x: p.refreshes for p in fig5[0].points}
        for series in fig5[1:]:
            for p in series.points:
                assert optimal[p.x] <= p.refreshes * (1 + 1e-9)


class TestFigure7:
    def test_structure_and_ordering(self):
        series = run_figure7(mus=(1.0, 5.0), periods=(15,), query_count=3,
                             item_count=16, trace_length=91, seed=22)
        labels = [s.label for s in series]
        assert labels == ["EQI", "AAO-15"]
        eqi, aao = series
        assert [p.x for p in eqi.points] == [1.0, 5.0]
        # AAO-T with a short period does at least duration/period recomputations
        for p in aao.points:
            assert p.recomputations >= 90 // 15
        # AAO's joint primaries are never tighter than EQI's min-merge
        for pe, pa in zip(eqi.points, aao.points):
            assert pa.refreshes <= pe.refreshes * 1.5


class TestFigure8:
    def test_ab_labels_and_soundness(self):
        series = run_figure8ab(query_counts=(2,), mus=(1.0,),
                               item_count=16, trace_length=91, seed=23)
        labels = {s.label for s in series}
        assert labels == {"HH, mu=1", "DS, mu=1"}
        for s in series:
            assert all(p.refreshes > 0 for p in s.points)

    def test_8c_wsdab_explodes(self):
        series = run_figure8c(query_counts=(3,), item_count=16, trace_length=91,
                              coordinator_count=2, seed=24)
        by_label = {s.label: s for s in series}
        dual = by_label["Dual-DAB"].points[0]
        wsdab = by_label["WSDAB"].points[0]
        assert wsdab.recomputations >= 10 * max(dual.recomputations, 1)


class TestTables:
    def test_sharfman_comparison_rows(self):
        rows = run_sharfman_comparison(rate_skews=(1.0, 8.0))
        assert len(rows) == 2
        for row in rows:
            assert row["optimal_refresh_rate"] <= row["baseline_refresh_rate"] * (1 + 1e-9)
        # the gap grows with skew
        gaps = [r["baseline_refresh_rate"] / r["optimal_refresh_rate"] for r in rows]
        assert gaps[0] < gaps[-1]

    def test_solver_timing_keys(self):
        timing = run_solver_timing(query_count=3, item_count=16,
                                   trace_length=61, repetitions=2)
        assert timing["dual_dab_cold_ms"] > 0
        assert timing["dual_dab_warm_ms"] > 0
        assert timing["aao_3_queries_ms"] > 0
        # warm starts must not be slower than cold solves (same problem)
        assert timing["dual_dab_warm_ms"] <= timing["dual_dab_cold_ms"] * 1.5
