"""Tests for experiment reporting helpers."""

from repro.experiments import (
    ExperimentPoint,
    ExperimentSeries,
    format_table,
    rows_to_csv,
    series_to_rows,
)


def make_series():
    a = ExperimentSeries("A", [
        ExperimentPoint(x=10, refreshes=100, recomputations=5,
                        fidelity_loss_percent=0.1, total_cost=125.0),
        ExperimentPoint(x=20, refreshes=180, recomputations=9,
                        fidelity_loss_percent=0.2, total_cost=225.0),
    ])
    b = ExperimentSeries("B", [
        ExperimentPoint(x=10, refreshes=300, recomputations=50,
                        fidelity_loss_percent=1.5, total_cost=550.0),
    ])
    return [a, b]


class TestSeries:
    def test_metric_extraction(self):
        series = make_series()[0]
        assert series.metric("refreshes") == [(10, 100), (20, 180)]
        assert series.metric("total_cost") == [(10, 125.0), (20, 225.0)]


class TestSeriesToRows:
    def test_pivot(self):
        rows = series_to_rows(make_series(), "recomputations", x_label="queries")
        assert rows[0] == {"queries": 10, "A": 5, "B": 50}
        assert rows[1] == {"queries": 20, "A": 9}  # B has no point at 20

    def test_x_sorted(self):
        rows = series_to_rows(make_series(), "refreshes")
        assert [r["x"] for r in rows] == [10, 20]


class TestFormatTable:
    def test_renders_title_and_columns(self):
        rows = series_to_rows(make_series(), "refreshes", x_label="queries")
        text = format_table(rows, title="Figure X")
        lines = text.splitlines()
        assert lines[0] == "Figure X"
        assert "queries" in lines[1] and "A" in lines[1] and "B" in lines[1]
        assert "100" in text and "300" in text

    def test_empty_rows(self):
        assert format_table([], title="empty") == "empty"

    def test_missing_cells_blank(self):
        rows = series_to_rows(make_series(), "refreshes")
        text = format_table(rows)
        # row for x=20 exists even though B has no value there
        assert "20" in text

    def test_float_formatting(self):
        text = format_table([{"x": 0.123456789}])
        assert "0.123457" in text


class TestRowsToCsv:
    def test_round_trip_columns(self):
        rows = series_to_rows(make_series(), "refreshes", x_label="queries")
        csv = rows_to_csv(rows)
        lines = csv.splitlines()
        assert lines[0] == "queries,A,B"
        assert lines[1] == "10,100,300"
        # B has no point at x=20: the cell is empty
        assert lines[2] == "20,180,"

    def test_empty(self):
        assert rows_to_csv([]) == ""

    def test_float_precision(self):
        csv = rows_to_csv([{"v": 1.0 / 3.0}])
        assert csv.splitlines()[1].startswith("0.333333333")
