"""Tests for the parallel sweep runner (determinism is the contract)."""

import pytest

from repro.exceptions import SimulationError
from repro.experiments import derive_seed, run_configs, run_seed_sweep
from repro.simulation import SimulationConfig
from repro.workloads import scaled_scenario


def _config(seed=13, **kw):
    scenario = scaled_scenario(query_count=3, item_count=16, trace_length=61,
                               source_count=3, seed=seed)
    return SimulationConfig(queries=scenario.queries, traces=scenario.traces,
                            recompute_cost=2.0, source_count=3, seed=seed,
                            fidelity_interval=5, **kw)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(13, 0) == derive_seed(13, 0)
        assert derive_seed(13, 7) == derive_seed(13, 7)

    def test_distinct_across_indices_and_bases(self):
        seeds = {derive_seed(13, i) for i in range(50)}
        assert len(seeds) == 50
        assert derive_seed(13, 0) != derive_seed(14, 0)

    def test_negative_index_rejected(self):
        with pytest.raises(SimulationError):
            derive_seed(13, -1)


class TestRunConfigs:
    def test_empty(self):
        assert run_configs([]) == []

    def test_parallel_bit_identical_to_serial(self):
        configs = [_config(seed=s) for s in (13, 29, 47)]
        serial = run_configs(configs, jobs=None)
        parallel = run_configs(configs, jobs=2)
        assert [r.metrics for r in serial] == [r.metrics for r in parallel]

    def test_negative_jobs_rejected(self):
        with pytest.raises(SimulationError):
            run_configs([_config()], jobs=-1)


class TestRunSeedSweep:
    def test_runs_derive_distinct_seeds(self):
        results = run_seed_sweep(_config(), runs=3)
        assert len(results) == 3
        # distinct seeds => (almost surely) distinct event streams
        assert len({r.metrics.refreshes for r in results} |
                   {r.metrics.recomputations for r in results}) > 1

    def test_parallel_matches_serial(self):
        serial = run_seed_sweep(_config(), runs=3, jobs=1)
        parallel = run_seed_sweep(_config(), runs=3, jobs=3)
        assert [r.metrics for r in serial] == [r.metrics for r in parallel]

    def test_zero_runs_rejected(self):
        with pytest.raises(SimulationError):
            run_seed_sweep(_config(), runs=0)
