"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_int_list, _parse_kv, main


class TestHelpers:
    def test_parse_kv(self):
        assert _parse_kv("x=2,y=3.5", "t") == {"x": 2.0, "y": 3.5}
        assert _parse_kv("", "t") == {}

    def test_parse_kv_errors(self):
        with pytest.raises(SystemExit):
            _parse_kv("x", "t")
        with pytest.raises(SystemExit):
            _parse_kv("x=abc", "t")

    def test_parse_int_list(self):
        assert _parse_int_list("5,10,20") == [5, 10, 20]
        assert _parse_int_list("") == []


class TestPlan:
    def test_dual_dab_plan(self, capsys):
        code = main(["plan", "x*y : 5", "--values", "x=2,y=2",
                     "--rates", "x=1,y=1", "--mu", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "primary b" in out and "secondary c" in out
        assert "estimated refresh rate" in out

    def test_single_dab_plan(self, capsys):
        code = main(["plan", "x*y : 5", "--values", "x=2,y=2", "--single-dab"])
        assert code == 0
        out = capsys.readouterr().out
        assert "optimal refresh" in out
        assert "nan" in out  # no secondary

    def test_mixed_sign_plan(self, capsys):
        code = main(["plan", "x*y - u*v : 5",
                     "--values", "x=2,y=2,u=1,v=1",
                     "--heuristic", "half_and_half"])
        assert code == 0
        assert "half_and_half" in capsys.readouterr().out

    def test_qab_override(self, capsys):
        code = main(["plan", "x*y", "--qab", "3", "--values", "x=2,y=2"])
        assert code == 0
        assert ": 3" in capsys.readouterr().out

    def test_missing_values_rejected(self):
        with pytest.raises(SystemExit, match="no values"):
            main(["plan", "x*y : 5", "--values", "x=2"])

    def test_library_error_becomes_exit_code_1(self, capsys):
        # zero value is rejected by the GP formulation -> ReproError -> rc 1
        code = main(["plan", "x*y : 5", "--values", "x=0,y=2"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestSimulate:
    def test_small_run(self, capsys):
        code = main(["simulate", "--queries", "2", "--items", "16",
                     "--duration", "60", "--sources", "3",
                     "--fidelity-interval", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "refreshes" in out and "recomputations" in out
        assert "total cost" in out

    def test_aao_t_requires_period(self, capsys):
        code = main(["simulate", "--queries", "2", "--items", "16",
                     "--duration", "60", "--algorithm", "aao_t"])
        assert code == 1
        assert "aao_period" in capsys.readouterr().err

    def test_arbitrage_workload(self, capsys):
        code = main(["simulate", "--queries", "2", "--items", "20",
                     "--duration", "60", "--workload", "arbitrage",
                     "--algorithm", "different_sum",
                     "--fidelity-interval", "10"])
        assert code == 0


class TestFigures:
    def test_sharfman_table(self, capsys):
        code = main(["figures", "sharfman"])
        assert code == 0
        assert "Comparison with [5]" in capsys.readouterr().out

    def test_fig8c_small(self, capsys):
        code = main(["figures", "fig8c", "--queries", "2", "--items", "16",
                     "--trace-length", "61"])
        assert code == 0
        out = capsys.readouterr().out
        assert "WSDAB" in out and "Dual-DAB" in out


class TestTraces:
    def test_csv_output(self, capsys):
        code = main(["traces", "--items", "2", "--length", "5"])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "tick,x0,x1"
        assert len(lines) == 6  # header + 5 ticks

    def test_deterministic(self, capsys):
        main(["traces", "--items", "1", "--length", "3", "--seed", "9"])
        first = capsys.readouterr().out
        main(["traces", "--items", "1", "--length", "3", "--seed", "9"])
        second = capsys.readouterr().out
        assert first == second


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figures", "fig99"])


def _strip_timings(text):
    """Drop wall-clock readouts and the echoed jobs count, which
    legitimately vary between otherwise-identical runs."""
    import re
    return re.sub(r"jobs=\S+", "jobs=<n>",
                  re.sub(r"\d+\.\d+s", "<time>", text))


class TestPerfFlags:
    SMALL = ["simulate", "--queries", "2", "--items", "16",
             "--duration", "60", "--sources", "3",
             "--fidelity-interval", "5"]

    def test_no_vectorize_matches_default(self, capsys):
        assert main(self.SMALL) == 0
        vectorized = capsys.readouterr().out
        assert main(self.SMALL + ["--no-vectorize"]) == 0
        scalar = capsys.readouterr().out
        assert _strip_timings(vectorized) == _strip_timings(scalar)

    def test_seed_sweep(self, capsys):
        code = main(self.SMALL + ["--runs", "3", "--jobs", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Seed sweep" in out
        assert out.count("\n  ") >= 3 or len(out.strip().splitlines()) >= 4

    def test_seed_sweep_serial_matches_parallel(self, capsys):
        main(self.SMALL + ["--runs", "2"])
        serial = capsys.readouterr().out
        main(self.SMALL + ["--runs", "2", "--jobs", "2"])
        parallel = capsys.readouterr().out
        assert _strip_timings(serial) == _strip_timings(parallel)

    def test_profile_writes_stats_file(self, tmp_path, capsys):
        target = tmp_path / "run.pstats"
        code = main(["--profile", str(target)] + self.SMALL)
        assert code == 0
        captured = capsys.readouterr()
        assert target.exists() and target.stat().st_size > 0
        assert "profile written" in captured.err
        assert "cumulative" in captured.err
