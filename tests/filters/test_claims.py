"""Property tests of the paper's formal claims.

* **Claim 1** (Section III-B.2): DABs satisfying the dual-DAB condition of
  ``Q' = P1 + P2 : B`` also satisfy it for ``Q = P1 - P2 : B``.
* **Claim 2** (near-optimality of Different Sum): when the optimal DABs of
  ``P1 - P2`` are small relative to the data (``c_i <= α·V_i / d``), the
  scaled bounds ``b(1-α), c(1-α)`` are feasible for ``P1 + P2`` and the
  cost blow-up is at most ``1/(1-α)`` under the monotonic ddm.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.filters import CostModel, DifferentSumPlanner, DualDABPlanner
from repro.queries import PolynomialQuery, QueryTerm, max_query_deviation
from repro.queries.deviation import deviation_posynomial, primary_variable, secondary_variable

weights = st.floats(min_value=0.2, max_value=10.0, allow_nan=False)
values_st = st.floats(min_value=1.0, max_value=50.0, allow_nan=False)
fractions = st.floats(min_value=0.01, max_value=0.5, allow_nan=False)


@st.composite
def independent_split_queries(draw):
    """Q = w1·x·y − w2·u·v with random values, bounds expressed as value
    fractions so everything stays in a sane numeric range."""
    w1, w2 = draw(weights), draw(weights)
    terms = [QueryTerm.product(w1, "x", "y"), QueryTerm.product(-w2, "u", "v")]
    values = {name: draw(values_st) for name in ("x", "y", "u", "v")}
    b_fraction = draw(fractions)
    c_fraction = draw(st.floats(min_value=b_fraction, max_value=0.6))
    bounds = {name: b_fraction * value for name, value in values.items()}
    windows = {name: c_fraction * value for name, value in values.items()}
    return terms, values, bounds, windows


def _eval_dual(terms, values, bounds, windows):
    posy = deviation_posynomial(terms, values, include_secondary=True)
    point = {primary_variable(k): v for k, v in bounds.items()}
    point.update({secondary_variable(k): windows[k] for k in windows})
    return posy.evaluate(point)


class TestClaim1:
    @given(independent_split_queries())
    @settings(max_examples=60, deadline=None)
    def test_mirror_condition_dominates(self, world):
        """The worst-case movement of Q = P1 − P2 under any per-item bounds
        is no larger than that of Q' = P1 + P2 (term-wise equality through
        absolute weights — this is how the triangle bound realises
        Claim 1)."""
        terms, values, bounds, windows = world
        query = PolynomialQuery(terms, qab=1.0)
        mirror = query.positive_mirror()
        assert max_query_deviation(query.terms, values, bounds) == pytest.approx(
            max_query_deviation(mirror.terms, values, bounds), rel=1e-9)

    @given(independent_split_queries(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_actual_movement_of_difference_within_mirror_bound(self, world, data):
        """Simulate arbitrary in-filter movements: the actual |ΔQ| of the
        difference query never exceeds the mirror's worst case."""
        terms, values, bounds, windows = world
        query = PolynomialQuery(terms, qab=1.0)
        mirror = query.positive_mirror()
        moved = {}
        for name, value in values.items():
            sign = data.draw(st.floats(min_value=-1.0, max_value=1.0))
            moved[name] = max(value + sign * bounds[name], 1e-9)
        actual = abs(query.evaluate(moved) - query.evaluate(values))
        worst = max_query_deviation(mirror.terms, values, bounds)
        assert actual <= worst * (1 + 1e-9) + 1e-9


class TestClaim2:
    @given(independent_split_queries())
    @settings(max_examples=40, deadline=None)
    def test_scaled_bounds_feasible_for_mirror(self, world):
        """Claim 2(A): if (b, c) meet the dual condition for P1 − P2 with
        budget B and c_i <= α·V_i/d, then (b(1−α), c(1−α)) meet it for
        P1 + P2."""
        terms, values, bounds, windows = world
        degree = 2
        # α from the windows actually drawn
        alpha = max(windows[k] * degree / values[k] for k in values)
        if alpha >= 0.95:  # keep (1-α) meaningfully positive
            alpha = 0.95
        mirror_terms = [t.abs() for t in terms]

        budget = _eval_dual(terms, values, bounds, windows)  # triangle form of Q's condition
        scale = 1.0 - alpha
        scaled_bounds = {k: v * scale for k, v in bounds.items()}
        scaled_windows = {k: v * scale for k, v in windows.items()}
        mirror_value = _eval_dual(mirror_terms, values, scaled_bounds, scaled_windows)
        assert mirror_value <= budget * (1 + 1e-9)

    @given(st.floats(min_value=0.05, max_value=0.5), independent_split_queries())
    @settings(max_examples=40, deadline=None)
    def test_cost_blowup_bounded(self, alpha, world):
        """Claim 2(B): scaling every b by (1−α) raises the monotonic
        refresh objective Σλ/b by exactly 1/(1−α)."""
        terms, values, bounds, _ = world
        model = CostModel(rates={k: 1.0 for k in values})
        base_cost = model.estimated_refresh_rate(bounds)
        scaled = {k: v * (1 - alpha) for k, v in bounds.items()}
        scaled_cost = model.estimated_refresh_rate(scaled)
        assert scaled_cost == pytest.approx(base_cost / (1 - alpha), rel=1e-9)


class TestDifferentSumNearOptimal:
    def test_ds_dominates_hh_in_small_bound_regime(self):
        """The practical consequence of Claim 2: on independent-half queries
        with DABs small relative to the data, Different Sum (which optimises
        the joint budget split) achieves an estimated message cost no worse
        than Half and Half (which imposes an arbitrary 50/50 split)."""
        from repro.filters import HalfAndHalfPlanner

        query = PolynomialQuery(
            [QueryTerm.product(1.0, "x", "y"), QueryTerm.product(-1.0, "u", "v")],
            qab=5.0, name="claim2_check",
        )
        values = {"x": 20.0, "y": 30.0, "u": 25.0, "v": 15.0}
        model = CostModel(rates={"x": 4.0, "y": 1.0, "u": 0.5, "v": 2.0},
                          recompute_cost=1.0)
        ds_plan = DifferentSumPlanner(model).plan(query, values)
        hh_plan = HalfAndHalfPlanner(model).plan(query, values)
        # small-bound regime (alpha well below 1)
        alpha = max(ds_plan.secondary[k] * 2 / values[k] for k in values)
        assert alpha < 0.5
        ds_cost = model.estimated_refresh_rate(ds_plan.primary)
        hh_cost = model.estimated_refresh_rate(hh_plan.primary)
        assert ds_cost <= hh_cost * (1 + 1e-6)
