"""Tests for the quantised solve cache (simulator optimisation)."""

import pytest

from repro.exceptions import FilterError
from repro.filters import CostModel, DualDABPlanner, OptimalRefreshPlanner
from repro.filters.caching import QuantisingCachePlanner
from repro.queries import parse_query
from repro.queries.deviation import max_query_deviation


class _CountingPlanner:
    """Wraps a planner and counts actual plan() invocations."""

    def __init__(self, planner):
        self.planner = planner
        self.calls = 0

    def plan(self, query, values):
        self.calls += 1
        return self.planner.plan(query, values)


@pytest.fixture()
def cached_optimal(fig2_query, unit_cost_model):
    inner = _CountingPlanner(OptimalRefreshPlanner(unit_cost_model))
    return inner, QuantisingCachePlanner(inner, grid=0.02)


class TestCacheBehaviour:
    def test_nearby_values_hit(self, cached_optimal, fig2_query):
        inner, cache = cached_optimal
        cache.plan(fig2_query, {"x": 2.0, "y": 2.0})
        cache.plan(fig2_query, {"x": 2.001, "y": 2.0})  # same 2% cell
        assert inner.calls == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_distant_values_miss(self, cached_optimal, fig2_query):
        inner, cache = cached_optimal
        cache.plan(fig2_query, {"x": 2.0, "y": 2.0})
        cache.plan(fig2_query, {"x": 2.5, "y": 2.0})
        assert inner.calls == 2

    def test_different_queries_do_not_collide(self, unit_cost_model):
        inner = _CountingPlanner(OptimalRefreshPlanner(unit_cost_model))
        cache = QuantisingCachePlanner(inner)
        q1 = parse_query("x*y : 5", name="cq1")
        q2 = parse_query("x*y : 3", name="cq2")
        cache.plan(q1, {"x": 2.0, "y": 2.0})
        cache.plan(q2, {"x": 2.0, "y": 2.0})
        assert inner.calls == 2

    def test_clear(self, cached_optimal, fig2_query):
        inner, cache = cached_optimal
        cache.plan(fig2_query, {"x": 2.0, "y": 2.0})
        cache.clear()
        cache.plan(fig2_query, {"x": 2.0, "y": 2.0})
        assert inner.calls == 2
        assert cache.stats.misses == 1

    def test_lru_eviction(self, unit_cost_model, fig2_query):
        inner = _CountingPlanner(OptimalRefreshPlanner(unit_cost_model))
        cache = QuantisingCachePlanner(inner, grid=0.02, max_entries=2)
        cache.plan(fig2_query, {"x": 2.0, "y": 2.0})
        cache.plan(fig2_query, {"x": 3.0, "y": 2.0})
        cache.plan(fig2_query, {"x": 4.0, "y": 2.0})  # evicts first entry
        cache.plan(fig2_query, {"x": 2.0, "y": 2.0})  # must re-solve
        assert inner.calls == 4

    def test_invalid_parameters(self, unit_cost_model):
        inner = OptimalRefreshPlanner(unit_cost_model)
        with pytest.raises(FilterError):
            QuantisingCachePlanner(inner, grid=0.0)
        with pytest.raises(FilterError):
            QuantisingCachePlanner(inner, max_entries=0)

    def test_nonpositive_value_rejected(self, cached_optimal, fig2_query):
        _inner, cache = cached_optimal
        with pytest.raises(FilterError):
            cache.plan(fig2_query, {"x": -2.0, "y": 2.0})


class TestLRUEviction:
    """Eviction order and stats accounting under eviction pressure."""

    def _cache(self, unit_cost_model, max_entries):
        inner = _CountingPlanner(OptimalRefreshPlanner(unit_cost_model))
        return inner, QuantisingCachePlanner(inner, grid=0.02,
                                             max_entries=max_entries)

    def test_hit_refreshes_recency(self, unit_cost_model, fig2_query):
        # A hit must move the entry to the back of the LRU queue, so the
        # *other* entry is the eviction victim.
        inner, cache = self._cache(unit_cost_model, max_entries=2)
        cache.plan(fig2_query, {"x": 2.0, "y": 2.0})  # A
        cache.plan(fig2_query, {"x": 3.0, "y": 2.0})  # B
        cache.plan(fig2_query, {"x": 2.0, "y": 2.0})  # hit A -> B is LRU
        cache.plan(fig2_query, {"x": 4.0, "y": 2.0})  # C evicts B, not A
        assert inner.calls == 3
        cache.plan(fig2_query, {"x": 2.0, "y": 2.0})  # A still cached
        assert inner.calls == 3
        cache.plan(fig2_query, {"x": 3.0, "y": 2.0})  # B was evicted
        assert inner.calls == 4

    def test_eviction_is_oldest_first(self, unit_cost_model, fig2_query):
        inner, cache = self._cache(unit_cost_model, max_entries=3)
        xs = (2.0, 3.0, 4.0, 5.0)  # distinct 2%-grid cells
        for x in xs:
            cache.plan(fig2_query, {"x": x, "y": 2.0})
        # Capacity 3, four inserts: only the first entry fell off.
        cache.plan(fig2_query, {"x": 3.0, "y": 2.0})
        cache.plan(fig2_query, {"x": 4.0, "y": 2.0})
        cache.plan(fig2_query, {"x": 5.0, "y": 2.0})
        assert inner.calls == 4
        cache.plan(fig2_query, {"x": 2.0, "y": 2.0})
        assert inner.calls == 5

    def test_size_stays_bounded(self, unit_cost_model, fig2_query):
        _inner, cache = self._cache(unit_cost_model, max_entries=2)
        for x in (2.0, 3.0, 4.0, 5.0, 6.0):
            cache.plan(fig2_query, {"x": x, "y": 2.0})
        assert len(cache._cache) == 2

    def test_stats_under_eviction_pressure(self, unit_cost_model, fig2_query):
        # Cycle through 3 cells with room for only 2: every round-robin
        # access misses (the returning key was always just evicted), so
        # eviction pressure shows up as a 0% hit rate, not a silent
        # under-count of solver work.
        inner, cache = self._cache(unit_cost_model, max_entries=2)
        for _ in range(3):
            for x in (2.0, 3.0, 4.0):
                cache.plan(fig2_query, {"x": x, "y": 2.0})
        assert inner.calls == 9
        assert cache.stats.misses == 9
        assert cache.stats.hits == 0
        assert cache.stats.hit_rate == 0.0
        # Re-touching the two resident cells is pure hits.
        cache.plan(fig2_query, {"x": 3.0, "y": 2.0})
        cache.plan(fig2_query, {"x": 4.0, "y": 2.0})
        assert cache.stats.hits == 2
        assert cache.stats.misses == 9
        assert inner.calls == 9


class TestSoundness:
    """The load-bearing property: cached plans re-centred on the true
    values must still satisfy Condition 1 (and the window guarantee)."""

    def test_hit_remains_feasible_at_true_values(self, unit_cost_model, fig2_query):
        cache = QuantisingCachePlanner(OptimalRefreshPlanner(unit_cost_model),
                                       grid=0.05)
        cache.plan(fig2_query, {"x": 2.09, "y": 2.09})  # populates cell
        for x in (2.05, 2.07, 2.0999):
            plan = cache.plan(fig2_query, {"x": x, "y": 2.05})
            deviation = max_query_deviation(
                fig2_query.terms, {"x": x, "y": 2.05}, plan.primary)
            assert deviation <= fig2_query.qab * (1 + 1e-9)

    def test_hit_keeps_window_guarantee(self, fig2_query, unit_cost_model):
        cache = QuantisingCachePlanner(DualDABPlanner(unit_cost_model), grid=0.05)
        cache.plan(fig2_query, {"x": 2.09, "y": 2.09})
        plan = cache.plan(fig2_query, {"x": 2.02, "y": 2.05})
        assert plan.reference_values == {"x": 2.02, "y": 2.05}
        assert plan.guarantees_qab_over_window(fig2_query)

    def test_references_always_recentred(self, cached_optimal, fig2_query):
        _inner, cache = cached_optimal
        plan1 = cache.plan(fig2_query, {"x": 2.0, "y": 2.0})
        plan2 = cache.plan(fig2_query, {"x": 2.001, "y": 2.0})
        assert plan1.reference_values["x"] == 2.0
        assert plan2.reference_values["x"] == 2.001
        # the cached bounds are shared, not aliased
        assert plan1.primary == plan2.primary
        assert plan1.primary is not plan2.primary


class TestModeKeying:
    """Cache keys carry the stack's recompute mode (ISSUE 7 satellite):
    full-mode and delta-mode solves of the same quantised cell must not
    share entries."""

    def test_mode_change_is_a_cache_miss(self, fig2_query, unit_cost_model):
        inner = _CountingPlanner(OptimalRefreshPlanner(unit_cost_model))
        inner.recompute_mode = "full"
        cache = QuantisingCachePlanner(inner)
        cache.plan(fig2_query, {"x": 2.0, "y": 2.0})
        inner.recompute_mode = "delta"
        cache.plan(fig2_query, {"x": 2.0, "y": 2.0})
        assert inner.calls == 2          # same cell, different mode: solve
        inner.recompute_mode = "full"
        cache.plan(fig2_query, {"x": 2.0, "y": 2.0})
        assert inner.calls == 2          # original full-mode entry still hits
        assert cache.stats.hits == 1

    def test_mode_discovered_through_wrapper_links(self, fig2_query,
                                                   unit_cost_model):
        from repro.filters.delta_recompute import DeltaRecomputePlanner

        delta = DeltaRecomputePlanner(
            DualDABPlanner(unit_cost_model, use_compiled=True), mode="delta")
        counting = _CountingPlanner(delta)   # cache -> counter -> delta
        cache = QuantisingCachePlanner(counting)
        assert cache._mode_key == "delta"
        cache.plan(fig2_query, {"x": 2.0, "y": 2.0})
        assert counting.calls == 1

    def test_stacks_without_delta_layer_key_as_full(self, cached_optimal):
        _inner, cache = cached_optimal
        assert cache._mode_key == "full"


class TestBankKeying:
    """Cache keys carry the bank-index mode (ISSUE 8 satellite): flat- and
    shared-mode solves of the same quantised cell must not share entries,
    so kill -9 replay stays deterministic per mode."""

    def test_explicit_mode_partitions_the_cache(self, fig2_query,
                                                unit_cost_model):
        inner = _CountingPlanner(OptimalRefreshPlanner(unit_cost_model))
        flat = QuantisingCachePlanner(inner, bank_index_mode="flat")
        shared = QuantisingCachePlanner(inner, bank_index_mode="shared")
        assert flat._bank_key == "flat"
        assert shared._bank_key == "shared"
        flat.plan(fig2_query, {"x": 2.0, "y": 2.0})
        shared.plan(fig2_query, {"x": 2.0, "y": 2.0})
        assert inner.calls == 2

    def test_mode_change_is_a_cache_miss(self, fig2_query, unit_cost_model):
        inner = _CountingPlanner(OptimalRefreshPlanner(unit_cost_model))
        cache = QuantisingCachePlanner(inner)
        inner.bank_index_mode = "flat"
        cache.plan(fig2_query, {"x": 2.0, "y": 2.0})
        inner.bank_index_mode = "shared"
        cache.plan(fig2_query, {"x": 2.0, "y": 2.0})
        assert inner.calls == 2          # same cell, different bank mode
        inner.bank_index_mode = "flat"
        cache.plan(fig2_query, {"x": 2.0, "y": 2.0})
        assert inner.calls == 2          # the flat entry still hits
        assert cache.stats.hits == 1

    def test_stacks_without_bank_mode_key_as_flat(self, cached_optimal):
        _inner, cache = cached_optimal
        assert cache._bank_key == "flat"

    def test_explicit_mode_wins_over_discovery(self, unit_cost_model):
        inner = _CountingPlanner(OptimalRefreshPlanner(unit_cost_model))
        inner.bank_index_mode = "flat"
        cache = QuantisingCachePlanner(inner, bank_index_mode="shared")
        assert cache._bank_key == "shared"
