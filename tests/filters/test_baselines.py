"""Tests for the baseline DAB schemes (paper Section V comparison)."""

import pytest

from repro.exceptions import FilterError
from repro.filters import (
    CostModel,
    OptimalRefreshPlanner,
    SharfmanStyleBaseline,
    UniformAllocationBaseline,
)
from repro.filters.baselines import _solve_width
from repro.queries import parse_query
from repro.queries.deviation import max_query_deviation


class TestSolveWidth:
    def test_monotone_function(self):
        width = _solve_width(10.0, lambda b: 2.0 * b)
        assert width == pytest.approx(5.0, rel=1e-6)

    def test_quadratic(self):
        width = _solve_width(9.0, lambda b: b * b)
        assert width == pytest.approx(3.0, rel=1e-6)

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(FilterError):
            _solve_width(0.0, lambda b: b)

    def test_never_reaching_budget(self):
        # deviation saturates below the budget: a very wide filter comes back
        width = _solve_width(10.0, lambda b: 1.0 - 1.0 / (1.0 + b))
        assert width > 1e10


class TestSoundness:
    """Every baseline must satisfy Condition 1 at the planning values."""

    @pytest.mark.parametrize("baseline_cls",
                             [UniformAllocationBaseline, SharfmanStyleBaseline])
    @pytest.mark.parametrize("text,values", [
        ("x*y : 5", {"x": 2.0, "y": 2.0}),
        ("x*y : 50", {"x": 40.0, "y": 20.0}),
        ("2 x*y + 3 y*z : 7", {"x": 5.0, "y": 2.0, "z": 7.0}),
        ("x^2 + y^2 : 2", {"x": 3.0, "y": 4.0}),
        ("x*y*z : 10", {"x": 2.0, "y": 3.0, "z": 4.0}),
    ])
    def test_qab_respected(self, baseline_cls, text, values):
        query = parse_query(text)
        plan = baseline_cls().plan(query, values)
        deviation = max_query_deviation(query.terms, values, plan.primary)
        assert deviation <= query.qab * (1 + 1e-6)

    def test_single_dab_semantics(self):
        query = parse_query("x*y : 5")
        plan = SharfmanStyleBaseline().plan(query, {"x": 2.0, "y": 2.0})
        assert plan.secondary is None
        assert not plan.window_contains({"x": 2.1})


class TestStringency:
    """The paper's Section-V argument: per-item sufficient conditions are
    never better than the joint necessary-and-sufficient one."""

    @pytest.mark.parametrize("rates", [
        {"x": 1.0, "y": 1.0},
        {"x": 5.0, "y": 0.5},
        {"x": 0.1, "y": 3.0},
    ])
    def test_optimal_refresh_dominates_sharfman(self, rates):
        query = parse_query("x*y : 50")
        values = {"x": 40.0, "y": 20.0}
        model = CostModel(rates=rates)
        optimal = OptimalRefreshPlanner(model).plan(query, values)
        baseline = SharfmanStyleBaseline(model).plan(query, values)
        assert model.estimated_refresh_rate(optimal.primary) <= \
            model.estimated_refresh_rate(baseline.primary) * (1 + 1e-6)

    def test_optimal_refresh_dominates_uniform(self):
        query = parse_query("x*y : 50")
        values = {"x": 40.0, "y": 20.0}
        model = CostModel(rates={"x": 5.0, "y": 0.5})
        optimal = OptimalRefreshPlanner(model).plan(query, values)
        baseline = UniformAllocationBaseline(model).plan(query, values)
        assert model.estimated_refresh_rate(optimal.primary) < \
            model.estimated_refresh_rate(baseline.primary)

    def test_gap_widens_with_rate_skew(self):
        """More heterogeneous λ ⇒ relatively worse baseline (it cannot see
        rates at all)."""
        query = parse_query("x*y : 50")
        values = {"x": 40.0, "y": 20.0}
        ratios = []
        for skew in (1.0, 4.0, 16.0):
            model = CostModel(rates={"x": skew, "y": 1.0})
            optimal = OptimalRefreshPlanner(model).plan(query, values)
            baseline = SharfmanStyleBaseline(model).plan(query, values)
            ratios.append(model.estimated_refresh_rate(baseline.primary)
                          / model.estimated_refresh_rate(optimal.primary))
        assert ratios[0] < ratios[-1]


class TestMultiplicativeSplit:
    def test_product_growth_exact(self):
        """For a single product term the multiplicative split satisfies the
        QAB with equality: prod(V_i (1+r))^p = base (1 + B/base)."""
        query = parse_query("x*y : 50")
        values = {"x": 40.0, "y": 20.0}
        plan = SharfmanStyleBaseline().plan(query, values)
        deviation = max_query_deviation(query.terms, values, plan.primary)
        assert deviation == pytest.approx(50.0, rel=1e-9)

    def test_equal_relative_growth(self):
        query = parse_query("x*y : 50")
        values = {"x": 40.0, "y": 20.0}
        plan = SharfmanStyleBaseline().plan(query, values)
        rel_x = plan.primary["x"] / values["x"]
        rel_y = plan.primary["y"] / values["y"]
        assert rel_x == pytest.approx(rel_y, rel=1e-9)

    def test_nonpositive_value_rejected(self):
        query = parse_query("x*y : 5")
        with pytest.raises(FilterError):
            SharfmanStyleBaseline().plan(query, {"x": 0.0, "y": 1.0})

    def test_shared_item_takes_min(self):
        query = parse_query("x*y + 100 x*z : 5")
        values = {"x": 2.0, "y": 2.0, "z": 2.0}
        plan = SharfmanStyleBaseline().plan(query, values)
        # the heavy term (100 x z) forces the tighter bound on x
        deviation = max_query_deviation(query.terms, values, plan.primary)
        assert deviation <= query.qab * (1 + 1e-6)
