"""Unit tests for :mod:`repro.filters.assignment`."""

import pytest

from repro.exceptions import InvalidAssignmentError
from repro.filters import DABAssignment, MultiQueryAssignment, merge_primary
from repro.queries import parse_query


def make_dual():
    return DABAssignment(
        primary={"x": 0.5, "y": 0.5},
        secondary={"x": 2.0, "y": 1.5},
        reference_values={"x": 2.0, "y": 2.0},
        recompute_rate=0.4,
    )


class TestValidation:
    def test_valid_dual(self):
        a = make_dual()
        assert a.is_dual
        assert a.items == ("x", "y")
        assert a.primary_of("x") == 0.5

    def test_single_dab(self):
        a = DABAssignment(primary={"x": 1.0}, reference_values={"x": 2.0})
        assert not a.is_dual

    def test_nonpositive_primary_rejected(self):
        with pytest.raises(InvalidAssignmentError):
            DABAssignment(primary={"x": 0.0})

    def test_empty_primary_rejected(self):
        with pytest.raises(InvalidAssignmentError):
            DABAssignment(primary={})

    def test_secondary_below_primary_rejected(self):
        with pytest.raises(InvalidAssignmentError, match="dominate"):
            DABAssignment(primary={"x": 1.0}, secondary={"x": 0.5})

    def test_secondary_missing_item_rejected(self):
        with pytest.raises(InvalidAssignmentError, match="missing"):
            DABAssignment(primary={"x": 1.0, "y": 1.0}, secondary={"x": 2.0})

    def test_unknown_primary_lookup(self):
        with pytest.raises(KeyError):
            make_dual().primary_of("zz")


class TestWindow:
    def test_window_contains_inside(self):
        a = make_dual()
        assert a.window_contains({"x": 3.9, "y": 3.4})
        assert a.window_contains({"x": 0.1, "y": 0.6})

    def test_window_violated_outside(self):
        a = make_dual()
        assert not a.window_contains({"x": 4.2, "y": 2.0})
        assert a.violated_items({"x": 4.2, "y": 4.0}) == ["x", "y"]

    def test_window_ignores_unknown_items(self):
        a = make_dual()
        assert a.window_contains({"x": 2.0, "other": 1e9})

    def test_single_dab_window_breaks_on_any_change(self):
        a = DABAssignment(primary={"x": 1.0}, reference_values={"x": 2.0})
        assert a.window_contains({"x": 2.0})
        assert not a.window_contains({"x": 2.0001})
        assert a.violated_items({"x": 3.0}) == ["x"]


class TestGuarantees:
    def test_guarantees_qab_true(self):
        q = parse_query("x*y : 5")
        a = DABAssignment(primary={"x": 1.0, "y": 1.0},
                          reference_values={"x": 2.0, "y": 2.0})
        assert a.guarantees_qab(q, {"x": 2.0, "y": 2.0})

    def test_guarantees_qab_false_after_drift(self):
        q = parse_query("x*y : 5")
        a = DABAssignment(primary={"x": 1.0, "y": 1.0},
                          reference_values={"x": 2.0, "y": 2.0})
        assert not a.guarantees_qab(q, {"x": 3.0, "y": 2.0})

    def test_guarantees_over_window(self):
        """The Fig. 4 numbers: b=0.5 valid over the window up to (5.5, 4.5)."""
        q = parse_query("x*y : 5")
        a = DABAssignment(
            primary={"x": 0.5, "y": 0.5},
            secondary={"x": 2.9, "y": 1.9},
            reference_values={"x": 2.0, "y": 2.0},
        )
        assert a.guarantees_qab_over_window(q)
        too_wide = DABAssignment(
            primary={"x": 0.5, "y": 0.5},
            secondary={"x": 3.5, "y": 2.5},
            reference_values={"x": 2.0, "y": 2.0},
        )
        # At the edge (5.5, 4.5): 6*5 - 5.5*4.5 = 5.25 > 5
        assert not too_wide.guarantees_qab_over_window(q)

    def test_restricted_to(self):
        a = make_dual().restricted_to(["x"])
        assert a.items == ("x",)
        assert a.secondary == {"x": 2.0}


class TestMerging:
    def test_merge_primary_takes_min(self):
        a = DABAssignment(primary={"x": 1.0, "y": 3.0})
        b = DABAssignment(primary={"y": 2.0, "z": 5.0})
        merged = merge_primary([a, b])
        assert merged == {"x": 1.0, "y": 2.0, "z": 5.0}

    def test_merge_empty_rejected(self):
        with pytest.raises(InvalidAssignmentError):
            merge_primary([])

    def test_multi_query_assignment(self):
        a = DABAssignment(primary={"x": 1.0, "y": 3.0})
        b = DABAssignment(primary={"y": 2.0})
        multi = MultiQueryAssignment.from_assignments({"q1": a, "q2": b})
        assert multi.coordinator == {"x": 1.0, "y": 2.0}
        assert multi.items == ("x", "y")
        assert multi.primary_of("y") == 2.0
        assert multi.per_query["q1"] is a
