"""Tests for the LAQ closed form (technical-report extension)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import InvalidQueryError
from repro.filters import CostModel, assign_laq
from repro.filters.laq import laq_condition_satisfied
from repro.gp import GeometricProgram, Monomial
from repro.queries import PolynomialQuery, QueryTerm, parse_query


class TestClosedForm:
    def test_symmetric(self):
        q = parse_query("x + y : 2")
        plan = assign_laq(q, CostModel(rates={"x": 1.0, "y": 1.0}))
        assert plan.primary["x"] == pytest.approx(1.0)
        assert plan.primary["y"] == pytest.approx(1.0)

    def test_condition_tight(self):
        q = parse_query("2 a + 3 b : 6")
        plan = assign_laq(q, CostModel(rates={"a": 1.0, "b": 4.0}))
        assert laq_condition_satisfied(q, plan.primary)
        total = 2 * plan.primary["a"] + 3 * plan.primary["b"]
        assert total == pytest.approx(6.0, rel=1e-9)

    def test_matches_gp_solution_monotonic(self):
        """The closed form must agree with the general-purpose GP solver."""
        q = parse_query("2 a + 3 b + 0.5 c : 6")
        rates = {"a": 1.0, "b": 4.0, "c": 0.25}
        plan = assign_laq(q, CostModel(rates=rates))
        a, b, c = (Monomial.variable(n) for n in "abc")
        gp = GeometricProgram(objective=rates["a"] / a + rates["b"] / b + rates["c"] / c)
        gp.add_constraint(2 * a + 3 * b + 0.5 * c, 6.0)
        sol = gp.solve()
        for name in "abc":
            assert plan.primary[name] == pytest.approx(sol.values[name], rel=1e-3)

    def test_matches_gp_solution_random_walk(self):
        q = parse_query("2 a + 3 b : 6")
        rates = {"a": 1.0, "b": 4.0}
        plan = assign_laq(q, CostModel(ddm="random_walk", rates=rates))
        a, b = Monomial.variable("a"), Monomial.variable("b")
        gp = GeometricProgram(
            objective=rates["a"] ** 2 / a ** 2 + rates["b"] ** 2 / b ** 2)
        gp.add_constraint(2 * a + 3 * b, 6.0)
        sol = gp.solve()
        for name in "ab":
            assert plan.primary[name] == pytest.approx(sol.values[name], rel=1e-3)

    def test_negative_weights_use_absolute_value(self):
        q = PolynomialQuery(
            [QueryTerm(2.0, {"a": 1}), QueryTerm(-3.0, {"b": 1})], qab=6.0)
        plan = assign_laq(q, CostModel(rates={"a": 1.0, "b": 1.0}))
        assert laq_condition_satisfied(q.with_qab(6.0), plan.primary)
        mirrored = PolynomialQuery(
            [QueryTerm(2.0, {"a": 1}), QueryTerm(3.0, {"b": 1})], qab=6.0)
        mirror_plan = assign_laq(mirrored, CostModel(rates={"a": 1.0, "b": 1.0}))
        assert plan.primary == pytest.approx(mirror_plan.primary)

    def test_no_recompute_needed(self):
        q = parse_query("x + y : 2")
        plan = assign_laq(q, CostModel())
        assert plan.recompute_rate == 0.0
        assert plan.secondary is None


class TestValidation:
    def test_nonlinear_rejected(self):
        with pytest.raises(InvalidQueryError, match="degree"):
            assign_laq(parse_query("x*y : 5"), CostModel())

    def test_condition_checker(self):
        q = parse_query("2 a + 3 b : 6")
        assert laq_condition_satisfied(q, {"a": 1.0, "b": 1.0})
        assert not laq_condition_satisfied(q, {"a": 2.0, "b": 1.0})


class TestOptimalityProperty:
    @given(
        st.floats(min_value=0.2, max_value=8.0),
        st.floats(min_value=0.2, max_value=8.0),
        st.floats(min_value=0.2, max_value=8.0),
        st.floats(min_value=0.2, max_value=8.0),
        st.floats(min_value=0.1, max_value=0.9),
    )
    @settings(max_examples=40, deadline=None)
    def test_beats_any_manual_split(self, w1, w2, l1, l2, split):
        """The closed form minimises Σλ/b over Σ|w|b <= B: any manual
        budget split must cost at least as much."""
        q = PolynomialQuery(
            [QueryTerm(w1, {"a": 1}), QueryTerm(w2, {"b": 1})], qab=10.0)
        model = CostModel(rates={"a": l1, "b": l2})
        plan = assign_laq(q, model)
        optimal_cost = model.estimated_refresh_rate(plan.primary)
        manual = {"a": split * 10.0 / w1, "b": (1 - split) * 10.0 / w2}
        manual_cost = model.estimated_refresh_rate(manual)
        assert optimal_cost <= manual_cost * (1 + 1e-9)
