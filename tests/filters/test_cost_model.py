"""Unit tests for :mod:`repro.filters.cost_model` and the ddm formulas."""

import pytest

from repro.exceptions import FilterError
from repro.dynamics.models import DataDynamicsModel, refresh_rate, refresh_rate_monomial
from repro.filters import CostModel


class TestDdmFormulas:
    def test_monotonic_rate(self):
        assert refresh_rate(DataDynamicsModel.MONOTONIC, 2.0, 0.5) == pytest.approx(4.0)

    def test_random_walk_rate(self):
        assert refresh_rate(DataDynamicsModel.RANDOM_WALK, 2.0, 0.5) == pytest.approx(16.0)

    def test_bad_dab_rejected(self):
        with pytest.raises(FilterError):
            refresh_rate(DataDynamicsModel.MONOTONIC, 1.0, 0.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(FilterError):
            refresh_rate(DataDynamicsModel.MONOTONIC, -1.0, 1.0)

    def test_monomial_forms(self):
        mono = refresh_rate_monomial(DataDynamicsModel.MONOTONIC, 2.0, "b")
        assert mono.evaluate({"b": 0.5}) == pytest.approx(4.0)
        rw = refresh_rate_monomial(DataDynamicsModel.RANDOM_WALK, 2.0, "b")
        assert rw.evaluate({"b": 0.5}) == pytest.approx(16.0)

    def test_monomial_floors_zero_rate(self):
        mono = refresh_rate_monomial(DataDynamicsModel.MONOTONIC, 0.0, "b")
        assert mono.evaluate({"b": 1.0}) > 0.0

    def test_from_string(self):
        assert DataDynamicsModel.from_string("monotonic") is DataDynamicsModel.MONOTONIC
        assert DataDynamicsModel.from_string(DataDynamicsModel.RANDOM_WALK) \
            is DataDynamicsModel.RANDOM_WALK
        with pytest.raises(FilterError, match="unknown"):
            DataDynamicsModel.from_string("brownian")


class TestCostModel:
    def test_defaults(self):
        model = CostModel()
        assert model.ddm is DataDynamicsModel.MONOTONIC
        assert model.rate_of("anything") == pytest.approx(1.0)

    def test_string_ddm_coerced(self):
        assert CostModel(ddm="random_walk").ddm is DataDynamicsModel.RANDOM_WALK

    def test_negative_mu_rejected(self):
        with pytest.raises(FilterError):
            CostModel(recompute_cost=-1.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(FilterError):
            CostModel(rates={"x": -1.0})

    def test_zero_rate_floored(self):
        model = CostModel(rates={"x": 0.0})
        assert model.rate_of("x") > 0.0

    def test_refresh_objective_monotonic(self):
        model = CostModel(rates={"x": 2.0, "y": 8.0})
        objective = model.refresh_objective(["x", "y"])
        value = objective.evaluate({"b__x": 1.0, "b__y": 2.0})
        assert value == pytest.approx(2.0 / 1.0 + 8.0 / 2.0)

    def test_refresh_objective_random_walk(self):
        model = CostModel(ddm="random_walk", rates={"x": 2.0})
        value = model.refresh_objective(["x"]).evaluate({"b__x": 1.0})
        assert value == pytest.approx(4.0)

    def test_refresh_objective_needs_items(self):
        with pytest.raises(FilterError):
            CostModel().refresh_objective([])

    def test_estimated_rates(self):
        model = CostModel(rates={"x": 2.0, "y": 4.0})
        assert model.estimated_refresh_rate({"x": 1.0, "y": 2.0}) == pytest.approx(4.0)
        assert model.estimated_recompute_rate({"x": 1.0, "y": 2.0}) == pytest.approx(2.0)
        assert model.estimated_recompute_rate({}) == 0.0

    def test_total_cost(self):
        model = CostModel(recompute_cost=5.0)
        assert model.total_cost(100, 10) == pytest.approx(150.0)

    def test_with_recompute_cost(self):
        model = CostModel(rates={"x": 2.0}, recompute_cost=1.0)
        other = model.with_recompute_cost(7.0)
        assert other.recompute_cost == 7.0
        assert other.rate_of("x") == model.rate_of("x")
        assert model.recompute_cost == 1.0  # original untouched
