"""Tests for the general-PQ heuristics (paper Section III-B)."""

import pytest

from repro.exceptions import FilterError
from repro.filters import (
    CostModel,
    DifferentSumPlanner,
    DualDABPlanner,
    HalfAndHalfPlanner,
    OptimalRefreshPlanner,
)
from repro.filters.heuristics import dispatch_planner
from repro.queries import parse_query
from repro.queries.deviation import max_query_deviation


@pytest.fixture(scope="module")
def mixed_query():
    return parse_query("x*y - u*v : 5", name="mixed")


@pytest.fixture(scope="module")
def mixed_values():
    return {"x": 2.0, "y": 2.0, "u": 3.0, "v": 1.0}


@pytest.fixture(scope="module")
def mixed_model(mixed_values):
    return CostModel(rates={k: 1.0 for k in mixed_values}, recompute_cost=2.0)


class TestCorrectness:
    """Both heuristics must satisfy Condition 1: the triangle-bound
    deviation under the assigned DABs stays within the QAB."""

    def test_half_and_half_guarantees_qab(self, mixed_query, mixed_values, mixed_model):
        plan = HalfAndHalfPlanner(mixed_model).plan(mixed_query, mixed_values)
        deviation = max_query_deviation(mixed_query.terms, mixed_values, plan.primary)
        assert deviation <= mixed_query.qab * (1 + 1e-6)

    def test_different_sum_guarantees_qab(self, mixed_query, mixed_values, mixed_model):
        plan = DifferentSumPlanner(mixed_model).plan(mixed_query, mixed_values)
        deviation = max_query_deviation(mixed_query.terms, mixed_values, plan.primary)
        assert deviation <= mixed_query.qab * (1 + 1e-6)

    def test_dual_windows_valid(self, mixed_query, mixed_values, mixed_model):
        for planner_cls in (HalfAndHalfPlanner, DifferentSumPlanner):
            plan = planner_cls(mixed_model).plan(mixed_query, mixed_values)
            mirror = mixed_query.positive_mirror()
            edge = {k: mixed_values[k] + plan.secondary[k] for k in plan.primary}
            deviation = max_query_deviation(mirror.terms, edge, plan.primary)
            # the mirror's deviation bounds the original's (Claim 1)
            assert deviation <= mixed_query.qab * (1 + 1e-6)

    def test_all_items_covered(self, mixed_query, mixed_values, mixed_model):
        for planner_cls in (HalfAndHalfPlanner, DifferentSumPlanner):
            plan = planner_cls(mixed_model).plan(mixed_query, mixed_values)
            assert set(plan.primary) == set(mixed_query.variables)


class TestPpqPassThrough:
    def test_ppq_delegates_to_base(self, fig2_query, fig2_values, unit_cost_model):
        base = DualDABPlanner(unit_cost_model)
        hh = HalfAndHalfPlanner(unit_cost_model, base).plan(fig2_query, fig2_values)
        ds = DifferentSumPlanner(unit_cost_model, base).plan(fig2_query, fig2_values)
        direct = base.plan(fig2_query, fig2_values)
        assert hh.primary == pytest.approx(direct.primary, rel=1e-3)
        assert ds.primary == pytest.approx(direct.primary, rel=1e-3)

    def test_all_negative_query(self, unit_cost_model):
        q = parse_query("-x*y : 5", name="allneg")
        plan = HalfAndHalfPlanner(unit_cost_model).plan(q, {"x": 2.0, "y": 2.0})
        # -P moves exactly as much as P: same bounds as the positive case
        assert plan.primary["x"] == pytest.approx(plan.primary["y"], rel=1e-3)
        deviation = max_query_deviation(q.terms, {"x": 2.0, "y": 2.0}, plan.primary)
        assert deviation <= q.qab * (1 + 1e-6)


class TestSplitRatio:
    def test_invalid_ratio_rejected(self, unit_cost_model):
        for bad in (0.0, 1.0, -0.5):
            with pytest.raises(FilterError):
                HalfAndHalfPlanner(unit_cost_model, split_ratio=bad)

    def test_skewed_split_shifts_bounds(self, mixed_query, mixed_values, mixed_model):
        """Giving more of the QAB to the positive half loosens its DABs."""
        generous = HalfAndHalfPlanner(mixed_model, split_ratio=0.8).plan(
            mixed_query, mixed_values)
        stingy = HalfAndHalfPlanner(mixed_model, split_ratio=0.2).plan(
            mixed_query, mixed_values)
        assert generous.primary["x"] > stingy.primary["x"]
        assert generous.primary["u"] < stingy.primary["u"]


class TestDependentHalves:
    def test_shared_item_takes_min(self, unit_cost_model):
        q = parse_query("x^2 - x*y : 4", name="dep")
        values = {"x": 3.0, "y": 2.0}
        model = CostModel(rates={"x": 1.0, "y": 1.0}, recompute_cost=2.0)
        plan = HalfAndHalfPlanner(model).plan(q, values)
        # triangle-bound correctness even with shared items
        deviation = max_query_deviation(q.terms, values, plan.primary)
        assert deviation <= q.qab * (1 + 1e-6)
        assert not q.halves_are_independent()

    def test_different_sum_dependent(self):
        q = parse_query("x^2 - x*y : 4", name="dep2")
        values = {"x": 3.0, "y": 2.0}
        model = CostModel(rates={"x": 1.0, "y": 1.0}, recompute_cost=2.0)
        plan = DifferentSumPlanner(model).plan(q, values)
        deviation = max_query_deviation(q.terms, values, plan.primary)
        assert deviation <= q.qab * (1 + 1e-6)


class TestDispatch:
    def test_dispatch_variants(self, unit_cost_model):
        ds = dispatch_planner(unit_cost_model)
        assert isinstance(ds, DifferentSumPlanner)
        assert isinstance(ds.base, DualDABPlanner)
        hh = dispatch_planner(unit_cost_model, heuristic="half_and_half")
        assert isinstance(hh, HalfAndHalfPlanner)
        refresh_only = dispatch_planner(unit_cost_model, dual=False)
        assert isinstance(refresh_only.base, OptimalRefreshPlanner)

    def test_dispatch_unknown_heuristic(self, unit_cost_model):
        with pytest.raises(FilterError, match="unknown heuristic"):
            dispatch_planner(unit_cost_model, heuristic="thirds")
