"""Property-based equivalence suite for delta-driven incremental recompute.

The tentpole invariants of ISSUE 7, asserted over Hypothesis-generated
query banks and perturbation sequences:

1. **Fidelity** — every plan the delta planner ships (patched or not)
   satisfies the paper's QAB-over-window invariant
   (:meth:`DABAssignment.guarantees_qab_over_window`).
2. **Equivalence** — whenever a breach is answered with a Newton-KKT
   patch, the patched objective matches a from-scratch full multi-start
   solve at the same values to solver tolerance (the log-space program is
   convex, so a KKT point *is* the optimum — this suite is the empirical
   check on that argument).
3. **Pass-through** — in ``full`` mode the wrapper returns the inner
   planner's plan object untouched (bit-identity, not approximation).

Budget: the default ``ci`` Hypothesis profile keeps the suite under a
minute for tier-1; set ``REPRO_HYPOTHESIS_PROFILE=nightly`` for the
>=200-example nightly sweep.  The ``@example`` corpus pins seeds that
exercised every decline/accept path while the feature was built, so the
interesting cases run even at ``max_examples=1``.
"""

import math
import os

import numpy as np
import pytest
from hypothesis import assume, example, given, settings
from hypothesis import strategies as st

from repro.exceptions import GPError
from repro.filters import CostModel, DualDABPlanner
from repro.filters.delta_recompute import DeltaRecomputePlanner
from repro.queries import parse_query

settings.register_profile("ci", max_examples=25, deadline=None)
settings.register_profile("nightly", max_examples=200, deadline=None)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "ci"))

#: Relative tolerance for patched-vs-full objective agreement.  The full
#: solver itself only promises ~1e-6 feasibility, and an accepted patch
#: holds the KKT residual to 1e-7; observed disagreement is ~1e-9.
OBJECTIVE_RTOL = 1e-5


def _build_case(case_seed, qab_frac):
    """A deterministic (query, values, cost model) world from one seed.

    Everything — item count, term structure, exponents, rates, mu — comes
    from ``case_seed`` so ``@example`` pins are plain integers.
    """
    rng = np.random.default_rng(case_seed)
    n_items = int(rng.integers(2, 5))
    items = [f"i{k}" for k in range(n_items)]
    n_terms = int(rng.integers(1, 4))
    terms = []
    for _ in range(n_terms):
        width = int(rng.integers(1, min(n_items, 2) + 1))
        chosen = rng.choice(n_items, size=width, replace=False)
        factors = [f"{items[j]}^{int(rng.integers(1, 3))}" for j in chosen]
        coefficient = round(float(rng.uniform(0.5, 3.0)), 3)
        terms.append(f"{coefficient}*" + "*".join(factors))
    values = {name: round(float(rng.uniform(1.0, 10.0)), 4)
              for name in items}
    probe = parse_query(" + ".join(terms), qab=1.0, name=f"pq{case_seed}")
    qab = qab_frac * probe.evaluate(values)
    query = parse_query(" + ".join(terms), qab=qab, name=f"pq{case_seed}")
    rates = {name: round(float(rng.uniform(0.5, 2.0)), 3) for name in items}
    mu = round(float(rng.uniform(1.0, 10.0)), 3)
    model = CostModel(rates=rates, recompute_cost=mu)
    return query, values, model


def _perturb(values, perturb_seed, tick, magnitude):
    """Tick ``tick`` of a multiplicative random walk on the item values."""
    rng = np.random.default_rng((perturb_seed, tick))
    deltas = rng.uniform(-magnitude, magnitude, len(values))
    return {name: value * float(1.0 + d)
            for (name, value), d in zip(sorted(values.items()), deltas)}


def _delta_pair(model):
    """A delta-mode planner plus an independent full-solve reference."""
    delta = DeltaRecomputePlanner(
        DualDABPlanner(model, use_compiled=True), mode="delta")
    reference = DualDABPlanner(model, use_compiled=True)
    return delta, reference


class TestPatchedPlanEquivalence:
    """The headline property: patch ≡ full solve, QAB never violated."""

    @given(case_seed=st.integers(0, 2**20),
           qab_frac=st.floats(0.05, 0.5),
           perturb_seed=st.integers(0, 2**20),
           magnitude=st.floats(0.01, 0.25),
           ticks=st.integers(1, 4))
    # Seed-pinned regression corpus: shrunk cases that historically hit the
    # patch-accept, widen-patch, qab-guard and fallback paths respectively.
    @example(case_seed=12, qab_frac=0.25, perturb_seed=7,
             magnitude=0.05, ticks=3)
    @example(case_seed=901, qab_frac=0.08, perturb_seed=41,
             magnitude=0.2, ticks=2)
    @example(case_seed=4478, qab_frac=0.5, perturb_seed=0,
             magnitude=0.25, ticks=4)
    @example(case_seed=230000, qab_frac=0.05, perturb_seed=1,
             magnitude=0.01, ticks=1)
    def test_patched_objective_matches_full_solve(
            self, case_seed, qab_frac, perturb_seed, magnitude, ticks):
        query, values, model = _build_case(case_seed, qab_frac)
        delta, reference = _delta_pair(model)
        try:
            plan = delta.plan(query, values)      # cold solve
        except GPError:
            assume(False)
        assert plan.guarantees_qab_over_window(query)

        for tick in range(1, ticks + 1):
            values = _perturb(values, perturb_seed, tick, magnitude)
            patches_before = delta.stats.patches
            try:
                plan = delta.plan(query, values)
            except GPError:
                assume(False)
            # Invariant 1: fidelity holds for every shipped plan.
            assert plan.guarantees_qab_over_window(query)
            assert plan.recompute_rate > 0.0
            for item in query.variables:
                assert plan.secondary[item] >= plan.primary[item] * (1 - 1e-9)
            if delta.stats.patches == patches_before:
                continue                           # fell back: full solve ran
            # Invariant 2: the patch equals an independent full solve.
            try:
                full = reference.plan(query, values)
            except GPError:
                assume(False)
            assert math.isfinite(plan.objective)
            assert plan.objective == pytest.approx(
                full.objective, rel=OBJECTIVE_RTOL, abs=1e-9)

    @given(case_seed=st.integers(0, 2**20),
           qab_frac=st.floats(0.05, 0.5))
    @example(case_seed=77, qab_frac=0.3)
    def test_full_mode_is_bitwise_passthrough(self, case_seed, qab_frac):
        query, values, model = _build_case(case_seed, qab_frac)
        inner = DualDABPlanner(model, use_compiled=True)
        wrapper = DeltaRecomputePlanner(inner, mode="full")
        bare = DualDABPlanner(model, use_compiled=True)
        try:
            wrapped_plan = wrapper.plan(query, values)
            bare_plan = bare.plan(query, values)
        except GPError:
            assume(False)
        # Exact float equality, not approx: full mode may not perturb the
        # solve path in any way.
        assert wrapped_plan.primary == bare_plan.primary
        assert wrapped_plan.secondary == bare_plan.secondary
        assert wrapped_plan.recompute_rate == bare_plan.recompute_rate
        assert wrapped_plan.objective == bare_plan.objective
        assert wrapper.stats.full_solves == 1
        assert wrapper.stats.patches == 0 and wrapper.stats.fallbacks == 0


class TestDeterministicWalk:
    """A longer pinned random walk: exercises repeated patching with the
    warm-start state advancing each tick — independent of the Hypothesis
    budget, so CI always gets this coverage."""

    def test_fifty_tick_walk_stays_equivalent(self):
        query, values, model = _build_case(12, 0.25)
        delta, reference = _delta_pair(model)
        delta.plan(query, values)
        checked = 0
        for tick in range(1, 51):
            values = _perturb(values, 99, tick, 0.06)
            patches_before = delta.stats.patches
            plan = delta.plan(query, values)
            assert plan.guarantees_qab_over_window(query)
            if delta.stats.patches > patches_before:
                full = reference.plan(query, values)
                assert plan.objective == pytest.approx(
                    full.objective, rel=OBJECTIVE_RTOL, abs=1e-9)
                checked += 1
        # The walk must actually exercise the patch path, and mostly so.
        assert checked >= 10
        assert delta.stats.patch_hit_rate >= 0.7
        assert delta.stats.max_residual <= 10.0 * delta.kkt_tol

    def test_residual_counters_track_accepted_patches(self):
        query, values, model = _build_case(12, 0.25)
        delta, _ = _delta_pair(model)
        delta.plan(query, values)
        for tick in range(1, 11):
            values = _perturb(values, 5, tick, 0.04)
            delta.plan(query, values)
        stats = delta.stats
        assert stats.breaches == stats.patches + stats.fallbacks
        assert stats.cold_solves == 1
        if stats.patches:
            assert 0.0 <= stats.last_residual <= stats.max_residual
            assert stats.patch_newton_iterations >= stats.patches
        summary = stats.latency_summary()
        assert summary["mode"] == "delta"
        assert summary["samples"] == stats.breaches
        if stats.breaches:
            assert summary["p50_ms"] <= summary["p95_ms"] <= summary["p99_ms"]
