"""Tests for the Dual-DAB planner (paper Sections III-A.2 to III-A.5)."""

import pytest

from repro.exceptions import NotPositiveCoefficientError
from repro.filters import CostModel, DualDABPlanner, OptimalRefreshPlanner
from repro.filters.dual_dab import build_dual_dab_program, widen_secondary
from repro.queries import parse_query
from repro.queries.deviation import max_query_deviation


class TestStructure:
    def test_primary_more_stringent_than_optimal(self, fig2_query, fig2_values,
                                                 unit_cost_model):
        """The paper's key tradeoff: dual-DAB primaries are tighter than the
        refresh-optimal single DABs (Fig. 4: 0.5 vs 1.0)."""
        optimal = OptimalRefreshPlanner(unit_cost_model).plan(fig2_query, fig2_values)
        dual = DualDABPlanner(unit_cost_model).plan(fig2_query, fig2_values)
        for item in ("x", "y"):
            assert dual.primary[item] < optimal.primary[item]

    def test_secondary_dominates_primary(self, fig2_query, fig2_values, unit_cost_model):
        dual = DualDABPlanner(unit_cost_model).plan(fig2_query, fig2_values)
        for item in ("x", "y"):
            assert dual.secondary[item] >= dual.primary[item]

    def test_window_guarantee_holds(self, fig2_query, fig2_values, unit_cost_model):
        """Primary DABs must keep the QAB at the worst point of the window
        (Eq. 2) — the invariant that makes skipping recomputations safe."""
        dual = DualDABPlanner(unit_cost_model).plan(fig2_query, fig2_values)
        assert dual.guarantees_qab_over_window(fig2_query)

    def test_recompute_rate_positive(self, fig2_query, fig2_values, unit_cost_model):
        dual = DualDABPlanner(unit_cost_model).plan(fig2_query, fig2_values)
        assert dual.recompute_rate > 0.0

    def test_window_capped_by_values(self, fig2_query, fig2_values, unit_cost_model):
        dual = DualDABPlanner(unit_cost_model).plan(fig2_query, fig2_values)
        for item, value in fig2_values.items():
            assert dual.secondary[item] <= value * (1 + 1e-6)

    def test_mixed_sign_rejected(self):
        q = parse_query("x - u*v : 5")
        with pytest.raises(NotPositiveCoefficientError):
            DualDABPlanner(CostModel()).plan(q, {"x": 1.0, "u": 1.0, "v": 1.0})


class TestMuTradeoff:
    """Section III-A.3: larger μ ⇒ more stringent primaries, larger windows,
    fewer (estimated) recomputations, more refreshes."""

    @pytest.fixture(scope="class")
    def plans_by_mu(self, fig2_query, fig2_values):
        plans = {}
        for mu in (0.5, 2.0, 8.0):
            model = CostModel(rates={"x": 1.0, "y": 1.0}, recompute_cost=mu)
            plans[mu] = DualDABPlanner(model).plan(fig2_query, fig2_values)
        return plans

    def test_primaries_tighten_with_mu(self, plans_by_mu):
        mus = sorted(plans_by_mu)
        for low, high in zip(mus, mus[1:]):
            assert plans_by_mu[high].primary["x"] <= plans_by_mu[low].primary["x"] * (1 + 1e-6)

    def test_recompute_rate_falls_with_mu(self, plans_by_mu):
        mus = sorted(plans_by_mu)
        for low, high in zip(mus, mus[1:]):
            assert plans_by_mu[high].recompute_rate <= plans_by_mu[low].recompute_rate * (1 + 1e-6)

    def test_estimated_refreshes_rise_with_mu(self, plans_by_mu, unit_cost_model):
        mus = sorted(plans_by_mu)
        rates = [unit_cost_model.estimated_refresh_rate(plans_by_mu[m].primary)
                 for m in mus]
        for low, high in zip(rates, rates[1:]):
            assert high >= low * (1 - 1e-6)


class TestEnvelopesAndWidening:
    def test_max_envelope_supported(self, fig2_query, fig2_values, unit_cost_model):
        planner = DualDABPlanner(unit_cost_model, recompute_envelope="max")
        plan = planner.plan(fig2_query, fig2_values)
        assert plan.guarantees_qab_over_window(fig2_query)

    def test_bad_envelope_rejected(self, fig2_query, fig2_values, unit_cost_model):
        planner = DualDABPlanner(unit_cost_model, recompute_envelope="median")
        with pytest.raises(ValueError, match="recompute_envelope"):
            planner.plan(fig2_query, fig2_values)

    def test_widening_never_shrinks_windows(self):
        q = parse_query("2 x*y + y*z : 3")
        values = {"x": 4.0, "y": 3.0, "z": 5.0}
        model = CostModel(rates={"x": 2.0, "y": 1.0, "z": 0.2}, recompute_cost=1.0)
        raw = DualDABPlanner(model, widen_windows=False).plan(q, values)
        widened_secondary = widen_secondary(q, values, raw.primary, model)
        for item in raw.primary:
            assert widened_secondary[item] >= raw.secondary[item] * (1 - 1e-6)

    def test_widened_plan_still_guarantees_window(self):
        q = parse_query("2 x*y + y*z : 3")
        values = {"x": 4.0, "y": 3.0, "z": 5.0}
        model = CostModel(rates={"x": 2.0, "y": 1.0, "z": 0.2}, recompute_cost=1.0)
        plan = DualDABPlanner(model).plan(q, values)
        assert plan.guarantees_qab_over_window(q)

    def test_build_program_shape(self, fig2_query, fig2_values, unit_cost_model):
        program = build_dual_dab_program(fig2_query, fig2_values, unit_cost_model)
        names = {c.name for c in program.constraints}
        assert "qab" in names
        assert "recompute" in names
        assert "order[x]" in names and "window[y]" in names
        # variables: b, c per item plus R
        assert len(program.variables) == 5


class TestDataModels:
    def test_random_walk_less_stringent_dabs(self, fig2_query, fig2_values):
        """Figure 6's explanation: the λ²/b² objective of the random-walk
        model pushes toward less stringent DABs than λ/b (for λ < b scale)."""
        mono = DualDABPlanner(
            CostModel(ddm="monotonic", rates={"x": 0.2, "y": 0.2}, recompute_cost=2.0)
        ).plan(fig2_query, fig2_values)
        walk = DualDABPlanner(
            CostModel(ddm="random_walk", rates={"x": 0.2, "y": 0.2}, recompute_cost=2.0)
        ).plan(fig2_query, fig2_values)
        assert walk.primary["x"] > mono.primary["x"]

    def test_reference_values_recorded(self, fig2_query, fig2_values, unit_cost_model):
        plan = DualDABPlanner(unit_cost_model).plan(fig2_query, fig2_values)
        assert plan.reference_values == fig2_values
