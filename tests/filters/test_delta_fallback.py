"""Fallback-trigger tests for the delta-recompute planner (ISSUE 7).

A patch may *decline* for many reasons — an unreachable KKT tolerance, an
iteration budget too small for the drift, values too violent for a local
step, a degenerate start.  Every decline must (a) increment the fallback
counter with the reason recorded, (b) still answer the breach with the
full multi-start solve, and (c) ship a plan that holds the QAB invariant.
"""

import math

import pytest

from repro.exceptions import FilterError
from repro.filters import CostModel, DualDABPlanner
from repro.filters.caching import QuantisingCachePlanner
from repro.filters.delta_recompute import (
    DeltaRecomputePlanner,
    RECOMPUTE_MODES,
    find_delta_planner,
    newton_patch,
)
from repro.queries import parse_query


@pytest.fixture()
def world():
    query = parse_query("2*x^2*y + 0.5*y*z : 8", name="fbq")
    values = {"x": 2.0, "y": 3.0, "z": 1.5}
    model = CostModel(rates={"x": 1.0, "y": 1.2, "z": 0.8},
                      recompute_cost=4.0)
    return query, values, model


def _delta(model, **kwargs):
    return DeltaRecomputePlanner(
        DualDABPlanner(model, use_compiled=True), mode="delta", **kwargs)


class TestForcedDeclines:
    def test_unreachable_kkt_tol_declines_and_falls_back(self, world):
        query, values, model = world
        planner = _delta(model, kkt_tol=0.0)   # no finite residual passes
        planner.plan(query, values)
        plan = planner.plan(query, {k: v * 1.05 for k, v in values.items()})
        stats = planner.stats
        assert stats.patches == 0
        assert stats.fallbacks == 1
        assert stats.declines.get("main_kkt", 0) == 1
        # The breach was still answered, by the full solve, soundly.
        assert plan.guarantees_qab_over_window(query)
        assert plan.recompute_rate > 0.0

    def test_tiny_iteration_budget_declines_on_large_drift(self, world):
        query, values, model = world
        planner = _delta(model, max_newton_iterations=1,
                         max_working_set_rounds=1)
        planner.plan(query, values)
        shaken = {k: v * (1.8 if k == "x" else 0.6)
                  for k, v in values.items()}
        plan = planner.plan(query, shaken)
        stats = planner.stats
        assert stats.fallbacks == 1
        assert stats.patches == 0
        assert sum(stats.declines.values()) >= 1
        assert plan.guarantees_qab_over_window(query)

    def test_value_collapse_exceeds_log_step_budget(self, world):
        """A near-zero crossing: one item loses ~12 orders of magnitude,
        far beyond what the damped log-space steps can cover — the patch
        must decline rather than return a half-converged point."""
        query, values, model = world
        planner = _delta(model)
        planner.plan(query, values)
        crashed = dict(values)
        crashed["y"] = 1e-12
        plan = planner.plan(query, crashed)
        stats = planner.stats
        assert stats.fallbacks == 1
        assert stats.patches == 0
        assert plan.guarantees_qab_over_window(query)

    def test_fallback_reanchors_so_next_breach_can_patch(self, world):
        query, values, model = world
        planner = _delta(model, max_newton_iterations=1,
                         max_working_set_rounds=1)
        planner.plan(query, values)
        shaken = {k: v * (1.8 if k == "x" else 0.6)
                  for k, v in values.items()}
        planner.plan(query, shaken)
        assert planner.stats.fallbacks == 1
        # The full solve re-anchored the patch state: a gentle follow-up
        # breach patches (with a sane budget it converges in one round).
        planner.max_newton_iterations = 12
        planner.max_working_set_rounds = 4
        plan = planner.plan(query, {k: v * 1.02 for k, v in shaken.items()})
        assert planner.stats.patches == 1
        assert plan.guarantees_qab_over_window(query)

    def test_clear_warm_starts_forces_cold_solve(self, world):
        query, values, model = world
        planner = _delta(model)
        planner.plan(query, values)
        planner.clear_warm_starts()
        planner.plan(query, {k: v * 1.03 for k, v in values.items()})
        assert planner.stats.cold_solves == 2
        assert planner.stats.breaches == 0


class TestNewtonPatchGuards:
    """Degenerate starts are declines (None), never exceptions."""

    @pytest.fixture()
    def compiled(self, world):
        query, values, model = world
        inner = DualDABPlanner(model, use_compiled=True)
        inner.plan(query, values)
        return inner.compiled_template(query.name).compiled

    def test_no_start_declines(self, compiled):
        assert newton_patch(compiled, None) is None

    def test_missing_variable_declines(self, compiled):
        assert newton_patch(compiled, {"not_a_var": 1.0}) is None

    def test_nonpositive_value_declines(self, compiled):
        start = {name: 1.0 for name in compiled.variables}
        start[compiled.variables[0]] = 0.0
        assert newton_patch(compiled, start) is None
        start[compiled.variables[0]] = -2.0
        assert newton_patch(compiled, start) is None

    def test_nonfinite_value_declines(self, compiled):
        start = {name: 1.0 for name in compiled.variables}
        start[compiled.variables[0]] = math.nan
        assert newton_patch(compiled, start) is None
        start[compiled.variables[0]] = math.inf
        assert newton_patch(compiled, start) is None


class TestConstruction:
    def test_modes_are_the_public_tuple(self):
        assert RECOMPUTE_MODES == ("full", "delta")

    def test_unknown_mode_rejected(self, world):
        _, _, model = world
        inner = DualDABPlanner(model, use_compiled=True)
        with pytest.raises(FilterError, match="recompute mode"):
            DeltaRecomputePlanner(inner, mode="incremental")

    def test_delta_requires_compiled_templates(self, world):
        _, _, model = world
        inner = DualDABPlanner(model, use_compiled=False)
        with pytest.raises(FilterError, match="use_compiled"):
            DeltaRecomputePlanner(inner, mode="delta")
        # full mode tolerates a scalar inner planner (pure pass-through)
        DeltaRecomputePlanner(inner, mode="full")

    def test_find_delta_planner_walks_wrapper_stacks(self, world):
        _, _, model = world
        delta = _delta(model)
        cache = QuantisingCachePlanner(delta)
        assert find_delta_planner(cache) is delta
        assert find_delta_planner(delta) is delta
        assert find_delta_planner(DualDABPlanner(model)) is None
        assert find_delta_planner(None) is None
