"""Tests for the signomial (successive-condensation) planner."""

import pytest

from repro.exceptions import FilterError
from repro.filters import (
    CostModel,
    DifferentSumPlanner,
    HalfAndHalfPlanner,
    SignomialPlanner,
)
from repro.filters.signomial import condense_to_monomial
from repro.gp import Monomial, Posynomial
from repro.queries import parse_query
from repro.queries.signed import mixed_worst_deviation


@pytest.fixture(scope="module")
def mixed_query():
    return parse_query("x*y - u*v : 5", name="sig_test")


@pytest.fixture(scope="module")
def mixed_values():
    return {"x": 5.0, "y": 4.0, "u": 3.0, "v": 2.0}


@pytest.fixture(scope="module")
def model(mixed_values):
    return CostModel(rates={k: 1.0 for k in mixed_values}, recompute_cost=2.0)


class TestCondensation:
    def test_underestimates_everywhere(self):
        x, y = Monomial.variable("x"), Monomial.variable("y")
        posy = 2 * x + 3 * y + 1
        anchor = {"x": 1.5, "y": 0.8}
        condensed = condense_to_monomial(posy, anchor)
        # exactness at the anchor
        assert condensed.evaluate(anchor) == pytest.approx(posy.evaluate(anchor))
        # AM-GM under-estimation at other points
        for point in ({"x": 0.5, "y": 0.5}, {"x": 3.0, "y": 0.1},
                      {"x": 1.5, "y": 2.5}):
            assert condensed.evaluate(point) <= posy.evaluate(point) * (1 + 1e-12)

    def test_single_term_is_identity(self):
        x = Monomial.variable("x")
        posy = Posynomial([2 * x])
        condensed = condense_to_monomial(posy, {"x": 4.0})
        assert condensed == 2 * x


class TestPlannerGuarantees:
    def test_feasible_for_both_directions(self, mixed_query, mixed_values, model):
        plan = SignomialPlanner(model).plan(mixed_query, mixed_values)
        deviation = mixed_worst_deviation(mixed_query.terms, mixed_values,
                                          plan.primary, plan.secondary)
        assert deviation <= mixed_query.qab * (1 + 1e-5)

    def test_never_worse_than_different_sum(self, mixed_query, mixed_values, model):
        """Seeded at DS and monotone by construction."""
        ds = DifferentSumPlanner(model).plan(mixed_query, mixed_values)
        planner = SignomialPlanner(model)
        plan = planner.plan(mixed_query, mixed_values)
        assert plan.objective <= ds.objective * (1 + 1e-6)
        trace = planner.last_trace
        # objectives are monotone non-increasing across iterations
        for earlier, later in zip(trace.objectives, trace.objectives[1:]):
            assert later <= earlier * (1 + 1e-9)

    def test_strict_improvement_on_offsetting_halves(self, mixed_query,
                                                     mixed_values, model):
        """When the halves can offset, the exact condition buys real slack
        over the mirror: expect a solid improvement."""
        ds = DifferentSumPlanner(model).plan(mixed_query, mixed_values)
        plan = SignomialPlanner(model).plan(mixed_query, mixed_values)
        assert plan.objective < 0.85 * ds.objective

    def test_uses_full_budget(self, mixed_query, mixed_values, model):
        plan = SignomialPlanner(model).plan(mixed_query, mixed_values)
        deviation = mixed_worst_deviation(mixed_query.terms, mixed_values,
                                          plan.primary, plan.secondary)
        assert deviation >= 0.95 * mixed_query.qab

    def test_heavy_negative_half_still_sound(self, mixed_values, model):
        query = parse_query("x*y - 10 u*v : 20", name="heavy")
        plan = SignomialPlanner(model).plan(query, mixed_values)
        deviation = mixed_worst_deviation(query.terms, mixed_values,
                                          plan.primary, plan.secondary)
        assert deviation <= query.qab * (1 + 1e-5)

    def test_dependent_halves(self, model):
        query = parse_query("x^2 - x*y : 4", name="dep_sig")
        values = {"x": 3.0, "y": 2.0}
        small_model = CostModel(rates={"x": 1.0, "y": 1.0}, recompute_cost=2.0)
        ds = DifferentSumPlanner(small_model).plan(query, values)
        plan = SignomialPlanner(small_model).plan(query, values)
        assert plan.objective <= ds.objective * (1 + 1e-6)
        deviation = mixed_worst_deviation(query.terms, values,
                                          plan.primary, plan.secondary)
        assert deviation <= query.qab * (1 + 1e-5)

    def test_windows_respect_lower_edge(self, mixed_query, mixed_values, model):
        plan = SignomialPlanner(model).plan(mixed_query, mixed_values)
        for name in mixed_query.variables:
            assert plan.primary[name] + plan.secondary[name] <= \
                mixed_values[name] * (1 + 1e-5)

    def test_ppq_passthrough(self, model):
        from repro.filters import DualDABPlanner

        query = parse_query("x*y : 5", name="ppq_sig")
        values = {"x": 2.0, "y": 2.0}
        small = CostModel(rates={"x": 1.0, "y": 1.0}, recompute_cost=2.0)
        direct = DualDABPlanner(small).plan(query, values)
        via = SignomialPlanner(small).plan(query, values)
        assert via.primary == pytest.approx(direct.primary, rel=1e-3)

    def test_bad_max_iterations(self, model):
        with pytest.raises(FilterError):
            SignomialPlanner(model, max_iterations=0)


class TestPlannerVsHeuristics:
    def test_beats_both_heuristics_on_refresh_objective(self, mixed_query,
                                                        mixed_values, model):
        hh = HalfAndHalfPlanner(model).plan(mixed_query, mixed_values)
        ds = DifferentSumPlanner(model).plan(mixed_query, mixed_values)
        sp = SignomialPlanner(model).plan(mixed_query, mixed_values)
        sp_rate = model.estimated_refresh_rate(sp.primary)
        assert sp_rate <= model.estimated_refresh_rate(ds.primary) * (1 + 1e-6)
        assert sp_rate <= model.estimated_refresh_rate(hh.primary) * (1 + 1e-6)

    def test_simulation_integration(self):
        from repro.simulation import SimulationConfig, run_simulation
        from repro.workloads import scaled_scenario

        scenario = scaled_scenario(query_count=2, item_count=20,
                                   trace_length=101, source_count=3, seed=47,
                                   query_kind="arbitrage")
        config = SimulationConfig(
            queries=scenario.queries, traces=scenario.traces,
            algorithm="signomial", recompute_cost=2.0, source_count=3,
            seed=47, fidelity_interval=4,
        )
        metrics = run_simulation(config).metrics
        assert metrics.refreshes > 0

    def test_zero_delay_fidelity(self):
        from repro.simulation import SimulationConfig, run_simulation
        from repro.workloads import scaled_scenario

        scenario = scaled_scenario(query_count=2, item_count=20,
                                   trace_length=101, source_count=3, seed=47,
                                   query_kind="arbitrage")
        config = SimulationConfig(
            queries=scenario.queries, traces=scenario.traces,
            algorithm="signomial", recompute_cost=2.0, source_count=3,
            seed=47, zero_delay=True, fidelity_interval=1,
        )
        metrics = run_simulation(config).metrics
        assert metrics.fidelity_loss_percent == 0.0
