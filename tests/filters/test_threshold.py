"""Tests for threshold-crossing monitoring (extension module)."""

import pytest

from repro.exceptions import FilterError
from repro.filters import CostModel
from repro.filters.threshold import ThresholdMonitor, ThresholdQuery
from repro.queries import parse_query
from repro.queries.deviation import max_query_deviation


@pytest.fixture()
def spread_query():
    return parse_query("x*y - u*v : 1", name="spread")  # QAB replaced adaptively


@pytest.fixture()
def model():
    return CostModel(rates={"x": 1.0, "y": 1.0, "u": 1.0, "v": 1.0},
                     recompute_cost=2.0)


def threshold_query(q, threshold=0.0, theta=0.5):
    return ThresholdQuery(polynomial=q, threshold=threshold, theta=theta)


class TestThresholdQuery:
    def test_validation(self, spread_query):
        with pytest.raises(FilterError):
            ThresholdQuery(spread_query, 0.0, theta=1.0)
        with pytest.raises(FilterError):
            ThresholdQuery(spread_query, 0.0, floor=0.0)
        with pytest.raises(FilterError):
            ThresholdQuery(spread_query, float("inf"))

    def test_distance_and_bound(self, spread_query):
        tq = threshold_query(spread_query, threshold=10.0, theta=0.5)
        values = {"x": 4.0, "y": 5.0, "u": 2.0, "v": 3.0}  # P = 20 - 6 = 14
        assert tq.distance(values) == pytest.approx(4.0)
        assert tq.accuracy_bound(values) == pytest.approx(2.0)

    def test_bound_floors_at_threshold(self, spread_query):
        tq = threshold_query(spread_query, threshold=14.0)
        values = {"x": 4.0, "y": 5.0, "u": 2.0, "v": 3.0}
        assert tq.accuracy_bound(values) == tq.floor

    def test_crossed(self, spread_query):
        tq = threshold_query(spread_query, threshold=10.0)
        assert tq.crossed(9.0, 11.0)
        assert tq.crossed(11.0, 9.0)
        assert tq.crossed(11.0, 10.0)  # touching counts
        assert not tq.crossed(11.0, 12.0)


class TestMonitor:
    VALUES_FAR = {"x": 4.0, "y": 5.0, "u": 2.0, "v": 3.0}    # P = 14
    VALUES_NEAR = {"x": 3.0, "y": 4.0, "u": 2.0, "v": 0.75}  # P = 10.5

    def test_first_plan_always_happens(self, spread_query, model):
        monitor = ThresholdMonitor(threshold_query(spread_query, 10.0), model)
        assert monitor.needs_replan(self.VALUES_FAR)
        plan = monitor.plan(self.VALUES_FAR)
        assert plan is monitor.current_plan
        assert monitor.replan_count == 1

    def test_plan_respects_adaptive_bound(self, spread_query, model):
        monitor = ThresholdMonitor(threshold_query(spread_query, 10.0), model)
        plan = monitor.plan(self.VALUES_FAR)
        bound = monitor.planned_bound
        deviation = max_query_deviation(spread_query.terms, self.VALUES_FAR,
                                        plan.primary)
        assert deviation <= bound * (1 + 1e-6)

    def test_tightening_near_threshold(self, spread_query, model):
        monitor = ThresholdMonitor(threshold_query(spread_query, 10.0), model)
        far_plan = monitor.plan(self.VALUES_FAR)
        near_monitor = ThresholdMonitor(threshold_query(spread_query, 10.0), model)
        near_plan = near_monitor.plan(self.VALUES_NEAR)
        # distance 4.0 -> bound 2.0 vs distance 0.5 -> bound 0.25
        assert near_monitor.planned_bound < monitor.planned_bound
        mean_far = sum(far_plan.primary.values()) / len(far_plan.primary)
        mean_near = sum(near_plan.primary.values()) / len(near_plan.primary)
        assert mean_near < mean_far

    def test_hysteresis_prevents_thrashing(self, spread_query, model):
        monitor = ThresholdMonitor(threshold_query(spread_query, 10.0), model,
                                   replan_ratio=2.0)
        monitor.plan(self.VALUES_FAR)
        # a small drift inside the window and well within the ratio band
        nudged = dict(self.VALUES_FAR, x=4.05)
        assert not monitor.needs_replan(nudged)
        monitor.plan(nudged)
        assert monitor.replan_count == 1

    def test_replan_on_large_bound_shift(self, spread_query, model):
        monitor = ThresholdMonitor(threshold_query(spread_query, 10.0), model,
                                   replan_ratio=1.2)
        monitor.plan(self.VALUES_FAR)
        assert monitor.needs_replan(self.VALUES_NEAR)
        monitor.plan(self.VALUES_NEAR)
        assert monitor.replan_count == 2

    def test_replan_on_window_violation(self, spread_query, model):
        monitor = ThresholdMonitor(threshold_query(spread_query, 10.0), model)
        plan = monitor.plan(self.VALUES_FAR)
        escaped = dict(self.VALUES_FAR)
        escaped["x"] += plan.secondary["x"] * 2.0
        assert monitor.needs_replan(escaped)

    def test_alert_semantics(self, spread_query, model):
        monitor = ThresholdMonitor(threshold_query(spread_query, 10.0), model)
        monitor.plan(self.VALUES_FAR)
        # cache far from the threshold: no alert
        assert not monitor.coordinator_alert(self.VALUES_FAR, self.VALUES_FAR)
        # cached value within the planned bound of the threshold: alert
        near_cache = {"x": 2.0, "y": 5.0, "u": 0.1, "v": 1.0}  # P = 9.9
        assert monitor.coordinator_alert(self.VALUES_FAR, near_cache)

    def test_no_missed_crossing_invariant(self, spread_query, model):
        """The guarantee behind theta < 1: if the coordinator does not
        alert, the truth cannot have crossed (cache within bound)."""
        monitor = ThresholdMonitor(threshold_query(spread_query, 10.0,
                                                   theta=0.5), model)
        monitor.plan(self.VALUES_FAR)
        bound = monitor.planned_bound
        cached_value = spread_query.evaluate(self.VALUES_FAR)
        # any truth within the bound of the cached view:
        worst_truth = cached_value - bound
        assert worst_truth > 10.0, \
            "with B = theta*distance the truth cannot reach the threshold"

    def test_invalid_replan_ratio(self, spread_query, model):
        with pytest.raises(FilterError):
            ThresholdMonitor(threshold_query(spread_query, 10.0), model,
                             replan_ratio=1.0)
