"""Compiled-GP templates must hand the solver bitwise-identical arrays —
and hence return bitwise-identical solutions — to the scalar builders."""

import numpy as np
import pytest

from repro.dynamics.models import DataDynamicsModel
from repro.filters.compiled_gp import (
    CompiledDualDabTemplate,
    CompiledOptimalRefreshTemplate,
)
from repro.filters.cost_model import CostModel
from repro.filters.dual_dab import (
    DualDABPlanner,
    build_dual_dab_program,
    build_widen_program,
    widen_secondary,
)
from repro.filters.optimal_refresh import (
    OptimalRefreshPlanner,
    build_optimal_refresh_program,
)
from repro.queries import parse_query


def _assert_same_arrays(compiled, reference):
    assert compiled.variables == reference.variables
    assert compiled.constraint_names == reference.constraint_names
    assert np.array_equal(compiled.objective.A, reference.objective.A)
    assert np.array_equal(compiled.objective.log_c, reference.objective.log_c)
    assert len(compiled.constraints) == len(reference.constraints)
    for mine, theirs in zip(compiled.constraints, reference.constraints):
        assert np.array_equal(mine.A, theirs.A)
        assert np.array_equal(mine.log_c, theirs.log_c)


QUERIES = [
    parse_query("2 x*y + x^2 : 5", name="mixed"),
    parse_query("x^3 + 4 y*z + x*z^2 : 20", name="cubic"),
    parse_query("x : 1", name="linear"),
]

VALUE_SETS = [
    {"x": 10.0, "y": 20.0, "z": 5.0},
    {"x": 13.7, "y": 18.2, "z": 6.6},
    {"x": 9.1, "y": 26.0, "z": 4.2},
]


@pytest.mark.parametrize("ddm", [DataDynamicsModel.MONOTONIC,
                                 DataDynamicsModel.RANDOM_WALK])
@pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.name)
def test_dual_dab_template_matches_scalar_compile(query, ddm):
    rates = {"x": 1.0, "y": 2.0, "z": 0.5}
    cost_model = CostModel(rates=rates, recompute_cost=5.0, ddm=ddm)
    template = CompiledDualDabTemplate(query, VALUE_SETS[0], cost_model)
    for values in VALUE_SETS:
        # mutate live rates between solves, like OnlineRateTracker does
        rates["x"] += 0.125
        template.refresh(values)
        reference = build_dual_dab_program(query, values, cost_model).compile()
        _assert_same_arrays(template.compiled, reference)


@pytest.mark.parametrize("envelope", ["sum", "max"])
def test_dual_dab_template_matches_scalar_compile_envelopes(envelope):
    query = QUERIES[0]
    cost_model = CostModel(rates={"x": 1.0, "y": 2.0}, recompute_cost=5.0)
    template = CompiledDualDabTemplate(
        query, VALUE_SETS[0], cost_model, recompute_envelope=envelope)
    template.refresh(VALUE_SETS[1])
    reference = build_dual_dab_program(
        query, VALUE_SETS[1], cost_model, recompute_envelope=envelope).compile()
    _assert_same_arrays(template.compiled, reference)


@pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.name)
def test_optimal_refresh_template_matches_scalar_compile(query):
    cost_model = CostModel(rates={"x": 1.5, "y": 0.25, "z": 3.0})
    template = CompiledOptimalRefreshTemplate(query, VALUE_SETS[0], cost_model)
    for values in VALUE_SETS:
        template.refresh(values)
        reference = build_optimal_refresh_program(query, values, cost_model).compile()
        _assert_same_arrays(template.compiled, reference)


@pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.name)
def test_widen_template_matches_scalar_compile(query):
    cost_model = CostModel(rates={"x": 1.0, "y": 2.0, "z": 0.5})
    primary = {name: 0.005 for name in query.variables}
    main = CompiledDualDabTemplate(query, VALUE_SETS[0], cost_model)
    main.widen(VALUE_SETS[0], primary)
    widen = main._widen
    for values in VALUE_SETS:
        reference = build_widen_program(query, values, primary, cost_model)
        if widen.substituted.is_constant:
            # The fully-substituted QAB row is dropped by compile(); the
            # template must make the same infeasibility judgement instead.
            widen.refresh(values, primary)
            continue
        widen.refresh(values, primary)
        _assert_same_arrays(widen.compiled, reference.compile())


@pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.name)
def test_planner_solutions_identical(query):
    """End to end: compiled planners return the exact scalar assignments,
    warm starts included."""
    values = VALUE_SETS[0]
    for make in (
        lambda cm, c: DualDABPlanner(cm, use_compiled=c),
        lambda cm, c: OptimalRefreshPlanner(cm, use_compiled=c),
    ):
        cost_model = CostModel(rates={"x": 1.0, "y": 2.0, "z": 0.5},
                               recompute_cost=5.0)
        scalar = make(cost_model, False)
        compiled = make(cost_model, True)
        for vals in VALUE_SETS:
            a = scalar.plan(query, vals)
            b = compiled.plan(query, vals)
            assert a.primary == b.primary
            assert a.secondary == b.secondary
            assert a.reference_values == b.reference_values
            assert a.recompute_rate == b.recompute_rate
            assert a.objective == b.objective


def test_widen_secondary_equivalence():
    query = QUERIES[1]
    cost_model = CostModel(rates={"x": 1.0, "y": 2.0, "z": 0.5})
    values = VALUE_SETS[1]
    primary = {name: 0.005 for name in query.variables}
    main = CompiledDualDabTemplate(query, values, cost_model)
    assert main.widen(values, primary) == widen_secondary(
        query, values, primary, cost_model)
