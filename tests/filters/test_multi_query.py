"""Tests for EQI / AAO (paper Section IV)."""

import pytest

from repro.exceptions import FilterError, NotPositiveCoefficientError
from repro.filters import AAOPlanner, CostModel, EQIPlanner
from repro.filters.multi_query import AAOTSchedule, rename_posynomial
from repro.gp.monomial import Monomial
from repro.gp.posynomial import Posynomial
from repro.queries import parse_query
from repro.queries.deviation import max_query_deviation


@pytest.fixture(scope="module")
def two_queries():
    return [
        parse_query("x*y : 5", name="mq1"),
        parse_query("y*z : 4", name="mq2"),
    ]


@pytest.fixture(scope="module")
def three_values():
    return {"x": 2.0, "y": 2.0, "z": 3.0}


@pytest.fixture(scope="module")
def model(three_values):
    return CostModel(rates={k: 1.0 for k in three_values}, recompute_cost=2.0)


class TestRenamePosynomial:
    def test_rename(self):
        p = Posynomial([Monomial(2.0, {"a": 1.0, "b": 2.0})])
        renamed = rename_posynomial(p, {"a": "a2"})
        assert renamed.variables == ("a2", "b")
        assert renamed.evaluate({"a2": 3.0, "b": 1.0}) == pytest.approx(6.0)

    def test_identity_for_unmapped(self):
        p = Posynomial([Monomial.variable("a")])
        assert rename_posynomial(p, {}) == p


class TestEQI:
    def test_coordinator_is_min_merge(self, two_queries, three_values, model):
        multi = EQIPlanner(model).plan_all(two_queries, three_values)
        shared = multi.coordinator["y"]
        per_query_y = [multi.per_query[q.name].primary["y"] for q in two_queries]
        assert shared == pytest.approx(min(per_query_y))

    def test_every_query_guaranteed(self, two_queries, three_values, model):
        multi = EQIPlanner(model).plan_all(two_queries, three_values)
        for query in two_queries:
            bounds = {k: multi.coordinator[k] for k in query.variables}
            deviation = max_query_deviation(query.terms, three_values, bounds)
            assert deviation <= query.qab * (1 + 1e-6)

    def test_handles_general_queries(self, model):
        queries = [parse_query("x*y - u*v : 5", name="mixed_eqi")]
        values = {"x": 2.0, "y": 2.0, "u": 1.0, "v": 1.0}
        multi = EQIPlanner(CostModel(rates={k: 1.0 for k in values})).plan_all(
            queries, values)
        assert set(multi.coordinator) == {"x", "y", "u", "v"}

    def test_empty_rejected(self, model, three_values):
        with pytest.raises(FilterError):
            EQIPlanner(model).plan_all([], three_values)

    def test_replan_single_query(self, two_queries, three_values, model):
        planner = EQIPlanner(model)
        multi = planner.plan_all(two_queries, three_values)
        drifted = dict(three_values, y=2.5)
        updated = planner.replan(multi, two_queries[0], drifted)
        assert updated.per_query["mq2"] is multi.per_query["mq2"]
        assert updated.per_query["mq1"] is not multi.per_query["mq1"]
        assert set(updated.coordinator) == set(multi.coordinator)


class TestAAO:
    def test_shared_primary_across_queries(self, two_queries, three_values, model):
        multi = AAOPlanner(model).plan_all(two_queries, three_values)
        y1 = multi.per_query["mq1"].primary["y"]
        y2 = multi.per_query["mq2"].primary["y"]
        assert y1 == pytest.approx(y2, rel=1e-6)

    def test_secondary_is_per_query(self, two_queries, three_values, model):
        multi = AAOPlanner(model).plan_all(two_queries, three_values)
        c1 = multi.per_query["mq1"].secondary["y"]
        c2 = multi.per_query["mq2"].secondary["y"]
        # different QABs and partner items: windows should differ
        assert c1 != pytest.approx(c2, rel=1e-3)

    def test_window_guarantees_hold(self, two_queries, three_values, model):
        multi = AAOPlanner(model).plan_all(two_queries, three_values)
        for query in two_queries:
            assert multi.per_query[query.name].guarantees_qab_over_window(query)

    def test_aao_refresh_cost_at_most_eqi(self, two_queries, three_values, model):
        """AAO optimises the shared primaries jointly, so its estimated
        refresh rate cannot exceed EQI's min-merged one (the paper: AAO-T
        primaries are less stringent => fewer refreshes)."""
        eqi = EQIPlanner(model).plan_all(two_queries, three_values)
        aao = AAOPlanner(model).plan_all(two_queries, three_values)
        eqi_rate = model.estimated_refresh_rate(eqi.coordinator)
        aao_rate = model.estimated_refresh_rate(aao.coordinator)
        assert aao_rate <= eqi_rate * (1 + 1e-4)

    def test_rejects_mixed_sign(self, model):
        queries = [parse_query("x - u*v : 5", name="bad_aao")]
        with pytest.raises(NotPositiveCoefficientError):
            AAOPlanner(model).plan_all(queries, {"x": 1.0, "u": 1.0, "v": 1.0})

    def test_empty_rejected(self, model, three_values):
        with pytest.raises(FilterError):
            AAOPlanner(model).plan_all([], three_values)

    def test_program_variable_count(self, two_queries, three_values, model):
        program = AAOPlanner(model).build_program(two_queries, three_values)
        # 3 shared b, 2+2 per-query c, 2 R  ->  9 variables
        assert len(program.variables) == 9


class TestAAOTSchedule:
    def test_valid(self):
        assert AAOTSchedule(period=30).period == 30

    def test_invalid(self):
        with pytest.raises(FilterError):
            AAOTSchedule(period=0)
