"""Tests for the Optimal Refresh planner (paper Section III-A.1)."""

import pytest

from repro.exceptions import NotPositiveCoefficientError
from repro.filters import CostModel, OptimalRefreshPlanner
from repro.queries import parse_query
from repro.queries.deviation import max_query_deviation


class TestFig2Numbers:
    def test_symmetric_product(self, fig2_query, fig2_values, unit_cost_model):
        """Paper: for x*y:5 at V=(2,2) with equal rates the optimal
        assignment is b = (1, 1)."""
        plan = OptimalRefreshPlanner(unit_cost_model).plan(fig2_query, fig2_values)
        assert plan.primary["x"] == pytest.approx(1.0, abs=1e-4)
        assert plan.primary["y"] == pytest.approx(1.0, abs=1e-4)
        assert plan.secondary is None
        assert not plan.is_dual

    def test_constraint_active_at_optimum(self, fig2_query, fig2_values, unit_cost_model):
        plan = OptimalRefreshPlanner(unit_cost_model).plan(fig2_query, fig2_values)
        deviation = max_query_deviation(fig2_query.terms, fig2_values, plan.primary)
        assert deviation == pytest.approx(fig2_query.qab, rel=1e-4)

    def test_higher_rate_gets_wider_filter(self, fig2_query, fig2_values):
        """An item that changes faster should get a *less* stringent DAB
        (each refresh of it is expensive)."""
        model = CostModel(rates={"x": 9.0, "y": 1.0})
        plan = OptimalRefreshPlanner(model).plan(fig2_query, fig2_values)
        assert plan.primary["x"] > plan.primary["y"]

    def test_guarantees_condition_1(self, fig2_query, fig2_values, unit_cost_model):
        plan = OptimalRefreshPlanner(unit_cost_model).plan(fig2_query, fig2_values)
        assert plan.guarantees_qab(fig2_query, fig2_values)


class TestGeneralPpqs:
    def test_multi_term_query(self):
        q = parse_query("2 x*y + 3 y*z : 4")
        values = {"x": 5.0, "y": 2.0, "z": 7.0}
        model = CostModel(rates={"x": 1.0, "y": 2.0, "z": 0.5})
        plan = OptimalRefreshPlanner(model).plan(q, values)
        assert set(plan.primary) == {"x", "y", "z"}
        deviation = max_query_deviation(q.terms, values, plan.primary)
        assert deviation <= q.qab * (1 + 1e-6)

    def test_squares(self):
        q = parse_query("x^2 + y^2 : 2")
        values = {"x": 3.0, "y": 4.0}
        plan = OptimalRefreshPlanner(CostModel()).plan(q, values)
        assert plan.guarantees_qab(q, values)

    def test_random_walk_model(self, fig2_query, fig2_values):
        model = CostModel(ddm="random_walk", rates={"x": 1.0, "y": 1.0})
        plan = OptimalRefreshPlanner(model).plan(fig2_query, fig2_values)
        # symmetric problem: same answer as monotonic
        assert plan.primary["x"] == pytest.approx(plan.primary["y"], rel=1e-3)
        assert plan.guarantees_qab(fig2_query, fig2_values)

    def test_mixed_sign_rejected(self):
        q = parse_query("x*y - u*v : 5")
        with pytest.raises(NotPositiveCoefficientError, match="positive-coefficient"):
            OptimalRefreshPlanner(CostModel()).plan(
                q, {"x": 1.0, "y": 1.0, "u": 1.0, "v": 1.0})

    def test_warm_start_reuse(self, fig2_query, fig2_values, unit_cost_model):
        planner = OptimalRefreshPlanner(unit_cost_model)
        first = planner.plan(fig2_query, fig2_values)
        second = planner.plan(fig2_query, {"x": 2.01, "y": 2.0})
        assert second.primary["x"] == pytest.approx(first.primary["x"], rel=0.05)
        planner.clear_warm_starts()  # must not raise

    def test_objective_reported(self, fig2_query, fig2_values, unit_cost_model):
        plan = OptimalRefreshPlanner(unit_cost_model).plan(fig2_query, fig2_values)
        # objective = 1/bx + 1/by = 2 at b = (1, 1)
        assert plan.objective == pytest.approx(2.0, rel=1e-3)


class TestOptimality:
    def test_beats_equal_split(self):
        """The optimiser must do at least as well as naive equal DABs on the
        refresh objective, under heterogeneous rates."""
        q = parse_query("x*y : 50")
        values = {"x": 40.0, "y": 20.0}
        model = CostModel(rates={"x": 5.0, "y": 0.5})
        plan = OptimalRefreshPlanner(model).plan(q, values)
        optimal_cost = model.estimated_refresh_rate(plan.primary)
        # naive: equal b solving 20b + 40b + b^2 = 50 -> b ~ 0.8221
        naive_cost = model.estimated_refresh_rate({"x": 0.8221, "y": 0.8221})
        assert optimal_cost < naive_cost
