"""CLI figure subcommands at micro scale (the heavier paths)."""

import pytest

from repro.cli import main


class TestFigureCommands:
    def test_fig7_runs(self, capsys):
        code = main(["figures", "fig7", "--queries", "2", "--mus", "1",
                     "--items", "16", "--trace-length", "61"])
        assert code == 0
        out = capsys.readouterr().out
        assert "EQI" in out and "AAO-" in out
        assert "refreshes" in out and "total_cost" in out

    def test_fig8a_runs(self, capsys):
        code = main(["figures", "fig8a", "--queries", "2", "--mus", "1",
                     "--items", "16", "--trace-length", "61"])
        assert code == 0
        out = capsys.readouterr().out
        assert "HH, mu=1" in out and "DS, mu=1" in out

    def test_timing_runs(self, capsys):
        code = main(["figures", "timing", "--queries", "2", "--items", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "dual_dab_cold_ms" in out

    def test_plan_signomial_via_simulate(self, capsys):
        code = main(["simulate", "--queries", "2", "--items", "16",
                     "--duration", "40", "--workload", "arbitrage",
                     "--algorithm", "signomial", "--fidelity-interval", "10"])
        assert code == 0
        assert "refreshes" in capsys.readouterr().out
