"""End-to-end LAQ support: linear queries through the full simulator."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.dynamics import Trace, TraceSet
from repro.filters import CostModel
from repro.filters.laq import LAQPlanner
from repro.queries import parse_query
from repro.simulation import SimulationConfig, run_simulation


@pytest.fixture(scope="module")
def linear_world():
    rng = np.random.default_rng(3)
    traces = TraceSet([
        Trace(name, 100.0 + np.cumsum(rng.normal(scale=0.2, size=241)))
        for name in ("a", "b", "c", "d")
    ])
    queries = [
        parse_query("2 a + 3 b : 4", name="laq1"),
        parse_query("a + c + d : 3", name="laq2"),
    ]
    return queries, traces


class TestLAQPlanner:
    def test_plan_has_unbounded_window(self, linear_world):
        queries, traces = linear_world
        model = CostModel(rates={n: 0.2 for n in traces.items})
        plan = LAQPlanner(model).plan(queries[0], traces.initial_values())
        assert plan.is_dual
        # any realistic drift stays inside the window
        drifted = {n: v * 100 for n, v in traces.initial_values().items()}
        assert plan.window_contains(drifted)


class TestLAQSimulation:
    def test_runs_with_zero_recomputations(self, linear_world):
        """LAQ DABs are value-free: no recomputation should ever happen."""
        queries, traces = linear_world
        config = SimulationConfig(
            queries=queries, traces=traces, algorithm="laq",
            recompute_cost=5.0, source_count=2, seed=3, fidelity_interval=2,
        )
        metrics = run_simulation(config).metrics
        assert metrics.refreshes > 0
        assert metrics.recomputations == 0

    def test_zero_delay_fidelity(self, linear_world):
        queries, traces = linear_world
        config = SimulationConfig(
            queries=queries, traces=traces, algorithm="laq",
            recompute_cost=5.0, source_count=2, seed=3, zero_delay=True,
            fidelity_interval=1,
        )
        metrics = run_simulation(config).metrics
        assert metrics.fidelity_loss_percent == 0.0

    def test_nonlinear_query_rejected(self, linear_world):
        _queries, traces = linear_world
        bad = [parse_query("a*b : 5", name="nl")]
        config = SimulationConfig(queries=bad, traces=traces, algorithm="laq",
                                  source_count=2)
        with pytest.raises(SimulationError, match="degree-1"):
            run_simulation(config)

    def test_laq_beats_polynomial_machinery_on_refreshes(self, linear_world):
        """For linear queries the closed form is optimal in refreshes; the
        general dual-DAB path (which treats them as degree-1 posynomials)
        must not beat it."""
        queries, traces = linear_world
        results = {}
        for algorithm in ("laq", "dual_dab"):
            config = SimulationConfig(
                queries=queries, traces=traces, algorithm=algorithm,
                recompute_cost=5.0, source_count=2, seed=3, fidelity_interval=4,
            )
            results[algorithm] = run_simulation(config).metrics
        assert results["laq"].refreshes <= results["dual_dab"].refreshes * 1.3
        assert results["laq"].recomputations <= results["dual_dab"].recomputations
