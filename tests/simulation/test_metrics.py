"""Tests for the metrics collector (the paper's four metrics)."""

import pytest

from repro.simulation import MetricsCollector, QueryFidelity


class TestQueryFidelity:
    def test_unobserved_is_perfect(self):
        assert QueryFidelity().fidelity == 1.0
        assert QueryFidelity().loss_percent == 0.0

    def test_accounting(self):
        f = QueryFidelity()
        for ok in (True, True, False, True):
            f.record(ok)
        assert f.fidelity == pytest.approx(0.75)
        assert f.loss_percent == pytest.approx(25.0)


class TestMetricsCollector:
    def test_refresh_and_recompute_counters(self):
        m = MetricsCollector(recompute_cost=5.0)
        m.record_refresh()
        m.record_refresh(3)
        m.record_recomputation("q1")
        m.record_recomputation("q1")
        m.record_recomputation("q2")
        assert m.refreshes == 4
        assert m.recomputations == 3
        summary = m.summary()
        assert summary.recomputations_per_query == {"q1": 2, "q2": 1}

    def test_total_cost_formula(self):
        """Total cost = refreshes + μ · recomputations (paper metric 4)."""
        m = MetricsCollector(recompute_cost=5.0)
        m.record_refresh(100)
        for _ in range(7):
            m.record_recomputation("q")
        assert m.summary().total_cost == pytest.approx(100 + 5.0 * 7)

    def test_mean_fidelity_loss_across_queries(self):
        m = MetricsCollector(recompute_cost=1.0)
        for _ in range(4):
            m.record_fidelity("good", True)
        m.record_fidelity("bad", True)
        m.record_fidelity("bad", False)
        # good: 0% loss, bad: 50% loss -> mean 25%
        assert m.mean_fidelity_loss_percent() == pytest.approx(25.0)
        summary = m.summary()
        assert summary.per_query_loss_percent["bad"] == pytest.approx(50.0)
        assert summary.fidelity_loss_percent == pytest.approx(25.0)

    def test_no_queries_means_no_loss(self):
        assert MetricsCollector(1.0).mean_fidelity_loss_percent() == 0.0

    def test_auxiliary_counters(self):
        m = MetricsCollector(recompute_cost=1.0)
        m.record_dab_change_messages(4)
        m.record_user_notification()
        m.record_gp_solves(9)
        m.record_tick()
        m.record_tick()
        summary = m.summary()
        assert summary.dab_change_messages == 4
        assert summary.user_notifications == 1
        assert summary.gp_solves == 9
        assert summary.duration_ticks == 2
