"""End-to-end recompute-mode contract (ISSUE 7 satellite).

Three guarantees, on a pinned breach-heavy workload (10x GBM volatility so
secondary windows actually break — default traces produce almost no
recomputes):

1. **Golden bit-identity** — ``recompute_mode="full"`` (the default) runs
   the exact pre-delta solve path: the golden metrics tuple below was
   captured on this config with the delta wrapper in pass-through mode and
   must never drift; the vectorized full-mode run must also equal the
   ``vectorize=False`` scalar reference field for field.
2. **Observable equivalence** — a delta-mode run differs from the full-mode
   run *only* in the delta counters: every simulation-visible metric
   (refreshes, recomputations, fidelity, messages, notifications) is
   identical, because an accepted patch is the same optimum the full solve
   would have produced.
3. **Stats plane** — the patch/fallback/residual counters and the
   ``recompute_latency`` percentile summary surface through
   ``SimulationResult`` in both modes.
"""

import dataclasses

import pytest

from repro.exceptions import SimulationError
from repro.simulation import SimulationConfig, run_simulation
from repro.workloads import scaled_scenario

# (refreshes, recomputations, fidelity_loss_percent, dab_change_messages,
#  user_notifications, gp_solves) at seed 13, fidelity_interval 2,
# volatility 0.02 — captured from the full-mode (pass-through) solve path.
GOLDEN_FULL = (2499, 75, 0.0, 166, 946, 81)


def _config(mode, vectorize=True):
    scenario = scaled_scenario(query_count=6, item_count=20, trace_length=151,
                               source_count=4, seed=13, volatility=0.02)
    return SimulationConfig(queries=scenario.queries, traces=scenario.traces,
                            recompute_cost=5.0, source_count=4, seed=13,
                            fidelity_interval=2, vectorize=vectorize,
                            recompute_mode=mode)


@pytest.fixture(scope="module")
def full_result():
    return run_simulation(_config("full"))


@pytest.fixture(scope="module")
def delta_result():
    return run_simulation(_config("delta"))


class TestGoldenIdentity:
    def test_full_mode_matches_golden(self, full_result):
        m = full_result.metrics
        got = (m.refreshes, m.recomputations, m.fidelity_loss_percent,
               m.dab_change_messages, m.user_notifications, m.gp_solves)
        assert got == GOLDEN_FULL
        assert m.delta_patches == 0 and m.delta_fallbacks == 0

    def test_full_mode_equals_scalar_reference(self, full_result):
        """The wrapper in pass-through mode may not perturb a single
        metric relative to the scalar (vectorize=False) reference."""
        scalar = run_simulation(_config("full", vectorize=False))
        for field in dataclasses.fields(scalar.metrics):
            assert (getattr(full_result.metrics, field.name)
                    == getattr(scalar.metrics, field.name)), (
                f"full-mode run diverged from scalar reference on {field.name!r}")


class TestModeEquivalence:
    def test_delta_differs_only_in_delta_counters(self, full_result,
                                                  delta_result):
        allowed = {"delta_patches", "delta_fallbacks"}
        for field in dataclasses.fields(full_result.metrics):
            full_value = getattr(full_result.metrics, field.name)
            delta_value = getattr(delta_result.metrics, field.name)
            if field.name in allowed:
                continue
            assert delta_value == full_value, (
                f"delta mode changed simulation-visible metric {field.name!r}")

    def test_breaches_partition_into_patches_and_fallbacks(self, delta_result):
        m = delta_result.metrics
        assert m.delta_patches + m.delta_fallbacks == m.recomputations
        # ISSUE 7 acceptance: the clear majority of breaches patch.
        assert m.delta_patches / m.recomputations >= 0.7


class TestStatsPlane:
    def test_delta_latency_section(self, delta_result):
        latency = delta_result.recompute_latency
        assert delta_result.recompute_mode == "delta"
        assert latency["mode"] == "delta"
        assert latency["patches"] == delta_result.metrics.delta_patches
        assert latency["fallbacks"] == delta_result.metrics.delta_fallbacks
        assert latency["samples"] == latency["patches"] + latency["fallbacks"]
        assert latency["patch_hit_rate"] == pytest.approx(
            latency["patches"] / latency["samples"], abs=1e-4)
        assert 0.0 < latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]

    def test_full_latency_section(self, full_result):
        latency = full_result.recompute_latency
        assert full_result.recompute_mode == "full"
        assert latency["mode"] == "full"
        assert latency["patches"] == 0 and latency["fallbacks"] == 0
        assert latency["samples"] == latency["full_solves"] > 0
        assert latency["p50_ms"] > 0.0


class TestConfigValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationError, match="recompute_mode"):
            _config("incremental")

    def test_delta_requires_vectorize(self):
        with pytest.raises(SimulationError, match="vectorize"):
            _config("delta", vectorize=False)

    def test_delta_requires_dual_dab_family(self):
        scenario = scaled_scenario(query_count=2, item_count=16,
                                   trace_length=41, source_count=2, seed=1)
        with pytest.raises(SimulationError, match="dual-DAB"):
            SimulationConfig(queries=scenario.queries, traces=scenario.traces,
                             source_count=2, seed=1,
                             algorithm="optimal_refresh",
                             recompute_mode="delta")
