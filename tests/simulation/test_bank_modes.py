"""End-to-end bank-index mode contract (ISSUE 8).

Mirrors ``test_recompute_modes.py`` for the ``bank_index`` axis:

1. **Golden bit-identity** — ``bank_index="flat"`` (the default) runs the
   exact pre-index code path; the golden tuple from the recompute-mode
   suite must still hold when the flag is passed explicitly.
2. **Observable equivalence** — a shared-index run over a high-overlap
   query bank matches the flat run on *every* simulation-visible metric;
   only the mode-dependent bank stats fields (``bank_templates``,
   ``bank_dedup_ratio``) may differ, exactly as the delta counters do for
   ``recompute_mode``.
3. **Stats plane** — dedup figures surface through ``SimulationResult``
   and ``SimulationMetrics`` in shared mode and stay inert in flat mode.
"""

import dataclasses

import pytest

from repro.exceptions import SimulationError
from repro.simulation import SimulationConfig, run_simulation
from repro.workloads import generate_template_bank, scaled_scenario

# Same pinned tuple as tests/simulation/test_recompute_modes.GOLDEN_FULL:
# explicit --bank-index flat may not move it.
GOLDEN_FULL = (2499, 75, 0.0, 166, 946, 81)

BANK_QUERIES = 24
BANK_STRUCTURES = 4


def _golden_config(bank_index):
    scenario = scaled_scenario(query_count=6, item_count=20, trace_length=151,
                               source_count=4, seed=13, volatility=0.02)
    return SimulationConfig(queries=scenario.queries, traces=scenario.traces,
                            recompute_cost=5.0, source_count=4, seed=13,
                            fidelity_interval=2, vectorize=True,
                            bank_index=bank_index)


def _bank_config(bank_index):
    """A high-overlap bank: 24 queries over 4 monomial structures."""
    scenario = scaled_scenario(query_count=2, item_count=20, trace_length=121,
                               source_count=4, seed=13, volatility=0.02)
    queries = generate_template_bank(scenario.registry,
                                     scenario.initial_values,
                                     count=BANK_QUERIES,
                                     distinct_structures=BANK_STRUCTURES,
                                     seed=3)
    return SimulationConfig(queries=queries, traces=scenario.traces,
                            recompute_cost=5.0, source_count=4, seed=13,
                            fidelity_interval=2, vectorize=True,
                            bank_index=bank_index)


@pytest.fixture(scope="module")
def flat_result():
    return run_simulation(_bank_config("flat"))


@pytest.fixture(scope="module")
def shared_result():
    return run_simulation(_bank_config("shared"))


class TestGoldenIdentity:
    def test_explicit_flat_matches_golden(self):
        m = run_simulation(_golden_config("flat")).metrics
        got = (m.refreshes, m.recomputations, m.fidelity_loss_percent,
               m.dab_change_messages, m.user_notifications, m.gp_solves)
        assert got == GOLDEN_FULL


class TestModeEquivalence:
    def test_shared_differs_only_in_bank_stats_fields(self, flat_result,
                                                      shared_result):
        allowed = {"bank_templates", "bank_dedup_ratio"}
        for field in dataclasses.fields(flat_result.metrics):
            if field.name in allowed:
                continue
            flat_value = getattr(flat_result.metrics, field.name)
            shared_value = getattr(shared_result.metrics, field.name)
            assert shared_value == flat_value, (
                f"shared index changed simulation-visible metric "
                f"{field.name!r}")

    def test_workload_actually_notifies_and_recomputes(self, flat_result):
        # Equivalence over a silent run would prove nothing.
        m = flat_result.metrics
        assert m.user_notifications > 0
        assert m.recomputations > 0


class TestStatsPlane:
    def test_shared_reports_dedup(self, shared_result):
        assert shared_result.bank_index == "shared"
        stats = shared_result.bank_stats
        assert stats is not None
        assert stats["distinct_structures"] == BANK_STRUCTURES
        assert stats["queries"] == BANK_QUERIES
        assert stats["dedup_ratio"] == BANK_QUERIES / BANK_STRUCTURES
        assert stats["structure_hits"] == BANK_QUERIES - BANK_STRUCTURES
        assert stats["rebuilds"] == 0
        assert shared_result.metrics.bank_templates == BANK_STRUCTURES
        assert (shared_result.metrics.bank_dedup_ratio
                == BANK_QUERIES / BANK_STRUCTURES)

    def test_screening_counters_move(self, shared_result):
        stats = shared_result.bank_stats
        assert stats["screen_evaluated"] > 0
        assert stats["template_syncs"] > 0

    def test_flat_mode_is_inert(self, flat_result):
        assert flat_result.bank_index == "flat"
        assert flat_result.bank_stats is None
        assert flat_result.metrics.bank_templates == 0
        assert flat_result.metrics.bank_dedup_ratio == 0.0


class TestConfigValidation:
    def test_unknown_mode_rejected(self):
        scenario = scaled_scenario(query_count=2, item_count=20,
                                   trace_length=41, source_count=2, seed=1)
        with pytest.raises(SimulationError, match="bank_index"):
            SimulationConfig(queries=scenario.queries, traces=scenario.traces,
                             source_count=2, seed=1, bank_index="hashed")

    def test_shared_requires_vectorize(self):
        scenario = scaled_scenario(query_count=2, item_count=20,
                                   trace_length=41, source_count=2, seed=1)
        with pytest.raises(SimulationError, match="compiled"):
            SimulationConfig(queries=scenario.queries, traces=scenario.traces,
                             source_count=2, seed=1, vectorize=False,
                             bank_index="shared")
