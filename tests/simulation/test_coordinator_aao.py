"""Unit tests for the coordinator's AAO-periodic mode."""

import pytest

from repro.filters import AAOPlanner, CostModel, DualDABPlanner
from repro.filters.heuristics import DifferentSumPlanner
from repro.queries import parse_query
from repro.simulation import (
    Coordinator,
    Event,
    EventKind,
    EventQueue,
    MetricsCollector,
    RecomputeMode,
)


class _FakeSource:
    def __init__(self, source_id):
        self.source_id = source_id
        self.bounds = {}

    def set_bounds(self, bounds):
        self.bounds.update(bounds)

    def on_dab_change(self, event):
        self.set_bounds(event.payload["bounds"])


@pytest.fixture()
def aao_coordinator():
    queries = [parse_query("x*y : 5", name="aq1"),
               parse_query("y*z : 4", name="aq2")]
    values = {"x": 2.0, "y": 2.0, "z": 3.0}
    model = CostModel(rates={k: 1.0 for k in values}, recompute_cost=2.0)
    queue = EventQueue()
    metrics = MetricsCollector(recompute_cost=2.0)
    coordinator = Coordinator(
        queries=queries,
        planner=DifferentSumPlanner(model, DualDABPlanner(model)),
        mode=RecomputeMode.AAO_PERIODIC,
        queue=queue, metrics=metrics,
        initial_values=values,
        item_to_source={k: 0 for k in values},
        aao_planner=AAOPlanner(model),
        aao_period=30,
    )
    source = _FakeSource(0)
    coordinator.attach_sources([source])
    coordinator.initial_plan()
    return coordinator, queue, metrics, source


class TestAAOPeriodic:
    def test_initial_plan_schedules_first_period(self, aao_coordinator):
        coordinator, queue, _metrics, source = aao_coordinator
        times = []
        while queue:
            event = queue.pop()
            if event.kind is EventKind.AAO_PERIODIC:
                times.append(event.time)
        assert times == [30.0]
        assert set(source.bounds) == {"x", "y", "z"}

    def test_initial_plans_share_primaries(self, aao_coordinator):
        coordinator, _queue, _metrics, _source = aao_coordinator
        y1 = coordinator.plans["aq1"].primary["y"]
        y2 = coordinator.plans["aq2"].primary["y"]
        assert y1 == pytest.approx(y2, rel=1e-6)

    def test_periodic_event_recomputes_and_reschedules(self, aao_coordinator):
        coordinator, queue, metrics, _source = aao_coordinator
        while queue:
            queue.pop()
        coordinator.cache["x"] = 2.4
        coordinator.on_aao_periodic(Event(30.0, EventKind.AAO_PERIODIC))
        assert metrics.recomputations == 1  # one AAO solve == one recomputation
        next_times = []
        while queue:
            event = queue.pop()
            if event.kind is EventKind.AAO_PERIODIC:
                next_times.append(event.time)
        assert next_times == [60.0]
        # the new plans are centred on the drifted cache
        assert coordinator.plans["aq1"].reference_values["x"] == pytest.approx(2.4)

    def test_window_violation_patches_single_query(self, aao_coordinator):
        coordinator, _queue, metrics, _source = aao_coordinator
        plan = coordinator.plans["aq1"]
        outside = plan.reference_values["x"] + 2.0 * plan.secondary["x"]
        coordinator.on_refresh(Event(5.0, EventKind.REFRESH_ARRIVAL,
                                     {"item": "x", "value": outside,
                                      "source_id": 0}))
        per_query = metrics.summary().recomputations_per_query
        assert per_query.get("aq1") == 1
        assert "aq2" not in per_query

    def test_busy_time_scales_with_query_count(self, aao_coordinator):
        from repro.simulation.network import ConstantDelayModel

        coordinator, _queue, _metrics, _source = aao_coordinator
        coordinator.recompute_delay = ConstantDelayModel(0.1)
        coordinator.on_aao_periodic(Event(30.0, EventKind.AAO_PERIODIC))
        # 2 queries x 0.1s of solve time
        assert coordinator.busy_until == pytest.approx(30.2)
