"""Tests for the fault-injection model (config validation, substream
determinism, window semantics, CLI spec parsing)."""

import pytest

from repro.exceptions import SimulationError
from repro.simulation import (
    CrashWindow,
    DelaySpike,
    FaultConfig,
    FaultModel,
    PartitionWindow,
    parse_crash_spec,
    parse_delay_spike_spec,
    parse_partition_spec,
)
from repro.simulation.faults import DISABLED


class TestFaultConfig:
    def test_default_is_disabled(self):
        assert not FaultConfig().enabled

    @pytest.mark.parametrize("kwargs", [
        dict(loss_rate=0.01),
        dict(duplicate_rate=0.05),
        dict(crash_windows=(CrashWindow(0, 10.0, 20.0),)),
        dict(partitions=(PartitionWindow(5.0, 6.0),)),
        dict(delay_spikes=(DelaySpike(5.0, 6.0, 3.0),)),
    ])
    def test_any_channel_enables(self, kwargs):
        assert FaultConfig(**kwargs).enabled

    @pytest.mark.parametrize("kwargs", [
        dict(loss_rate=1.0),
        dict(loss_rate=-0.1),
        dict(duplicate_rate=1.5),
        dict(lease_duration=0.0),
        dict(heartbeat_interval=-1.0),
        dict(retry_timeout=0.0),
        dict(retry_max=-1),
        dict(suspect_drift_rel=-0.5),
    ])
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            FaultConfig(**kwargs)

    def test_bad_windows_rejected(self):
        with pytest.raises(SimulationError):
            CrashWindow(0, 10.0, 10.0)
        with pytest.raises(SimulationError):
            PartitionWindow(-1.0, 5.0)
        with pytest.raises(SimulationError):
            DelaySpike(0.0, 5.0, factor=0.5)

    def test_windows_normalised_to_tuples(self):
        config = FaultConfig(crash_windows=[CrashWindow(0, 1.0, 2.0)])
        assert isinstance(config.crash_windows, tuple)


class TestFaultModelDecisions:
    def test_disabled_is_inert_and_draws_no_rng(self):
        model = FaultModel(FaultConfig())
        assert not model.drop("src0->coord", 1.0)
        assert not model.duplicate("src0->coord", 1.0)
        assert model.delay_factor(1.0) == 1.0
        assert not model.is_crashed(0, 1.0)
        # The no-op guarantee: no per-link stream was ever created.
        assert model._streams == {}
        assert DISABLED._streams == {}

    def test_same_seed_reproduces_decisions(self):
        config = FaultConfig(loss_rate=0.3, seed=42)
        first, second = FaultModel(config), FaultModel(config)
        a = [first.drop("src0->coord", float(t)) for t in range(50)]
        b = [second.drop("src0->coord", float(t)) for t in range(50)]
        assert a == b
        assert any(a) and not all(a)  # 30% loss actually fires sometimes

    def test_different_seeds_differ(self):
        m1 = FaultModel(FaultConfig(loss_rate=0.3, seed=1))
        m2 = FaultModel(FaultConfig(loss_rate=0.3, seed=2))
        s1 = [m1.drop("l", float(t)) for t in range(100)]
        s2 = [m2.drop("l", float(t)) for t in range(100)]
        assert s1 != s2

    def test_links_are_independent_substreams(self):
        """Interleaving draws on link B must not perturb link A's stream."""
        config = FaultConfig(loss_rate=0.3, seed=7)
        alone = FaultModel(config)
        seq_alone = [alone.drop("src0->coord", float(t)) for t in range(40)]

        mixed = FaultModel(config)
        seq_mixed = []
        for t in range(40):
            mixed.drop("src1->coord", float(t))   # extra traffic elsewhere
            seq_mixed.append(mixed.drop("src0->coord", float(t)))
            mixed.drop("coord->src2", float(t))
        assert seq_mixed == seq_alone

    def test_partition_drops_everything_inside_window(self):
        model = FaultModel(FaultConfig(partitions=(PartitionWindow(10.0, 20.0),)))
        assert model.drop("any-link", 10.0)
        assert model.drop("other-link", 19.999)
        assert not model.drop("any-link", 9.999)
        assert not model.drop("any-link", 20.0)  # half-open interval

    def test_crash_window_is_per_source(self):
        model = FaultModel(FaultConfig(crash_windows=(CrashWindow(2, 5.0, 9.0),)))
        assert model.is_crashed(2, 5.0)
        assert model.is_crashed(2, 8.9)
        assert not model.is_crashed(2, 9.0)
        assert not model.is_crashed(1, 6.0)

    def test_delay_spike_takes_max_factor(self):
        model = FaultModel(FaultConfig(delay_spikes=(
            DelaySpike(0.0, 10.0, 3.0), DelaySpike(5.0, 15.0, 8.0))))
        assert model.delay_factor(2.0) == 3.0
        assert model.delay_factor(7.0) == 8.0   # overlapping: worst wins
        assert model.delay_factor(12.0) == 8.0
        assert model.delay_factor(20.0) == 1.0

    def test_duplicate_draws_separately_from_drop(self):
        config = FaultConfig(duplicate_rate=0.5, seed=3)
        model = FaultModel(config)
        decisions = [model.duplicate("l", 0.0) for _ in range(100)]
        assert any(decisions) and not all(decisions)


class TestSpecParsing:
    def test_crash_spec(self):
        windows = parse_crash_spec("2:100:160, 5:200:260")
        assert windows == (CrashWindow(2, 100.0, 160.0),
                           CrashWindow(5, 200.0, 260.0))

    def test_partition_spec(self):
        assert parse_partition_spec("50:80") == (PartitionWindow(50.0, 80.0),)

    def test_delay_spike_spec_with_default_factor(self):
        spikes = parse_delay_spike_spec("50:80:10,90:95")
        assert spikes[0] == DelaySpike(50.0, 80.0, 10.0)
        assert spikes[1].factor == 5.0

    @pytest.mark.parametrize("parser, text", [
        (parse_crash_spec, "1:2"),
        (parse_crash_spec, "a:1:2"),
        (parse_partition_spec, "1:2:3"),
        (parse_partition_spec, "x:2"),
        (parse_delay_spike_spec, "1"),
        (parse_delay_spike_spec, "1:2:z"),
    ])
    def test_malformed_specs_rejected(self, parser, text):
        with pytest.raises(SimulationError):
            parser(text)

    def test_empty_pieces_skipped(self):
        assert parse_crash_spec("") == ()
        assert parse_partition_spec(" , ") == ()
