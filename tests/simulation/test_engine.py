"""Tests for the event loop."""

import pytest

from repro.exceptions import SimulationError
from repro.simulation import Event, EventKind
from repro.simulation.engine import SimulationEngine


class TestTicking:
    def test_all_ticks_fire_in_order(self):
        engine = SimulationEngine(duration=5)
        seen = []
        engine.on_tick(seen.append)
        engine.run()
        assert seen == [0, 1, 2, 3, 4, 5]

    def test_fidelity_samples_interleave(self):
        engine = SimulationEngine(duration=3)
        order = []
        engine.on_tick(lambda t: order.append(("tick", t)))
        engine.on_fidelity_sample(lambda t: order.append(("sample", t)))
        engine.run()
        # each sample happens after its tick and before the next one
        assert order == [
            ("tick", 0), ("sample", 0),
            ("tick", 1), ("sample", 1),
            ("tick", 2), ("sample", 2),
            ("tick", 3), ("sample", 3),
        ]

    def test_fidelity_interval(self):
        engine = SimulationEngine(duration=6, fidelity_interval=3)
        samples = []
        engine.on_fidelity_sample(samples.append)
        engine.run()
        assert samples == [0, 3, 6]

    def test_validation(self):
        with pytest.raises(SimulationError):
            SimulationEngine(duration=0)
        with pytest.raises(SimulationError):
            SimulationEngine(duration=5, fidelity_interval=0)


class TestDispatch:
    def test_handler_called_with_event(self):
        engine = SimulationEngine(duration=2)
        received = []
        engine.on(EventKind.REFRESH_ARRIVAL, received.append)
        engine.queue.push(Event(0.7, EventKind.REFRESH_ARRIVAL, {"item": "x"}))
        engine.run()
        assert len(received) == 1
        assert received[0].payload["item"] == "x"

    def test_duplicate_handler_rejected(self):
        engine = SimulationEngine(duration=1)
        engine.on(EventKind.REFRESH_ARRIVAL, lambda e: None)
        with pytest.raises(SimulationError):
            engine.on(EventKind.REFRESH_ARRIVAL, lambda e: None)

    def test_missing_handler_raises(self):
        engine = SimulationEngine(duration=1)
        engine.queue.push(Event(0.5, EventKind.REFRESH_ARRIVAL, {}))
        with pytest.raises(SimulationError, match="no handler"):
            engine.run()

    def test_events_beyond_horizon_dropped(self):
        engine = SimulationEngine(duration=2)
        received = []
        engine.on(EventKind.REFRESH_ARRIVAL, received.append)
        engine.queue.push(Event(10.0, EventKind.REFRESH_ARRIVAL, {}))
        engine.run()
        assert received == []

    def test_handlers_can_push_events(self):
        """A handler scheduling follow-up work (e.g. a requeued refresh)
        must see it processed in the same run."""
        engine = SimulationEngine(duration=3)
        log = []

        def handler(event):
            log.append(event.time)
            if event.payload.get("chain"):
                engine.queue.push(Event(event.time + 1.0,
                                        EventKind.REFRESH_ARRIVAL, {}))

        engine.on(EventKind.REFRESH_ARRIVAL, handler)
        engine.queue.push(Event(0.5, EventKind.REFRESH_ARRIVAL, {"chain": True}))
        engine.run()
        assert log == [0.5, 1.5]
