"""Tests for the one-call simulation harness."""

import pytest

from repro.exceptions import SimulationError
from repro.simulation import AlgorithmName, SimulationConfig, run_simulation
from repro.workloads import scaled_scenario


@pytest.fixture(scope="module")
def scenario():
    return scaled_scenario(query_count=4, item_count=16, trace_length=121,
                           source_count=3, seed=13)


def run(scenario, **kwargs):
    defaults = dict(queries=scenario.queries, traces=scenario.traces,
                    recompute_cost=2.0, source_count=3, seed=13,
                    fidelity_interval=2)
    defaults.update(kwargs)
    return run_simulation(SimulationConfig(**defaults))


class TestConfigValidation:
    def test_algorithm_from_string(self, scenario):
        config = SimulationConfig(queries=scenario.queries, traces=scenario.traces,
                                  algorithm="dual_dab")
        assert config.algorithm is AlgorithmName.DUAL_DAB

    def test_unknown_algorithm(self, scenario):
        with pytest.raises(SimulationError, match="unknown algorithm"):
            SimulationConfig(queries=scenario.queries, traces=scenario.traces,
                             algorithm="magic")

    def test_duration_defaults_to_trace_length(self, scenario):
        config = SimulationConfig(queries=scenario.queries, traces=scenario.traces)
        assert config.duration == scenario.traces.duration

    def test_duration_beyond_traces_rejected(self, scenario):
        with pytest.raises(SimulationError, match="duration"):
            SimulationConfig(queries=scenario.queries, traces=scenario.traces,
                             duration=10_000)

    def test_queries_required(self, scenario):
        with pytest.raises(SimulationError):
            SimulationConfig(queries=[], traces=scenario.traces)

    def test_missing_traces_detected(self, scenario):
        from repro.queries import parse_query

        alien = parse_query("nosuchitem : 1", name="alien")
        with pytest.raises(SimulationError, match="no traces"):
            SimulationConfig(queries=[alien], traces=scenario.traces)

    def test_aao_t_needs_period(self, scenario):
        with pytest.raises(SimulationError, match="aao_period"):
            SimulationConfig(queries=scenario.queries, traces=scenario.traces,
                             algorithm="aao_t")

    def test_used_items(self, scenario):
        config = SimulationConfig(queries=scenario.queries, traces=scenario.traces)
        used = config.used_items
        assert used == sorted(set(used))
        assert all(any(i in q.variables for q in scenario.queries) for i in used)


class TestDeterminism:
    def test_same_seed_same_metrics(self, scenario):
        a = run(scenario, algorithm="dual_dab")
        b = run(scenario, algorithm="dual_dab")
        assert a.metrics.refreshes == b.metrics.refreshes
        assert a.metrics.recomputations == b.metrics.recomputations
        assert a.metrics.fidelity_loss_percent == b.metrics.fidelity_loss_percent


class TestAlgorithms:
    @pytest.mark.parametrize("algorithm", [
        "optimal_refresh", "dual_dab", "sharfman_baseline", "uniform_baseline",
    ])
    def test_runs_and_counts(self, scenario, algorithm):
        result = run(scenario, algorithm=algorithm)
        assert result.metrics.refreshes > 0
        # ticks 0..duration inclusive
        assert result.metrics.duration_ticks == scenario.traces.duration + 1

    def test_aao_t_runs(self, scenario):
        result = run(scenario, algorithm="aao_t", aao_period=40)
        # periodic solves happen duration/period times (plus patches)
        assert result.metrics.recomputations >= scenario.traces.duration // 40

    def test_dual_dab_beats_optimal_refresh_on_recomputations(self, scenario):
        """The paper's headline: ≥9× fewer recomputations."""
        dual = run(scenario, algorithm="dual_dab")
        optimal = run(scenario, algorithm="optimal_refresh")
        assert dual.metrics.recomputations * 9 <= optimal.metrics.recomputations

    def test_optimal_refresh_has_fewest_refreshes(self, scenario):
        optimal = run(scenario, algorithm="optimal_refresh")
        dual = run(scenario, algorithm="dual_dab")
        baseline = run(scenario, algorithm="sharfman_baseline")
        assert optimal.metrics.refreshes <= dual.metrics.refreshes
        assert optimal.metrics.refreshes <= baseline.metrics.refreshes

    def test_total_cost_favors_dual_dab(self, scenario):
        dual = run(scenario, algorithm="dual_dab", recompute_cost=5.0)
        optimal = run(scenario, algorithm="optimal_refresh", recompute_cost=5.0)
        assert dual.metrics.total_cost < optimal.metrics.total_cost

    def test_cache_disabled_still_runs(self, scenario):
        result = run(scenario, algorithm="dual_dab", cache_grid=None,
                     duration=60)
        assert result.cache_misses == 0 and result.cache_hits == 0
        assert result.metrics.refreshes > 0

    def test_zero_delay_perfect_fidelity(self, scenario):
        for algorithm in ("dual_dab", "optimal_refresh"):
            result = run(scenario, algorithm=algorithm, zero_delay=True,
                         fidelity_interval=1)
            assert result.metrics.fidelity_loss_percent == 0.0
