"""Property-based tests of simulator invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dynamics import Trace, TraceSet
from repro.simulation import (
    EventKind,
    EventQueue,
    MetricsCollector,
    SourceNode,
    ZeroDelayModel,
)


@st.composite
def positive_series(draw):
    length = draw(st.integers(min_value=3, max_value=60))
    start = draw(st.floats(min_value=1.0, max_value=100.0))
    steps = draw(st.lists(
        st.floats(min_value=-0.5, max_value=0.5, allow_nan=False),
        min_size=length - 1, max_size=length - 1))
    values = [start]
    for step in steps:
        values.append(max(values[-1] + step, 0.1))
    return np.array(values)


class TestSourceFilterInvariant:
    @given(positive_series(), st.floats(min_value=0.05, max_value=2.0))
    @settings(max_examples=60, deadline=None)
    def test_pushes_exactly_when_filter_crossed(self, series, bound):
        """Replay a source tick by tick: a refresh happens iff the value
        moved strictly more than the DAB from the last pushed value, and
        after every push the filter re-centres."""
        traces = TraceSet([Trace("x", series)])
        queue = EventQueue()
        source = SourceNode(0, ["x"], traces, queue,
                            MetricsCollector(1.0), ZeroDelayModel())
        source.set_bounds({"x": bound})

        last_pushed = series[0]
        expected_pushes = []
        for tick in range(1, len(series)):
            if abs(series[tick] - last_pushed) > bound:
                last_pushed = series[tick]
                expected_pushes.append((tick, series[tick]))

        for tick in range(1, len(series)):
            source.on_tick(tick)

        actual = []
        while queue:
            event = queue.pop()
            assert event.kind is EventKind.REFRESH_ARRIVAL
            actual.append((int(event.time), event.payload["value"]))
        assert actual == expected_pushes

    @given(positive_series(), st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_cached_value_always_within_bound_of_source(self, series, bound):
        """Zero-delay replay: the last-pushed value is never more than the
        DAB away from the source's live value (Condition 1's data half)."""
        traces = TraceSet([Trace("x", series)])
        queue = EventQueue()
        source = SourceNode(0, ["x"], traces, queue,
                            MetricsCollector(1.0), ZeroDelayModel())
        source.set_bounds({"x": bound})
        for tick in range(1, len(series)):
            source.on_tick(tick)
            live = series[tick]
            assert abs(live - source.last_pushed["x"]) <= bound + 1e-12


class TestMetricsInvariants:
    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_fidelity_within_bounds(self, observations):
        collector = MetricsCollector(1.0)
        for ok in observations:
            collector.record_fidelity("q", ok)
        loss = collector.mean_fidelity_loss_percent()
        assert 0.0 <= loss <= 100.0
        expected = 100.0 * observations.count(False) / len(observations)
        assert loss == pytest.approx(expected)

    @given(st.integers(min_value=0, max_value=1000),
           st.integers(min_value=0, max_value=1000),
           st.floats(min_value=0.0, max_value=50.0))
    @settings(max_examples=50, deadline=None)
    def test_total_cost_linear_in_mu(self, refreshes, recomputations, mu):
        collector = MetricsCollector(mu)
        collector.record_refresh(refreshes)
        for _ in range(recomputations):
            collector.record_recomputation("q")
        assert collector.summary().total_cost == pytest.approx(
            refreshes + mu * recomputations)


class TestQabScalingProperty:
    @given(st.floats(min_value=1.5, max_value=4.0))
    @settings(max_examples=10, deadline=None)
    def test_looser_qab_means_fewer_or_equal_refreshes(self, factor):
        """Relaxing every query's accuracy bound can only reduce the
        refresh traffic (filters get wider everywhere)."""
        from repro.simulation import SimulationConfig, run_simulation
        from repro.workloads import scaled_scenario

        scenario = scaled_scenario(query_count=2, item_count=16,
                                   trace_length=81, source_count=2, seed=55)
        refreshes = {}
        for label, queries in (
            ("tight", scenario.queries),
            ("loose", [q.with_qab(q.qab * factor) for q in scenario.queries]),
        ):
            config = SimulationConfig(
                queries=queries, traces=scenario.traces, algorithm="dual_dab",
                recompute_cost=2.0, source_count=2, seed=55,
                fidelity_interval=10, zero_delay=True,
            )
            refreshes[label] = run_simulation(config).metrics.refreshes
        assert refreshes["loose"] <= refreshes["tight"] * 1.05 + 2
