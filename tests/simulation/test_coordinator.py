"""Tests for the coordinator's recompute policies and message fanout."""

import pytest

from repro.exceptions import SimulationError
from repro.filters import CostModel, DualDABPlanner, OptimalRefreshPlanner
from repro.filters.heuristics import DifferentSumPlanner
from repro.queries import parse_query
from repro.simulation import (
    Coordinator,
    Event,
    EventKind,
    EventQueue,
    MetricsCollector,
    RecomputeMode,
)
from repro.simulation.network import ConstantDelayModel


class _FakeSource:
    def __init__(self, source_id):
        self.source_id = source_id
        self.bounds = {}
        self.dab_changes = 0

    def set_bounds(self, bounds):
        self.bounds.update(bounds)

    def on_dab_change(self, event):
        self.dab_changes += 1
        self.set_bounds(event.payload["bounds"])


def make_coordinator(mode, mu=1.0, queries=None, values=None):
    queries = queries or [parse_query("x*y : 5", name="cq")]
    values = values or {"x": 2.0, "y": 2.0}
    model = CostModel(rates={k: 1.0 for k in values}, recompute_cost=mu)
    if mode is RecomputeMode.EVERY_REFRESH:
        planner = DifferentSumPlanner(model, OptimalRefreshPlanner(model))
    else:
        planner = DifferentSumPlanner(model, DualDABPlanner(model))
    queue = EventQueue()
    metrics = MetricsCollector(recompute_cost=mu)
    item_to_source = {name: 0 for q in queries for name in q.variables}
    coordinator = Coordinator(
        queries=queries, planner=planner, mode=mode, queue=queue,
        metrics=metrics, initial_values=values, item_to_source=item_to_source,
    )
    source = _FakeSource(0)
    coordinator.attach_sources([source])
    coordinator.initial_plan()
    return coordinator, queue, metrics, source


def refresh(time, item, value):
    return Event(time, EventKind.REFRESH_ARRIVAL,
                 {"item": item, "value": value, "source_id": 0})


class TestBootstrap:
    def test_initial_plan_seeds_sources(self):
        coordinator, _queue, _metrics, source = make_coordinator(
            RecomputeMode.ON_WINDOW_VIOLATION)
        assert set(source.bounds) == {"x", "y"}
        assert all(b > 0 for b in source.bounds.values())

    def test_duplicate_query_names_rejected(self):
        queries = [parse_query("x : 1", name="dup"), parse_query("y : 1", name="dup")]
        model = CostModel()
        with pytest.raises(SimulationError, match="unique"):
            Coordinator(queries=queries, planner=DifferentSumPlanner(model),
                        mode=RecomputeMode.EVERY_REFRESH, queue=EventQueue(),
                        metrics=MetricsCollector(1.0),
                        initial_values={"x": 1.0, "y": 1.0}, item_to_source={})

    def test_needs_queries(self):
        with pytest.raises(SimulationError):
            Coordinator(queries=[], planner=None,
                        mode=RecomputeMode.EVERY_REFRESH, queue=EventQueue(),
                        metrics=MetricsCollector(1.0), initial_values={},
                        item_to_source={})

    def test_aao_mode_requires_planner_and_period(self):
        with pytest.raises(SimulationError, match="AAO"):
            Coordinator(queries=[parse_query("x : 1")], planner=None,
                        mode=RecomputeMode.AAO_PERIODIC, queue=EventQueue(),
                        metrics=MetricsCollector(1.0),
                        initial_values={"x": 1.0}, item_to_source={})


class TestEveryRefreshPolicy:
    def test_each_refresh_recomputes(self):
        coordinator, _queue, metrics, _source = make_coordinator(
            RecomputeMode.EVERY_REFRESH)
        coordinator.on_refresh(refresh(1.0, "x", 2.5))
        coordinator.on_refresh(refresh(2.0, "x", 3.0))
        assert metrics.refreshes == 2
        assert metrics.recomputations == 2

    def test_cache_updated(self):
        coordinator, _queue, _metrics, _source = make_coordinator(
            RecomputeMode.EVERY_REFRESH)
        coordinator.on_refresh(refresh(1.0, "x", 2.5))
        assert coordinator.cache["x"] == 2.5


class TestWindowPolicy:
    def test_no_recompute_inside_window(self):
        coordinator, _queue, metrics, _source = make_coordinator(
            RecomputeMode.ON_WINDOW_VIOLATION)
        plan = coordinator.plans["cq"]
        inside = plan.reference_values["x"] + 0.5 * plan.secondary["x"]
        coordinator.on_refresh(refresh(1.0, "x", inside))
        assert metrics.refreshes == 1
        assert metrics.recomputations == 0

    def test_recompute_on_violation(self):
        coordinator, _queue, metrics, _source = make_coordinator(
            RecomputeMode.ON_WINDOW_VIOLATION)
        plan = coordinator.plans["cq"]
        outside = plan.reference_values["x"] + 1.5 * plan.secondary["x"]
        coordinator.on_refresh(refresh(1.0, "x", outside))
        assert metrics.recomputations == 1
        # plan is re-centred on the new values
        assert coordinator.plans["cq"].reference_values["x"] == pytest.approx(outside)

    def test_only_affected_queries_recomputed(self):
        queries = [parse_query("x*y : 5", name="qa"),
                   parse_query("u*v : 5", name="qb")]
        values = {"x": 2.0, "y": 2.0, "u": 2.0, "v": 2.0}
        coordinator, _queue, metrics, _source = make_coordinator(
            RecomputeMode.ON_WINDOW_VIOLATION, queries=queries, values=values)
        plan = coordinator.plans["qa"]
        outside = plan.reference_values["x"] + 2.0 * plan.secondary["x"]
        coordinator.on_refresh(refresh(1.0, "x", outside))
        assert metrics.summary().recomputations_per_query == {"qa": 1}


class TestFanout:
    def test_dab_change_sent_on_recompute(self):
        coordinator, queue, metrics, _source = make_coordinator(
            RecomputeMode.EVERY_REFRESH)
        coordinator.on_refresh(refresh(1.0, "x", 3.0))
        kinds = []
        while queue:
            kinds.append(queue.pop().kind)
        assert EventKind.DAB_CHANGE_ARRIVAL in kinds
        assert metrics.dab_change_messages >= 1

    def test_dab_change_routed_to_source(self):
        coordinator, queue, _metrics, source = make_coordinator(
            RecomputeMode.EVERY_REFRESH)
        coordinator.on_refresh(refresh(1.0, "x", 3.0))
        while queue:
            event = queue.pop()
            if event.kind is EventKind.DAB_CHANGE_ARRIVAL:
                coordinator.on_dab_change(event)
        assert source.dab_changes >= 1

    def test_unknown_source_rejected(self):
        coordinator, _queue, _metrics, _source = make_coordinator(
            RecomputeMode.EVERY_REFRESH)
        bogus = Event(1.0, EventKind.DAB_CHANGE_ARRIVAL,
                      {"source_id": 99, "bounds": {}})
        with pytest.raises(SimulationError):
            coordinator.on_dab_change(bogus)


class TestUserNotifications:
    def test_notification_on_qab_crossing(self):
        coordinator, _queue, metrics, _source = make_coordinator(
            RecomputeMode.EVERY_REFRESH)
        # initial query value is 4; QAB = 5, so value must move past 9
        coordinator.on_refresh(refresh(1.0, "x", 5.0))  # 5*2 = 10 > 4 + 5
        assert metrics.user_notifications == 1

    def test_no_notification_inside_qab(self):
        coordinator, _queue, metrics, _source = make_coordinator(
            RecomputeMode.EVERY_REFRESH)
        coordinator.on_refresh(refresh(1.0, "x", 2.1))  # 4.2: inside QAB
        assert metrics.user_notifications == 0


class TestBusyServer:
    def test_refresh_queues_while_busy(self):
        coordinator, queue, metrics, _source = make_coordinator(
            RecomputeMode.EVERY_REFRESH)
        coordinator.check_delay = ConstantDelayModel(0.5)
        coordinator.on_refresh(refresh(1.0, "x", 3.0))       # busy until 1.5+
        coordinator.on_refresh(refresh(1.2, "y", 3.0))       # must requeue
        assert metrics.refreshes == 1
        requeued = [queue.pop() for _ in range(len(queue))]
        times = [e.time for e in requeued if e.kind is EventKind.REFRESH_ARRIVAL]
        assert times and times[0] >= 1.5

    def test_recompute_extends_busy_time(self):
        coordinator, _queue, _metrics, _source = make_coordinator(
            RecomputeMode.EVERY_REFRESH)
        coordinator.recompute_delay = ConstantDelayModel(0.2)
        coordinator.on_refresh(refresh(1.0, "x", 3.0))
        assert coordinator.busy_until >= 1.2


class _RecordingPlanner:
    """Planner wrapper that records warm-start clears."""

    def __init__(self, planner):
        self.planner = planner
        self.warm_start_clears = 0

    def plan(self, query, values):
        return self.planner.plan(query, values)

    def clear_warm_starts(self):
        self.warm_start_clears += 1


class TestResyncWarmStartClearing:
    def _coordinator(self):
        from repro.simulation.faults import FaultConfig, FaultModel

        query = parse_query("x*y : 5", name="cq")
        values = {"x": 2.0, "y": 2.0}
        model = CostModel(rates={k: 1.0 for k in values}, recompute_cost=1.0)
        planner = _RecordingPlanner(
            DifferentSumPlanner(model, DualDABPlanner(model)))
        queue = EventQueue()
        metrics = MetricsCollector(recompute_cost=1.0)
        coordinator = Coordinator(
            queries=[query], planner=planner,
            mode=RecomputeMode.ON_WINDOW_VIOLATION,
            queue=queue, metrics=metrics, initial_values=values,
            item_to_source={"x": 0, "y": 0},
            fault_model=FaultModel(FaultConfig(loss_rate=0.01)),
        )
        coordinator.attach_sources([_FakeSource(0)])
        coordinator.initial_plan()
        return coordinator, planner

    def test_resync_refresh_clears_warm_starts(self):
        coordinator, planner = self._coordinator()
        coordinator.on_refresh(Event(1.0, EventKind.REFRESH_ARRIVAL,
                                     {"item": "x", "value": 2.4,
                                      "source_id": 0, "resync": True}))
        assert planner.warm_start_clears == 1

    def test_plain_refresh_keeps_warm_starts(self):
        coordinator, planner = self._coordinator()
        coordinator.on_refresh(refresh(1.0, "x", 2.4))
        assert planner.warm_start_clears == 0
