"""Tests for the delay models."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.simulation import ConstantDelayModel, ParetoDelayModel, ZeroDelayModel
from repro.simulation.network import paper_delay_models


class TestSimpleModels:
    def test_zero(self):
        model = ZeroDelayModel()
        assert model.sample() == 0.0
        assert model.mean == 0.0

    def test_constant(self):
        model = ConstantDelayModel(0.25)
        assert model.sample() == 0.25
        assert model.mean == 0.25

    def test_constant_validation(self):
        with pytest.raises(SimulationError):
            ConstantDelayModel(-0.1)


class TestPareto:
    def test_mean_matches_request(self):
        model = ParetoDelayModel(0.110, rng=np.random.default_rng(0))
        samples = np.array([model.sample() for _ in range(200_000)])
        assert samples.mean() == pytest.approx(0.110, rel=0.05)

    def test_minimum_is_scale(self):
        model = ParetoDelayModel(0.110, shape=2.5, rng=np.random.default_rng(0))
        samples = [model.sample() for _ in range(10_000)]
        assert min(samples) >= model.scale

    def test_heavy_tail(self):
        """A Pareto with shape 2.5 produces occasional delays far above the
        mean — the variability the paper attributes PlanetLab noise to."""
        model = ParetoDelayModel(0.110, rng=np.random.default_rng(0))
        samples = np.array([model.sample() for _ in range(100_000)])
        assert samples.max() > 5 * samples.mean()

    def test_deterministic_with_seed(self):
        a = ParetoDelayModel(0.1, seed=7)
        b = ParetoDelayModel(0.1, seed=7)
        assert [a.sample() for _ in range(5)] == [b.sample() for _ in range(5)]

    def test_validation(self):
        with pytest.raises(SimulationError):
            ParetoDelayModel(0.0)
        with pytest.raises(SimulationError):
            ParetoDelayModel(0.1, shape=1.0)

    def test_paper_triple(self):
        network, check, push = paper_delay_models(seed=3)
        assert network.mean == pytest.approx(0.110)
        assert check.mean == pytest.approx(0.004)
        assert push.mean == pytest.approx(0.001)
