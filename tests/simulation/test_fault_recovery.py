"""Tests for the degradation protocol layered over the fault model:
DAB epochs, refresh sequence numbers, staleness leases, ack/retry
delivery, crash resync, and solver-failure fallback."""

import numpy as np
import pytest

from repro.dynamics import Trace, TraceSet
from repro.exceptions import InfeasibleProblemError
from repro.filters import CostModel, DualDABPlanner
from repro.filters.heuristics import DifferentSumPlanner
from repro.queries import parse_query
from repro.simulation import (
    Coordinator,
    CrashWindow,
    Event,
    EventKind,
    EventQueue,
    FaultConfig,
    FaultModel,
    MetricsCollector,
    PartitionWindow,
    RecomputeMode,
    SourceNode,
    ZeroDelayModel,
)

#: Enables the recovery machinery without any stochastic channel firing
#: (the crash is far beyond every test's horizon).
FAR_CRASH = FaultConfig(crash_windows=(CrashWindow(99, 1e7, 1e7 + 1),))


def make_source(values=(5.0, 6.0, 7.0, 8.0), fault_config=None, items=("x",)):
    traces = TraceSet([Trace(name, np.array(values, dtype=float))
                       for name in items])
    queue = EventQueue()
    metrics = MetricsCollector(recompute_cost=1.0)
    model = FaultModel(fault_config) if fault_config is not None else None
    source = SourceNode(0, list(items), traces, queue, metrics,
                        ZeroDelayModel(), fault_model=model)
    return source, queue, metrics


def make_world(fault_config=None, queries=None, values=None):
    """A real coordinator wired to a real source over a zero-delay link."""
    queries = queries or [parse_query("x*y : 5", name="cq")]
    values = values or {"x": 2.0, "y": 2.0}
    model = CostModel(rates={k: 1.0 for k in values}, recompute_cost=1.0)
    planner = DifferentSumPlanner(model, DualDABPlanner(model))
    queue = EventQueue()
    metrics = MetricsCollector(recompute_cost=1.0)
    fault_model = FaultModel(fault_config) if fault_config is not None else None
    items = sorted(values)
    traces = TraceSet([Trace(name, np.full(200, values[name])) for name in items])
    coordinator = Coordinator(
        queries=queries, planner=planner, mode=RecomputeMode.ON_WINDOW_VIOLATION,
        queue=queue, metrics=metrics, initial_values=values,
        item_to_source={name: 0 for name in items}, fault_model=fault_model,
    )
    source = SourceNode(0, items, traces, queue, metrics, ZeroDelayModel(),
                        fault_model=fault_model)
    coordinator.attach_sources([source])
    coordinator.initial_plan()
    return coordinator, source, queue, metrics


def drain(queue, coordinator, source, until=float("inf")):
    """Dispatch queued events to the right handler, in order."""
    handlers = {
        EventKind.REFRESH_ARRIVAL: coordinator.on_refresh,
        EventKind.DAB_CHANGE_ARRIVAL: coordinator.on_dab_change,
        EventKind.DAB_ACK_ARRIVAL: coordinator.on_dab_ack,
        EventKind.RETRY_CHECK: coordinator.on_retry_check,
        # LEASE_CHECK reschedules itself forever; the lease tests drive it
        # directly instead.
        EventKind.LEASE_CHECK: lambda event: None,
        EventKind.HEARTBEAT_ARRIVAL: coordinator.on_heartbeat,
        EventKind.VALUE_PROBE_ARRIVAL: source.on_value_probe,
    }
    while queue and queue.peek_time() <= until:
        event = queue.pop()
        handlers[event.kind](event)


class TestEpochOrdering:
    def test_stale_epoch_rejected(self):
        source, _queue, metrics = make_source()
        source.set_bounds({"x": 1.0}, epochs={"x": 2})
        source.set_bounds({"x": 9.0}, epochs={"x": 1})   # the older message
        assert source.bounds["x"] == 1.0
        assert metrics.duplicate_rejects == 1

    def test_reordered_in_flight_changes_land_on_newest(self):
        """Two DAB-changes in flight, delivered in either order, must leave
        the source on the later epoch's bound."""
        for arrival_order in ([1, 2], [2, 1]):
            source, _queue, _metrics = make_source()
            for epoch in arrival_order:
                source.on_dab_change(Event(
                    1.0, EventKind.DAB_CHANGE_ARRIVAL,
                    {"source_id": 0, "bounds": {"x": float(epoch)},
                     "epochs": {"x": epoch}}))
            assert source.bounds["x"] == 2.0, \
                f"arrival order {arrival_order} left a stale filter"
            assert source.epochs["x"] == 2

    def test_duplicate_delivery_is_idempotent(self):
        source, _queue, metrics = make_source()
        payload = {"source_id": 0, "bounds": {"x": 1.5}, "epochs": {"x": 3}}
        source.on_dab_change(Event(1.0, EventKind.DAB_CHANGE_ARRIVAL, payload))
        source.on_dab_change(Event(1.1, EventKind.DAB_CHANGE_ARRIVAL, dict(payload)))
        assert source.bounds["x"] == 1.5
        assert metrics.duplicate_rejects == 1

    def test_bootstrap_path_needs_no_epochs(self):
        source, _queue, _metrics = make_source()
        source.set_bounds({"x": 2.0})
        assert source.bounds["x"] == 2.0
        assert source.epochs == {}


class TestMisroutedBounds:
    def test_unknown_item_counted_not_silently_dropped(self):
        source, _queue, metrics = make_source()
        source.set_bounds({"x": 1.0, "not_mine": 2.0})
        assert "not_mine" not in source.bounds
        assert source.bounds["x"] == 1.0
        assert metrics.misrouted_bounds == 1


class TestRefreshSequencing:
    def test_stale_refresh_rejected_in_fault_mode(self):
        coordinator, _source, _queue, metrics = make_world(FAR_CRASH)
        coordinator.on_refresh(Event(1.0, EventKind.REFRESH_ARRIVAL,
                                     {"item": "x", "value": 3.0,
                                      "source_id": 0, "seq": 2}))
        coordinator.on_refresh(Event(1.1, EventKind.REFRESH_ARRIVAL,
                                     {"item": "x", "value": 9.0,
                                      "source_id": 0, "seq": 1}))
        assert coordinator.cache["x"] == 3.0   # the overtaken value lost
        assert metrics.duplicate_rejects == 1
        assert metrics.refreshes == 2          # both deliveries still counted

    def test_fault_free_path_ignores_sequence_numbers(self):
        coordinator, _source, _queue, _metrics = make_world(None)
        coordinator.on_refresh(Event(1.0, EventKind.REFRESH_ARRIVAL,
                                     {"item": "x", "value": 3.0,
                                      "source_id": 0, "seq": 2}))
        coordinator.on_refresh(Event(1.1, EventKind.REFRESH_ARRIVAL,
                                     {"item": "x", "value": 9.0,
                                      "source_id": 0, "seq": 1}))
        # Without faults the original last-writer-wins semantics hold
        # bit-for-bit (the golden-identity guarantee).
        assert coordinator.cache["x"] == 9.0


class TestAckRetry:
    def test_delivered_change_is_acked_and_retires(self):
        coordinator, source, queue, metrics = make_world(FAR_CRASH)
        coordinator._send_dab_change(0, {"x": 0.7}, {"x": 1}, time=1.0)
        assert len(coordinator._outstanding) == 1
        drain(queue, coordinator, source)
        assert coordinator._outstanding == {}
        assert source.bounds["x"] == 0.7
        assert metrics.dab_retries == 0

    def test_partition_lost_change_is_retried_until_delivered(self):
        config = FaultConfig(partitions=(PartitionWindow(0.5, 2.0),),
                             retry_timeout=1.0, retry_backoff=2.0)
        coordinator, source, queue, metrics = make_world(config)
        coordinator._send_dab_change(0, {"x": 0.7}, {"x": 1}, time=1.0)
        assert metrics.messages_dropped == 1   # initial send fell in the hole
        drain(queue, coordinator, source)
        assert metrics.dab_retries >= 1
        assert source.bounds["x"] == 0.7       # the retransmit got through
        assert coordinator._outstanding == {}

    def test_permanent_partition_exhausts_retries(self):
        config = FaultConfig(partitions=(PartitionWindow(0.0, 1e9),),
                             retry_timeout=0.5, retry_max=3)
        coordinator, source, queue, metrics = make_world(config)
        bootstrap_bound = source.bounds["x"]
        coordinator._send_dab_change(0, {"x": 0.7}, {"x": 1}, time=1.0)
        drain(queue, coordinator, source)
        assert metrics.dab_retries == 3
        assert metrics.dab_retry_exhausted == 1
        assert coordinator._outstanding == {}
        assert source.bounds["x"] == bootstrap_bound   # never delivered; gave up


class TestStalenessLeases:
    def test_lease_expiry_marks_suspect_and_probes(self):
        config = FaultConfig(crash_windows=(CrashWindow(99, 1e7, 1e7 + 1),),
                             lease_duration=10.0, lease_check_interval=5.0)
        coordinator, _source, queue, metrics = make_world(config)
        coordinator.on_lease_check(Event(15.0, EventKind.LEASE_CHECK))
        assert set(coordinator.suspect_since) == {"x", "y"}
        assert metrics.lease_expiries == 2
        assert metrics.value_probes == 2
        kinds = [queue.pop().kind for _ in range(len(queue))]
        assert kinds.count(EventKind.VALUE_PROBE_ARRIVAL) == 2
        assert EventKind.LEASE_CHECK in kinds   # reschedules itself

    def test_refresh_clears_suspicion_and_accounts_exposure(self):
        config = FaultConfig(crash_windows=(CrashWindow(99, 1e7, 1e7 + 1),),
                             lease_duration=10.0)
        coordinator, _source, _queue, metrics = make_world(config)
        coordinator.on_lease_check(Event(15.0, EventKind.LEASE_CHECK))
        coordinator.on_refresh(Event(18.0, EventKind.REFRESH_ARRIVAL,
                                     {"item": "x", "value": 2.1,
                                      "source_id": 0, "seq": 1}))
        assert "x" not in coordinator.suspect_since
        assert "y" in coordinator.suspect_since
        assert metrics.staleness_exposure_seconds == pytest.approx(3.0)

    def test_heartbeat_seq_gap_means_lost_refreshes(self):
        coordinator, _source, _queue, metrics = make_world(FAR_CRASH)
        # The source claims it has pushed seq 4 for x; we never saw any.
        coordinator.on_heartbeat(Event(12.0, EventKind.HEARTBEAT_ARRIVAL,
                                       {"source_id": 0,
                                        "seqs": {"x": 4, "y": 0}}))
        assert "x" in coordinator.suspect_since
        assert "y" not in coordinator.suspect_since
        assert metrics.refresh_gaps == 1
        assert metrics.value_probes == 1
        assert coordinator.last_heard["y"] == 12.0   # quiet-but-in-bound: renewed

    def test_reported_bound_widens_with_staleness(self):
        query = parse_query("x*y : 5", name="cq")
        coordinator, _source, _queue, _metrics = make_world(
            FAR_CRASH, queries=[query])
        assert coordinator.reported_bound(query, 10.0) == query.qab
        coordinator.suspect_since["x"] = 10.0
        early = coordinator.reported_bound(query, 10.0)
        late = coordinator.reported_bound(query, 50.0)
        assert early > query.qab
        assert late > early   # uncertainty grows while the item stays dark


class TestCrashRecovery:
    def test_crashed_source_is_silent_then_resyncs(self):
        config = FaultConfig(crash_windows=(CrashWindow(0, 1.0, 3.0),))
        source, queue, metrics = make_source(
            values=(5.0, 50.0, 60.0, 70.0, 80.0), fault_config=config)
        source.set_bounds({"x": 1.0})
        source.on_tick(1)   # crashed: a huge move pushes nothing
        source.on_tick(2)   # still crashed
        assert len(queue) == 0
        source.on_tick(3)   # back up: resync push
        assert metrics.recovery_resyncs == 1
        event = queue.pop()
        assert event.payload["resync"] is True
        assert event.payload["value"] == 70.0

    def test_messages_to_crashed_source_are_lost(self):
        config = FaultConfig(crash_windows=(CrashWindow(0, 0.0, 10.0),))
        source, queue, metrics = make_source(fault_config=config)
        source.on_dab_change(Event(5.0, EventKind.DAB_CHANGE_ARRIVAL,
                                   {"source_id": 0, "bounds": {"x": 1.0},
                                    "epochs": {"x": 1}}))
        assert "x" not in source.bounds
        assert metrics.messages_dropped == 1

    def test_value_probe_answers_with_fresh_value_and_seq(self):
        source, queue, _metrics = make_source(values=(5.0, 6.0, 7.0),
                                              fault_config=FAR_CRASH)
        source.on_value_probe(Event(2.0, EventKind.VALUE_PROBE_ARRIVAL,
                                    {"item": "x", "source_id": 0}))
        event = queue.pop()
        assert event.kind is EventKind.REFRESH_ARRIVAL
        assert event.payload["probe_reply"] is True
        assert event.payload["value"] == 7.0
        assert event.payload["seq"] == 1


class _RaisingPlanner:
    """A planner whose runtime solves always fail."""

    def __init__(self, calls_before_failure=0, inner=None):
        self.calls = 0
        self.calls_before_failure = calls_before_failure
        self.inner = inner

    def plan(self, query, values):
        self.calls += 1
        if self.calls > self.calls_before_failure:
            raise InfeasibleProblemError("synthetic solver failure")
        return self.inner.plan(query, values)


class TestSolverDegradation:
    def _world(self, planner):
        query = parse_query("x*y : 5", name="cq")
        values = {"x": 2.0, "y": 2.0}
        queue = EventQueue()
        metrics = MetricsCollector(recompute_cost=1.0)
        coordinator = Coordinator(
            queries=[query], planner=planner,
            mode=RecomputeMode.ON_WINDOW_VIOLATION, queue=queue,
            metrics=metrics, initial_values=values,
            item_to_source={"x": 0, "y": 0},
        )
        return coordinator, metrics

    def test_cold_start_falls_back_to_uniform_plan(self):
        coordinator, metrics = self._world(_RaisingPlanner())
        coordinator.initial_plan()    # must not raise
        assert metrics.solver_fallbacks == 1
        plan = coordinator.plans["cq"]
        assert all(b > 0 for b in plan.primary.values())

    def test_runtime_failure_keeps_previous_plan(self):
        model = CostModel(rates={"x": 1.0, "y": 1.0}, recompute_cost=1.0)
        good = DifferentSumPlanner(model, DualDABPlanner(model))
        planner = _RaisingPlanner(calls_before_failure=1, inner=good)
        coordinator, metrics = self._world(planner)
        coordinator.initial_plan()
        valid_plan = coordinator.plans["cq"]
        # A refresh far outside the window forces a recompute, which fails.
        coordinator.on_refresh(Event(1.0, EventKind.REFRESH_ARRIVAL,
                                     {"item": "x", "value": 40.0, "source_id": 0}))
        assert metrics.solver_fallbacks == 1
        assert coordinator.plans["cq"] is valid_plan
        assert metrics.recomputations == 1    # the attempt is still counted


class TestBusyRequeuePriority:
    def test_queue_priority_beats_insertion_order(self):
        queue = EventQueue()
        queue.push(Event(5.0, EventKind.REFRESH_ARRIVAL, {"item": "late"}))
        queue.push(Event(5.0, EventKind.REFRESH_ARRIVAL, {"item": "requeued"}),
                   priority=-1)
        assert queue.pop().payload["item"] == "requeued"
        assert queue.pop().payload["item"] == "late"

    def test_requeued_refresh_not_starved_by_tick_tie(self):
        """A refresh the busy coordinator requeues to ``busy_until`` must be
        served before a fresh arrival that lands on exactly that time."""
        from repro.simulation.network import ConstantDelayModel

        query = parse_query("x*y : 5", name="cq")
        values = {"x": 2.0, "y": 2.0}
        model = CostModel(rates={"x": 1.0, "y": 1.0}, recompute_cost=1.0)
        planner = DifferentSumPlanner(model, DualDABPlanner(model))
        queue = EventQueue()
        metrics = MetricsCollector(recompute_cost=1.0)
        coordinator = Coordinator(
            queries=[query], planner=planner,
            mode=RecomputeMode.ON_WINDOW_VIOLATION, queue=queue,
            metrics=metrics, initial_values=values,
            item_to_source={"x": 0, "y": 0},
            check_delay=ConstantDelayModel(1.0),
        )
        coordinator.initial_plan()
        coordinator.on_refresh(Event(1.0, EventKind.REFRESH_ARRIVAL,
                                     {"item": "x", "value": 2.05, "source_id": 0}))
        assert coordinator.busy_until == 2.0
        # A competitor that will arrive at exactly busy_until, queued FIRST.
        queue.push(Event(2.0, EventKind.REFRESH_ARRIVAL,
                         {"item": "y", "value": 2.02, "source_id": 0}))
        # The refresh that finds the coordinator busy gets requeued.
        coordinator.on_refresh(Event(1.5, EventKind.REFRESH_ARRIVAL,
                                     {"item": "x", "value": 2.10, "source_id": 0}))
        assert queue.pop().payload["item"] == "x", \
            "the waiting refresh must be served before the tie at busy_until"
