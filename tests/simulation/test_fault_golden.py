"""The no-op guarantee and end-to-end fault runs.

Two properties anchor the fault subsystem:

1. **Provable no-op** — with faults disabled (``fault_config=None`` or a
   default ``FaultConfig()``) the simulator must be *bit-identical* to the
   pre-fault-subsystem seed: the golden metrics below were captured on the
   seed tree before ``repro/simulation/faults.py`` existed.
2. **Graceful degradation** — with loss, duplicates and a mid-run crash
   injected, a run completes without exceptions and the staleness /
   uncertainty accounting is internally consistent.
"""

import pytest

from repro.simulation import (
    CrashWindow,
    DisseminationConfig,
    FaultConfig,
    SimulationConfig,
    run_dissemination,
    run_simulation,
)
from repro.workloads import scaled_scenario

# (refreshes, recomputations, fidelity_loss_percent, dab_change_messages,
#  user_notifications, gp_solves) captured on the pre-fault-subsystem seed
# tree at seed 13, fidelity_interval 2.
GOLDEN = [
    pytest.param(
        dict(qc=5, ic=20, tl=201, sc=4, mu=5.0, kind="portfolio", kw={}),
        (615, 0, 0.0, 0, 16, 5), id="pareto-dual-dab-portfolio"),
    pytest.param(
        dict(qc=5, ic=20, tl=201, sc=4, mu=5.0, kind="arbitrage", kw={}),
        (1594, 0, 0.0, 0, 46, 5), id="pareto-dual-dab-arbitrage"),
    pytest.param(
        dict(qc=5, ic=20, tl=201, sc=4, mu=5.0, kind="portfolio",
             kw=dict(ddm="random_walk")),
        (537, 7, 0.0, 19, 20, 12), id="pareto-dual-dab-random-walk"),
    pytest.param(
        dict(qc=4, ic=16, tl=121, sc=3, mu=2.0, kind="portfolio",
             kw=dict(algorithm="optimal_refresh")),
        (288, 1000, 0.0, 239, 7, 241), id="pareto-optimal-refresh"),
    pytest.param(
        dict(qc=4, ic=16, tl=121, sc=3, mu=2.0, kind="portfolio",
             kw=dict(algorithm="aao_t", aao_period=40)),
        (224, 3, 0.0, 9, 4, 0), id="pareto-aao-40"),
    pytest.param(
        dict(qc=4, ic=16, tl=121, sc=3, mu=2.0, kind="portfolio",
             kw=dict(zero_delay=True)),
        (337, 0, 0.0, 0, 5, 4), id="zero-delay-dual-dab"),
]


def _run(spec, fault_config=None):
    scenario = scaled_scenario(query_count=spec["qc"], item_count=spec["ic"],
                               trace_length=spec["tl"], source_count=spec["sc"],
                               seed=13, query_kind=spec["kind"])
    config = SimulationConfig(queries=scenario.queries, traces=scenario.traces,
                              recompute_cost=spec["mu"], source_count=spec["sc"],
                              seed=13, fidelity_interval=2,
                              fault_config=fault_config, **spec["kw"])
    return run_simulation(config).metrics


class TestGoldenIdentity:
    @pytest.mark.parametrize("spec, want", GOLDEN)
    def test_faults_disabled_matches_pre_fault_seed(self, spec, want):
        metrics = _run(spec)
        got = (metrics.refreshes, metrics.recomputations,
               metrics.fidelity_loss_percent, metrics.dab_change_messages,
               metrics.user_notifications, metrics.gp_solves)
        assert got == want
        # No fault machinery ran.  ``duplicate_rejects`` is exempt: the
        # epoch guard fires on genuinely reordered DAB-changes even on a
        # fault-free Pareto network — that is the reorder bug fix, and the
        # goldens above prove it leaves every pre-PR metric untouched.
        counters = metrics.fault_counters()
        counters.pop("duplicate_rejects")
        assert counters == {name: 0 for name in counters}

    def test_default_fault_config_is_bit_identical_to_none(self):
        """A disabled ``FaultConfig()`` must not perturb a single metric —
        the whole fault machinery is a provable no-op when off."""
        spec = dict(qc=4, ic=16, tl=121, sc=3, mu=2.0, kind="portfolio",
                    kw=dict(zero_delay=True))
        baseline = _run(spec, fault_config=None)
        disabled = _run(spec, fault_config=FaultConfig())
        assert disabled == baseline   # full dataclass equality, every field

    def test_default_fault_config_noop_under_pareto_delays(self):
        spec = dict(qc=4, ic=16, tl=121, sc=3, mu=2.0, kind="portfolio", kw={})
        assert _run(spec, fault_config=FaultConfig()) == _run(spec)


class TestFaultedRuns:
    def test_lossy_crashy_run_completes_with_consistent_accounting(self):
        """The acceptance scenario: 5% loss, duplicates, one mid-run crash."""
        spec = dict(qc=4, ic=16, tl=121, sc=3, mu=2.0, kind="portfolio", kw={})
        faults = FaultConfig(loss_rate=0.05, duplicate_rate=0.02,
                             crash_windows=(CrashWindow(1, 40.0, 70.0),),
                             seed=5)
        metrics = _run(spec, fault_config=faults)
        assert metrics.duration_ticks == 121   # every tick ran to completion
        assert metrics.messages_dropped > 0
        assert metrics.heartbeats > 0
        assert metrics.recovery_resyncs == 1
        # The crashed source goes quiet for 30 s >> the 20 s lease: its
        # items must have been detected and probed.
        assert metrics.lease_expiries + metrics.refresh_gaps > 0
        assert metrics.value_probes > 0
        assert metrics.staleness_exposure_seconds > 0.0
        # Degraded answers are counted, and the widened bound should cover
        # the truth in all but rare cases.
        assert metrics.degraded_samples > 0
        assert metrics.uncertainty_violations <= metrics.degraded_samples
        # Retries only exist where deliveries can be lost.
        assert metrics.dab_retries >= 0
        assert metrics.dab_retry_exhausted <= metrics.dab_retries

    def test_loss_alone_triggers_gap_detection(self):
        """With loss but no crash, heartbeat sequence gaps are the only way
        the coordinator can notice lost refreshes — they must fire."""
        spec = dict(qc=4, ic=16, tl=121, sc=3, mu=2.0, kind="portfolio",
                    kw=dict(ddm="random_walk"))
        faults = FaultConfig(loss_rate=0.15, seed=9)
        metrics = _run(spec, fault_config=faults)
        assert metrics.messages_dropped > 0
        assert metrics.refresh_gaps > 0
        assert metrics.value_probes > 0

    def test_fault_seed_reproducibility(self):
        spec = dict(qc=4, ic=16, tl=121, sc=3, mu=2.0, kind="portfolio", kw={})
        faults = FaultConfig(loss_rate=0.1, duplicate_rate=0.05, seed=21)
        assert _run(spec, fault_config=faults) == _run(spec, fault_config=faults)

    def test_dissemination_survives_loss(self):
        scenario = scaled_scenario(query_count=4, item_count=20,
                                   trace_length=81, source_count=2, seed=3)
        config = DisseminationConfig(
            queries=scenario.queries, traces=scenario.traces,
            coordinator_count=3, source_count=2, seed=3,
            fault_config=FaultConfig(loss_rate=0.1, seed=4))
        result = run_dissemination(config)
        assert result.metrics.duration_ticks == 81
        assert result.metrics.messages_dropped > 0
