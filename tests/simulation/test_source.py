"""Tests for push sources (DAB filtering semantics)."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.dynamics import Trace, TraceSet
from repro.simulation import (
    Event,
    EventKind,
    EventQueue,
    MetricsCollector,
    SourceNode,
    ZeroDelayModel,
    assign_items_to_sources,
)
from repro.simulation.network import ConstantDelayModel


def make_source(values, bound=None):
    traces = TraceSet([Trace("x", np.array(values, dtype=float))])
    queue = EventQueue()
    metrics = MetricsCollector(recompute_cost=1.0)
    source = SourceNode(0, ["x"], traces, queue, metrics, ZeroDelayModel())
    if bound is not None:
        source.set_bounds({"x": bound})
    return source, queue


class TestAssignment:
    def test_round_robin(self):
        mapping = assign_items_to_sources(["a", "b", "c", "d", "e"], 2)
        assert mapping == {"a": 0, "b": 1, "c": 0, "d": 1, "e": 0}

    def test_invalid_count(self):
        with pytest.raises(SimulationError):
            assign_items_to_sources(["a"], 0)

    def test_source_needs_items(self):
        traces = TraceSet([Trace("x", np.array([1.0, 2.0]))])
        with pytest.raises(SimulationError):
            SourceNode(0, [], traces, EventQueue(), MetricsCollector(1.0),
                       ZeroDelayModel())


class TestPushFiltering:
    def test_paper_filter_semantics(self):
        """Paper: value 5 pushed, b = 1 — next refresh when the value
        leaves [4, 6] (strictly outside)."""
        source, queue = make_source([5.0, 5.9, 6.0, 6.1], bound=1.0)
        source.on_tick(1)   # 5.9: inside
        source.on_tick(2)   # 6.0: |6-5| = 1, NOT > 1
        assert len(queue) == 0
        source.on_tick(3)   # 6.1: outside
        assert len(queue) == 1
        event = queue.pop()
        assert event.kind is EventKind.REFRESH_ARRIVAL
        assert event.payload["value"] == 6.1

    def test_filter_recentres_after_push(self):
        source, queue = make_source([5.0, 6.5, 7.0, 8.0], bound=1.0)
        source.on_tick(1)   # 6.5 pushed; filter now centred there
        source.on_tick(2)   # 7.0: |7 - 6.5| = 0.5, silent
        assert len(queue) == 1
        source.on_tick(3)   # 8.0: |8 - 6.5| = 1.5 > 1 -> push
        assert len(queue) == 2

    def test_downward_moves_also_push(self):
        source, queue = make_source([5.0, 3.5], bound=1.0)
        source.on_tick(1)
        assert len(queue) == 1

    def test_silent_without_bounds(self):
        source, queue = make_source([5.0, 50.0])
        source.on_tick(1)
        assert len(queue) == 0

    def test_network_delay_applied(self):
        traces = TraceSet([Trace("x", np.array([5.0, 10.0]))])
        queue = EventQueue()
        source = SourceNode(0, ["x"], traces, queue,
                            MetricsCollector(1.0), ConstantDelayModel(0.25))
        source.set_bounds({"x": 1.0})
        source.on_tick(1)
        assert queue.pop().time == pytest.approx(1.25)

    def test_dab_change_event(self):
        source, queue = make_source([5.0, 6.5], bound=10.0)
        source.on_tick(1)
        assert len(queue) == 0  # wide filter: silent
        source.on_dab_change(Event(1.0, EventKind.DAB_CHANGE_ARRIVAL,
                                   {"source_id": 0, "bounds": {"x": 1.0}}))
        source.on_tick(1)
        assert len(queue) == 1  # tightened filter now fires

    def test_bounds_for_foreign_items_ignored(self):
        source, _queue = make_source([5.0, 6.0])
        source.set_bounds({"not_mine": 1.0})
        assert "not_mine" not in source.bounds

    def test_repr(self):
        source, _ = make_source([1.0, 2.0])
        assert "id=0" in repr(source)
