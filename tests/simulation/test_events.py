"""Tests for the event queue primitives."""

import pytest

from repro.simulation import Event, EventKind, EventQueue


class TestEventQueue:
    def test_time_ordering(self):
        queue = EventQueue()
        queue.push(Event(3.0, EventKind.TICK))
        queue.push(Event(1.0, EventKind.TICK))
        queue.push(Event(2.0, EventKind.TICK))
        times = [queue.pop().time for _ in range(3)]
        assert times == [1.0, 2.0, 3.0]

    def test_fifo_within_same_time(self):
        queue = EventQueue()
        first = Event(1.0, EventKind.REFRESH_ARRIVAL, {"item": "a"})
        second = Event(1.0, EventKind.REFRESH_ARRIVAL, {"item": "b"})
        queue.push(first)
        queue.push(second)
        assert queue.pop().payload["item"] == "a"
        assert queue.pop().payload["item"] == "b"

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(Event(5.0, EventKind.TICK))
        assert queue.peek_time() == 5.0
        assert len(queue) == 1  # peek does not pop

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(Event(-1.0, EventKind.TICK))

    def test_bool_and_len(self):
        queue = EventQueue()
        assert not queue
        queue.push(Event(1.0, EventKind.TICK))
        assert queue and len(queue) == 1

    def test_event_is_frozen(self):
        event = Event(1.0, EventKind.TICK)
        with pytest.raises(AttributeError):
            event.time = 2.0
