"""Tests for the multi-coordinator dissemination network (Fig. 8(c))."""

import pytest

from repro.exceptions import SimulationError
from repro.simulation import DisseminationConfig, run_dissemination
from repro.workloads import scaled_scenario


@pytest.fixture(scope="module")
def scenario():
    return scaled_scenario(query_count=6, item_count=16, trace_length=121,
                           source_count=2, seed=17)


def run(scenario, **kwargs):
    defaults = dict(queries=scenario.queries, traces=scenario.traces,
                    recompute_cost=5.0, coordinator_count=3, source_count=2,
                    seed=17, fidelity_interval=4)
    defaults.update(kwargs)
    return run_dissemination(DisseminationConfig(**defaults))


class TestConfig:
    def test_validation(self, scenario):
        with pytest.raises(SimulationError):
            DisseminationConfig(queries=[], traces=scenario.traces)
        with pytest.raises(SimulationError):
            DisseminationConfig(queries=scenario.queries, traces=scenario.traces,
                                coordinator_count=0)

    def test_aao_not_supported(self, scenario):
        config = DisseminationConfig(queries=scenario.queries,
                                     traces=scenario.traces, algorithm="aao_t")
        with pytest.raises(SimulationError, match="AAO"):
            run_dissemination(config)


class TestBehaviour:
    def test_dual_dab_runs(self, scenario):
        result = run(scenario, algorithm="dual_dab")
        assert result.metrics.refreshes > 0
        assert result.coordinator_count == 3

    def test_wsdab_baseline_explodes_in_recomputations(self, scenario):
        """The Fig. 8(c) claim: at any scale the recompute-per-refresh
        baseline does orders of magnitude more recomputations."""
        dual = run(scenario, algorithm="dual_dab")
        wsdab = run(scenario, algorithm="sharfman_baseline")
        assert wsdab.metrics.recomputations >= 10 * max(dual.metrics.recomputations, 1)

    def test_fidelity_tracked_per_query(self, scenario):
        result = run(scenario, algorithm="dual_dab")
        losses = result.metrics.per_query_loss_percent
        assert set(losses) == {q.name for q in scenario.queries}

    def test_zero_delay_fidelity(self, scenario):
        result = run(scenario, algorithm="dual_dab", zero_delay=True,
                     fidelity_interval=1)
        assert result.metrics.fidelity_loss_percent == pytest.approx(0.0, abs=0.5)

    def test_query_partitioning_covers_all(self, scenario):
        result = run(scenario, algorithm="dual_dab")
        assert len(result.metrics.per_query_loss_percent) == len(scenario.queries)
