"""Unit tests for the dissemination network's root relay."""

import numpy as np
import pytest

from repro.dynamics import Trace, TraceSet
from repro.simulation.dissemination import RootRelay, _RootPort, _PORT_BASE
from repro.simulation.events import Event, EventKind, EventQueue
from repro.simulation.metrics import MetricsCollector
from repro.simulation.network import ZeroDelayModel
from repro.simulation.source import SourceNode


@pytest.fixture()
def relay_world():
    queue = EventQueue()
    metrics = MetricsCollector(recompute_cost=1.0)
    traces = TraceSet([Trace("x", np.array([10.0, 11.0, 12.0])),
                       Trace("y", np.array([20.0, 20.0, 20.0]))])
    source = SourceNode(0, ["x", "y"], traces, queue, metrics, ZeroDelayModel())
    root = RootRelay(queue, metrics, ZeroDelayModel(),
                     initial_values={"x": 10.0, "y": 20.0},
                     item_to_source={"x": 0, "y": 0})
    root.attach_sources([source])
    return root, source, queue, metrics


def source_refresh(time, item, value):
    return Event(time, EventKind.REFRESH_ARRIVAL,
                 {"item": item, "value": value, "source_id": 0})


class TestRootPort:
    def test_port_ids_distinct_from_sources(self, relay_world):
        root, _source, _queue, _metrics = relay_world
        port = _RootPort(root, child_id=3)
        assert port.source_id == _PORT_BASE + 3

    def test_port_forwards_bounds_to_root(self, relay_world):
        root, _source, _queue, _metrics = relay_world
        port = _RootPort(root, child_id=0)
        port.set_bounds({"x": 0.5})
        assert root.child_bounds[0] == {"x": 0.5}


class TestRelayFiltering:
    def test_bootstrap_programs_sources_with_global_min(self, relay_world):
        root, source, _queue, _metrics = relay_world
        _RootPort(root, 0).set_bounds({"x": 0.5, "y": 2.0})
        _RootPort(root, 1).set_bounds({"x": 1.5})
        root.bootstrap()
        assert source.bounds == {"x": 0.5, "y": 2.0}

    def test_forwarding_respects_per_child_filters(self, relay_world):
        root, _source, queue, _metrics = relay_world
        _RootPort(root, 0).set_bounds({"x": 0.4})   # tight child
        _RootPort(root, 1).set_bounds({"x": 5.0})   # loose child
        root.bootstrap()
        root.on_source_refresh(source_refresh(1.0, "x", 11.0))  # moved by 1.0
        forwarded = []
        while queue:
            event = queue.pop()
            if event.kind is EventKind.REFRESH_ARRIVAL and "dest" in event.payload:
                forwarded.append(event.payload["dest"])
        # only the tight child's filter (0.4 < 1.0) is crossed
        assert forwarded == [0]

    def test_forwarding_recentres_per_child(self, relay_world):
        root, _source, queue, _metrics = relay_world
        _RootPort(root, 0).set_bounds({"x": 0.4})
        root.bootstrap()
        root.on_source_refresh(source_refresh(1.0, "x", 11.0))
        while queue:
            queue.pop()
        # second refresh inside the re-centred filter: not forwarded
        root.on_source_refresh(source_refresh(2.0, "x", 11.2))
        forwarded = [e for e in _drain(queue)
                     if e.kind is EventKind.REFRESH_ARRIVAL]
        assert forwarded == []

    def test_uninterested_children_never_receive(self, relay_world):
        root, _source, queue, _metrics = relay_world
        _RootPort(root, 0).set_bounds({"y": 0.1})  # child only wants y
        root.bootstrap()
        root.on_source_refresh(source_refresh(1.0, "x", 15.0))
        forwarded = [e for e in _drain(queue)
                     if e.kind is EventKind.REFRESH_ARRIVAL]
        assert forwarded == []

    def test_refreshes_counted_at_root(self, relay_world):
        root, _source, _queue, metrics = relay_world
        _RootPort(root, 0).set_bounds({"x": 0.4})
        root.bootstrap()
        root.on_source_refresh(source_refresh(1.0, "x", 11.0))
        assert metrics.refreshes == 1

    def test_bound_updates_after_bootstrap_reprogram_sources(self, relay_world):
        root, source, queue, metrics = relay_world
        port = _RootPort(root, 0)
        port.set_bounds({"x": 1.0})
        root.bootstrap()
        # child tightens its bound later (as a DAB-change message)
        port.on_dab_change(Event(5.0, EventKind.DAB_CHANGE_ARRIVAL,
                                 {"source_id": port.source_id,
                                  "bounds": {"x": 0.2}}))
        dab_events = [e for e in _drain(queue)
                      if e.kind is EventKind.DAB_CHANGE_ARRIVAL]
        assert dab_events and dab_events[0].payload["bounds"] == {"x": 0.2}
        assert metrics.dab_change_messages >= 1


def _drain(queue):
    events = []
    while queue:
        events.append(queue.pop())
    return events
