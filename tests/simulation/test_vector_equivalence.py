"""The scalar/vector equivalence contract (DESIGN.md §8).

Every vectorized hot path — slab-scanned source ticks, compiled query
evaluators, vectorized window checks, compiled-GP templates — must be
*bitwise* identical to the scalar reference implementation.  These tests
pin the contract end to end: a full simulation run with ``vectorize=True``
(the default) must produce the exact same ``SimulationMetrics`` dataclass,
field for field, as the ``vectorize=False`` reference on the same config.
"""

import dataclasses

import pytest

from repro.simulation import (
    CrashWindow,
    FaultConfig,
    SimulationConfig,
    run_simulation,
)
from repro.workloads import scaled_scenario


def _metrics(seed, *, vectorize, **kw):
    scenario = scaled_scenario(query_count=4, item_count=16, trace_length=121,
                               source_count=3, seed=seed,
                               query_kind=kw.pop("query_kind", "portfolio"))
    config = SimulationConfig(queries=scenario.queries, traces=scenario.traces,
                              recompute_cost=2.0, source_count=3, seed=seed,
                              fidelity_interval=2, vectorize=vectorize, **kw)
    return run_simulation(config).metrics


def _assert_identical(seed, **kw):
    scalar = _metrics(seed, vectorize=False, **kw)
    vector = _metrics(seed, vectorize=True, **kw)
    # Field-by-field so a divergence names the metric that drifted.
    for field in dataclasses.fields(scalar):
        assert getattr(vector, field.name) == getattr(scalar, field.name), (
            f"vectorized run diverged on {field.name!r}"
        )
    assert vector == scalar


@pytest.mark.parametrize("seed", [13, 29])
def test_dual_dab_identical(seed):
    _assert_identical(seed)


@pytest.mark.parametrize("seed", [13, 29])
def test_optimal_refresh_identical(seed):
    _assert_identical(seed, algorithm="optimal_refresh")


def test_random_walk_identical():
    _assert_identical(13, ddm="random_walk")


def test_zero_delay_identical():
    _assert_identical(13, zero_delay=True)


def test_arbitrage_mixed_sign_identical():
    # Mixed-sign queries exercise the Different-Sum mirror through the
    # compiled templates.
    _assert_identical(13, query_kind="arbitrage")


def test_faulted_run_identical():
    # Loss, duplicates and a mid-run crash: the vectorized source slab and
    # the warm-start clearing on resync must replay the scalar run exactly.
    faults = FaultConfig(loss_rate=0.05, duplicate_rate=0.02,
                         crash_windows=(CrashWindow(1, 40.0, 70.0),),
                         seed=5)
    _assert_identical(13, fault_config=faults)


def test_uncached_identical():
    # Without the quantising cache every plan is a fresh GP solve — the
    # compiled templates carry the full solver load.
    _assert_identical(13, cache_grid=None)
