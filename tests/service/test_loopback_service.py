"""End-to-end service tests over the in-process loopback transport.

Real protocol bytes, real FrameDecoder, no sockets — the CI-safe half of
the transport matrix (the TCP smoke test lives in ``test_tcp_smoke.py``).
"""

import asyncio

import pytest

from repro.service import protocol
from repro.service.protocol import MessageType, PROTOCOL_VERSION
from repro.service.server import _Subscriber, build_scenario_server
from repro.service.transports import loopback_pair


def run(coro):
    return asyncio.run(coro)


@pytest.fixture()
def scenario_server():
    server, scenario, item_to_source = build_scenario_server(
        query_count=4, item_count=20, source_count=2, trace_length=41, seed=1)
    return server, scenario, item_to_source


def owned_items(item_to_source, source_id):
    return sorted(n for n, s in item_to_source.items() if s == source_id)


async def registered_stream(server, scenario, item_to_source, source_id=0):
    stream = server.connect_loopback()
    await stream.send(protocol.register_source(
        source_id, owned_items(item_to_source, source_id)))
    reply = await stream.receive()
    assert reply["type"] == MessageType.DAB_UPDATE.value
    return stream, reply


class TestSourcePlane:
    def test_register_replies_with_current_dabs(self, scenario_server):
        server, scenario, item_to_source = scenario_server

        async def body():
            stream, reply = await registered_stream(
                server, scenario, item_to_source, source_id=0)
            owned = owned_items(item_to_source, 0)
            assert sorted(reply["bounds"]) == owned
            assert all(bound > 0 for bound in reply["bounds"].values())
            assert sorted(reply["epochs"]) == owned
            await server.close()

        run(body())

    def test_refresh_updates_cache_and_notifies_subscriber(self, scenario_server):
        server, scenario, item_to_source = scenario_server

        async def body():
            stream, reply = await registered_stream(
                server, scenario, item_to_source, source_id=0)
            sub_stream = server.connect_loopback()
            await sub_stream.send(protocol.query_sub("*"))
            snapshot = await sub_stream.receive()
            assert snapshot["type"] == MessageType.SNAPSHOT.value
            assert len(snapshot["values"]) == len(scenario.queries)

            item = owned_items(item_to_source, 0)[0]
            old = server.core.cache[item]
            await stream.send(protocol.refresh(0, item, old * 10.0, seq=1))
            notify = await asyncio.wait_for(sub_stream.receive(), timeout=5)
            assert notify["type"] == MessageType.NOTIFY.value
            assert notify["updates"]
            assert server.core.cache[item] == old * 10.0
            await server.close()

        run(body())

    def test_duplicate_and_stale_refresh_seq_rejected(self, scenario_server):
        server, scenario, item_to_source = scenario_server

        async def body():
            stream, _ = await registered_stream(
                server, scenario, item_to_source, source_id=0)
            item = owned_items(item_to_source, 0)[0]
            await stream.send(protocol.refresh(0, item, 100.0, seq=5))
            await stream.send(protocol.refresh(0, item, 200.0, seq=5))  # dup
            await stream.send(protocol.refresh(0, item, 300.0, seq=4))  # stale
            # A snapshot round trip orders us after the three refreshes
            # (the first refresh may push a DAB_UPDATE at us on the way).
            await stream.send(protocol.snapshot())
            while True:
                reply = await stream.receive()
                if reply["type"] == MessageType.SNAPSHOT.value:
                    break
            assert server.core.cache[item] == 100.0
            assert server.stats["refreshes_accepted"] == 1
            assert server.stats["refreshes_rejected_stale_seq"] == 2
            assert server.metrics.duplicate_rejects == 2
            await server.close()

        run(body())

    def test_reregister_takes_over_the_source(self, scenario_server):
        server, scenario, item_to_source = scenario_server

        async def body():
            first, _ = await registered_stream(
                server, scenario, item_to_source, source_id=0)
            second, reply = await registered_stream(
                server, scenario, item_to_source, source_id=0)
            assert server.stats["sources_registered"] == 2
            # The old stream was displaced; the new one owns the source.
            assert server._source_streams[0] is not first
            await server.close()

        run(body())

    def test_reregister_reply_carries_seq_high_water(self, scenario_server):
        server, scenario, item_to_source = scenario_server

        async def body():
            stream, first_reply = await registered_stream(
                server, scenario, item_to_source, source_id=0)
            assert "seqs" not in first_reply           # nothing accepted yet
            item = owned_items(item_to_source, 0)[0]
            await stream.send(protocol.refresh(0, item, 123.0, seq=7))
            await stream.send(protocol.snapshot())     # sync point
            while True:
                reply = await stream.receive()
                if reply["type"] == MessageType.SNAPSHOT.value:
                    break
            # A restarted process re-registers: the reply must tell it
            # where seq numbering left off, or its refreshes are muted.
            second, reply = await registered_stream(
                server, scenario, item_to_source, source_id=0)
            assert reply["seqs"] == {item: 7}
            await server.close()

        run(body())

    def test_unknown_item_refresh_counts_as_misrouted(self, scenario_server):
        server, scenario, item_to_source = scenario_server

        async def body():
            stream, _ = await registered_stream(
                server, scenario, item_to_source, source_id=0)
            await stream.send(protocol.refresh(0, "not-an-item", 1.0, seq=1))
            await stream.send(protocol.snapshot())
            await stream.receive()
            assert server.stats["refreshes_accepted"] == 0
            assert server.metrics.misrouted_bounds >= 1
            await server.close()

        run(body())


class TestProtocolPolicing:
    def test_unknown_message_type_gets_error_reply(self, scenario_server):
        server, _, _ = scenario_server

        async def body():
            stream = server.connect_loopback()
            await stream.send({"v": PROTOCOL_VERSION, "type": "teleport"})
            reply = await stream.receive()
            assert reply["type"] == MessageType.ERROR.value
            assert "unknown message type" in reply["reason"]
            # The server hangs up after a protocol error.
            assert await stream.receive() is None
            assert server.stats["protocol_errors"] == 1
            await server.close()

        run(body())

    def test_version_mismatch_rejected(self, scenario_server):
        server, _, _ = scenario_server

        async def body():
            stream = server.connect_loopback()
            await stream.send({"v": 999, "type": "snapshot"})
            reply = await stream.receive()
            assert reply["type"] == MessageType.ERROR.value
            assert "version mismatch" in reply["reason"]
            await server.close()

        run(body())

    def test_server_to_client_types_rejected_inbound(self, scenario_server):
        server, _, _ = scenario_server

        async def body():
            stream = server.connect_loopback()
            await stream.send(protocol.notify([{"query": "q", "value": 1.0}]))
            reply = await stream.receive()
            assert reply["type"] == MessageType.ERROR.value
            await server.close()

        run(body())

    def test_malformed_field_types_get_error_reply(self, scenario_server):
        server, _, _ = scenario_server

        async def body():
            # Well-framed, versioned, right type — but the fields are the
            # wrong shapes.  Must be a clean protocol error, not a dead
            # handler task.
            bad_messages = [
                {"v": PROTOCOL_VERSION, "type": "refresh",
                 "source_id": "zero", "item": "x0", "value": 1.0, "seq": 1},
                {"v": PROTOCOL_VERSION, "type": "refresh",
                 "source_id": 0, "item": "x0", "value": "12", "seq": 1},
                {"v": PROTOCOL_VERSION, "type": "heartbeat",
                 "source_id": 0, "seqs": ["x0"]},
                {"v": PROTOCOL_VERSION, "type": "register_source",
                 "source_id": 0, "items": "x0"},
            ]
            for bad in bad_messages:
                stream = server.connect_loopback()
                await stream.send(bad)
                reply = await stream.receive()
                assert reply["type"] == MessageType.ERROR.value
                assert "malformed" in reply["reason"]
                assert await stream.receive() is None   # server hung up
            await server.close()

        run(body())


class TestBackpressure:
    def test_slow_consumer_is_evicted(self, scenario_server):
        server, scenario, item_to_source = scenario_server

        async def body():
            # A subscriber whose writer never drains (as if its TCP window
            # were jammed): the bounded queue fills, then eviction.
            client_end, server_end = loopback_pair()
            sub = _Subscriber(99, server_end, None, limit=2)
            server._subscribers[99] = sub
            updates = [("q", 1.0)]
            for _ in range(2):
                server._fanout_notifications(updates, None)
            assert 99 in server._subscribers          # queue full, not over
            server._fanout_notifications(updates, None)
            assert 99 not in server._subscribers      # evicted
            assert server.stats["slow_consumer_evictions"] == 1
            assert sub.stream.closed
            await server.close()

        run(body())

    def test_drop_subscriber_with_exactly_full_queue(self, scenario_server):
        server, _, _ = scenario_server

        async def body():
            # The queue is exactly full (fanout only evicts on overflow)
            # and the writer is wedged: dropping the subscriber must not
            # raise QueueFull out of close()'s cleanup loop.
            client_end, server_end = loopback_pair()
            sub = _Subscriber(42, server_end, None, limit=1)
            sub.queue.put_nowait(protocol.notify([]))
            sub.writer_task = asyncio.ensure_future(asyncio.sleep(60))
            server._subscribers[42] = sub
            await server._drop_subscriber(sub)
            assert 42 not in server._subscribers
            assert sub.writer_task.cancelled()
            assert sub.stream.closed
            await server.close()

        run(body())

    def test_healthy_subscribers_survive_fanout_bursts(self, scenario_server):
        server, scenario, item_to_source = scenario_server

        async def body():
            stream, _ = await registered_stream(
                server, scenario, item_to_source, source_id=0)
            sub_stream = server.connect_loopback()
            await sub_stream.send(protocol.query_sub("*"))
            await sub_stream.receive()                # snapshot
            item = owned_items(item_to_source, 0)[0]
            value = server.core.cache[item]
            for seq in range(1, 31):
                value *= 1.5
                await stream.send(protocol.refresh(0, item, value, seq=seq))
            received = 0
            while True:
                try:
                    message = await asyncio.wait_for(sub_stream.receive(),
                                                     timeout=0.5)
                except asyncio.TimeoutError:
                    break
                if message is None:
                    break
                received += message["type"] == MessageType.NOTIFY.value
            assert received > 0
            assert server.stats["slow_consumer_evictions"] == 0
            await server.close()

        run(body())


class TestSnapshots:
    def test_snapshot_carries_values_and_stats(self, scenario_server):
        server, scenario, _ = scenario_server

        async def body():
            stream = server.connect_loopback()
            await stream.send(protocol.snapshot())
            reply = await stream.receive()
            assert reply["type"] == MessageType.SNAPSHOT.value
            assert set(reply["values"]) == {q.name for q in scenario.queries}
            assert reply["stats"]["queries"] == len(scenario.queries)
            await server.close()

        run(body())

    def test_query_sub_filters_to_requested_queries(self, scenario_server):
        server, scenario, _ = scenario_server

        async def body():
            wanted = scenario.queries[0].name
            stream = server.connect_loopback()
            await stream.send(protocol.query_sub([wanted, "no-such-query"]))
            snapshot = await stream.receive()
            assert set(snapshot["values"]) == {wanted}
            await server.close()

        run(body())
