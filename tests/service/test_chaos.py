"""Wire-level fault injection: deterministic decisions over real frames."""

import asyncio

import pytest

from repro.exceptions import SimulationError
from repro.service import protocol
from repro.service.chaos import (
    ChaosWriter,
    FaultInjector,
    FaultSchedule,
    chaos_loopback_pair,
    chaos_stream,
)
from repro.service.protocol import ProtocolError
from repro.service.transports import TransportClosed, loopback_pair
from repro.simulation.faults import CrashWindow, PartitionWindow


def run(coro):
    return asyncio.run(coro)


NEARLY_ALWAYS = 0.999999


class TestFaultSchedule:
    def test_rates_validated(self):
        with pytest.raises(SimulationError):
            FaultSchedule(drop_rate=1.0)
        with pytest.raises(SimulationError):
            FaultSchedule(corrupt_rate=-0.1)
        with pytest.raises(SimulationError):
            FaultSchedule(delay_steps=0)

    def test_enabled_and_kinds(self):
        assert not FaultSchedule().enabled
        assert FaultSchedule().fault_kinds() == []
        schedule = FaultSchedule(
            drop_rate=0.1, partitions=(PartitionWindow(1.0, 2.0),),
            crash_windows=(CrashWindow(0, 1.0, 2.0),))
        assert schedule.enabled
        assert schedule.fault_kinds() == ["drop", "partition", "agent_crash"]


class TestNoOpGuard:
    def test_disabled_schedule_leaves_stream_untouched(self):
        async def check():
            injector = FaultInjector(FaultSchedule())
            client_end, server_end = loopback_pair()
            wrapped = chaos_stream(client_end, injector, "a->b")
            assert wrapped is client_end
            assert not isinstance(client_end._writer, ChaosWriter)
            await client_end.send(protocol.heartbeat(0, {}))
            assert (await server_end.receive())["type"] == "heartbeat"
            assert injector.trace == []

        run(check())

    def test_disabled_injector_draws_no_rng(self):
        injector = FaultInjector()
        injector.decide("a->b")
        assert injector._streams == {}


class TestDeterminism:
    def _decisions(self, schedule, links):
        injector = FaultInjector(schedule)
        fates = []
        for step in range(20):
            injector.advance(step)
            for link in links:
                fates.append((step, link, tuple(sorted(
                    injector.decide(link).items()))))
        return fates, injector.digest()

    def test_same_seed_same_trace(self):
        schedule = FaultSchedule(drop_rate=0.3, duplicate_rate=0.2,
                                 corrupt_rate=0.1, delay_rate=0.2,
                                 disconnect_rate=0.1, seed=5)
        a, digest_a = self._decisions(schedule, ["x->c", "c->x"])
        b, digest_b = self._decisions(schedule, ["x->c", "c->x"])
        assert a == b
        assert digest_a == digest_b

    def test_different_seed_different_trace(self):
        base = dict(drop_rate=0.3, duplicate_rate=0.2, delay_rate=0.2)
        _, digest_a = self._decisions(FaultSchedule(seed=1, **base), ["l"])
        _, digest_b = self._decisions(FaultSchedule(seed=2, **base), ["l"])
        assert digest_a != digest_b

    def test_links_are_independent_substreams(self):
        schedule = FaultSchedule(drop_rate=0.4, duplicate_rate=0.3, seed=9)
        solo = FaultInjector(schedule)
        solo_fates = [tuple(sorted(solo.decide("b->c").items()))
                      for _ in range(15)]
        mixed = FaultInjector(schedule)
        mixed_fates = []
        for _ in range(15):
            mixed.decide("a->c")        # interleaved traffic on another link
            mixed_fates.append(tuple(sorted(mixed.decide("b->c").items())))
        assert solo_fates == mixed_fates


class TestWindows:
    def test_partition_drops_every_frame(self):
        injector = FaultInjector(FaultSchedule(
            partitions=(PartitionWindow(5.0, 8.0),)))
        injector.advance(6)
        assert injector.decide("a->c") == {"drop": True}
        assert injector.counts["partition_drop"] == 1
        injector.advance(8)
        assert injector.decide("a->c") == {}

    def test_loss_windows_confine_drops(self):
        schedule = FaultSchedule(drop_rate=0.9,
                                 loss_windows=(PartitionWindow(10.0, 20.0),),
                                 seed=0)
        outside = FaultInjector(schedule)
        outside.advance(0)
        assert not any(outside.decide("l").get("drop") for _ in range(50))
        inside = FaultInjector(schedule)
        inside.advance(15)
        assert any(inside.decide("l").get("drop") for _ in range(50))

    def test_is_crashed(self):
        injector = FaultInjector(FaultSchedule(
            crash_windows=(CrashWindow(1, 3.0, 6.0),)))
        assert injector.is_crashed(1, 4)
        assert not injector.is_crashed(1, 6)
        assert not injector.is_crashed(0, 4)


class TestWireFaults:
    """Each fault channel exercised over real loopback frames."""

    def _pair(self, **schedule_kwargs):
        injector = FaultInjector(FaultSchedule(**schedule_kwargs))
        client_end, server_end = chaos_loopback_pair(injector, "src0")
        return injector, client_end, server_end

    def test_drop_loses_the_frame(self):
        async def check():
            injector, client_end, server_end = self._pair(
                drop_rate=NEARLY_ALWAYS)
            await client_end.send(protocol.heartbeat(0, {}))
            client_end.close()
            assert await server_end.receive() is None     # EOF, no frame
            assert injector.counts["drop"] >= 1

        run(check())

    def test_duplicate_is_delivered_twice(self):
        async def check():
            _, client_end, server_end = self._pair(
                duplicate_rate=NEARLY_ALWAYS)
            await client_end.send(protocol.heartbeat(0, {}))
            first = await server_end.receive()
            second = await server_end.receive()
            assert first == second

        run(check())

    def test_corruption_is_always_detected(self):
        async def check():
            injector, client_end, server_end = self._pair(
                corrupt_rate=NEARLY_ALWAYS)
            await client_end.send(protocol.heartbeat(0, {}))
            with pytest.raises(ProtocolError):
                await server_end.receive()
            assert injector.counts["corrupt"] == 1

        run(check())

    def test_delay_holds_until_clock_advances(self):
        async def check():
            injector, client_end, server_end = self._pair(
                delay_rate=NEARLY_ALWAYS, delay_steps=2)
            await client_end.send(protocol.heartbeat(0, {}))
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(server_end.receive(), 0.05)
            injector.advance(2)
            message = await asyncio.wait_for(server_end.receive(), 1.0)
            assert message["type"] == "heartbeat"

        run(check())

    def test_disconnect_severs_both_ends(self):
        async def check():
            _, client_end, server_end = self._pair(
                disconnect_rate=NEARLY_ALWAYS)
            with pytest.raises(TransportClosed):
                await client_end.send(protocol.heartbeat(0, {}))
            assert await server_end.receive() is None

        run(check())

    def test_trace_rows_shape(self):
        injector, client_end, _ = self._pair(duplicate_rate=NEARLY_ALWAYS)

        async def check():
            await client_end.send(protocol.heartbeat(0, {}))

        run(check())
        (row,) = injector.trace_rows()
        assert row == {"step": 0, "link": "src0->coord",
                       "fault": "duplicate", "frame": 1}
