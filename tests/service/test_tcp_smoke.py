"""One real-TCP smoke test: localhost, ephemeral port.

Everything else in the service suite runs on the loopback transport; this
test proves the same server/agent/client stack holds together over actual
sockets.  Deselect with ``-m "not network"`` in environments that forbid
even localhost listeners.
"""

import asyncio

import pytest

from repro.service import protocol
from repro.service.agent import agents_for_scenario
from repro.service.client import ServiceClient
from repro.service.protocol import MessageType
from repro.service.server import build_scenario_server
from repro.service.transports import open_tcp_stream


@pytest.mark.network
def test_tcp_end_to_end():
    server, scenario, item_to_source = build_scenario_server(
        query_count=4, item_count=20, source_count=2, trace_length=61, seed=3)

    async def body():
        host, port = await server.serve_tcp("127.0.0.1", 0)
        assert port != 0

        agents = agents_for_scenario(scenario, item_to_source,
                                     timestamp_refreshes=True)
        for agent in agents.values():
            await agent.connect(await open_tcp_stream(host, port))

        client = ServiceClient(await open_tcp_stream(host, port))
        snapshot = await client.subscribe("*")
        assert len(snapshot) == len(scenario.queries)

        for agent in agents.values():
            await agent.replay(scenario.traces, max_steps=40)
        await asyncio.sleep(0.2)                      # let notifies drain

        # Served values stay inside every query's accuracy bound of the
        # ground truth at the agents' current values.
        truth = {}
        for agent in agents.values():
            truth.update(agent.values)
        served = await client.request_snapshot()
        for query in scenario.queries:
            error = abs(served[query.name] - query.evaluate(truth))
            assert error <= query.qab * (1 + 1e-9) + 1e-12

        assert server.stats["refreshes_accepted"] > 0
        await client.close()
        for agent in agents.values():
            await agent.close()
        await server.close()

    asyncio.run(body())


@pytest.mark.network
def test_tcp_rejects_garbage_frames():
    server, _, _ = build_scenario_server(
        query_count=2, item_count=20, source_count=1, trace_length=41, seed=3)

    async def body():
        host, port = await server.serve_tcp("127.0.0.1", 0)
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b"\xff\xff\xff\xff")             # 4 GiB frame announced
        await writer.drain()
        # The server answers with an ERROR frame, then hangs up.
        stream_closed = await asyncio.wait_for(reader.read(4096), timeout=5)
        assert stream_closed                           # got the error frame
        assert await asyncio.wait_for(reader.read(4096), timeout=5) == b""
        writer.close()
        assert server.stats["protocol_errors"] == 1
        await server.close()

    asyncio.run(body())


@pytest.mark.network
def test_tcp_unknown_type_gets_error():
    server, _, _ = build_scenario_server(
        query_count=2, item_count=20, source_count=1, trace_length=41, seed=3)

    async def body():
        host, port = await server.serve_tcp("127.0.0.1", 0)
        stream = await open_tcp_stream(host, port)
        await stream.send({"v": protocol.PROTOCOL_VERSION, "type": "warp"})
        reply = await asyncio.wait_for(stream.receive(), timeout=5)
        assert reply["type"] == MessageType.ERROR.value
        stream.close()
        await server.close()

    asyncio.run(body())
