"""Framing and message-validation edge cases for the wire protocol."""

import json
import struct

import pytest

from repro.service import protocol
from repro.service.protocol import (
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    MessageType,
    ProtocolError,
    encode_frame,
    validate_message,
)


def frame_of(message):
    return encode_frame(message)


class TestFraming:
    def test_round_trip(self):
        message = protocol.refresh(3, "x7", 41.5, 12)
        decoder = FrameDecoder()
        (decoded,) = decoder.feed(frame_of(message))
        assert decoded == message

    def test_partial_frames_buffer_across_feeds(self):
        message = protocol.heartbeat(1, {"x0": 4, "x1": 9})
        data = frame_of(message)
        decoder = FrameDecoder()
        # Byte-at-a-time delivery: nothing until the last byte lands.
        for byte_index in range(len(data) - 1):
            assert decoder.feed(data[byte_index:byte_index + 1]) == []
        (decoded,) = decoder.feed(data[-1:])
        assert decoded == message

    def test_header_split_across_feeds(self):
        message = protocol.error("boom")
        data = frame_of(message)
        decoder = FrameDecoder()
        assert decoder.feed(data[:2]) == []           # half the length prefix
        assert decoder.feed(data[2:HEADER_BYTES]) == []
        (decoded,) = decoder.feed(data[HEADER_BYTES:])
        assert decoded == message

    def test_multiple_frames_in_one_feed(self):
        first = protocol.refresh(0, "x0", 1.0, 1)
        second = protocol.refresh(0, "x0", 2.0, 2)
        decoder = FrameDecoder()
        assert decoder.feed(frame_of(first) + frame_of(second)) == [first, second]

    def test_oversized_frame_rejected_before_buffering(self):
        decoder = FrameDecoder(max_frame_bytes=64)
        header = struct.pack(">I", 65)
        with pytest.raises(ProtocolError, match="65-byte frame"):
            decoder.feed(header)
        assert decoder.buffered_bytes <= HEADER_BYTES

    def test_oversized_outgoing_frame_rejected(self):
        huge = protocol.error("x" * 200)
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame(huge, max_frame_bytes=64)

    def test_default_limit_is_one_mebibyte(self):
        assert MAX_FRAME_BYTES == 1 << 20

    def test_undecodable_body_poisons_decoder(self):
        decoder = FrameDecoder()
        body = b"\xff\xfe not json"
        with pytest.raises(ProtocolError, match="undecodable"):
            decoder.feed(struct.pack(">I", len(body)) + body)
        # Poisoned: even a perfectly good frame is refused now.
        with pytest.raises(ProtocolError, match="close the connection"):
            decoder.feed(frame_of(protocol.error("fine")))

    def test_non_object_body_rejected(self):
        body = json.dumps([1, 2, 3]).encode()
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError, match="JSON object"):
            decoder.feed(struct.pack(">I", len(body)) + body)


class TestValidation:
    def test_unknown_message_type(self):
        with pytest.raises(ProtocolError, match="unknown message type"):
            validate_message({"v": PROTOCOL_VERSION, "type": "teleport"})

    def test_version_mismatch(self):
        good = protocol.heartbeat(0, {})
        bad = dict(good, v=PROTOCOL_VERSION + 1)
        with pytest.raises(ProtocolError, match="version mismatch"):
            validate_message(bad)
        with pytest.raises(ProtocolError, match="version mismatch"):
            validate_message({"type": "heartbeat"})      # version absent

    def test_missing_required_fields(self):
        partial = {"v": PROTOCOL_VERSION, "type": "refresh", "item": "x0"}
        with pytest.raises(ProtocolError, match="missing fields"):
            validate_message(partial)

    def test_every_constructor_validates(self):
        messages = [
            protocol.register_source(2, ["x1", "x0"]),
            protocol.refresh(2, "x0", 3.5, 7, resync=True, sent_at=1.0),
            protocol.dab_update(2, {"x0": 0.5}, {"x0": 3}),
            protocol.heartbeat(2, {"x0": 7}),
            protocol.query_sub(["q1", "q0"]),
            protocol.query_sub(),
            protocol.notify([{"query": "q0", "value": 9.0}], sent_at=2.0),
            protocol.snapshot(),
            protocol.snapshot(values={"q0": 9.0}, stats={"refreshes": 1}),
            protocol.error("nope"),
        ]
        for message in messages:
            kind = validate_message(message)
            assert isinstance(kind, MessageType)
            # And each survives a framing round trip unchanged.
            (decoded,) = FrameDecoder().feed(encode_frame(message))
            assert decoded == message

    def test_register_source_sorts_items(self):
        assert protocol.register_source(0, ["b", "a"])["items"] == ["a", "b"]

    def test_nan_values_refused_at_encode_time(self):
        message = protocol.refresh(0, "x0", float("nan"), 1)
        with pytest.raises(ValueError):
            encode_frame(message)

    def test_non_finite_constants_refused_at_decode_time(self):
        # encode_frame already refuses NaN/Infinity; a hostile peer can
        # still put them on the wire, and json.loads would accept them.
        for constant in ("NaN", "Infinity", "-Infinity"):
            body = (f'{{"v": 1, "type": "refresh", "source_id": 0, '
                    f'"item": "x0", "value": {constant}, "seq": 1}}').encode()
            decoder = FrameDecoder()
            with pytest.raises(ProtocolError, match="undecodable"):
                decoder.feed(struct.pack(">I", len(body)) + body)

    def test_malformed_field_types_rejected(self):
        good = protocol.refresh(0, "x0", 1.0, 1)
        bad_messages = [
            dict(good, source_id="zero"),          # numeric string
            dict(good, source_id=True),            # bool is not an int
            dict(good, value="12"),                # numeric string
            dict(good, value=float("nan")),        # non-finite
            dict(good, seq=1.5),                   # float seq
            dict(good, resync="yes"),              # optional, still typed
            dict(protocol.register_source(0, ["x0"]), items="x0"),
            dict(protocol.heartbeat(0, {"x0": 1}), seqs=["x0"]),
            dict(protocol.dab_update(0, {"x0": 1.0}, {"x0": 1}),
                 bounds={"x0": "wide"}),
            dict(protocol.dab_update(0, {}, {}, seqs={"x0": 1}),
                 seqs={"x0": "7"}),
            dict(protocol.query_sub(["q0"]), queries=7),
            dict(protocol.error("x"), reason=None),
        ]
        for bad in bad_messages:
            with pytest.raises(ProtocolError, match="malformed"):
                validate_message(bad)

    def test_dab_update_seqs_roundtrip(self):
        message = protocol.dab_update(2, {"x0": 0.5}, {"x0": 3},
                                      seqs={"x0": 9})
        assert message["seqs"] == {"x0": 9}
        assert validate_message(message) is MessageType.DAB_UPDATE
        (decoded,) = FrameDecoder().feed(encode_frame(message))
        assert decoded == message
        # Omitted entirely when not given (registration replies only).
        assert "seqs" not in protocol.dab_update(2, {"x0": 0.5}, {"x0": 3})
