"""Live QUERY_SUB registration against the shared bank index (ISSUE 8).

The bounded-work contract: subscribing N new query definitions costs N
index *appends* (template-sized work each), never an O(bank) vectorized
rebuild — ``core.bank_rebuilds`` must stay 0 in shared mode while a
thousand definitions stream in.  Plus the registration semantics around
it: idempotent duplicate registration via refcounts, validate-all-first
rejection (no partial effect), and last-reference removal when the
defining subscriber goes away.
"""

import asyncio

import pytest

from repro.queries import PolynomialQuery, QueryTerm
from repro.queries.items import ItemRegistry
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.protocol import MessageType
from repro.service.server import build_scenario_server
from repro.workloads import WorkloadConfig, generate_template_bank


def run(coro):
    return asyncio.run(coro)


def _server(bank_index="shared"):
    return build_scenario_server(query_count=4, item_count=20,
                                 source_count=2, trace_length=41, seed=1,
                                 bank_index=bank_index)


def _dynamic_bank(core, count, distinct, prefix="dyn", seed=2):
    """Single-pair dynamic queries over the server's cached items (small
    structures keep the per-query GP solve cheap at N=1000)."""
    names = sorted(core.cache)
    registry = ItemRegistry.from_names(names)
    values = {name: core.cache[name] for name in names}
    cfg = WorkloadConfig(pairs_per_query=(1, 1))
    return generate_template_bank(registry, values, count, distinct,
                                  config=cfg, seed=seed, name_prefix=prefix)


async def _settled(server, predicate, timeout=5.0):
    deadline = asyncio.get_event_loop().time() + timeout
    while not predicate():
        if asyncio.get_event_loop().time() > deadline:
            return False
        await asyncio.sleep(0.01)
    return True


class TestBoundedWork:
    def test_thousand_definitions_without_bank_rebuild(self):
        server, scenario, item_to_source = _server()

        async def body():
            bank = _dynamic_bank(server.core, count=1000, distinct=10)
            client = ServiceClient(server.connect_loopback())
            snapshot = await client.subscribe(definitions=bank)
            # Every definition is live and served in the snapshot.
            assert len(snapshot) == 4 + 1000
            # The headline: not one O(bank) recompile happened.
            assert server.core.bank_rebuilds == 0
            stats = server.server_stats()["bank_index"]
            assert stats["rebuilds"] == 0
            assert stats["appends"] == 4 + 1000
            assert stats["dynamic_queries"] == 1000
            # 4 initial structures + 10 dynamic ones, not 1004.
            assert stats["distinct_structures"] <= 14
            assert stats["dedup_ratio"] > 50.0
            await client.close()
            await server.close()

        run(body())

    def test_flat_mode_pays_one_rebuild_per_definition(self):
        server, scenario, item_to_source = _server(bank_index="flat")

        async def body():
            bank = _dynamic_bank(server.core, count=3, distinct=3)
            client = ServiceClient(server.connect_loopback())
            await client.subscribe(definitions=bank)
            assert server.core.bank_rebuilds == 3
            assert "bank_index" not in server.server_stats()
            await client.close()
            await server.close()

        run(body())


class TestRegistrationSemantics:
    def test_duplicate_registration_is_refcounted(self):
        server, scenario, item_to_source = _server()

        async def body():
            (query,) = _dynamic_bank(server.core, count=1, distinct=1)
            first = ServiceClient(server.connect_loopback())
            await first.subscribe(definitions=[query])
            second = ServiceClient(server.connect_loopback())
            await second.subscribe(definitions=[query])
            assert server._dynamic_refs[query.name] == 2
            appends = server.server_stats()["bank_index"]["appends"]
            assert appends == 4 + 1            # second sub did not re-add
            await first.close()
            assert await _settled(
                server, lambda: server._dynamic_refs.get(query.name) == 1)
            assert query.name in server.core.query_names
            await second.close()
            assert await _settled(
                server, lambda: query.name not in server.core.query_names)
            assert query.name not in server._dynamic_refs
            assert server.server_stats()["bank_index"]["removals"] == 1
            await server.close()

        run(body())

    def test_conflicting_definition_rejected_without_partial_effect(self):
        server, scenario, item_to_source = _server()

        async def body():
            taken = server.core.queries[0].name
            items = sorted(server.core.cache)[:2]
            conflict = PolynomialQuery(
                [QueryTerm.product(1.0, items[0], items[1])],
                qab=1.0, name=taken)
            (fresh,) = _dynamic_bank(server.core, count=1, distinct=1,
                                     prefix="fresh")
            stream = server.connect_loopback()
            await stream.send(protocol.query_sub([], [fresh, conflict]))
            reply = await asyncio.wait_for(stream.receive(), timeout=5)
            assert reply["type"] == MessageType.ERROR.value
            assert "different definition" in reply["reason"]
            # Validate-all-first: the valid definition before the bad one
            # must not have been registered.
            assert fresh.name not in server.core.query_names
            assert server.core.bank_rebuilds == 0
            await server.close()

        run(body())

    def test_unknown_item_rejected(self):
        server, scenario, item_to_source = _server()

        async def body():
            ghost = PolynomialQuery(
                [QueryTerm.product(1.0, "nope", "nada")],
                qab=1.0, name="ghost")
            stream = server.connect_loopback()
            await stream.send(protocol.query_sub([], [ghost]))
            reply = await asyncio.wait_for(stream.receive(), timeout=5)
            assert reply["type"] == MessageType.ERROR.value
            assert "unknown items" in reply["reason"]
            assert "ghost" not in server.core.query_names
            await server.close()

        run(body())

    def test_reregistering_static_query_is_not_dynamic(self):
        server, scenario, item_to_source = _server()

        async def body():
            static = server.core.queries[0]
            client = ServiceClient(server.connect_loopback())
            await client.subscribe(definitions=[static])
            # Identical redefinition of a static query is accepted but
            # takes no reference: closing cannot remove a static query.
            assert static.name not in server._dynamic_refs
            await client.close()
            await asyncio.sleep(0.05)
            assert static.name in server.core.query_names
            await server.close()

        run(body())


class TestImplicitSubscription:
    def test_defined_queries_are_notified(self):
        server, scenario, item_to_source = _server()

        async def body():
            owned = sorted(n for n, s in item_to_source.items() if s == 0)
            query = PolynomialQuery(
                [QueryTerm.product(3.0, owned[0], owned[1])],
                qab=1e-6, name="mine")
            source = server.connect_loopback()
            await source.send(protocol.register_source(0, owned))
            reply = await source.receive()
            assert reply["type"] == MessageType.DAB_UPDATE.value

            client = ServiceClient(server.connect_loopback())
            snapshot = await client.subscribe(queries=[], definitions=[query])
            assert "mine" in snapshot

            old = server.core.cache[owned[0]]
            await source.send(protocol.refresh(0, owned[0], old * 10.0,
                                               seq=1))
            assert await _settled(server,
                                  lambda: "mine" in client.values
                                  and client.values["mine"] != snapshot["mine"])
            # queries=[] plus one definition: nothing else is delivered.
            assert set(client.values) == {"mine"}
            await client.close()
            await server.close()

        run(body())
