"""The load generator, in process: full N x M run plus the QAB audit."""

import json

from repro.service.loadgen import run_loadgen


def test_loadgen_in_process(tmp_path):
    output = tmp_path / "BENCH_service.json"
    report = run_loadgen(sources=3, queries=6, items=20, duration=15,
                         subscribers=2, seed=2, output=str(output))

    assert report["transport"] == "loopback"
    assert report["sources"] == 3
    assert report["subscribers"] == 2
    assert report["ticks"] == 15 * report["items"]
    assert report["ticks_per_second"] > 0
    assert report["refreshes_sent"] + report["refreshes_filtered"] == report["ticks"]
    # The headline guarantee: zero QAB violations, fault-free.
    assert report["qab_violations"] == 0
    assert report["server_stats"]["refreshes"] == report["refreshes_sent"]

    written = json.loads(output.read_text())
    assert written["qab_violations"] == 0
    assert written["ticks"] == report["ticks"]


def test_loadgen_latency_percentiles_present():
    report = run_loadgen(sources=2, queries=8, items=20, duration=25,
                         subscribers=1, seed=4)
    assert report["qab_violations"] == 0
    if report["latency_samples"]:
        latency = report["notify_latency_seconds"]
        assert set(latency) == {"p50", "p95", "p99"}
        assert latency["p50"] <= latency["p95"] <= latency["p99"]


def test_latency_percentile_helper():
    from repro.service.client import latency_percentiles

    assert latency_percentiles([]) == {}
    samples = [float(i) for i in range(100)]
    out = latency_percentiles(samples)
    assert out["p50"] == 50.0 or abs(out["p50"] - 49.0) <= 1.0
    assert out["p99"] >= out["p95"] >= out["p50"]
