"""Agent-side resilience: fail-safe registration, acks, probes, reconnects.

The peer here is a hand-rolled fake coordinator on the other end of a
loopback pair, so each behaviour is pinned without a real server.
"""

import asyncio
import logging

import pytest

from repro.service import protocol
from repro.service.agent import SourceAgent
from repro.service.client import ServiceClient
from repro.service.protocol import ProtocolError
from repro.service.resilience import RetryExhausted, RetryPolicy
from repro.service.transports import TransportClosed, loopback_pair


def run(coro):
    return asyncio.run(coro)


def make_agent(**kwargs):
    defaults = dict(source_id=0, items=["x0", "x1"],
                    initial_values={"x0": 10.0, "x1": 20.0})
    defaults.update(kwargs)
    return SourceAgent(**defaults)


class TestFailSafeRegistration:
    def test_missing_reply_proceeds_failsafe_with_warning(self, caplog):
        async def check():
            agent = make_agent()
            client_end, server_end = loopback_pair()
            with caplog.at_level(logging.WARNING, "repro.service.agent"):
                await agent.connect(client_end, register_timeout=0.05)
            assert agent.stats["registrations_failsafe"] == 1
            assert any("fail-safe" in r.message for r in caplog.records)
            # No bounds were programmed: every tick is forwarded.
            assert await agent.tick({"x0": 10.0001}) == 1
            refresh = await server_end.receive()       # the registration...
            assert refresh["type"] == "register_source"
            refresh = await server_end.receive()       # ...then the value
            assert refresh["item"] == "x0"
            await agent.close()

        run(check())

    def test_corrupt_reply_also_goes_failsafe(self):
        async def check():
            agent = make_agent()
            client_end, server_end = loopback_pair()
            # Poison the reply path before the agent registers: a real
            # frame with one body byte flipped, as the chaos writer does.
            frame = bytearray(protocol.encode_frame(
                protocol.dab_update(0, {}, {})))
            frame[protocol.HEADER_BYTES] ^= 0xFF
            server_end._writer.write(bytes(frame))
            await agent.connect(client_end, register_timeout=1.0)
            assert agent.stats["registrations_failsafe"] == 1
            await agent.close()

        run(check())

    def test_error_reply_raises(self):
        async def check():
            agent = make_agent()
            client_end, server_end = loopback_pair()
            await server_end.send(protocol.error("no such source"))
            with pytest.raises(ProtocolError, match="registration rejected"):
                await agent.connect(client_end, register_timeout=1.0)

        run(check())


class TestAcksAndProbes:
    async def _connected(self):
        agent = make_agent()
        client_end, server_end = loopback_pair()
        await server_end.send(protocol.dab_update(
            0, {"x0": 1.0, "x1": 1.0}, {"x0": 1, "x1": 1}))
        await agent.connect(client_end, register_timeout=1.0)
        assert (await server_end.receive())["type"] == "register_source"
        return agent, server_end

    def test_dab_update_with_msg_id_is_acked(self):
        async def check():
            agent, server_end = await self._connected()
            await server_end.send(protocol.dab_update(
                0, {"x0": 2.0}, {"x0": 5}, msg_id=77))
            ack = await asyncio.wait_for(server_end.receive(), 1.0)
            assert ack["type"] == "dab_ack"
            assert ack["msg_id"] == 77
            assert agent.stats["dab_acks_sent"] == 1
            assert agent.bounds["x0"] == 2.0
            await agent.close()

        run(check())

    def test_probe_is_answered_with_resync_refresh(self):
        async def check():
            agent, server_end = await self._connected()
            agent.values["x0"] = 10.5                  # drifted, in-window
            held_seq = agent.seq["x0"]
            await server_end.send(protocol.dab_update(
                0, {}, {}, probe=["x0"]))
            refresh = await asyncio.wait_for(server_end.receive(), 1.0)
            assert refresh["type"] == "refresh"
            assert refresh["item"] == "x0"
            assert refresh["value"] == 10.5
            assert refresh["resync"] is True
            assert refresh["seq"] == held_seq + 1
            assert agent.stats["probes_answered"] == 1
            await agent.close()

        run(check())

    def test_error_message_closes_stream_for_next_tick(self):
        async def check():
            agent, server_end = await self._connected()
            await server_end.send(protocol.error("coordinator shed you"))
            for _ in range(6):
                await asyncio.sleep(0)
            with pytest.raises(TransportClosed):
                await agent.tick({"x0": 99.0})
            await agent.close()

        run(check())


class TestReconnectRetry:
    def test_retry_exhausted_after_repeated_failures(self):
        async def check():
            agent = make_agent()
            attempts = []

            async def always_down():
                attempts.append(1)
                raise ConnectionError("refused")

            policy = RetryPolicy(base_delay=0.0, max_attempts=3)
            with pytest.raises(RetryExhausted):
                await agent._reconnect(always_down, policy)
            assert len(attempts) == 3

        run(check())

    def test_reconnect_succeeds_after_flaps(self):
        async def check():
            agent = make_agent()
            attempts = []

            async def serve_registration(server_end):
                message = await server_end.receive()
                assert message["type"] == "register_source"
                await server_end.send(protocol.dab_update(
                    0, {"x0": 1.0}, {"x0": 9}, seqs={"x0": 12}))

            async def flaky_dial():
                attempts.append(1)
                if len(attempts) < 3:
                    raise ConnectionError("refused")
                client_end, server_end = loopback_pair()
                asyncio.ensure_future(serve_registration(server_end))
                return client_end

            policy = RetryPolicy(base_delay=0.0, max_attempts=5)
            await agent._reconnect(flaky_dial, policy)
            assert len(attempts) == 3
            assert agent.bounds["x0"] == 1.0
            assert agent.seq["x0"] == 12               # floored by resync
            await agent.close()

        run(check())


class TestClientDegraded:
    def test_degraded_map_is_replaced_not_merged(self):
        client_end, _ = loopback_pair()
        client = ServiceClient(client_end)
        client._apply_degraded(
            {"type": "notify", "degraded": {"q1": 2.0, "q2": 3.0}})
        assert client.degraded == {"q1": 2.0, "q2": 3.0}
        client._apply_degraded({"type": "notify", "degraded": {"q1": 2.5}})
        assert client.degraded == {"q1": 2.5}          # q2 recovered
        client._apply_degraded({"type": "notify"})     # field absent
        assert client.degraded == {"q1": 2.5}          # unchanged
        client._apply_degraded({"type": "notify", "degraded": {}})
        assert client.degraded == {}                   # all clear

    def test_close_timeout_is_configurable(self):
        client_end, _ = loopback_pair()
        assert ServiceClient(client_end).close_timeout == 1.0
        assert ServiceClient(client_end,
                             close_timeout=0.25).close_timeout == 0.25
