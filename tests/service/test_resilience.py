"""RetryPolicy backoff/jitter and the CircuitBreaker state machine."""

import asyncio

import pytest

from repro.exceptions import ReproError
from repro.service.resilience import (
    BreakerState,
    CircuitBreaker,
    RetryExhausted,
    RetryPolicy,
    retry_async,
)


def run(coro):
    return asyncio.run(coro)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestRetryPolicy:
    def test_exponential_schedule_capped(self):
        policy = RetryPolicy(base_delay=1.0, backoff=2.0, max_delay=5.0,
                             max_attempts=5)
        assert list(policy.delays()) == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_jitter_is_deterministic(self):
        a = RetryPolicy(base_delay=1.0, jitter=0.5, seed=7)
        b = RetryPolicy(base_delay=1.0, jitter=0.5, seed=7)
        assert list(a.delays()) == list(b.delays())
        assert all(1.0 <= d for d in a.delays())
        stretched = RetryPolicy(base_delay=1.0, backoff=1.0, jitter=0.5,
                                seed=7, max_attempts=4)
        assert len(set(stretched.delays())) > 1    # per-attempt substreams

    def test_validation(self):
        with pytest.raises(ReproError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ReproError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ReproError):
            RetryPolicy(base_delay=-1.0)

    def test_retry_async_succeeds_after_failures(self):
        attempts = []

        async def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ConnectionError("flap")
            return "ok"

        slept = []

        async def sleep(delay):
            slept.append(delay)

        policy = RetryPolicy(base_delay=0.5, backoff=2.0, max_attempts=5)
        assert run(retry_async(policy, flaky, sleep=sleep)) == "ok"
        assert len(attempts) == 3
        assert slept == [0.5, 1.0]

    def test_retry_async_gives_up(self):
        seen = []

        async def always_down():
            raise ConnectionError("down")

        async def sleep(_delay):
            pass

        policy = RetryPolicy(base_delay=0.0, max_attempts=3)
        with pytest.raises(RetryExhausted):
            run(retry_async(policy, always_down, sleep=sleep,
                            on_give_up=seen.append))
        assert len(seen) == 1 and isinstance(seen[0], ConnectionError)

    def test_retry_async_only_retries_listed_errors(self):
        async def boom():
            raise ValueError("not retryable")

        policy = RetryPolicy(base_delay=0.0, max_attempts=3)
        with pytest.raises(ValueError):
            run(retry_async(policy, boom, retry_on=(ConnectionError,)))


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=10.0,
                                 clock=clock)
        assert breaker.allow()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        assert breaker.stats["opens"] == 1
        assert breaker.stats["rejected_calls"] == 1

    def test_half_open_probe_then_recovery(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0,
                                 clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now = 11.0
        assert breaker.allow()                       # the half-open probe
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.allow()                   # one probe at a time
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()
        assert breaker.stats["recoveries"] == 1
        assert breaker.stats["open_seconds"] == pytest.approx(11.0)

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0,
                                 clock=clock)
        breaker.record_failure()
        clock.now = 6.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()                   # timer restarted
        assert breaker.stats["opens"] == 2

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_validation(self):
        with pytest.raises(ReproError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ReproError):
            CircuitBreaker(reset_timeout=0.0)

    def test_default_clock_is_monotonic_until_bound(self):
        import time

        breaker = CircuitBreaker()
        assert breaker.clock is time.monotonic

    def test_bind_clock_adopts_owner_clock(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0)
        breaker.bind_clock(clock)
        assert breaker.clock is clock
        breaker.record_failure()
        assert not breaker.allow()
        clock.now = 6.0
        assert breaker.allow()                       # driven by the bound clock

    def test_bind_clock_never_overrides_an_injected_clock(self):
        injected, other = FakeClock(), FakeClock()
        breaker = CircuitBreaker(clock=injected)
        breaker.bind_clock(other)
        assert breaker.clock is injected

    def test_bind_clock_first_bind_wins(self):
        first, second = FakeClock(), FakeClock()
        breaker = CircuitBreaker()
        breaker.bind_clock(first)
        breaker.bind_clock(second)
        assert breaker.clock is first
