"""Journal-backed shard failover: kill/restore cycles keep the cluster sound."""

import asyncio

import pytest

from repro.exceptions import ReproError
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.cluster.router import build_scenario_cluster
from repro.service.cluster.supervisor import ShardSupervisor


def run(coro):
    return asyncio.run(coro)


SCENARIO = dict(query_count=12, item_count=16, source_count=4,
                trace_length=40, seed=3)


async def _drain(rounds=10):
    for _ in range(rounds):
        await asyncio.sleep(0)


async def _registered_sources(cluster, item_to_source):
    streams = {}
    for source_id in sorted(set(item_to_source.values())):
        items = sorted(n for n, s in item_to_source.items()
                       if s == source_id)
        stream = cluster.connect_loopback()
        await stream.send(protocol.register_source(source_id, items))
        await stream.receive()
        streams[source_id] = stream
    return streams


async def _push_steps(streams, item_to_source, traces, steps, seq):
    for step in steps:
        for item in sorted(item_to_source):
            seq[item] = seq.get(item, 0) + 1
            source_id = item_to_source[item]
            await streams[source_id].send(protocol.refresh(
                source_id, item, traces[item].at(step), seq[item]))
        await _drain()


class TestShardFailover:
    def test_kill_and_restore_replays_journal_and_keeps_serving(self, tmp_path):
        cluster, scenario, item_to_source = build_scenario_cluster(
            shards=2, journal_dir=str(tmp_path / "wal"), **SCENARIO)
        supervisor = ShardSupervisor(cluster)

        async def body():
            await cluster.start()
            streams = await _registered_sources(cluster, item_to_source)
            seq = {}
            await _push_steps(streams, item_to_source, scenario.traces,
                              range(1, 12), seq)

            victim = cluster.decomposition.active_shards[0]
            record = await supervisor.kill_and_restore(victim)
            assert record["shard"] == victim
            assert record["records_replayed"] > 0
            assert record["recovery_seconds"] >= 0.0
            assert record["failover_seconds"] >= record["recovery_seconds"]
            assert list(supervisor.recoveries) == [record]
            assert cluster.stats["shard_reattachments"] == 1

            # The restored shard keeps accepting routed refreshes and the
            # cluster still serves every query's value.
            await _push_steps(streams, item_to_source, scenario.traces,
                              range(12, 24), seq)
            client = ServiceClient(cluster.connect_loopback())
            served = await client.subscribe("*")
            assert sorted(served) == sorted(q.name for q in scenario.queries)
            # Post-restore values are within the full budget of the truth:
            # the router recombines shard partials, so a broken replay
            # would show up as an unbounded error here.
            truth_inputs = {item: scenario.traces[item].at(23)
                            for item in item_to_source}
            for query in scenario.queries:
                truth = query.evaluate(truth_inputs)
                assert abs(served[query.name] - truth) <= (
                    query.qab * (1.0 + 1e-9) + 1e-12)
            await client.close()
            for stream in streams.values():
                stream.close()
            await cluster.close()

        run(body())

    def test_restore_loads_snapshot_when_one_was_cut(self, tmp_path):
        cluster, scenario, item_to_source = build_scenario_cluster(
            shards=2, journal_dir=str(tmp_path / "wal"), snapshot_every=5,
            **SCENARIO)
        supervisor = ShardSupervisor(cluster)

        async def body():
            await cluster.start()
            streams = await _registered_sources(cluster, item_to_source)
            await _push_steps(streams, item_to_source, scenario.traces,
                              range(1, 12), {})
            victim = cluster.decomposition.active_shards[0]
            record = await supervisor.kill_and_restore(victim)
            assert record["snapshot_loaded"] is True
            for stream in streams.values():
                stream.close()
            await cluster.close()

        run(body())

    def test_supervisor_requires_journaled_cluster(self):
        cluster, scenario, item_to_source = build_scenario_cluster(
            shards=2, **SCENARIO)
        supervisor = ShardSupervisor(cluster)

        async def body():
            await cluster.start()
            victim = cluster.decomposition.active_shards[0]
            with pytest.raises(ReproError):
                await supervisor.kill(victim)
            await cluster.close()

        run(body())

    def test_supervisor_rejects_unknown_shard(self, tmp_path):
        cluster, scenario, item_to_source = build_scenario_cluster(
            shards=2, journal_dir=str(tmp_path / "wal"), **SCENARIO)
        supervisor = ShardSupervisor(cluster)

        async def body():
            await cluster.start()
            with pytest.raises(ReproError):
                await supervisor.kill(99)
            await cluster.close()

        run(body())
