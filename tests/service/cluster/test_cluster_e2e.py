"""End-to-end cluster tests over loopback: QAB audit, bit-identity, stats."""

import asyncio

import pytest

from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.cluster.loadgen import run_cluster_loadgen
from repro.service.cluster.router import build_scenario_cluster
from repro.service.protocol import MessageType
from repro.service.server import build_scenario_server


def run(coro):
    return asyncio.run(coro)


SCENARIO = dict(query_count=12, item_count=16, source_count=4,
                trace_length=22, seed=3)


class TestClusterAudit:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_loadgen_audit_passes_with_cross_shard_queries(self, shards):
        report = run_cluster_loadgen(
            shards=shards, sources=4, queries=20, items=16, duration=15,
            subscribers=2, seed=1)
        assert report["qab_violations"] == 0
        # The scenario must actually exercise the B/k machinery.
        assert report["cross_shard_queries"] > 0
        assert len(report["active_shards"]) > 1
        assert report["refreshes_sent"] > 0

    def test_degraded_absent_without_leases(self):
        report = run_cluster_loadgen(
            shards=2, sources=4, queries=10, items=16, duration=10,
            subscribers=1, seed=2)
        assert report["qab_violations"] == 0


class TestSingleShardBitIdentity:
    def test_shards_1_matches_single_server_values_exactly(self):
        cluster, scenario, item_to_source = build_scenario_cluster(
            shards=1, **SCENARIO)
        server, scenario2, item_to_source2 = build_scenario_server(**SCENARIO)
        assert item_to_source == item_to_source2

        async def drive(target, is_cluster):
            if is_cluster:
                await target.start()
            streams = {}
            for source_id in sorted(set(item_to_source.values())):
                items = sorted(n for n, s in item_to_source.items()
                               if s == source_id)
                stream = target.connect_loopback()
                await stream.send(protocol.register_source(source_id, items))
                await stream.receive()
                streams[source_id] = stream
            seq = {}
            for step in range(1, 20):
                for item in sorted(item_to_source):
                    seq[item] = seq.get(item, 0) + 1
                    source_id = item_to_source[item]
                    value = scenario.traces[item].at(step)
                    await streams[source_id].send(protocol.refresh(
                        source_id, item, value, seq[item]))
                for _ in range(8):
                    await asyncio.sleep(0)
            client = ServiceClient(target.connect_loopback())
            served = await client.subscribe("*")
            await client.close()
            for stream in streams.values():
                stream.close()
            await target.close()
            return served

        served_cluster = run(drive(cluster, True))
        served_single = run(drive(server, False))
        # Same scenario, same refreshes → bitwise-equal served values:
        # shards=1 must add zero float perturbation anywhere.
        assert served_cluster == served_single

    def test_shards_1_decomposition_reuses_query_objects(self):
        cluster, scenario, _ = build_scenario_cluster(shards=1, **SCENARIO)
        for query in scenario.queries:
            dec = cluster.decomposition.decompositions[query.name]
            assert dec.sub_queries[0] is query

        async def close():
            await cluster.close()
        run(close())


class TestTrunkResilience:
    def test_severed_aggregation_trunk_is_resubscribed(self):
        # A shard under a notify storm may evict its subscribers; the
        # router's wildcard trunk must come back on its own (and re-seed
        # partials from the fresh snapshot), or the shard's values
        # silently freeze and the B/k audit breaks at scale.
        cluster, scenario, item_to_source = build_scenario_cluster(
            shards=2, **SCENARIO)

        async def body():
            await cluster.start()
            sid = cluster.decomposition.active_shards[0]
            old_trunk = cluster._sub_streams[sid]
            old_trunk.close()                      # simulate the eviction
            for _ in range(20):
                await asyncio.sleep(0)
            assert cluster.stats["shard_resubscribes"] == 1
            assert cluster._sub_streams[sid] is not old_trunk

            # The new trunk serves fresh gathers: a snapshot through the
            # router matches a direct read of each shard.
            client = ServiceClient(cluster.connect_loopback())
            served = await client.subscribe("*")
            await client.close()
            expected = {}
            for shard_id, server in cluster.shards.items():
                values = dict(zip((q.name for q in server.core.queries),
                                  server.core.query_values()))
                for name, value in values.items():
                    expected[name] = expected.get(name, 0.0) + value
            for name, value in expected.items():
                assert served[name] == value
            await cluster.close()

        run(body())

    def test_shard_trunk_queue_is_deeper_than_user_queues(self):
        from repro.service.cluster.router import SHARD_TRUNK_QUEUE_LIMIT

        cluster, scenario, _ = build_scenario_cluster(shards=2, **SCENARIO)
        for server in cluster.shards.values():
            assert server.notify_queue_limit >= SHARD_TRUNK_QUEUE_LIMIT
        assert cluster.notify_queue_limit < SHARD_TRUNK_QUEUE_LIMIT

        async def close():
            await cluster.close()
        run(close())


class TestClusterStats:
    def test_server_stats_reports_cluster_identity(self):
        cluster, scenario, _ = build_scenario_cluster(shards=2, **SCENARIO)

        async def body():
            await cluster.start()
            stats = cluster.server_stats()
            assert stats["cluster"] is True
            assert stats["shard_count"] == 2
            assert set(stats["shards"]) <= {"0", "1"}
            for sid, shard_stats in stats["shards"].items():
                assert shard_stats["shard_id"] == int(sid)
            assert stats["cross_shard_queries"] == len(
                cluster.decomposition.cross_shard)
            await cluster.close()

        run(body())

    def test_single_server_stats_have_shard_id_and_listen_address(self):
        server, scenario, _ = build_scenario_server(**SCENARIO)

        async def body():
            stats = server.server_stats()
            # Present (null) even for loopback embeddings, so dashboards
            # can key on the fields unconditionally.
            assert stats["shard_id"] is None
            assert stats["listen_address"] is None
            host, port = await server.serve_tcp("127.0.0.1", 0)
            stats = server.server_stats()
            assert stats["listen_address"] == [host, port]
            await server.close()

        run(body())

    def test_shard_tags_notify_and_snapshot_frames(self):
        server, scenario, item_to_source = build_scenario_server(
            shard_id=7, **SCENARIO)

        async def body():
            stream = server.connect_loopback()
            await stream.send(protocol.query_sub("*"))
            snap = await stream.receive()
            assert snap["type"] == MessageType.SNAPSHOT.value
            assert snap["shard"] == 7
            stream.close()
            await server.close()

        run(body())

    def test_query_sub_trunk_flag_roundtrips_and_defaults_absent(self):
        trunk = protocol.query_sub("*", trunk=True)
        assert protocol.validate_message(trunk) is MessageType.QUERY_SUB
        assert trunk["trunk"] is True
        # Ordinary subscription frames stay byte-identical.
        assert "trunk" not in protocol.query_sub("*")

    def test_protocol_accepts_and_roundtrips_shard_field(self):
        message = protocol.notify([{"query": "q", "value": 1.0}], shard=3)
        assert protocol.validate_message(message) is MessageType.NOTIFY
        assert message["shard"] == 3
        # Absent when None — single-node frames stay byte-identical.
        plain = protocol.notify([{"query": "q", "value": 1.0}])
        assert "shard" not in plain
