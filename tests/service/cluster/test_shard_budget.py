"""Cross-shard B/k budget decomposition: soundness and identity cases."""

import pytest

from repro.exceptions import SimulationError
from repro.filters.shard_budget import (
    decompose_bank,
    decompose_query,
    recombine,
    term_home_shard,
)
from repro.queries import parse_query
from repro.service.cluster.routing import ShardMap


def shard_of_2(item):
    return ShardMap(2).shard_of(item)


def shard_of_4(item):
    return ShardMap(4).shard_of(item)


class TestDecomposeQuery:
    def test_single_home_shard_keeps_original_object(self):
        # x0..x3 all co-hash to shard 1 at two shards: the query must NOT
        # split, and the sub-query must be the original object verbatim
        # (same terms, same full budget B) — the bit-identity guarantee.
        query = parse_query("x0*x1 + 2 x2*x3 : 5")
        dec = decompose_query(query, shard_of_2)
        assert not dec.is_cross_shard
        assert dec.home_shards == (1,)
        assert dec.sub_queries[1] is query
        assert dec.sub_qab(1) == query.qab

    def test_cross_shard_split_budgets_sum_to_qab(self):
        query = parse_query("x0*x1 + x2*x3 + x15*x1 : 6")
        dec = decompose_query(query, shard_of_4)
        assert dec.is_cross_shard
        k = len(dec.home_shards)
        assert k > 1
        total = sum(dec.sub_qab(s) for s in dec.home_shards)
        assert total == pytest.approx(query.qab)
        for shard in dec.home_shards:
            assert dec.sub_qab(shard) == pytest.approx(query.qab / k)

    def test_sub_queries_keep_the_original_name(self):
        query = parse_query("x0*x1 + x2*x3 + x15*x1 : 6")
        dec = decompose_query(query, shard_of_4)
        assert all(sub.name == query.name
                   for sub in dec.sub_queries.values())

    def test_sub_query_evaluations_sum_to_original(self):
        query = parse_query("3 x0*x1 - 2 x2*x3 + x15 : 6")
        values = {"x0": 2.0, "x1": 3.0, "x2": 1.5, "x3": 4.0, "x15": 7.0}
        dec = decompose_query(query, shard_of_4)
        parts = {shard: sub.evaluate(values)
                 for shard, sub in dec.sub_queries.items()}
        assert recombine(parts) == pytest.approx(query.evaluate(values))

    def test_term_home_is_first_variable_owner(self):
        query = parse_query("x2*x15 : 1")
        term = query.terms[0]
        assert term_home_shard(term, shard_of_4) == shard_of_4(
            min(term.variables))

    def test_mirrored_items_are_foreign_reads(self):
        # x0*x1 homes where min('x0','x1')='x0' lives (shard 1 of 4); x1
        # lives on shard 3, so shard 1 must mirror x1.
        query = parse_query("x0*x1 : 2")
        dec = decompose_query(query, shard_of_4)
        assert dec.home_shards == (1,)
        assert dec.mirrored == {1: ("x1",)}


class TestDecomposeBank:
    def test_items_needed_covers_owned_and_mirrored(self):
        queries = [parse_query("x0*x1 : 2"), parse_query("x2*x3 : 3")]
        bank = decompose_bank(queries, shard_of_4)
        for query in queries:
            for shard in bank.home_shards(query.name):
                needed = set(bank.items_needed[shard])
                sub = bank.decompositions[query.name].sub_queries[shard]
                assert set(sub.variables) <= needed

    def test_empty_shards_are_absent(self):
        bank = decompose_bank([parse_query("x0*x2 : 2")], shard_of_4)
        # both items hash to shard 1 → only shard 1 is active.
        assert bank.active_shards == (1,)
        assert 0 not in bank.sub_queries_for

    def test_duplicate_names_rejected(self):
        one = parse_query("x0*x1 : 2")
        clash = parse_query("x2*x3 : 2")
        clash = clash.sub_query(clash.terms, clash.qab, name=one.name)
        with pytest.raises(SimulationError):
            decompose_bank([one, clash], shard_of_4)

    def test_shards_of_item_includes_mirrors(self):
        bank = decompose_bank([parse_query("x0*x1 : 2")], shard_of_4)
        # x1 is owned by shard 3 but mirrored to home shard 1.
        assert 1 in bank.shards_of_item("x1")


class TestRecombine:
    def test_single_partial_is_verbatim(self):
        value = 0.1 + 0.2                 # a float with representation error
        assert recombine({3: value}) == value

    def test_sums_in_sorted_shard_order(self):
        parts = {2: 0.1, 0: 0.2, 1: 0.3}
        assert recombine(parts) == (0.2 + 0.3 + 0.1)

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            recombine({})
