"""Epoch-fenced live resharding: ShardMap rebalance and item migration."""

import asyncio

import pytest

from repro.exceptions import ReproError
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.cluster.migration import ShardMigrator
from repro.service.cluster.router import build_scenario_cluster
from repro.service.cluster.routing import ShardMap, stable_shard


def run(coro):
    return asyncio.run(coro)


SCENARIO = dict(query_count=12, item_count=16, source_count=4,
                trace_length=40, seed=3)


async def _drain(rounds=10):
    for _ in range(rounds):
        await asyncio.sleep(0)


async def _registered_sources(cluster, item_to_source):
    streams = {}
    for source_id in sorted(set(item_to_source.values())):
        items = sorted(n for n, s in item_to_source.items()
                       if s == source_id)
        stream = cluster.connect_loopback()
        await stream.send(protocol.register_source(source_id, items))
        await stream.receive()
        streams[source_id] = stream
    return streams


async def _push_steps(streams, item_to_source, traces, steps, seq):
    for step in steps:
        for item in sorted(item_to_source):
            seq[item] = seq.get(item, 0) + 1
            source_id = item_to_source[item]
            await streams[source_id].send(protocol.refresh(
                source_id, item, traces[item].at(step), seq[item]))
        await _drain()


class TestShardMap:
    def test_rebalance_bumps_epoch_and_moves_only_named_items(self):
        items = [f"x{i}" for i in range(20)]
        base = ShardMap(4)
        moved = base.rebalance({"x0": 3, "x7": 1})
        assert moved.epoch == base.epoch + 1
        assert moved.shard_of("x0") == 3
        assert moved.shard_of("x7") == 1
        for item in items:
            if item not in ("x0", "x7"):
                assert moved.shard_of(item) == base.shard_of(item)
        # The original map is untouched (immutability is what lets a
        # mid-flight migration hold both epochs side by side).
        assert base.epoch == 0
        assert base.overrides == {}

    def test_moving_home_again_drops_the_override(self):
        base = ShardMap(4)
        item = "x3"
        away = base.rebalance({item: (base.shard_of(item) + 1) % 4})
        home = away.rebalance({item: stable_shard(item, 4)})
        assert home.overrides == {}
        assert home.epoch == 2

    def test_out_of_range_target_rejected(self):
        with pytest.raises(ValueError):
            ShardMap(2).rebalance({"x0": 2})
        with pytest.raises(ValueError):
            ShardMap(2, overrides={"x0": 5})


class TestRebalanceMinimalMovementProperty:
    def test_only_moved_items_change_owner(self):
        hypothesis = pytest.importorskip("hypothesis")
        st = pytest.importorskip("hypothesis.strategies")
        given, settings = hypothesis.given, hypothesis.settings

        @settings(max_examples=200, deadline=None)
        @given(
            shards=st.integers(min_value=1, max_value=8),
            items=st.lists(st.text(
                alphabet="abcdefghij0123456789", min_size=1, max_size=8),
                min_size=1, max_size=30, unique=True),
            prior=st.data(),
        )
        def check(shards, items, prior):
            # Start from an arbitrary override table (a map mid-history),
            # then apply an arbitrary move set.
            prior_moves = prior.draw(st.dictionaries(
                st.sampled_from(items),
                st.integers(min_value=0, max_value=shards - 1)))
            moves = prior.draw(st.dictionaries(
                st.sampled_from(items),
                st.integers(min_value=0, max_value=shards - 1),
                min_size=1))
            base = ShardMap(shards, overrides=prior_moves)
            new = base.rebalance(moves)
            assert new.epoch == base.epoch + 1
            for item in items:
                if item in moves:
                    assert new.shard_of(item) == moves[item]
                else:
                    # Minimal movement: every unmoved item keeps its
                    # prior owner bit-for-bit across the epoch bump.
                    assert new.shard_of(item) == base.shard_of(item)

        check()


class TestLiveMigration:
    def test_migrate_item_across_shards_keeps_answers_in_bounds(
            self, tmp_path):
        now = [0.0]
        cluster, scenario, item_to_source = build_scenario_cluster(
            shards=3, journal_dir=str(tmp_path / "wal"),
            clock=lambda: now[0], **SCENARIO)
        migrator = ShardMigrator(cluster, clock=lambda: now[0])

        async def body():
            await cluster.start()
            streams = await _registered_sources(cluster, item_to_source)
            seq = {}
            await _push_steps(streams, item_to_source, scenario.traces,
                              range(1, 10), seq)

            item = sorted(item_to_source)[0]
            owner = cluster.shard_map.shard_of(item)
            active = cluster.decomposition.active_shards
            target = next(s for s in active if s != owner)
            assert migrator.start({item: target}) == 1

            # FREEZE tick: the item is mid-flight — refreshes buffer
            # instead of routing, and affected queries serve honestly
            # widened (degraded-flagged) bounds.
            now[0] += 1.0
            await migrator.tick()
            assert migrator.active
            assert item in cluster._frozen_items
            assert cluster._migration_degraded
            await _push_steps(streams, item_to_source, scenario.traces,
                              [10, 11], seq)
            assert cluster.stats["refreshes_frozen"] >= 2

            # CUTOVER tick: new map installed, fenced, flushed, unflagged.
            now[0] += 1.0
            record = await migrator.tick()
            await _drain()
            assert record["outcome"] == "completed"
            assert record["item"] == item
            assert record["epoch"] == 1
            assert record["flushed_refreshes"] >= 2
            assert record["migration_steps"] == 1.0  # freeze → cutover span
            assert not migrator.active
            assert cluster._frozen_items == {} if isinstance(
                cluster._frozen_items, dict) else not cluster._frozen_items
            assert not cluster._migration_degraded
            assert cluster.map_epoch == 1
            assert cluster.shard_map.shard_of(item) == target
            # Every live shard fences at the new epoch now.
            for sid in active:
                assert cluster.shards[sid].map_epoch == 1

            # The moved item keeps flowing end to end under the new map.
            await _push_steps(streams, item_to_source, scenario.traces,
                              range(12, 20), seq)
            client = ServiceClient(cluster.connect_loopback())
            served = await client.subscribe("*")
            truth_inputs = {name: scenario.traces[name].at(19)
                            for name in item_to_source}
            for query in scenario.queries:
                truth = query.evaluate(truth_inputs)
                assert abs(served[query.name] - truth) <= (
                    query.qab * (1.0 + 1e-9) + 1e-12)
            await client.close()
            for stream in streams.values():
                stream.close()
            await cluster.close()

        run(body())

    def test_migrator_rejects_unknown_item_and_bad_target(self, tmp_path):
        cluster, scenario, item_to_source = build_scenario_cluster(
            shards=2, journal_dir=str(tmp_path / "wal"), **SCENARIO)
        migrator = ShardMigrator(cluster)
        with pytest.raises(ReproError):
            migrator.start({"no_such_item": 0})
        item = sorted(item_to_source)[0]
        with pytest.raises(ReproError):
            migrator.start({item: 99})
        # A move to the current owner is a recorded no-op, not an error.
        assert migrator.start({item: cluster.shard_map.shard_of(item)}) == 0
        assert migrator.stats["moves_noop"] == 1

    def test_shard_fences_refreshes_routed_under_a_stale_map(self, tmp_path):
        cluster, scenario, item_to_source = build_scenario_cluster(
            shards=2, journal_dir=str(tmp_path / "wal"), **SCENARIO)

        async def body():
            await cluster.start()
            sid = cluster.decomposition.active_shards[0]
            server = cluster.shards[sid]
            item = sorted(server.core.cache)[0]
            server.advance_map_epoch(3)
            before = server.core.cache[item]
            stale = protocol.refresh(0, item, before + 1000.0, 10**6)
            stale["map_epoch"] = 2
            await server._on_refresh(None, stale)
            assert server.stats["refreshes_rejected_stale_map_epoch"] == 1
            assert server.core.cache[item] == before
            # An unstamped (pre-resharding) frame is also stale once the
            # shard has fenced: epoch-0 traffic cannot land post-cutover.
            legacy = protocol.refresh(0, item, before + 1000.0, 10**6)
            await server._on_refresh(None, legacy)
            assert server.stats["refreshes_rejected_stale_map_epoch"] == 2
            # A current-epoch frame converges the fence monotonically.
            server.advance_map_epoch(2)
            assert server.map_epoch == 3
            await cluster.close()

        run(body())
