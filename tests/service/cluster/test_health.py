"""Heartbeat failure detection and automatic failover (self-healing)."""

import asyncio

import pytest

from repro.exceptions import ReproError
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.cluster.health import ShardHealthMonitor
from repro.service.cluster.router import build_scenario_cluster
from repro.service.cluster.supervisor import ShardSupervisor


def run(coro):
    return asyncio.run(coro)


SCENARIO = dict(query_count=12, item_count=16, source_count=4,
                trace_length=40, seed=3)


async def _drain(rounds=10):
    for _ in range(rounds):
        await asyncio.sleep(0)


async def _registered_sources(cluster, item_to_source):
    streams = {}
    for source_id in sorted(set(item_to_source.values())):
        items = sorted(n for n, s in item_to_source.items()
                       if s == source_id)
        stream = cluster.connect_loopback()
        await stream.send(protocol.register_source(source_id, items))
        await stream.receive()
        streams[source_id] = stream
    return streams


async def _push_steps(streams, item_to_source, traces, steps, seq):
    for step in steps:
        for item in sorted(item_to_source):
            seq[item] = seq.get(item, 0) + 1
            source_id = item_to_source[item]
            await streams[source_id].send(protocol.refresh(
                source_id, item, traces[item].at(step), seq[item]))
        await _drain()


class _FakeStream:
    def __init__(self):
        self.sent = []


class _FakeCluster:
    """Just enough router surface for the pure detector-logic tests."""

    def __init__(self, shard_ids=(0, 1)):
        self.shards = {sid: object() for sid in shard_ids}
        self.shard_last_seen = {}
        self._sub_streams = {sid: _FakeStream() for sid in shard_ids}
        self.clock = lambda: 0.0
        self.health = None
        self.suspects = []
        self.cleared = []
        self.send_ok = True

    async def _safe_send(self, stream, message):
        if not self.send_ok:
            return False
        stream.sent.append(message)
        return True

    def mark_shard_suspect(self, sid):
        self.suspects.append(sid)

    def clear_shard_suspect(self, sid):
        self.cleared.append(sid)


class _FakeSupervisor:
    def __init__(self):
        self.failed_over = []

    async def fail_over(self, sid):
        self.failed_over.append(sid)
        return {"shard": sid, "records_replayed": 7}


class TestDetectorLogic:
    def test_constructor_guards(self):
        cluster = _FakeCluster()
        with pytest.raises(ReproError):
            ShardHealthMonitor(cluster)  # auto_failover without supervisor
        with pytest.raises(ReproError):
            ShardHealthMonitor(cluster, auto_failover=False, deadline=0.0)
        with pytest.raises(ReproError):
            ShardHealthMonitor(cluster, auto_failover=False, max_misses=0)

    def test_healthy_shards_accrue_no_misses_and_no_probes(self):
        cluster = _FakeCluster()
        monitor = ShardHealthMonitor(cluster, auto_failover=False,
                                     deadline=2.0, max_misses=2)
        cluster.shard_last_seen = {0: 9.0, 1: 10.0}
        records = run(monitor.poll(now=10.0))
        assert records == []
        assert monitor.misses == {}
        assert monitor.suspected_at == {}
        assert all(not s.sent for s in cluster._sub_streams.values())

    def test_silent_shard_is_probed_then_suspected_at_max_misses(self):
        cluster = _FakeCluster()
        monitor = ShardHealthMonitor(cluster, auto_failover=False,
                                     deadline=2.0, max_misses=2)
        cluster.shard_last_seen = {0: 0.0, 1: 10.0}
        run(monitor.poll(now=10.0))
        # First miss: probed (read-only SNAPSHOT down the trunk), not
        # yet suspected — a quiet-but-healthy shard can answer.
        assert monitor.misses == {0: 1}
        assert [m["type"] for m in cluster._sub_streams[0].sent] == ["snapshot"]
        assert cluster.suspects == []
        run(monitor.poll(now=11.0))
        assert monitor.misses == {0: 2}
        assert cluster.suspects == [0]
        assert monitor.suspected_at == {0: 11.0}
        # Staying suspect does not re-fire the suspicion.
        run(monitor.poll(now=12.0))
        assert cluster.suspects == [0]
        assert monitor.stats["suspicions"] == 1

    def test_trunk_life_clears_suspicion_and_records_the_event(self):
        cluster = _FakeCluster()
        monitor = ShardHealthMonitor(cluster, auto_failover=False,
                                     deadline=2.0, max_misses=1)
        cluster.shard_last_seen = {0: 0.0, 1: 10.0}
        run(monitor.poll(now=10.0))
        assert monitor.suspected_at == {0: 10.0}
        cluster.shard_last_seen[0] = 13.0
        cluster.shard_last_seen[1] = 13.0
        records = run(monitor.poll(now=13.0))
        assert records == []
        assert monitor.suspected_at == {}
        assert cluster.cleared == [0]
        assert monitor.events == [{
            "shard": 0, "suspected_at": 10.0, "recovered_at": 13.0,
            "detection_to_recovery": 3.0,
        }]
        assert monitor.stats["recoveries"] == 1

    def test_suspicion_triggers_auto_failover(self):
        cluster = _FakeCluster()
        supervisor = _FakeSupervisor()
        monitor = ShardHealthMonitor(cluster, supervisor,
                                     deadline=2.0, max_misses=1)
        cluster.shard_last_seen = {0: 0.0, 1: 10.0}
        cluster.send_ok = False  # dead trunk: even the probe fails
        records = run(monitor.poll(now=10.0))
        assert supervisor.failed_over == [0]
        assert len(records) == 1
        assert records[0]["shard"] == 0
        assert records[0]["detected_at"] == 10.0
        assert records[0]["misses"] == 1
        assert monitor.stats["failovers"] == 1
        snapshot = monitor.stats_snapshot()
        assert snapshot["suspect_shards"] == [0]
        assert snapshot["auto_failover"] is True


class TestSelfHealing:
    def test_crashed_shard_is_detected_restored_and_cluster_stays_sound(
            self, tmp_path):
        now = [0.0]
        cluster, scenario, item_to_source = build_scenario_cluster(
            shards=2, journal_dir=str(tmp_path / "wal"),
            clock=lambda: now[0], **SCENARIO)
        supervisor = ShardSupervisor(cluster)
        monitor = ShardHealthMonitor(cluster, supervisor,
                                     clock=lambda: now[0],
                                     deadline=2.0, max_misses=2)

        async def body():
            await cluster.start()
            streams = await _registered_sources(cluster, item_to_source)
            seq = {}
            await _push_steps(streams, item_to_source, scenario.traces,
                              range(1, 10), seq)

            victim = cluster.decomposition.active_shards[0]
            # An *undetected* crash: the process dies but nothing tells
            # the router — only the heartbeat detector can notice.
            await supervisor.crash(victim)
            # Poll every "second" with a 2-second deadline: the healthy
            # shard answers each probe before its next poll, so only the
            # corpse accrues misses.
            failovers = []
            for _ in range(10):
                now[0] += 1.0
                failovers.extend(await monitor.poll())
                await _drain()
                if failovers:
                    break
            assert [r["shard"] for r in failovers] == [victim]
            assert failovers[0]["records_replayed"] > 0
            assert monitor.stats["suspicions"] == 1

            # The healed shard answers again: suspicion clears on the
            # next poll that sees trunk life, and the event is logged.
            now[0] += 1.0
            await _push_steps(streams, item_to_source, scenario.traces,
                              range(10, 20), seq)
            await monitor.poll()
            assert monitor.suspected_at == {}
            assert monitor.stats["recoveries"] == 1
            assert len(monitor.events) == 1
            assert monitor.events[0]["detection_to_recovery"] > 0.0

            client = ServiceClient(cluster.connect_loopback())
            served = await client.subscribe("*")
            truth_inputs = {item: scenario.traces[item].at(19)
                            for item in item_to_source}
            for query in scenario.queries:
                truth = query.evaluate(truth_inputs)
                assert abs(served[query.name] - truth) <= (
                    query.qab * (1.0 + 1e-9) + 1e-12)
            await client.close()
            for stream in streams.values():
                stream.close()
            await cluster.close()

        run(body())

    def test_no_failure_run_is_bit_identical_with_monitor_attached(
            self, tmp_path):
        """Acceptance: auto-failover enabled but never triggered must not
        perturb a single served bit vs the manual-supervisor cluster."""

        async def served_values(with_monitor):
            now = [0.0]
            cluster, scenario, item_to_source = build_scenario_cluster(
                shards=2, journal_dir=str(tmp_path / f"wal{with_monitor}"),
                clock=lambda: now[0], **SCENARIO)
            supervisor = ShardSupervisor(cluster)
            monitor = None
            if with_monitor:
                monitor = ShardHealthMonitor(cluster, supervisor,
                                             clock=lambda: now[0],
                                             deadline=5.0, max_misses=2)
            await cluster.start()
            streams = await _registered_sources(cluster, item_to_source)
            seq = {}
            for step in range(1, 15):
                now[0] = float(step)
                await _push_steps(streams, item_to_source, scenario.traces,
                                  [step], seq)
                if monitor is not None:
                    await monitor.poll()
                    await _drain()
            client = ServiceClient(cluster.connect_loopback())
            served = await client.subscribe("*")
            if monitor is not None:
                assert monitor.stats["suspicions"] == 0
                assert monitor.stats["failovers"] == 0
            await client.close()
            for stream in streams.values():
                stream.close()
            await cluster.close()
            return served

        plain = run(served_values(False))
        monitored = run(served_values(True))
        assert plain == monitored  # bitwise: dict of floats, == is exact
