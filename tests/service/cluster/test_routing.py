"""Shard-map stability: deterministic hashing across processes and seeds."""

import os
import subprocess
import sys

import pytest

import repro
from repro.service.cluster.routing import ShardMap, stable_shard


class TestStableShard:
    def test_golden_values_pinned(self):
        # CRC32 is a frozen spec; these values must never drift, or every
        # deployed cluster's ownership map silently reshuffles.
        assert stable_shard("x0", 4) == 1
        assert stable_shard("x1", 4) == 3
        assert stable_shard("x2", 4) == 1
        assert stable_shard("x3", 4) == 3
        assert stable_shard("portfolio_0", 4) == 0
        assert stable_shard("a", 2) == 1
        assert stable_shard("b", 2) == 1

    def test_single_shard_is_always_zero(self):
        for item in ("x0", "x1", "anything"):
            assert stable_shard(item, 1) == 0

    def test_rejects_nonpositive_shard_count(self):
        with pytest.raises(ValueError):
            stable_shard("x0", 0)
        with pytest.raises(ValueError):
            stable_shard("x0", -1)

    def test_range_and_determinism(self):
        items = [f"x{i}" for i in range(200)]
        for shards in (2, 3, 4, 7):
            placed = [stable_shard(item, shards) for item in items]
            assert all(0 <= s < shards for s in placed)
            assert placed == [stable_shard(item, shards) for item in items]

    def test_spreads_items_across_shards(self):
        items = [f"x{i}" for i in range(100)]
        used = {stable_shard(item, 4) for item in items}
        assert used == {0, 1, 2, 3}

    def test_stable_across_pythonhashseed(self):
        # hash()-based placement would reshuffle per process under
        # PYTHONHASHSEED randomisation; CRC32 must not.
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        script = (
            "from repro.service.cluster.routing import stable_shard\n"
            "print([stable_shard(f'x{i}', 4) for i in range(50)])\n"
        )
        outputs = []
        for hashseed in ("1", "42"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hashseed
            env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
            result = subprocess.run(
                [sys.executable, "-c", script], env=env,
                capture_output=True, text=True, check=True)
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]
        assert outputs[0].strip() == str(
            [stable_shard(f"x{i}", 4) for i in range(50)])


class TestShardMap:
    def test_partition_covers_and_is_disjoint(self):
        shard_map = ShardMap(4)
        items = [f"x{i}" for i in range(40)]
        parts = shard_map.partition(items)
        flat = [item for names in parts.values() for item in names]
        assert sorted(flat) == sorted(items)
        assert all(shard_map(item) == sid
                   for sid, names in parts.items() for item in names)

    def test_spread_reports_sorted_distinct_shards(self):
        shard_map = ShardMap(4)
        spread = shard_map.spread(["x0", "x1", "x2"])
        assert spread == tuple(sorted(set(spread)))
        assert spread == (1, 3)
