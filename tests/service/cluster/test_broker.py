"""The NOTIFY fan-out broker tier: caching, fan-out, eviction."""

import asyncio

from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.cluster.broker import BrokerTier, NotifyBroker
from repro.service.cluster.router import build_scenario_cluster
from repro.service.protocol import MessageType
from repro.service.server import build_scenario_server


def run(coro):
    return asyncio.run(coro)


SCENARIO = dict(query_count=8, item_count=16, source_count=2,
                trace_length=22, seed=5)


async def _drain(rounds=10):
    for _ in range(rounds):
        await asyncio.sleep(0)


async def _registered_sources(target, item_to_source):
    streams = {}
    for source_id in sorted(set(item_to_source.values())):
        items = sorted(n for n, s in item_to_source.items()
                       if s == source_id)
        stream = target.connect_loopback()
        await stream.send(protocol.register_source(source_id, items))
        await stream.receive()
        streams[source_id] = stream
    return streams


async def _push_steps(streams, item_to_source, traces, steps, seq):
    for step in steps:
        for item in sorted(item_to_source):
            seq[item] = seq.get(item, 0) + 1
            source_id = item_to_source[item]
            await streams[source_id].send(protocol.refresh(
                source_id, item, traces[item].at(step), seq[item]))
        await _drain()


class TestNotifyBroker:
    def test_snapshot_served_from_cache_matches_upstream(self):
        server, scenario, item_to_source = build_scenario_server(**SCENARIO)

        async def body():
            broker = NotifyBroker(server.connect_loopback)
            await broker.start()
            direct = ServiceClient(server.connect_loopback())
            await direct.subscribe("*")
            streams = await _registered_sources(server, item_to_source)
            await _push_steps(streams, item_to_source, scenario.traces,
                              range(1, 15), {})
            await _drain(20)

            # The broker's cache holds exactly what a same-age direct
            # subscriber holds (initial snapshot + the same NOTIFY
            # frames) — cache interposition is value-transparent.
            assert broker.values == direct.values
            via_broker = ServiceClient(broker.connect_loopback())
            broker_values = await via_broker.subscribe("*")
            assert broker_values == broker.values
            assert server.stats["subscribers"] == 2  # broker + direct

            await direct.close()
            await via_broker.close()
            for stream in streams.values():
                stream.close()
            await broker.close()
            await server.close()

        run(body())

    def test_forwards_notifies_downstream(self):
        server, scenario, item_to_source = build_scenario_server(**SCENARIO)

        async def body():
            broker = NotifyBroker(server.connect_loopback)
            await broker.start()
            client = ServiceClient(broker.connect_loopback())
            await client.subscribe("*")
            streams = await _registered_sources(server, item_to_source)
            await _push_steps(streams, item_to_source, scenario.traces,
                              range(1, 20), {})
            await _drain(20)
            assert broker.stats["upstream_notifies"] > 0
            assert client.notifies_received > 0
            assert broker.stats["notifies_sent"] >= client.notifies_received
            await client.close()
            for stream in streams.values():
                stream.close()
            await broker.close()
            await server.close()

        run(body())

    def test_slow_consumer_evicted_without_blocking_others(self):
        from repro.service.transports import loopback_pair

        async def body():
            # A hand-rolled upstream gives deterministic NOTIFY volume.
            client_end, server_end = loopback_pair()
            broker = NotifyBroker(lambda: client_end, notify_queue_limit=1)
            started = asyncio.ensure_future(broker.start())
            sub_req = await server_end.receive()
            assert sub_req["type"] == MessageType.QUERY_SUB.value
            await server_end.send(protocol.snapshot(values={"q": 1.0}))
            await started

            healthy = ServiceClient(broker.connect_loopback())
            await healthy.subscribe("*")
            # A subscriber that never reads: its bounded queue fills and
            # the broker must cut it loose, not stall the tier.
            slow_stream = broker.connect_loopback()
            await slow_stream.send(protocol.query_sub("*"))
            first = await slow_stream.receive()
            assert first["type"] == MessageType.SNAPSHOT.value
            slow_sub = broker._subscribers[max(broker._subscribers)]
            slow_sub.writer_task.cancel()          # simulate a stuck writer
            await _drain()

            for i in range(6):
                await server_end.send(protocol.notify(
                    [{"query": "q", "value": float(i)}], sent_at=float(i)))
                await _drain()
            assert broker.stats["slow_consumer_evictions"] == 1
            assert slow_sub.sub_id not in broker._subscribers
            assert healthy.notifies_received >= 6
            assert healthy.values["q"] == 5.0
            await healthy.close()
            server_end.close()
            await broker.close()

        run(body())

    def test_upstream_subscription_is_a_trunk_with_deep_queue(self):
        from repro.service.server import TRUNK_QUEUE_LIMIT

        server, scenario, item_to_source = build_scenario_server(
            notify_queue_limit=2, **SCENARIO)

        async def body():
            broker = NotifyBroker(server.connect_loopback)
            await broker.start()
            direct = ServiceClient(server.connect_loopback())
            await direct.subscribe("*")
            # The broker asked for trunk treatment; ordinary clients
            # keep the user-facing slow-consumer limit.
            limits = sorted(sub.queue.maxsize
                            for sub in server._subscribers.values())
            assert limits == [2, TRUNK_QUEUE_LIMIT]
            await direct.close()
            await broker.close()
            await server.close()

        run(body())

    def test_severed_upstream_is_resubscribed_and_reseeded(self):
        server, scenario, item_to_source = build_scenario_server(**SCENARIO)

        async def body():
            broker = NotifyBroker(server.connect_loopback)
            await broker.start()
            streams = await _registered_sources(server, item_to_source)
            await _push_steps(streams, item_to_source, scenario.traces,
                              range(1, 10), {})
            await _drain(20)

            old_upstream = broker._upstream
            old_upstream.close()                   # simulate an eviction
            await _drain(20)
            assert broker.stats["upstream_resubscribes"] == 1
            assert broker._upstream is not None
            assert broker._upstream is not old_upstream

            # The fresh initial snapshot re-seeded the cache, and new
            # NOTIFY frames flow through the replacement subscription.
            expected = dict(zip((q.name for q in server.core.queries),
                                server.core.query_values()))
            assert broker.values == expected
            before = broker.stats["upstream_notifies"]
            await _push_steps(streams, item_to_source, scenario.traces,
                              range(10, 20), {n: 9 for n in item_to_source})
            await _drain(20)
            assert broker.stats["upstream_notifies"] > before

            for stream in streams.values():
                stream.close()
            await broker.close()
            # A deliberate close must NOT trigger a resubscribe.
            await _drain(10)
            assert broker.stats["upstream_resubscribes"] == 1
            await server.close()

        run(body())

    def test_rejects_query_definitions(self):
        server, scenario, item_to_source = build_scenario_server(**SCENARIO)

        async def body():
            broker = NotifyBroker(server.connect_loopback)
            await broker.start()
            stream = broker.connect_loopback()
            await stream.send(protocol.query_sub(
                "*", definitions=[{"name": "q", "terms": [], "qab": 1.0}]))
            reply = await stream.receive()
            assert reply["type"] == MessageType.ERROR.value
            stream.close()
            await broker.close()
            await server.close()

        run(body())


class TestBrokerTier:
    def test_round_robin_spreads_subscribers(self):
        cluster, scenario, item_to_source = build_scenario_cluster(
            shards=2, **SCENARIO)

        async def body():
            await cluster.start()
            tier = BrokerTier(cluster.connect_loopback, brokers=3)
            await tier.start()
            clients = []
            for _ in range(6):
                client = ServiceClient(tier.connect_loopback())
                await client.subscribe("*")
                clients.append(client)
            per_broker = [b.stats["subscribers"] for b in tier.brokers]
            assert per_broker == [2, 2, 2]
            stats = tier.stats()
            assert stats["brokers"] == 3
            assert stats["subscribers"] == 6
            for client in clients:
                await client.close()
            await tier.close()
            await cluster.close()

        run(body())
