"""The Coordinator/CoordinatorCore split, pinned.

Bit-identical *metrics* across the extraction are pinned by the golden
fault suite and the scalar/vector equivalence suite (which predate the
split and still pass unchanged).  These tests pin the *structure*: the
simulator's coordinator really is a thin adapter over the shared core,
and the core stays importable without dragging the simulator in.
"""

import pathlib

from repro.service.core import CoordinatorCore, RecomputeMode
from repro.simulation import coordinator as sim_coordinator
from repro.simulation.harness import SimulationConfig, run_simulation
from repro.workloads import scaled_scenario


def test_recompute_mode_is_the_same_object():
    assert sim_coordinator.RecomputeMode is RecomputeMode


def test_core_module_does_not_import_the_simulator():
    # The simulator's coordinator imports repro.service.core; the reverse
    # direction would be a cycle.  Pin it at the source level: neither the
    # core nor the protocol/transport layer may mention repro.simulation.
    import repro.service.core as core_module
    import repro.service.protocol as protocol_module
    import repro.service.transports as transports_module

    for module in (core_module, protocol_module, transports_module):
        source = pathlib.Path(module.__file__).read_text()
        assert "import repro.simulation" not in source, module.__name__
        assert "from repro.simulation" not in source, module.__name__


def _small_config():
    scenario = scaled_scenario(query_count=3, item_count=20, trace_length=61,
                               source_count=2, seed=7)
    return SimulationConfig(queries=scenario.queries, traces=scenario.traces,
                            algorithm="dual_dab", duration=40,
                            source_count=2, seed=7)


def test_simulator_coordinator_wraps_a_core():
    config = _small_config()
    # run_simulation constructs the Coordinator internally; build one the
    # same way and inspect the adapter surface.
    from repro.simulation.engine import SimulationEngine
    from repro.simulation.harness import _SINGLE_DAB_MODES, build_planner
    from repro.dynamics.estimation import SampledRateEstimator
    from repro.filters.cost_model import CostModel
    from repro.simulation.coordinator import Coordinator
    from repro.simulation.metrics import MetricsCollector
    from repro.simulation.network import ZeroDelayModel
    from repro.simulation.source import assign_items_to_sources

    items = config.used_items
    rates = SampledRateEstimator().estimate_all(config.traces, items)
    planner = build_planner(config, CostModel(ddm=config.ddm, rates=rates,
                                              recompute_cost=config.recompute_cost))
    engine = SimulationEngine(config.duration, config.fidelity_interval)
    coordinator = Coordinator(
        queries=config.queries, planner=planner,
        mode=_SINGLE_DAB_MODES[config.algorithm], queue=engine.queue,
        metrics=MetricsCollector(recompute_cost=config.recompute_cost),
        initial_values=config.traces.initial_values(items),
        item_to_source=assign_items_to_sources(items, 2),
        network_delay=ZeroDelayModel(),
    )
    assert isinstance(coordinator.core, CoordinatorCore)
    # Delegated state is shared, not copied.
    assert coordinator.cache is coordinator.core.cache
    assert coordinator.plans is coordinator.core.plans
    assert coordinator.epochs is coordinator.core.epochs
    assert coordinator.item_to_source is coordinator.core.item_to_source
    assert coordinator.queries is coordinator.core.queries


def test_extraction_preserves_run_metrics_scalar_vs_vector():
    # Belt and braces on top of the golden suite: a fresh end-to-end run
    # agrees between the scalar and vectorized core paths post-split.
    from dataclasses import replace

    config = _small_config()
    scalar = run_simulation(replace(config, vectorize=False))
    vector = run_simulation(replace(config, vectorize=True))
    assert scalar.metrics == vector.metrics
