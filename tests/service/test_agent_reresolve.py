"""SourceAgent.run re-resolves the coordinator address on every dial.

A supervisor that restores a dead coordinator shard may bring it back on
a new port; an agent that pinned the address at start-up would dial the
corpse forever.  The peer is a hand-rolled fake coordinator so the drop
and the address change are both deterministic.
"""

import asyncio

from repro.service import protocol
from repro.service.agent import SourceAgent
import repro.service.agent as agent_mod
from repro.service.transports import TransportClosed, loopback_pair


def run(coro):
    return asyncio.run(coro)


class _Trace:
    def __init__(self, values):
        self._values = list(values)

    def __len__(self):
        return len(self._values)

    def at(self, step):
        return self._values[step]


TRACES = {"x0": _Trace([10.0, 11.0, 12.0, 13.0, 14.0]),
          "x1": _Trace([20.0, 21.0, 22.0, 23.0, 24.0])}


def make_agent():
    return SourceAgent(source_id=0, items=["x0", "x1"],
                       initial_values={"x0": 10.0, "x1": 20.0})


class _DropAfterSends:
    """A stream whose outbound half dies after ``budget`` sends."""

    def __init__(self, stream, budget):
        self._stream = stream
        self._budget = budget

    async def send(self, message):
        if self._budget <= 0:
            self._stream.close()
            raise TransportClosed("injected drop")
        self._budget -= 1
        await self._stream.send(message)

    def __getattr__(self, name):
        return getattr(self._stream, name)


async def _serve(server_end):
    """Minimal coordinator: answer registration, swallow refreshes."""
    try:
        message = await server_end.receive()
        assert message["type"] == "register_source"
        await server_end.send(protocol.dab_update(0, {}, {}))
        while True:
            if await server_end.receive() is None:
                return                      # EOF
    except TransportClosed:
        return


class TestRunReresolvesPerDial:
    def test_reconnect_dials_the_freshly_resolved_address(self, monkeypatch):
        dials = []

        async def fake_open(host, port):
            dials.append((host, port))
            client_end, server_end = loopback_pair()
            asyncio.ensure_future(_serve(server_end))
            if len(dials) == 1:
                # Registration plus one refresh, then the wire dies
                # mid-step — forcing the reconnect path.
                return _DropAfterSends(client_end, budget=2)
            return client_end

        monkeypatch.setattr(agent_mod, "open_tcp_stream", fake_open)

        addresses = [("stale.example", 7001), ("fresh.example", 7002)]
        resolve_calls = []

        def resolve():
            resolve_calls.append(1)
            return addresses[min(len(resolve_calls) - 1, 1)]

        async def body():
            agent = make_agent()
            sent = await agent.run("pinned.example", 9, TRACES,
                                   resolve=resolve)
            assert sent > 0
            assert agent.stats["reconnects"] == 1
            return agent

        run(body())
        # The second dial must target the *re-resolved* address, not the
        # one captured at start-up.
        assert dials == [("stale.example", 7001), ("fresh.example", 7002)]
        assert len(resolve_calls) == 2

    def test_async_resolver_is_awaited(self, monkeypatch):
        dials = []

        async def fake_open(host, port):
            dials.append((host, port))
            client_end, server_end = loopback_pair()
            asyncio.ensure_future(_serve(server_end))
            return client_end

        monkeypatch.setattr(agent_mod, "open_tcp_stream", fake_open)

        async def resolve():
            return ("dns.example", 7100)

        async def body():
            agent = make_agent()
            await agent.run("pinned.example", 9, TRACES, resolve=resolve)

        run(body())
        assert dials == [("dns.example", 7100)]

    def test_without_resolver_the_startup_address_stays_pinned(
            self, monkeypatch):
        dials = []

        async def fake_open(host, port):
            dials.append((host, port))
            client_end, server_end = loopback_pair()
            asyncio.ensure_future(_serve(server_end))
            if len(dials) == 1:
                return _DropAfterSends(client_end, budget=2)
            return client_end

        monkeypatch.setattr(agent_mod, "open_tcp_stream", fake_open)

        async def body():
            agent = make_agent()
            await agent.run("pinned.example", 9, TRACES)

        run(body())
        assert dials == [("pinned.example", 9), ("pinned.example", 9)]
