"""The chaos soak harness end-to-end: audits, determinism, no-op guard."""

import json

import pytest

from repro.exceptions import ReproError
from repro.service.chaos import FaultSchedule
from repro.service.soak import named_schedule, run_chaos_soak

SMALL = dict(queries=4, items=20, sources=2, seed=3)


class TestNamedSchedules:
    def test_unknown_name_raises(self):
        with pytest.raises(ReproError, match="unknown chaos schedule"):
            named_schedule("tornado")

    def test_profiles_enumerate_their_faults(self):
        for name in ("smoke", "ci", "heavy", "restart"):
            schedule, steps = named_schedule(name, seed=1)
            assert schedule.enabled
            assert steps > 0
            assert len(schedule.fault_kinds()) >= 3

    def test_seed_threads_into_schedule(self):
        a, _ = named_schedule("smoke", seed=1)
        b, _ = named_schedule("smoke", seed=2)
        assert a.seed != b.seed


class TestSoakRun:
    def test_smoke_profile_passes_and_writes_report(self, tmp_path):
        out = tmp_path / "BENCH_chaos.json"
        report = run_chaos_soak(schedule="smoke", output=str(out), **SMALL)
        assert report["passed"] is True
        assert report["qab_violations_unexcused"] == 0
        assert report["audits"] > 0
        assert report["fault_events"] > 0
        assert report["final_degraded_queries"] == []
        on_disk = json.loads(out.read_text())
        assert on_disk["fault_trace_digest"] == report["fault_trace_digest"]

    def test_same_seed_is_bit_identical(self):
        a = run_chaos_soak(schedule="smoke", **SMALL)
        b = run_chaos_soak(schedule="smoke", **SMALL)
        assert a["fault_trace_digest"] == b["fault_trace_digest"]
        assert a["fault_counts"] == b["fault_counts"]
        assert a["audits"] == b["audits"]
        assert a["refreshes_total"] == b["refreshes_total"]

    def test_empty_schedule_is_a_clean_noop(self):
        report = run_chaos_soak(schedule=FaultSchedule(), steps=12, **SMALL)
        assert report["passed"] is True
        assert report["schedule"] == "custom"
        assert report["fault_events"] == 0
        assert report["fault_counts"] == {}
        assert report["qab_violations_unexcused"] == 0
        assert report["qab_violations_excused_degraded"] == 0
        assert report["recovery_episodes"] == 0

    def test_recovery_section_present_without_a_journal(self):
        report = run_chaos_soak(schedule="smoke", **SMALL)
        assert report["coordinator_recovery"] == {"kills": 0}


class TestCoordinatorRestart:
    def test_restart_schedule_survives_kills_and_audits(self, tmp_path):
        report = run_chaos_soak(schedule="restart",
                                journal_dir=str(tmp_path / "journal"),
                                **SMALL)
        recovery = report["coordinator_recovery"]
        assert recovery["kills"] == 2
        assert recovery["kill_steps"] == [9, 24]
        assert len(recovery["restarts"]) == 2
        assert recovery["records_replayed_total"] > 0
        assert recovery["journal_append_ms"]          # overhead percentiles
        assert recovery["journal"]["records"] > 0
        assert report["passed"] is True
        assert report["qab_violations_unexcused"] == 0
        assert report["final_degraded_queries"] == []

    def test_restart_run_is_deterministic(self, tmp_path):
        a = run_chaos_soak(schedule="restart",
                           journal_dir=str(tmp_path / "a"), **SMALL)
        b = run_chaos_soak(schedule="restart",
                           journal_dir=str(tmp_path / "b"), **SMALL)
        assert a["fault_trace_digest"] == b["fault_trace_digest"]
        assert a["refreshes_total"] == b["refreshes_total"]
        assert (a["coordinator_recovery"]["records_replayed_total"]
                == b["coordinator_recovery"]["records_replayed_total"])

    def test_explicit_kill_steps_override_schedule_default(self, tmp_path):
        report = run_chaos_soak(schedule="restart",
                                journal_dir=str(tmp_path / "journal"),
                                kill_steps=[12], **SMALL)
        assert report["coordinator_recovery"]["kills"] == 1
        assert report["coordinator_recovery"]["kill_steps"] == [12]
        assert report["passed"] is True
