"""Shared bank index under the write-ahead journal (ISSUE 8 satellite).

Three durability contracts:

1. **Journal byte-identity in flat mode** — plan records carry a
   ``bank_index`` tag only when the non-default shared index produced
   them, so flat-mode journals are byte-identical with the pre-index
   format (same rule as the delta ``mode`` tag).
2. **Kill-9 replay bit-identity with the shared index** — snapshot +
   WAL-tail replay reconstructs the pre-crash core state fingerprint-
   identically, *including dynamically-subscribed queries* (``qadd``
   records and the snapshot's ``dynamic_queries`` section).
3. **Service-level mode equivalence** — the same refresh load through a
   flat and a shared server yields identical query values.
"""

import asyncio
import json

from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.journal import Journal
from repro.service.protocol import MessageType
from repro.service.server import build_scenario_server
from tests.service.test_bank_subscribe import _dynamic_bank


def run(coro):
    return asyncio.run(coro)


def build(tmp_path=None, bootstrap=True, bank_index="shared", **kwargs):
    journal = None
    if tmp_path is not None:
        journal = Journal(str(tmp_path), **kwargs.pop("journal_kwargs", {}))
    server, scenario, item_to_source = build_scenario_server(
        query_count=4, item_count=20, source_count=2, trace_length=41,
        seed=1, journal=journal, bootstrap=bootstrap and journal is None,
        bank_index=bank_index, **kwargs)
    return server, scenario, item_to_source


def owned(item_to_source, source_id):
    return sorted(n for n, s in item_to_source.items() if s == source_id)


async def register(server, item_to_source, source_id):
    stream = server.connect_loopback()
    await stream.send(protocol.register_source(
        source_id, owned(item_to_source, source_id)))
    reply = await stream.receive()
    assert reply["type"] == MessageType.DAB_UPDATE.value
    return stream


async def drain(rounds=6):
    for _ in range(rounds):
        await asyncio.sleep(0)


def core_fingerprint(core):
    return json.dumps(core.recovery_state(), sort_keys=True,
                      separators=(",", ":"), allow_nan=False)


async def push_load(server, item_to_source, rounds=range(1, 6)):
    streams = {sid: await register(server, item_to_source, sid)
               for sid in (0, 1)}
    current = dict(server.core.cache)
    seq = 0
    for round_no in rounds:
        for sid, stream in streams.items():
            for offset, item in enumerate(owned(item_to_source, sid)):
                seq += 1
                if round_no == 1:
                    current[item] = 100.0 + 40.0 * (offset + 1)
                else:
                    wiggle = 0.02 * ((offset + round_no) % 5 - 2)
                    current[item] = current[item] * (1.0 + wiggle)
                await stream.send(protocol.refresh(
                    sid, item, current[item], seq=seq))
        await drain()
    for stream in streams.values():
        stream.close()
    await drain()


class TestJournalTag:
    def test_shared_plan_records_carry_bank_index(self, tmp_path):
        async def check():
            server, _, item_to_source = build(tmp_path)
            server.restore()
            await push_load(server, item_to_source)
            plans = [r for r in server.journal.records() if r["t"] == "plan"]
            assert plans
            assert all(r.get("bank_index") == "shared" for r in plans)
            await server.close()

        run(check())

    def test_flat_plan_records_carry_no_bank_index_key(self, tmp_path):
        async def check():
            server, _, item_to_source = build(tmp_path, bank_index="flat")
            server.restore()
            await push_load(server, item_to_source)
            plans = [r for r in server.journal.records() if r["t"] == "plan"]
            assert plans
            assert all("bank_index" not in r for r in plans)
            await server.close()

        run(check())


class TestSharedCrashRecovery:
    def test_kill9_replay_restores_dynamic_bank_bit_identically(
            self, tmp_path):
        async def check():
            server, _, item_to_source = build(
                tmp_path, journal_kwargs={"snapshot_every": 10,
                                          "fsync": "off"})
            server.restore()
            await push_load(server, item_to_source, rounds=range(1, 4))

            # Mid-run dynamic subscription: qadd records hit the WAL.
            bank = _dynamic_bank(server.core, count=6, distinct=2)
            client = ServiceClient(server.connect_loopback())
            await client.subscribe(definitions=bank)
            assert server.core.bank_rebuilds == 0
            await push_load(server, item_to_source, rounds=range(4, 6))

            assert server.core.dynamic_names == {q.name for q in bank}
            before = core_fingerprint(server.core)
            await server.close(final_snapshot=False)      # the kill
            await client.close()

            revived, _, _ = build(tmp_path, bootstrap=False)
            recovery = revived.restore()
            assert recovery["records_replayed"] > 0
            assert core_fingerprint(revived.core) == before
            # The dynamic queries came back through qadd replay, as index
            # appends — never an O(bank) rebuild — with no subscriber
            # holding a reference (those died with the old process).
            assert revived.core.dynamic_names == {q.name for q in bank}
            assert revived.core.bank_rebuilds == 0
            assert revived._dynamic_refs == {q.name: 0 for q in bank}
            stats = revived.server_stats()["bank_index"]
            assert stats["queries"] == 4 + 6
            await revived.close()

        run(check())

    def test_snapshot_covers_dynamic_queries(self, tmp_path):
        """A graceful close writes a parting snapshot; restoring from it
        alone (zero WAL-tail records) must still revive the dynamic
        queries via the snapshot's ``dynamic_queries`` section."""
        async def check():
            server, _, item_to_source = build(tmp_path)
            server.restore()
            bank = _dynamic_bank(server.core, count=3, distinct=1)
            client = ServiceClient(server.connect_loopback())
            await client.subscribe(definitions=bank)
            await push_load(server, item_to_source, rounds=range(1, 3))
            before = core_fingerprint(server.core)
            await server.close()                 # graceful: snapshot
            await client.close()

            revived, _, _ = build(tmp_path, bootstrap=False)
            recovery = revived.restore()
            assert recovery["records_replayed"] == 0
            assert core_fingerprint(revived.core) == before
            assert revived.core.dynamic_names == {q.name for q in bank}
            await revived.close()

        run(check())

    def test_static_snapshots_stay_byte_identical(self, tmp_path):
        """No dynamic queries → no ``dynamic_queries`` key anywhere in the
        recovery state (flat-format durability is pinned elsewhere; this
        guards the new field's gating)."""
        async def check():
            server, _, item_to_source = build(tmp_path, bank_index="flat")
            server.restore()
            await push_load(server, item_to_source, rounds=range(1, 3))
            assert "dynamic_queries" not in server.core.recovery_state()
            await server.close()

        run(check())


class TestServiceEquivalence:
    def test_flat_and_shared_servers_converge_on_same_values(self):
        async def check():
            results = {}
            for bank_index in ("flat", "shared"):
                server, _, item_to_source = build(bank_index=bank_index)
                await push_load(server, item_to_source)
                results[bank_index] = dict(zip(
                    [q.name for q in server.core.queries],
                    server.core.query_values()))
                await server.close()
            assert set(results["shared"]) == set(results["flat"])
            for name, value in results["flat"].items():
                shared = results["shared"][name]
                assert abs(shared - value) <= 1e-9 * max(1.0, abs(value))

        run(check())
