"""Delta-mode service: journaled mode tag, stats plane, kill-9 recovery.

ISSUE 7's service-layer satellite: a delta-mode coordinator journals which
solve path produced each plan, surfaces the patch/fallback/residual
counters through ``server_stats()``, and — the hard one — restores
deterministically after a kill -9: snapshot + WAL-tail replay reconstructs
the pre-crash core state bit-identically even though the plans were a mix
of Newton patches and full-solve fallbacks (replay installs journaled
plans; it never re-runs a solver).
"""

import asyncio
import json

import pytest

from repro.service import protocol
from repro.service.journal import Journal
from repro.service.protocol import MessageType
from repro.service.server import build_scenario_server


def run(coro):
    return asyncio.run(coro)


def build(tmp_path=None, bootstrap=True, mode="delta", **kwargs):
    journal = None
    if tmp_path is not None:
        journal = Journal(str(tmp_path), **kwargs.pop("journal_kwargs", {}))
    server, scenario, item_to_source = build_scenario_server(
        query_count=4, item_count=20, source_count=2, trace_length=41,
        seed=1, journal=journal, bootstrap=bootstrap and journal is None,
        recompute_mode=mode, **kwargs)
    return server, scenario, item_to_source


def owned(item_to_source, source_id):
    return sorted(n for n, s in item_to_source.items() if s == source_id)


async def register(server, item_to_source, source_id):
    stream = server.connect_loopback()
    await stream.send(protocol.register_source(
        source_id, owned(item_to_source, source_id)))
    reply = await stream.receive()
    assert reply["type"] == MessageType.DAB_UPDATE.value
    return stream


async def drain(rounds=6):
    for _ in range(rounds):
        await asyncio.sleep(0)


def core_fingerprint(core):
    return json.dumps(core.recovery_state(), sort_keys=True,
                      separators=(",", ":"), allow_nan=False)


async def push_load(server, item_to_source, jitter=0.02):
    """Rounds of gentle multiplicative drift (so Newton patches actually
    accept) around a violent opening round (so fallbacks happen too)."""
    streams = {sid: await register(server, item_to_source, sid)
               for sid in (0, 1)}
    current = dict(server.core.cache)
    seq = 0
    for round_no in range(1, 6):
        for sid, stream in streams.items():
            for offset, item in enumerate(owned(item_to_source, sid)):
                seq += 1
                if round_no == 1:
                    current[item] = 100.0 + 40.0 * (offset + 1)
                else:
                    wiggle = jitter * ((offset + round_no) % 5 - 2)
                    current[item] = current[item] * (1.0 + wiggle)
                await stream.send(protocol.refresh(
                    sid, item, current[item], seq=seq))
        await drain()
    for stream in streams.values():
        stream.close()
    await drain()


class TestStatsAndJournalTag:
    def test_stats_plane_exposes_delta_counters(self):
        async def check():
            server, _, item_to_source = build()
            await push_load(server, item_to_source)
            stats = server.server_stats()["delta_recompute"]
            assert stats["mode"] == "delta"
            assert stats["patches"] + stats["fallbacks"] > 0
            assert stats["cold_solves"] >= 1
            assert stats["max_residual"] >= stats["last_residual"] >= 0.0
            assert isinstance(stats["declines"], dict)
            await server.close()

        run(check())

    def test_full_mode_stats_count_passthrough_solves(self):
        async def check():
            server, _, item_to_source = build(mode="full")
            await push_load(server, item_to_source)
            stats = server.server_stats()["delta_recompute"]
            assert stats["mode"] == "full"
            assert stats["patches"] == 0 and stats["fallbacks"] == 0
            assert stats["full_solves"] > 0
            await server.close()

        run(check())

    def test_plan_records_tagged_with_delta_mode(self, tmp_path):
        async def check():
            server, _, item_to_source = build(tmp_path)
            server.restore()
            await push_load(server, item_to_source)
            plans = [r for r in server.journal.records() if r["t"] == "plan"]
            assert plans
            assert all(r.get("mode") == "delta" for r in plans)
            await server.close()

        run(check())

    def test_full_mode_plan_records_carry_no_mode_key(self, tmp_path):
        """Byte-identity of full-mode journals with the pre-delta format:
        the mode tag only appears when the non-default path produced the
        plan."""
        async def check():
            server, _, item_to_source = build(tmp_path, mode="full")
            server.restore()
            await push_load(server, item_to_source)
            plans = [r for r in server.journal.records() if r["t"] == "plan"]
            assert plans
            assert all("mode" not in r for r in plans)
            await server.close()

        run(check())


class TestDeltaCrashRecovery:
    def test_kill9_replay_restores_delta_state_bit_identically(self, tmp_path):
        async def check():
            server, _, item_to_source = build(
                tmp_path, journal_kwargs={"snapshot_every": 10,
                                          "fsync": "off"})
            server.restore()
            await push_load(server, item_to_source)
            live = server.server_stats()["delta_recompute"]
            assert live["patches"] > 0        # patches actually happened
            assert server.core.plans
            before = core_fingerprint(server.core)
            await server.close(final_snapshot=False)   # the kill

            revived, _, _ = build(tmp_path, bootstrap=False)
            recovery = revived.restore()
            assert recovery["records_replayed"] > 0
            assert core_fingerprint(revived.core) == before
            # Replay installs journaled plans without re-running any
            # solver: the revived planner has no patch/fallback history.
            replayed = revived.server_stats()["delta_recompute"]
            assert replayed["patches"] == 0 and replayed["fallbacks"] == 0
            await revived.close()

        run(check())

    def test_delta_and_full_servers_converge_on_same_values(self):
        """The service-level equivalence check: the same load through a
        delta-mode and a full-mode server yields the same query values
        (plans agree to solver tolerance; values are exact)."""
        async def check():
            results = {}
            for mode in ("full", "delta"):
                server, _, item_to_source = build(mode=mode)
                await push_load(server, item_to_source)
                results[mode] = dict(zip(
                    [q.name for q in server.core.queries],
                    server.core.query_values()))
                await server.close()
            assert results["delta"] == results["full"]

        run(check())
