"""Staleness leases, reliable DAB delivery, and the solver breaker.

Server-side resilience semantics over the loopback transport: liveness
bookkeeping (``last_heard``), lease expiry → honest ``degraded`` bounds,
heartbeat seq-gap detection → value probes, behind-seq resync, the
DAB_UPDATE ack/retry loop, and the circuit breaker around the planner.
"""

import asyncio

import pytest

from repro.exceptions import GPError
from repro.filters.baselines import UniformAllocationBaseline
from repro.service import protocol
from repro.service.core import CoordinatorCore, RecomputeMode
from repro.service.protocol import MessageType
from repro.service.resilience import BreakerState, CircuitBreaker, RetryPolicy
from repro.service.server import build_scenario_server
from repro.simulation.metrics import MetricsCollector
from repro.simulation.source import assign_items_to_sources
from repro.workloads import scaled_scenario


def run(coro):
    return asyncio.run(coro)


class StepClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def build(clock, **kwargs):
    server, scenario, item_to_source = build_scenario_server(
        query_count=4, item_count=20, source_count=2, trace_length=41,
        seed=1, clock=clock, **kwargs)
    return server, scenario, item_to_source


def owned(item_to_source, source_id):
    return sorted(n for n, s in item_to_source.items() if s == source_id)


async def register(server, item_to_source, source_id):
    stream = server.connect_loopback()
    await stream.send(protocol.register_source(
        source_id, owned(item_to_source, source_id)))
    reply = await stream.receive()
    assert reply["type"] == MessageType.DAB_UPDATE.value
    return stream


async def drain(rounds=6):
    for _ in range(rounds):
        await asyncio.sleep(0)


class TestLastHeardBookkeeping:
    def test_refresh_and_heartbeat_both_advance_last_heard(self):
        async def check():
            clock = StepClock(5.0)
            server, _, item_to_source = build(clock)
            stream = await register(server, item_to_source, 0)
            assert server.last_heard[0] == 5.0
            item = owned(item_to_source, 0)[0]
            clock.now = 9.0
            await stream.send(protocol.refresh(0, item, 123.0, seq=1))
            await drain()
            assert server.last_heard[0] == 9.0
            clock.now = 12.0
            await stream.send(protocol.heartbeat(0, {item: 1}))
            await drain()
            assert server.last_heard[0] == 12.0
            await server.close()

        run(check())

    def test_dead_source_timestamp_goes_stale(self):
        async def check():
            clock = StepClock(0.0)
            server, _, item_to_source = build(clock)
            alive = await register(server, item_to_source, 0)
            await register(server, item_to_source, 1)
            clock.now = 40.0
            await alive.send(protocol.heartbeat(0, {}))
            await drain()
            assert server.last_heard[0] == 40.0
            assert server.last_heard[1] == 0.0      # nothing heard since
            await server.close()

        run(check())


class TestStalenessLeases:
    def test_lease_expiry_degrades_then_refresh_recovers(self):
        async def check():
            clock = StepClock(0.0)
            server, _, item_to_source = build(clock, lease_duration=3.0)
            stream = await register(server, item_to_source, 0)
            clock.now = 1.0
            await server.check_leases()             # baseline sweep
            assert server.suspect_since == {}
            clock.now = 6.0
            await server.check_leases()             # 5 > 3: leases expired
            assert server.suspect_since
            assert server.metrics.lease_expiries > 0
            snapshot = server._snapshot_response()
            degraded = snapshot["degraded"]
            assert degraded
            by_name = {q.name: q for q in server.core.queries}
            for name, bound in degraded.items():
                assert bound > by_name[name].qab
            # An expired item is probed through the registered stream.
            probe = await stream.receive()
            assert probe["type"] == MessageType.DAB_UPDATE.value
            assert probe["bounds"] == {}
            assert set(probe["probe"]) == set(owned(item_to_source, 0))
            # A refresh vouches for its item again.
            item = owned(item_to_source, 0)[0]
            clock.now = 8.0
            await stream.send(protocol.refresh(0, item, 50.0, seq=1))
            await drain()
            assert item not in server.suspect_since
            assert server.metrics.staleness_exposure_seconds > 0
            await server.close()

        run(check())

    def test_degraded_widening_grows_with_staleness(self):
        async def check():
            clock = StepClock(0.0)
            server, _, item_to_source = build(clock, lease_duration=3.0)
            await register(server, item_to_source, 0)
            clock.now = 1.0
            await server.check_leases()
            clock.now = 6.0
            await server.check_leases()
            early = server.degraded_bounds()
            clock.now = 30.0
            late = server.degraded_bounds()
            assert set(early) == set(late)
            assert all(late[name] > early[name] for name in early)
            await server.close()

        run(check())

    def test_degraded_change_fans_out_bare_notify(self):
        async def check():
            clock = StepClock(0.0)
            server, _, item_to_source = build(clock, lease_duration=3.0)
            await register(server, item_to_source, 0)
            subscriber = server.connect_loopback()
            await subscriber.send(protocol.query_sub("*"))
            snapshot = await subscriber.receive()
            assert snapshot["degraded"] == {}       # leases on, all healthy
            clock.now = 1.0
            await server.check_leases()
            clock.now = 6.0
            await server.check_leases()
            await drain()
            notice = await subscriber.receive()
            assert notice["type"] == MessageType.NOTIFY.value
            assert notice["updates"] == []
            assert notice["degraded"]
            await server.close()

        run(check())

    def test_heartbeat_seq_gap_probes_and_flags(self):
        async def check():
            clock = StepClock(0.0)
            server, _, item_to_source = build(clock, lease_duration=10.0)
            stream = await register(server, item_to_source, 0)
            item = owned(item_to_source, 0)[0]
            # The source claims seq 3; we never saw any refresh: a gap.
            await stream.send(protocol.heartbeat(0, {item: 3}))
            await drain()
            assert item in server.suspect_since
            assert server.stats["seq_gaps_detected"] == 1
            probe = await stream.receive()
            assert probe["probe"] == [item]
            await stream.send(protocol.refresh(0, item, 42.0, seq=4))
            await drain()
            assert item not in server.suspect_since
            await server.close()

        run(check())

    def test_heartbeat_behind_seq_refloors_numbering(self):
        async def check():
            clock = StepClock(0.0)
            server, _, item_to_source = build(clock, lease_duration=10.0)
            stream = await register(server, item_to_source, 0)
            item = owned(item_to_source, 0)[0]
            await stream.send(protocol.refresh(0, item, 42.0, seq=5))
            await drain()
            # A restarted source numbering below our high-water mark.
            await stream.send(protocol.heartbeat(0, {item: 1}))
            await drain()
            assert item in server.suspect_since
            # The refresh itself may have triggered a bound-change
            # DAB_UPDATE; skim to the resync (the frame carrying seqs).
            while True:
                resync = await asyncio.wait_for(stream.receive(), 1.0)
                if resync.get("seqs"):
                    break
            assert resync["seqs"] == {item: 5}
            assert resync["probe"] == [item]
            await server.close()

        run(check())


class TestDabAckRetry:
    def test_unacked_update_is_retried_then_acked(self):
        async def check():
            clock = StepClock(0.0)
            policy = RetryPolicy(base_delay=2.0, backoff=1.0, max_delay=2.0,
                                 max_attempts=3)
            server, _, item_to_source = build(clock, lease_duration=30.0,
                                              dab_retry_policy=policy)
            stream = await register(server, item_to_source, 0)
            item = owned(item_to_source, 0)[0]
            await server._send_dab_update(0, {item: 1.5}, {item: 99})
            first = await stream.receive()
            assert first["msg_id"] is not None
            assert len(server._outstanding_dabs) == 1
            clock.now = 3.0                          # past due, no ack
            await server.check_retries()
            second = await stream.receive()
            assert second["msg_id"] == first["msg_id"]
            assert server.metrics.dab_retries == 1
            await stream.send(protocol.dab_ack(0, first["msg_id"]))
            await drain()
            assert server._outstanding_dabs == {}
            assert server.stats["dab_acks_received"] == 1
            await server.close()

        run(check())

    def test_retry_exhaustion_marks_items_suspect(self):
        async def check():
            clock = StepClock(0.0)
            policy = RetryPolicy(base_delay=1.0, backoff=1.0, max_delay=1.0,
                                 max_attempts=2)
            server, _, item_to_source = build(clock, lease_duration=30.0,
                                              dab_retry_policy=policy)
            stream = await register(server, item_to_source, 0)
            item = owned(item_to_source, 0)[0]
            await server._send_dab_update(0, {item: 1.5}, {item: 99})
            await stream.receive()
            for step in (2.0, 4.0, 6.0):
                clock.now = step
                await server.check_retries()
            assert server._outstanding_dabs == {}
            assert server.metrics.dab_retry_exhausted == 1
            assert item in server.suspect_since      # honest degradation
            await server.close()

        run(check())


class TestNoOpGuard:
    def test_default_server_has_no_resilience_surface(self):
        async def check():
            server, _, item_to_source = build_scenario_server(
                query_count=4, item_count=20, source_count=2,
                trace_length=41, seed=1)
            stream = await register(server, item_to_source, 0)
            item = owned(item_to_source, 0)[0]
            snapshot = server._snapshot_response()
            assert "degraded" not in snapshot
            stats = server.server_stats()
            for key in ("suspect_items", "lease_expiries", "dab_retries",
                        "solver_breaker_state"):
                assert key not in stats
            # A gapped heartbeat neither flags nor probes.
            await stream.send(protocol.heartbeat(0, {item: 7}))
            await drain()
            assert server.suspect_since == {}
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(stream.receive(), 0.05)
            await server.check_leases()              # explicit no-ops
            await server.check_retries()
            registration_reply = await register(server, item_to_source, 1)
            await server.close()
            del registration_reply

        run(check())


class FlakyPlanner:
    def __init__(self):
        self.fail = False
        self.inner = UniformAllocationBaseline()

    def plan(self, query, values):
        if self.fail:
            raise GPError("solver down")
        return self.inner.plan(query, values)


class TestSolverBreaker:
    def _core(self, breaker):
        scenario = scaled_scenario(query_count=2, item_count=20,
                                   trace_length=21, source_count=2, seed=3)
        items = sorted({v for q in scenario.queries for v in q.variables})
        planner = FlakyPlanner()
        core = CoordinatorCore(
            queries=scenario.queries, planner=planner,
            mode=RecomputeMode.ON_WINDOW_VIOLATION,
            metrics=MetricsCollector(recompute_cost=1.0),
            initial_values=scenario.traces.initial_values(),
            item_to_source=assign_items_to_sources(items, 2),
            solver_breaker=breaker)
        core.bootstrap()
        return core, planner, scenario.queries[0]

    def test_open_breaker_serves_shrunk_last_good_plan(self):
        clock = StepClock(0.0)
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0,
                                 clock=clock)
        core, planner, query = self._core(breaker)
        assert breaker.state is BreakerState.CLOSED
        good = core.plans[query.name]
        planner.fail = True
        fallback = core._plan_query(query)
        assert fallback is good                      # last good, unshrunk
        assert breaker.state is BreakerState.OPEN
        shrunk = core._plan_query(query)             # breaker now rejects
        assert shrunk is not good
        for name, bound in shrunk.primary.items():
            assert bound == pytest.approx(good.primary[name] * 0.9)
        assert shrunk.secondary == good.secondary

    def test_shrink_does_not_compound(self):
        clock = StepClock(0.0)
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0,
                                 clock=clock)
        core, planner, query = self._core(breaker)
        planner.fail = True
        core._plan_query(query)                      # opens the breaker
        shrunk = core._plan_query(query)
        core.plans[query.name] = shrunk              # as _recompute stores it
        again = core._plan_query(query)
        assert again is shrunk                       # identity, not re-shrunk

    def test_half_open_probe_recovers(self):
        clock = StepClock(0.0)
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0,
                                 clock=clock)
        core, planner, query = self._core(breaker)
        planner.fail = True
        core._plan_query(query)
        core._plan_query(query)
        planner.fail = False
        clock.now = 11.0                             # reset timeout elapsed
        recovered = core._plan_query(query)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.stats["recoveries"] == 1
        assert recovered.primary                     # a real solver plan


class TestFakeClockEndToEnd:
    """The satellite guard: every timestamp the server emits comes from
    the injected clock, never wall time — a leak shows up here as a
    ``sent_at`` around 1.7e9 instead of the logical step value."""

    def test_degraded_fanout_stamps_injected_clock(self):
        async def check():
            clock = StepClock(0.0)
            server, _, item_to_source = build(clock, lease_duration=3.0)
            await register(server, item_to_source, 0)
            subscriber = server.connect_loopback()
            await subscriber.send(protocol.query_sub("*"))
            await subscriber.receive()                   # snapshot
            clock.now = 1.0
            await server.check_leases()
            clock.now = 7.0
            await server.check_leases()                  # leases expire here
            await drain()
            notice = await subscriber.receive()
            assert notice["type"] == MessageType.NOTIFY.value
            assert notice["sent_at"] == 7.0
            await server.close()

        run(check())

    def test_notification_fanout_stamps_injected_clock(self):
        async def check():
            clock = StepClock(0.0)
            server, _, _ = build(clock)
            subscriber = server.connect_loopback()
            await subscriber.send(protocol.query_sub("*"))
            await subscriber.receive()                   # snapshot
            clock.now = 42.0
            name = server.core.queries[0].name
            server._fanout_notifications([(name, 1.0)], None)
            await drain()
            notice = await subscriber.receive()
            assert notice["type"] == MessageType.NOTIFY.value
            assert notice["sent_at"] == 42.0
            await server.close()

        run(check())

    def test_lease_expiry_runs_entirely_on_fake_clock(self, monkeypatch):
        """Wall time is poisoned for the whole path — scoped to the
        server/resilience modules' ``_time`` bindings (asyncio's event
        loop legitimately reads ``time.monotonic``): any leaked
        ``_time.time()``/``_time.monotonic()`` call fails the test."""
        import time as wall

        class _PoisonedTime:
            perf_counter = staticmethod(wall.perf_counter)

            @staticmethod
            def time():
                raise AssertionError(
                    "wall clock consulted on an injected-clock path")

            monotonic = time

        async def check():
            clock = StepClock(0.0)
            breaker = CircuitBreaker(failure_threshold=3, reset_timeout=6.0)
            server, _, item_to_source = build(clock, lease_duration=3.0,
                                              solver_breaker=breaker)
            assert breaker.clock is clock                # bind_clock took
            stream = await register(server, item_to_source, 0)
            subscriber = server.connect_loopback()
            await subscriber.send(protocol.query_sub("*"))
            await subscriber.receive()
            import repro.service.resilience as resilience_mod
            import repro.service.server as server_mod
            monkeypatch.setattr(server_mod, "_time", _PoisonedTime)
            monkeypatch.setattr(resilience_mod, "_time", _PoisonedTime)
            item = owned(item_to_source, 0)[0]
            clock.now = 1.0
            await stream.send(protocol.refresh(0, item, 42.0, seq=1))
            await drain()
            await server.check_leases()
            clock.now = 9.0
            await server.check_leases()                  # expiry + fanout
            await drain()
            assert server.suspect_since
            notice = await subscriber.receive()
            while not notice.get("degraded"):   # skip value NOTIFYs
                notice = await subscriber.receive()
            assert notice["sent_at"] == 9.0
            clock.now = 10.0
            await stream.send(protocol.refresh(0, item, 43.0, seq=2))
            await drain()
            assert item not in server.suspect_since      # recovery, still no wall
            await server.close()

        run(check())
