"""Write-ahead journal + snapshot/replay crash recovery.

Covers the ISSUE 6 edge cases: a torn final record (crash mid-append)
truncates cleanly on open, a CRC-corrupt *complete* record aborts replay
with a clear error instead of silently skipping it, snapshot+tail replay
reconstructs the pre-crash core state bit-identically, and a server
without a journal behaves exactly as before the feature existed.
"""

import asyncio
import json
import math

import pytest

from repro.filters.assignment import DABAssignment
from repro.service import protocol
from repro.service.journal import (
    Journal,
    JournalError,
    encode_record,
    plan_from_wire,
    plan_to_wire,
    scan_records,
)
from repro.service.protocol import MessageType
from repro.service.server import build_scenario_server


def run(coro):
    return asyncio.run(coro)


def build(tmp_path=None, bootstrap=True, **kwargs):
    journal = None
    if tmp_path is not None:
        journal = Journal(str(tmp_path), **kwargs.pop("journal_kwargs", {}))
    server, scenario, item_to_source = build_scenario_server(
        query_count=4, item_count=20, source_count=2, trace_length=41,
        seed=1, journal=journal, bootstrap=bootstrap and journal is None,
        **kwargs)
    return server, scenario, item_to_source


def owned(item_to_source, source_id):
    return sorted(n for n, s in item_to_source.items() if s == source_id)


async def register(server, item_to_source, source_id):
    stream = server.connect_loopback()
    await stream.send(protocol.register_source(
        source_id, owned(item_to_source, source_id)))
    reply = await stream.receive()
    assert reply["type"] == MessageType.DAB_UPDATE.value
    return stream


async def drain(rounds=6):
    for _ in range(rounds):
        await asyncio.sleep(0)


def core_fingerprint(core):
    """The full recovery state as canonical JSON — byte-comparable."""
    return json.dumps(core.recovery_state(), sort_keys=True,
                      separators=(",", ":"), allow_nan=False)


async def push_load(server, item_to_source, scale=1.0):
    """Registered-source refreshes, some violent enough to break DAB
    windows and force recomputes (plan + notify journal records)."""
    streams = {sid: await register(server, item_to_source, sid)
               for sid in (0, 1)}
    seq = 0
    for round_no in range(1, 4):
        for sid, stream in streams.items():
            for offset, item in enumerate(owned(item_to_source, sid)):
                seq += 1
                value = scale * (100.0 + 40.0 * round_no * (offset + 1))
                await stream.send(protocol.refresh(sid, item, value, seq=seq))
        await drain()
    for stream in streams.values():
        stream.close()
    await drain()


# ---------------------------------------------------------------------------
# record format
# ---------------------------------------------------------------------------

class TestRecordFormat:
    def test_encode_scan_round_trip(self):
        records = [{"t": "refresh", "item": "x0", "value": 1.5, "seq": 3},
                   {"t": "notify", "values": {"q0": 2.0}}]
        blob = b"".join(encode_record(r) for r in records)
        decoded, valid = scan_records(blob)
        assert decoded == records
        assert valid == len(blob)

    def test_torn_tail_is_cut_not_fatal(self):
        blob = encode_record({"t": "refresh", "item": "a", "value": 1.0})
        full = blob + encode_record({"t": "notify", "values": {}})[:-4]
        decoded, valid = scan_records(full)
        assert len(decoded) == 1
        assert valid == len(blob)

    def test_crc_corruption_in_complete_record_aborts(self):
        blob = bytearray(encode_record({"t": "refresh", "item": "a",
                                        "value": 1.0}))
        blob[-2] ^= 0xFF                      # flip a body byte, length intact
        with pytest.raises(JournalError, match="CRC"):
            scan_records(bytes(blob))

    def test_plan_wire_round_trip_including_nan_objective(self):
        plan = DABAssignment(
            primary={"x0": 1.0, "x1": 2.0},
            reference_values={"x0": 10.0, "x1": 20.0},
            recompute_rate=0.25, objective=float("nan"))
        back = plan_from_wire(plan_to_wire(plan))
        assert back.primary == plan.primary
        assert back.reference_values == plan.reference_values
        assert math.isnan(back.objective)


# ---------------------------------------------------------------------------
# journal lifecycle on disk
# ---------------------------------------------------------------------------

class TestJournalOnDisk:
    def test_open_truncates_torn_tail_and_appends_after_it(self, tmp_path):
        journal = Journal(str(tmp_path)).open()
        journal.append({"t": "refresh", "item": "a", "value": 1.0, "seq": 1})
        journal.close()
        with open(tmp_path / "wal.log", "ab") as fh:
            fh.write(encode_record({"t": "refresh", "item": "b",
                                    "value": 2.0, "seq": 2})[:-3])
        reopened = Journal(str(tmp_path)).open()
        assert reopened.truncated_tail_bytes > 0
        assert reopened.record_count == 1
        reopened.append({"t": "refresh", "item": "c", "value": 3.0, "seq": 3})
        assert [r["item"] for r in reopened.records()] == ["a", "c"]
        reopened.close()

    def test_corrupt_middle_record_fails_replay_loudly(self, tmp_path):
        journal = Journal(str(tmp_path)).open()
        for i in range(3):
            journal.append({"t": "refresh", "item": f"x{i}",
                            "value": float(i), "seq": i + 1})
        journal.close()
        wal = tmp_path / "wal.log"
        data = bytearray(wal.read_bytes())
        data[12] ^= 0xFF                      # inside the first record's body
        wal.write_bytes(bytes(data))
        with pytest.raises(JournalError, match="CRC"):
            Journal(str(tmp_path)).open()

    def test_snapshot_digest_falls_back_to_older_intact_one(self, tmp_path):
        journal = Journal(str(tmp_path)).open()
        journal.write_snapshot({"n": 1})
        journal.append({"t": "notify", "values": {}})
        journal.write_snapshot({"n": 2})
        newest = sorted(tmp_path.glob("snapshot-*.json"))[-1]
        newest.write_text(newest.read_text().replace('"n":2', '"n":3'))
        index, state = journal.latest_snapshot()
        assert state == {"n": 1}
        assert index == 0
        journal.close()

    def test_fsync_policies_validated_and_counted(self, tmp_path):
        with pytest.raises(JournalError):
            Journal(str(tmp_path), fsync="sometimes")
        journal = Journal(str(tmp_path / "off"), fsync="off").open()
        journal.append({"t": "notify", "values": {}})
        assert journal.fsyncs == 0
        journal.close()
        journal = Journal(str(tmp_path / "always"), fsync="always").open()
        journal.append({"t": "notify", "values": {}})
        assert journal.fsyncs == 1
        journal.close()

    def test_describe_summarises_offline(self, tmp_path):
        journal = Journal(str(tmp_path)).open()
        journal.append({"t": "refresh", "item": "a", "value": 1.0, "seq": 1})
        journal.write_snapshot({"s": True})
        journal.append({"t": "notify", "values": {"q": 1.0}})
        journal.close()
        summary = Journal(str(tmp_path)).describe(last=1)
        assert summary["records"] == 2
        assert summary["records_by_type"] == {"notify": 1, "refresh": 1}
        assert summary["latest_snapshot_index"] == 1
        assert summary["replay_tail_records"] == 1
        assert summary["last_records"][0]["t"] == "notify"


# ---------------------------------------------------------------------------
# crash recovery end to end
# ---------------------------------------------------------------------------

class TestCrashRecovery:
    def test_snapshot_plus_tail_replay_is_bit_identical(self, tmp_path):
        async def check():
            server, _, item_to_source = build(
                tmp_path, journal_kwargs={"snapshot_every": 10,
                                          "fsync": "off"})
            server.restore()
            await push_load(server, item_to_source)
            assert server.core.plans          # recomputes happened
            before = core_fingerprint(server.core)
            seqs_before = dict(server.last_seq)
            # the kill: no parting snapshot, recovery is WAL-tail replay
            await server.close(final_snapshot=False)

            revived, _, _ = build(tmp_path, bootstrap=False)
            recovery = revived.restore()
            assert recovery["records_replayed"] > 0
            assert core_fingerprint(revived.core) == before
            assert revived.last_seq == seqs_before
            await revived.close()

        run(check())

    def test_restart_resumes_serving_and_dedup_survives(self, tmp_path):
        async def check():
            server, _, item_to_source = build(tmp_path)
            server.restore()
            await push_load(server, item_to_source)
            values_before = dict(zip(
                [q.name for q in server.core.queries],
                server.core.query_values()))
            await server.close(final_snapshot=False)

            revived, _, _ = build(tmp_path, bootstrap=False)
            revived.restore()
            stream = await register(revived, item_to_source, 0)
            item = owned(item_to_source, 0)[0]
            stale = revived.last_seq[item]     # recovered high-water mark
            await stream.send(protocol.refresh(0, item, -9e9, seq=stale))
            await drain()
            assert revived.stats["refreshes_rejected_stale_seq"] == 1
            values_after = dict(zip(
                [q.name for q in revived.core.queries],
                revived.core.query_values()))
            assert values_after == values_before
            stream.close()
            await revived.close()

        run(check())

    def test_second_restore_replays_the_parting_snapshot(self, tmp_path):
        async def check():
            server, _, item_to_source = build(tmp_path)
            server.restore()
            await push_load(server, item_to_source)
            before = core_fingerprint(server.core)
            await server.close()               # graceful: parting snapshot

            revived, _, _ = build(tmp_path, bootstrap=False)
            recovery = revived.restore()
            assert recovery["records_replayed"] == 0   # snapshot covers all
            assert core_fingerprint(revived.core) == before
            await revived.close()

        run(check())

    def test_unknown_record_type_aborts_restore(self, tmp_path):
        journal = Journal(str(tmp_path)).open()
        journal.append({"t": "gibberish"})
        journal.close()

        async def check():
            server, _, _ = build(tmp_path, bootstrap=False)
            with pytest.raises(JournalError, match="gibberish"):
                server.restore()
            await server.close()

        run(check())

    def test_restore_guards(self, tmp_path):
        async def check():
            plain, _, _ = build()
            with pytest.raises(JournalError, match="no journal"):
                plain.restore()
            await plain.close()
            journaled, _, _ = build(tmp_path, bootstrap=False)
            journaled.restore()
            with pytest.raises(JournalError, match="twice"):
                journaled.restore()
            await journaled.close()

        run(check())


# ---------------------------------------------------------------------------
# the hard no-op guarantee
# ---------------------------------------------------------------------------

class TestNoJournalNoOp:
    def test_fresh_journal_dir_matches_journal_less_server(self, tmp_path):
        async def check():
            plain, _, item_to_source = build()
            await push_load(plain, item_to_source)
            plain_state = core_fingerprint(plain.core)
            plain_stats = plain.server_stats()
            await plain.close()

            journaled, _, item_to_source = build(tmp_path)
            journaled.restore()                # fresh dir: bootstrap path
            await push_load(journaled, item_to_source)
            assert core_fingerprint(journaled.core) == plain_state
            j_stats = journaled.server_stats()
            j_stats.pop("journal")
            j_stats.pop("last_recovery")
            assert j_stats == plain_stats
            await journaled.close()

        run(check())

    def test_journal_less_stats_have_no_journal_section(self):
        async def check():
            server, _, _ = build()
            stats = server.server_stats()
            assert "journal" not in stats
            assert "last_recovery" not in stats
            await server.close()

        run(check())
