"""SourceAgent: DAB filtering, epoch guards, reconnect-with-resync."""

import asyncio

import pytest

from repro.service import protocol
from repro.service.agent import SourceAgent, agents_for_scenario
from repro.service.server import build_scenario_server
from repro.service.transports import TransportClosed


def run(coro):
    return asyncio.run(coro)


def make_agent(**kwargs):
    defaults = dict(source_id=0, items=["x0", "x1"],
                    initial_values={"x0": 10.0, "x1": 20.0})
    defaults.update(kwargs)
    return SourceAgent(**defaults)


class TestDabFilter:
    def test_unbounded_items_forward_everything(self):
        agent = make_agent()
        messages = agent.pending_refreshes({"x0": 10.5})
        assert len(messages) == 1       # fail-safe: no bound yet, forward

    def test_in_window_ticks_are_filtered(self):
        agent = make_agent()
        agent.apply_dab_update({"x0": 2.0, "x1": 2.0}, {"x0": 1, "x1": 1})
        assert agent.pending_refreshes({"x0": 11.0}) == []     # |11-10| <= 2
        assert agent.stats["refreshes_filtered"] == 1
        messages = agent.pending_refreshes({"x0": 13.5})       # escape
        assert len(messages) == 1
        assert messages[0]["seq"] == 1
        assert messages[0]["value"] == 13.5
        # The window recentres on the sent value.
        assert agent.sent_values["x0"] == 13.5
        assert agent.pending_refreshes({"x0": 14.0}) == []

    def test_seq_increments_per_item(self):
        agent = make_agent()
        first = agent.pending_refreshes({"x0": 100.0})[0]
        second = agent.pending_refreshes({"x0": 200.0})[0]
        other = agent.pending_refreshes({"x1": 99.0})[0]
        assert (first["seq"], second["seq"]) == (1, 2)
        assert other["seq"] == 1

    def test_unknown_items_ignored(self):
        agent = make_agent()
        assert agent.pending_refreshes({"zz": 1.0}) == []

    def test_missing_initial_value_rejected(self):
        with pytest.raises(Exception, match="no initial value"):
            SourceAgent(0, ["x0"], {})


class TestEpochGuard:
    def test_stale_epoch_dab_update_rejected(self):
        agent = make_agent()
        agent.apply_dab_update({"x0": 1.0}, {"x0": 5})
        agent.apply_dab_update({"x0": 9.0}, {"x0": 4})     # stale: ignored
        agent.apply_dab_update({"x0": 9.0}, {"x0": 5})     # duplicate: ignored
        assert agent.bounds["x0"] == 1.0
        assert agent.stats["dab_updates_rejected_stale_epoch"] == 2
        agent.apply_dab_update({"x0": 3.0}, {"x0": 6})     # newer: applied
        assert agent.bounds["x0"] == 3.0

    def test_reordered_updates_are_idempotent(self):
        agent = make_agent()
        # Delivery order 2, 1 — the newer bound must win regardless.
        agent.apply_dab_update({"x0": 0.5}, {"x0": 2})
        agent.apply_dab_update({"x0": 4.0}, {"x0": 1})
        assert agent.bounds["x0"] == 0.5


class TestLiveAgent:
    def test_connect_applies_registration_dabs(self):
        server, scenario, item_to_source = build_scenario_server(
            query_count=4, item_count=20, source_count=2, trace_length=41,
            seed=1)
        agents = agents_for_scenario(scenario, item_to_source)

        async def body():
            agent = agents[0]
            await agent.connect(server.connect_loopback())
            for _ in range(50):
                if agent.bounds:
                    break
                await asyncio.sleep(0.01)
            assert sorted(agent.bounds) == sorted(agent.items)
            assert agent.stats["dab_updates_applied"] == len(agent.items)
            await agent.close()
            await server.close()

        run(body())

    def test_tick_while_disconnected_raises(self):
        agent = make_agent()

        async def body():
            with pytest.raises(TransportClosed, match="disconnected"):
                await agent.tick({"x0": 1000.0})

        run(body())

    def test_reconnect_resyncs_and_resumes_seq(self):
        server, scenario, item_to_source = build_scenario_server(
            query_count=4, item_count=20, source_count=2, trace_length=41,
            seed=1)
        agents = agents_for_scenario(scenario, item_to_source)

        async def body():
            agent = agents[0]
            item = agent.items[0]
            await agent.connect(server.connect_loopback())
            sent = await agent.tick({item: agent.values[item] * 10})
            assert sent == 1

            # Connection drops; the agent reconnects and re-registers.
            old_stream = agent._stream
            await agent.connect(server.connect_loopback())
            assert agent.stats["reconnects"] == 1
            assert old_stream.closed

            sent = await agent.tick({item: agent.values[item] * 10})
            assert sent == 1
            # Sync point: a snapshot round trip on the agent's stream
            # guarantees the server consumed the refresh first.
            await agent._stream.send(protocol.snapshot())
            for _ in range(100):
                if server.stats["refreshes_accepted"] == 2:
                    break
                await asyncio.sleep(0.01)
            assert server.stats["refreshes_accepted"] == 2
            assert server.last_seq[item] == 2          # seq continued, no reset
            await agent.close()
            await server.close()

        run(body())

    def test_post_reconnect_refresh_flags_resync(self):
        agent = make_agent()

        async def body():
            from repro.service.transports import loopback_pair

            first_client, _ = loopback_pair()
            await agent.connect(first_client)
            agent.pending_refreshes({"x0": 100.0})
            second_client, _ = loopback_pair()
            await agent.connect(second_client)
            (message,) = agent.pending_refreshes({"x0": 200.0})
            assert message["resync"] is True
            (message,) = agent.pending_refreshes({"x0": 300.0})
            assert "resync" not in message             # one-shot flag
            await agent.close()

        run(body())


class TestScenarioAgents:
    def test_agents_partition_the_items(self):
        server, scenario, item_to_source = build_scenario_server(
            query_count=4, item_count=20, source_count=2, trace_length=41,
            seed=1)
        agents = agents_for_scenario(scenario, item_to_source)
        assert set(agents) == set(item_to_source.values())
        claimed = [item for agent in agents.values() for item in agent.items]
        assert sorted(claimed) == sorted(item_to_source)

    def test_replay_pushes_only_violations(self):
        server, scenario, item_to_source = build_scenario_server(
            query_count=4, item_count=20, source_count=2, trace_length=41,
            seed=1)
        agents = agents_for_scenario(scenario, item_to_source)

        async def body():
            agent = agents[0]
            await agent.connect(server.connect_loopback())
            # Give the registration DAB_UPDATE time to arrive: otherwise
            # the fail-safe forwards everything and nothing is filtered.
            for _ in range(50):
                if agent.bounds:
                    break
                await asyncio.sleep(0.01)
            sent = await agent.replay(scenario.traces, max_steps=30)
            assert sent == agent.stats["refreshes_sent"]
            assert agent.stats["ticks"] == 30 * len(agent.items)
            assert agent.stats["refreshes_filtered"] > 0
            await agent.close()
            await server.close()

        run(body())
