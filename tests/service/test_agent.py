"""SourceAgent: DAB filtering, epoch guards, reconnect-with-resync."""

import asyncio

import pytest

from repro.service import protocol
from repro.service.agent import SourceAgent, agents_for_scenario
from repro.service.server import build_scenario_server
from repro.service.transports import TransportClosed


def run(coro):
    return asyncio.run(coro)


def make_agent(**kwargs):
    defaults = dict(source_id=0, items=["x0", "x1"],
                    initial_values={"x0": 10.0, "x1": 20.0})
    defaults.update(kwargs)
    return SourceAgent(**defaults)


class TestDabFilter:
    def test_unbounded_items_forward_everything(self):
        agent = make_agent()
        messages = agent.pending_refreshes({"x0": 10.5})
        assert len(messages) == 1       # fail-safe: no bound yet, forward

    def test_in_window_ticks_are_filtered(self):
        agent = make_agent()
        agent.apply_dab_update({"x0": 2.0, "x1": 2.0}, {"x0": 1, "x1": 1})
        assert agent.pending_refreshes({"x0": 11.0}) == []     # |11-10| <= 2
        assert agent.stats["refreshes_filtered"] == 1
        messages = agent.pending_refreshes({"x0": 13.5})       # escape
        assert len(messages) == 1
        assert messages[0]["seq"] == 1
        assert messages[0]["value"] == 13.5
        # The window recentres on the sent value.
        assert agent.sent_values["x0"] == 13.5
        assert agent.pending_refreshes({"x0": 14.0}) == []

    def test_seq_increments_per_item(self):
        agent = make_agent()
        first = agent.pending_refreshes({"x0": 100.0})[0]
        second = agent.pending_refreshes({"x0": 200.0})[0]
        other = agent.pending_refreshes({"x1": 99.0})[0]
        assert (first["seq"], second["seq"]) == (1, 2)
        assert other["seq"] == 1

    def test_unknown_items_ignored(self):
        agent = make_agent()
        assert agent.pending_refreshes({"zz": 1.0}) == []

    def test_missing_initial_value_rejected(self):
        with pytest.raises(Exception, match="no initial value"):
            SourceAgent(0, ["x0"], {})


class TestEpochGuard:
    def test_stale_epoch_dab_update_rejected(self):
        agent = make_agent()
        agent.apply_dab_update({"x0": 1.0}, {"x0": 5})
        agent.apply_dab_update({"x0": 9.0}, {"x0": 4})     # stale: ignored
        agent.apply_dab_update({"x0": 9.0}, {"x0": 5})     # duplicate: ignored
        assert agent.bounds["x0"] == 1.0
        assert agent.stats["dab_updates_rejected_stale_epoch"] == 2
        agent.apply_dab_update({"x0": 3.0}, {"x0": 6})     # newer: applied
        assert agent.bounds["x0"] == 3.0

    def test_reordered_updates_are_idempotent(self):
        agent = make_agent()
        # Delivery order 2, 1 — the newer bound must win regardless.
        agent.apply_dab_update({"x0": 0.5}, {"x0": 2})
        agent.apply_dab_update({"x0": 4.0}, {"x0": 1})
        assert agent.bounds["x0"] == 0.5


class TestLiveAgent:
    def test_connect_applies_registration_dabs(self):
        server, scenario, item_to_source = build_scenario_server(
            query_count=4, item_count=20, source_count=2, trace_length=41,
            seed=1)
        agents = agents_for_scenario(scenario, item_to_source)

        async def body():
            agent = agents[0]
            await agent.connect(server.connect_loopback())
            for _ in range(50):
                if agent.bounds:
                    break
                await asyncio.sleep(0.01)
            assert sorted(agent.bounds) == sorted(agent.items)
            assert agent.stats["dab_updates_applied"] == len(agent.items)
            await agent.close()
            await server.close()

        run(body())

    def test_tick_while_disconnected_raises(self):
        agent = make_agent()

        async def body():
            with pytest.raises(TransportClosed, match="disconnected"):
                await agent.tick({"x0": 1000.0})

        run(body())

    def test_reconnect_resyncs_and_resumes_seq(self):
        server, scenario, item_to_source = build_scenario_server(
            query_count=4, item_count=20, source_count=2, trace_length=41,
            seed=1)
        agents = agents_for_scenario(scenario, item_to_source)

        async def body():
            agent = agents[0]
            item = agent.items[0]
            await agent.connect(server.connect_loopback())
            sent = await agent.tick({item: agent.values[item] * 10})
            assert sent == 1

            # Connection drops; the agent reconnects and re-registers.
            old_stream = agent._stream
            await agent.connect(server.connect_loopback())
            assert agent.stats["reconnects"] == 1
            assert old_stream.closed

            sent = await agent.tick({item: agent.values[item] * 10})
            assert sent == 1
            # Sync point: a snapshot round trip on the agent's stream
            # guarantees the server consumed the refresh first.
            await agent._stream.send(protocol.snapshot())
            for _ in range(100):
                if server.stats["refreshes_accepted"] == 2:
                    break
                await asyncio.sleep(0.01)
            assert server.stats["refreshes_accepted"] == 2
            assert server.last_seq[item] == 2          # seq continued, no reset
            await agent.close()
            await server.close()

        run(body())

    def test_post_reconnect_refresh_flags_resync(self):
        agent = make_agent()

        async def body():
            from repro.service.transports import loopback_pair

            first_client, first_peer = loopback_pair()
            # Fake coordinator: pre-send the registration reply connect()
            # consumes before returning.
            await first_peer.send(protocol.dab_update(0, {}, {}))
            await agent.connect(first_client)
            agent.pending_refreshes({"x0": 100.0})
            second_client, second_peer = loopback_pair()
            await second_peer.send(protocol.dab_update(0, {}, {}))
            await agent.connect(second_client)
            (message,) = agent.pending_refreshes({"x0": 200.0})
            assert message["resync"] is True
            (message,) = agent.pending_refreshes({"x0": 300.0})
            assert "resync" not in message             # one-shot flag
            await agent.close()

        run(body())

    def test_resync_forces_resend_of_in_window_value(self):
        """A refresh whose send failed already recentred ``sent_values``;
        the post-reconnect resync must resend it even though the filter
        judges it in-window (the reviewer's lost-refresh scenario)."""
        agent = make_agent()

        async def body():
            from repro.service.transports import loopback_pair

            first_client, first_peer = loopback_pair()
            await first_peer.send(protocol.dab_update(
                0, {"x0": 2.0, "x1": 2.0}, {"x0": 1, "x1": 1}))
            await agent.connect(first_client)
            # Bound-violating tick: state commits (seq, sent_values) ...
            (lost,) = agent.pending_refreshes({"x0": 100.0})
            assert lost["seq"] == 1
            # ... but imagine its send died.  Reconnect, then retry the
            # same value: it is in-window against sent_values, yet must
            # be re-sent or the coordinator keeps the stale cache forever.
            second_client, second_peer = loopback_pair()
            await second_peer.send(protocol.dab_update(0, {}, {}))
            await agent.connect(second_client)
            (retried,) = agent.pending_refreshes({"x0": 100.0})
            assert retried["value"] == 100.0
            assert retried["resync"] is True
            assert retried["seq"] == 2
            await agent.close()

        run(body())


class _FlakyStream:
    """Delegates to a real stream but dies on the Nth send (the peer's
    view of a connection dropping mid-conversation)."""

    def __init__(self, inner, fail_on_send):
        self.inner = inner
        self.fail_on_send = fail_on_send
        self.sends = 0

    async def send(self, message):
        self.sends += 1
        if self.sends == self.fail_on_send:
            self.inner.close()
            raise TransportClosed("injected mid-replay drop")
        await self.inner.send(message)

    async def receive(self):
        return await self.inner.receive()

    def close(self):
        self.inner.close()

    @property
    def closed(self):
        return self.inner.closed


class TestReconnectRecovery:
    def test_restarted_source_process_is_not_muted(self):
        """A fresh process's seq counters restart at 0; the registration
        reply's high-water marks must lift them above the server's dedup
        guard or every refresh is rejected as stale."""
        server, scenario, item_to_source = build_scenario_server(
            query_count=4, item_count=20, source_count=2, trace_length=41,
            seed=1)
        agents = agents_for_scenario(scenario, item_to_source)

        async def body():
            agent = agents[0]
            item = agent.items[0]
            await agent.connect(server.connect_loopback())
            await agent.tick({item: agent.values[item] + 1000.0})
            await agent.tick({item: agent.values[item] + 1000.0})
            for _ in range(100):
                if server.stats["refreshes_accepted"] == 2:
                    break
                await asyncio.sleep(0.01)
            assert server.last_seq[item] == 2
            await agent.close()

            # The process restarts: same source id, counters back at 0.
            restarted = SourceAgent(agent.source_id, agent.items,
                                    initial_values=agent.values)
            await restarted.connect(server.connect_loopback())
            assert restarted.seq[item] == 2            # floored by the reply
            value = restarted.values[item] + 1000.0
            await restarted.tick({item: value})
            for _ in range(100):
                if server.core.cache[item] == value:
                    break
                await asyncio.sleep(0.01)
            assert server.core.cache[item] == value    # accepted, not muted
            assert server.last_seq[item] == 3
            await restarted.close()
            await server.close()

        run(body())

    def test_mid_replay_send_failure_is_not_lost(self):
        """Reviewer scenario: a refresh commits filter state, its send
        dies, the agent reconnects and retries the step — the coordinator
        must still end up with every item's last sent value."""
        server, scenario, item_to_source = build_scenario_server(
            query_count=4, item_count=20, source_count=2, trace_length=41,
            seed=1)
        agents = agents_for_scenario(scenario, item_to_source)

        async def body():
            agent = agents[0]
            # Send #1 is REGISTER_SOURCE; the drop hits the first REFRESH,
            # after pending_refreshes() already recentred sent_values.
            flaky = _FlakyStream(server.connect_loopback(), fail_on_send=2)

            async def reconnect():
                return server.connect_loopback()

            await agent.connect(flaky)
            await agent.replay(scenario.traces, max_steps=30,
                               reconnect=reconnect)
            assert agent.stats["reconnects"] == 1
            expected = {item: agent.sent_values[item] for item in agent.items}
            for _ in range(200):
                if all(server.core.cache[item] == value
                       for item, value in expected.items()):
                    break
                await asyncio.sleep(0.01)
            for item, value in expected.items():
                assert server.core.cache[item] == value
            await agent.close()
            await server.close()

        run(body())


class TestScenarioAgents:
    def test_agents_partition_the_items(self):
        server, scenario, item_to_source = build_scenario_server(
            query_count=4, item_count=20, source_count=2, trace_length=41,
            seed=1)
        agents = agents_for_scenario(scenario, item_to_source)
        assert set(agents) == set(item_to_source.values())
        claimed = [item for agent in agents.values() for item in agent.items]
        assert sorted(claimed) == sorted(item_to_source)

    def test_replay_pushes_only_violations(self):
        server, scenario, item_to_source = build_scenario_server(
            query_count=4, item_count=20, source_count=2, trace_length=41,
            seed=1)
        agents = agents_for_scenario(scenario, item_to_source)

        async def body():
            agent = agents[0]
            await agent.connect(server.connect_loopback())
            # Give the registration DAB_UPDATE time to arrive: otherwise
            # the fail-safe forwards everything and nothing is filtered.
            for _ in range(50):
                if agent.bounds:
                    break
                await asyncio.sleep(0.01)
            sent = await agent.replay(scenario.traces, max_steps=30)
            assert sent == agent.stats["refreshes_sent"]
            assert agent.stats["ticks"] == 30 * len(agent.items)
            assert agent.stats["refreshes_filtered"] > 0
            await agent.close()
            await server.close()

        run(body())
