"""Shared fixtures for the test suite.

Scales are kept tiny (tens of items, hundreds of ticks) so the full suite
runs in minutes; the benchmarks exercise larger scales.
"""

from __future__ import annotations

import pytest

from repro.dynamics import estimate_rates
from repro.filters import CostModel
from repro.queries import parse_query
from repro.workloads import scaled_scenario


@pytest.fixture(scope="session")
def fig2_query():
    """The paper's running example: ``x*y : 5``."""
    return parse_query("x*y : 5", name="fig2")


@pytest.fixture(scope="session")
def fig2_values():
    return {"x": 2.0, "y": 2.0}


@pytest.fixture(scope="session")
def unit_cost_model():
    """λ = 1 for x and y, μ = 1 — the hand-checkable setting."""
    return CostModel(rates={"x": 1.0, "y": 1.0}, recompute_cost=1.0)


@pytest.fixture(scope="session")
def small_scenario():
    """A small portfolio-PPQ world shared by integration tests."""
    return scaled_scenario(query_count=6, item_count=20, trace_length=201,
                           source_count=4, seed=7)


@pytest.fixture(scope="session")
def arbitrage_scenario():
    """A small general-PQ (arbitrage) world."""
    return scaled_scenario(query_count=4, item_count=24, trace_length=201,
                           source_count=4, seed=11, query_kind="arbitrage")


@pytest.fixture(scope="session")
def small_cost_model(small_scenario):
    rates = estimate_rates(small_scenario.traces)
    return CostModel(rates=rates, recompute_cost=5.0)
