"""Arbitrage monitoring — the paper's Query 1(b): mixed-sign polynomials.

An arbitrage query watches the *difference* between buying in one set of
markets and selling in another:

    amount * ( sum_i buy_price_i * fx_i  -  sum_k sell_price_k * fx_k ) : B

Negative coefficients put the query outside geometric programming's reach,
so the paper's two heuristics apply.  The script:

1. parses a hand-written arbitrage query and shows the P1 - P2 split,
2. plans DABs with Half-and-Half and with Different Sum and compares them,
3. runs the generated arbitrage workload under both heuristics.

Run:  python examples/arbitrage_monitor.py
"""

from repro import (
    CostModel,
    DifferentSumPlanner,
    HalfAndHalfPlanner,
    SimulationConfig,
    estimate_rates,
    parse_query,
    run_simulation,
    scaled_scenario,
)
from repro.queries.deviation import max_query_deviation


def main() -> None:
    print("=== a hand-written arbitrage query ===")
    query = parse_query(
        "1000 buyNY*fxUSD - 1000 sellLDN*fxGBP : 250", name="arb_example")
    values = {"buyNY": 42.10, "fxUSD": 1.00, "sellLDN": 33.25, "fxGBP": 1.27}
    print(f"query: {query}")
    p1, p2 = query.split()
    print(f"positive half P1: {[str(t) for t in p1]}")
    print(f"negative half P2 (negated): {[str(t) for t in p2]}")
    print(f"halves independent? {query.halves_are_independent()}")
    print(f"current spread: {query.evaluate(values):+.2f} "
          f"(QAB = {query.qab})")

    model = CostModel(rates={k: 0.02 * v for k, v in values.items()},
                      recompute_cost=5.0)
    print("\n=== the two heuristics ===")
    for name, planner in (("Half and Half", HalfAndHalfPlanner(model)),
                          ("Different Sum", DifferentSumPlanner(model))):
        plan = planner.plan(query, values)
        deviation = max_query_deviation(query.terms, values, plan.primary)
        print(f"{name}:")
        print(f"  primary DABs: { {k: round(v, 4) for k, v in plan.primary.items()} }")
        print(f"  worst-case query movement under them: {deviation:.2f} "
              f"<= {query.qab} (guaranteed)")
        print(f"  estimated refresh rate: "
              f"{model.estimated_refresh_rate(plan.primary):.3f}/s")

    print("\n=== the generated arbitrage workload (Fig. 8 style) ===")
    scenario = scaled_scenario(query_count=8, item_count=30, trace_length=401,
                               source_count=6, seed=5, query_kind="arbitrage")
    print(f"{'heuristic':>15s} {'refreshes':>10s} {'recomps':>8s} {'cost':>9s}")
    for algorithm in ("half_and_half", "different_sum"):
        config = SimulationConfig(
            queries=scenario.queries, traces=scenario.traces,
            algorithm=algorithm, recompute_cost=5.0,
            source_count=scenario.source_count, seed=5, fidelity_interval=2,
        )
        m = run_simulation(config).metrics
        print(f"{algorithm:>15s} {m.refreshes:10d} {m.recomputations:8d} "
              f"{m.total_cost:9.0f}")
    print("\nDifferent Sum optimises the budget split jointly — the paper "
          "recommends it for general polynomials (provably near-optimal "
          "for independent halves).")


if __name__ == "__main__":
    main()
