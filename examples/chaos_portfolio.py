"""The live portfolio service under fire: partition, crash, recovery.

`live_portfolio_service.py` shows the deployed architecture on a clean
network.  This example reruns it through the chaos harness (DESIGN.md
§10): the same coordinator/agents/client wiring, but every source link
passes through a seeded fault injector that drops refreshes in a lossy
window, partitions a feed outright, and crashes one agent process
mid-run.

The point is *honesty under degradation*.  While a feed is unreachable
its staleness lease expires, the affected queries are served with an
explicitly widened bound (the ``degraded`` map every subscriber sees),
and the soak's auditor holds the service to exactly that contract:

* any query served *without* a degraded flag must be within its QAB of
  the live ground truth at the sources — no silent staleness;
* once the chaos ends, probes and resyncs must drain the degraded set
  and the final audit must pass at full precision.

Same seed, same fault trace, same verdict — byte for byte.

Run it::

    PYTHONPATH=src python examples/chaos_portfolio.py
"""

from repro.service.chaos import FaultSchedule
from repro.service.soak import run_chaos_soak
from repro.simulation.faults import CrashWindow, PartitionWindow


def main() -> None:
    # A deliberately nasty 30-step schedule: a lossy stretch, a hard
    # partition, and one feed process dying for six steps.
    schedule = FaultSchedule(
        drop_rate=0.3,
        loss_windows=(PartitionWindow(4.0, 9.0),),
        duplicate_rate=0.05,
        partitions=(PartitionWindow(11.0, 14.0),),
        crash_windows=(CrashWindow(0, 16.0, 22.0),),
        seed=17,
    )
    print("chaos schedule:", ", ".join(schedule.fault_kinds()))

    report = run_chaos_soak(
        schedule=schedule, steps=30, queries=6, items=20, sources=3,
        seed=11, lease_duration=3.0)

    print(f"soaked {report['steps']} steps "
          f"(+{report['tail_steps']} recovery-tail steps) with "
          f"{report['fault_events']} injected fault events")
    print(f"fault mix: {report['fault_counts']}")
    print(f"fault trace digest: {report['fault_trace_digest'][:16]}… "
          "(same seed => same trace)")

    print(f"\naudits: {report['audits']} "
          f"({report['audits_with_degraded']} while degraded)")
    print("unexcused QAB violations:",
          report["qab_violations_unexcused"])
    print("violations excused by an honest degraded flag:",
          report["qab_violations_excused_degraded"])

    episodes = report["recovery_episodes"]
    if episodes:
        print(f"\ndegraded episodes: {episodes} "
              f"(recovery p50 {report['recovery_steps']['p50']:.0f} steps, "
              f"p95 {report['recovery_steps']['p95']:.0f})")
    print("degraded queries after recovery:",
          report["final_degraded_queries"] or "none")
    overhead = report["refresh_overhead_per_step"]
    print(f"refresh overhead: p50 {overhead['p50']:.1f} / "
          f"p95 {overhead['p95']:.1f} refreshes/step "
          "(probes and resyncs included)")

    print("\nverdict:", "PASS" if report["passed"] else "FAIL")


if __name__ == "__main__":
    main()
