"""A live portfolio-tracking service, end to end, in one process.

The other examples drive the discrete-event *simulator*; this one runs
the deployed architecture (DESIGN.md §9): an asyncio
``CoordinatorServer`` planning dual DABs over a portfolio workload, one
``SourceAgent`` per exchange feed filtering ticks through those bounds,
and a ``ServiceClient`` subscribed to the resulting query notifications —
all wired through the in-process loopback transport, so the exact wire
protocol runs with no sockets to set up.

Run it::

    PYTHONPATH=src python examples/live_portfolio_service.py

The punchline is the final audit: after hundreds of ticks the served
value of every portfolio query is within its accuracy bound (QAB) of the
ground truth, even though most ticks never crossed the wire.
"""

import asyncio

from repro.service.agent import agents_for_scenario
from repro.service.client import ServiceClient
from repro.service.server import build_scenario_server


async def run_service(steps: int = 60) -> None:
    # A coordinator planning 6 portfolio queries over 20 instruments
    # spread across 3 exchange feeds — same scenario generator and
    # planner stack as `repro simulate`, but behind a wire protocol.
    server, scenario, item_to_source = build_scenario_server(
        query_count=6, item_count=20, source_count=3, trace_length=steps + 2,
        seed=11)
    print(f"coordinator: {len(scenario.queries)} queries over "
          f"{len(item_to_source)} items, {len(set(item_to_source.values()))} "
          "source feeds")

    # One agent per feed; registration programs each with its primary DABs.
    agents = agents_for_scenario(scenario, item_to_source,
                                 timestamp_refreshes=True)
    for agent in agents.values():
        await agent.connect(server.connect_loopback())

    # A dashboard subscribing to every query.
    dashboard = ServiceClient(server.connect_loopback())
    snapshot = await dashboard.subscribe("*")
    print(f"dashboard subscribed; initial snapshot has {len(snapshot)} queries")

    # Feeds replay their price traces through the DAB filters.
    pushed = sum(await asyncio.gather(*[
        agent.replay(scenario.traces, max_steps=steps)
        for agent in agents.values()
    ]))
    await asyncio.sleep(0.1)          # let the last notifies drain

    ticks = sum(agent.stats["ticks"] for agent in agents.values())
    print(f"\nreplayed {ticks} ticks; only {pushed} refreshes crossed the "
          f"wire ({100.0 * pushed / ticks:.1f}%)")
    print(f"dashboard saw {dashboard.notifies_received} notifications "
          f"({dashboard.updates_received} query updates)")

    # The audit: served values vs ground truth at the feeds' live prices.
    truth = {}
    for agent in agents.values():
        truth.update(agent.values)
    served = await dashboard.request_snapshot()
    print(f"\n{'query':>8s} {'served':>14s} {'true':>14s} "
          f"{'error':>10s} {'QAB':>10s}")
    worst = 0.0
    for query in scenario.queries:
        true_value = query.evaluate(truth)
        error = abs(served[query.name] - true_value)
        worst = max(worst, error / query.qab)
        print(f"{query.name:>8s} {served[query.name]:14.4f} "
              f"{true_value:14.4f} {error:10.4f} {query.qab:10.4f}")
    print(f"\nQAB guarantee holds? {worst <= 1.0 + 1e-9} "
          f"(worst error at {100.0 * worst:.1f}% of its bound)")

    await dashboard.close()
    for agent in agents.values():
        await agent.close()
    await server.close()


def main() -> None:
    asyncio.run(run_service())


if __name__ == "__main__":
    main()
