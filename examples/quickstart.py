"""Quickstart — the paper's running example, end to end.

Walks the exact scenario of Figures 2 and 4:

1. the query ``x*y : 5`` at values (2, 2);
2. the refresh-optimal single DABs (b = 1, 1) and why they break the
   moment a refresh arrives;
3. the Dual-DAB plan (b ~ 0.5, plus secondary windows) that stays valid
   across the same movements;
4. a small trace-driven simulation comparing both policies.

Run:  python examples/quickstart.py
"""

from repro import (
    CostModel,
    DualDABPlanner,
    OptimalRefreshPlanner,
    SimulationConfig,
    parse_query,
    run_simulation,
    scaled_scenario,
)
from repro.queries.deviation import assignment_feasible_for_query


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def main() -> None:
    banner("1. A polynomial query with an accuracy bound")
    query = parse_query("x*y : 5", name="fig2")
    values = {"x": 2.0, "y": 2.0}
    print(f"query: {query}")
    print(f"current values: {values}, query value = {query.evaluate(values)}")

    banner("2. Optimal Refresh: minimal refreshes, fragile filters")
    model = CostModel(rates={"x": 1.0, "y": 1.0}, recompute_cost=5.0)
    optimal = OptimalRefreshPlanner(model).plan(query, values)
    print(f"optimal single DABs: { {k: round(v, 3) for k, v in optimal.primary.items()} }")
    print("valid at (2, 2)? ",
          assignment_feasible_for_query(query.terms, values, optimal.primary, query.qab))
    drifted = {"x": 3.0, "y": 2.0}
    print("still valid after x -> 3 (one refresh)? ",
          assignment_feasible_for_query(query.terms, drifted, optimal.primary, query.qab),
          " -> every refresh forces a DAB recomputation")

    banner("3. Dual-DAB: a validity window around the filters")
    dual = DualDABPlanner(model).plan(query, values)
    print(f"primary DABs:   { {k: round(v, 3) for k, v in dual.primary.items()} }")
    print(f"secondary DABs: { {k: round(v, 3) for k, v in dual.secondary.items()} }")
    print("window guarantee holds?", dual.guarantees_qab_over_window(query))
    print("window still contains (3.0, 2.0)?",
          dual.window_contains(drifted),
          " -> no recomputation needed for the same refresh")

    banner("4. Trace-driven comparison (small synthetic world)")
    scenario = scaled_scenario(query_count=5, item_count=20, trace_length=201,
                               source_count=4, seed=1)
    for algorithm in ("optimal_refresh", "dual_dab"):
        config = SimulationConfig(
            queries=scenario.queries, traces=scenario.traces,
            algorithm=algorithm, recompute_cost=5.0,
            source_count=scenario.source_count, seed=1, fidelity_interval=2,
        )
        metrics = run_simulation(config).metrics
        print(f"{algorithm:16s} refreshes={metrics.refreshes:5d} "
              f"recomputations={metrics.recomputations:5d} "
              f"total cost={metrics.total_cost:8.0f} "
              f"fidelity loss={metrics.fidelity_loss_percent:.2f}%")
    print("\nDual-DAB trades a few extra refreshes for far fewer "
          "recomputations — the paper's headline result.")


if __name__ == "__main__":
    main()
