"""Global portfolio monitoring — the paper's Query 1(a) at realistic scale.

A fund tracks portfolios of the form

    sum_k  (shares of company k) * (price of k in exchange j) * (FX rate of j)

over 100 dynamic data items (prices and FX rates) served by 20 sources.
Each portfolio tolerates 1 % imprecision.  The script:

1. builds the paper's 80-20 workload (hot items shared across portfolios),
2. plans DABs with EQI over Dual-DAB and prints the coordinator's
   per-item filter map,
3. simulates three hours of (synthetic, GBM) market data under several
   recomputation costs μ and reports the paper's four metrics.

Run:  python examples/global_portfolio.py
"""

from repro import (
    EQIPlanner,
    CostModel,
    SimulationConfig,
    estimate_rates,
    run_simulation,
    scaled_scenario,
)


def main() -> None:
    # A scaled version of the paper's setup (100 items -> 40, 10000 s -> 600)
    # so the example finishes in seconds; raise these to paper scale freely.
    scenario = scaled_scenario(
        query_count=15, item_count=40, trace_length=601, source_count=8,
        seed=2024, volatility_range=(0.0005, 0.004),
    )
    print(f"portfolios: {len(scenario.queries)}, items: {len(scenario.registry)}, "
          f"sources: {scenario.source_count}")
    sample = scenario.queries[0]
    print(f"\nexample portfolio ({sample.name}):")
    print(f"  {sample}")
    print(f"  QAB = {sample.qab:.2f} "
          f"(1% of initial value {sample.evaluate(scenario.initial_values):.2f})")

    # One-shot planning: what filters does the coordinator install?
    rates = estimate_rates(scenario.traces)
    model = CostModel(rates=rates, recompute_cost=5.0)
    multi = EQIPlanner(model).plan_all(scenario.queries, scenario.initial_values)
    tightest = sorted(multi.coordinator.items(), key=lambda kv: kv[1])[:5]
    print("\ntightest coordinator filters (most contended items):")
    for item, bound in tightest:
        value = scenario.initial_values[item]
        print(f"  {item:6s} b = {bound:8.4f}  ({100 * bound / value:.3f}% of value,"
              f" lambda = {rates[item]:.4f})")

    print("\nsimulating under different recomputation costs:")
    print(f"{'mu':>4s} {'refreshes':>10s} {'recomps':>8s} {'total cost':>11s} "
          f"{'loss %':>7s}")
    for mu in (1.0, 5.0, 10.0):
        config = SimulationConfig(
            queries=scenario.queries, traces=scenario.traces,
            algorithm="dual_dab", recompute_cost=mu,
            source_count=scenario.source_count, seed=2024, fidelity_interval=2,
        )
        m = run_simulation(config).metrics
        print(f"{mu:4.0f} {m.refreshes:10d} {m.recomputations:8d} "
              f"{m.total_cost:11.0f} {m.fidelity_loss_percent:7.2f}")

    print("\nAs mu grows the planner buys larger validity windows with "
          "slightly tighter filters: recomputations fall, refreshes rise.")


if __name__ == "__main__":
    main()
