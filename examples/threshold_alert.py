"""Threshold alerting with adaptive accuracy bounds (extension).

An arbitrage desk doesn't care about the spread's exact value — only about
the moment it turns profitable (crosses a threshold).  The further the
spread is from the threshold, the more imprecision is tolerable; as it
approaches, filters must tighten.  This example drives the
:class:`repro.filters.threshold.ThresholdMonitor` along a synthetic path
that approaches and finally crosses the threshold, showing:

* the adaptive QAB shrinking with the distance-to-threshold,
* hysteresis keeping the number of replans far below the number of moves,
* the alert firing before the coordinator's view could silently cross.

Run:  python examples/threshold_alert.py
"""

import numpy as np

from repro import CostModel, parse_query
from repro.filters.threshold import ThresholdMonitor, ThresholdQuery


def main() -> None:
    spread = parse_query("buy*fx - sell : 1", name="spread")
    threshold = ThresholdQuery(
        polynomial=spread, threshold=100.0, theta=0.4, floor=0.05)
    model = CostModel(rates={"buy": 0.05, "fx": 0.002, "sell": 0.05},
                      recompute_cost=5.0)
    monitor = ThresholdMonitor(threshold, model, replan_ratio=1.6)

    # A path where the spread drifts from ~140 down toward the 100 mark.
    rng = np.random.default_rng(7)
    buy, fx, sell = 48.0, 5.0, 100.0
    print(f"{'step':>4s} {'spread':>9s} {'distance':>9s} {'QAB':>8s} "
          f"{'replanned':>9s} {'alert':>6s}")
    alerted_at = None
    previous_value = spread.evaluate({"buy": buy, "fx": fx, "sell": sell})
    for step in range(60):
        buy += rng.normal(-0.12, 0.05)        # drifting toward the threshold
        fx += rng.normal(0.0, 0.004)
        sell += rng.normal(0.0, 0.05)
        values = {"buy": buy, "fx": fx, "sell": sell}
        before = monitor.replan_count
        monitor.plan(values)
        replanned = monitor.replan_count != before
        value = spread.evaluate(values)
        # Two alert signals: the cached view entered the uncertainty band
        # around the threshold, or an observed reading crossed it outright.
        alert = (monitor.coordinator_alert(values, values)
                 or threshold.crossed(previous_value, value))
        previous_value = value
        if step % 5 == 0 or replanned or alert:
            print(f"{step:4d} {value:9.2f} {threshold.distance(values):9.2f} "
                  f"{monitor.planned_bound:8.3f} {str(replanned):>9s} "
                  f"{str(alert):>6s}")
        if alert and alerted_at is None:
            alerted_at = step
            print(f"\n>>> alert at step {step}: spread {value:.2f} crossed or "
                  f"entered the ±{monitor.planned_bound:.3f} band around 100.0")
            break

    print(f"\nreplans: {monitor.replan_count} over "
          f"{(alerted_at or 60) + 1} movements — hysteresis keeps the "
          "planner quiet while bounds shrink only as the threshold nears.")


if __name__ == "__main__":
    main()
