"""Oil-spill area tracking — the paper's physical-phenomena example.

Sensors report points (x_i, y_i) on the perimeter of an approximately
circular spill; the monitored quantity is the area estimate

    A = (pi/n) * sum_i ((x_i - x0)^2 + (y_i - y0)^2)

The paper expands such squared terms into a polynomial query over the
sensor coordinates (degree 2, squares instead of products).  We model a
drifting, slowly growing spill, pose one area query per disaster-response
team (with different tolerances), and let EQI over Dual-DAB keep every
team's bound with as few sensor transmissions as possible — sensors are
battery-powered, so refreshes are the scarce resource.

For the reproduction we monitor the un-centred second moment
``sum_i (x_i^2 + y_i^2)`` (the centre estimate changes slowly and enters
through the QAB), which keeps the query in the paper's PPQ class.

Run:  python examples/oil_spill_tracking.py
"""

import math

import numpy as np

from repro import (
    CostModel,
    EQIPlanner,
    PolynomialQuery,
    QueryTerm,
    SimulationConfig,
    Trace,
    TraceSet,
    estimate_rates,
    run_simulation,
)

SENSORS = 12
TICKS = 600
CENTRE = (500.0, 400.0)
RADIUS = 80.0


def perimeter_traces(seed: int = 0) -> TraceSet:
    """Noisy sensor tracks on a drifting, growing circle."""
    rng = np.random.default_rng(seed)
    drift = rng.normal(scale=0.02, size=(TICKS + 1, 2)).cumsum(axis=0)
    growth = 1.0 + 0.0002 * np.arange(TICKS + 1)
    traces = []
    for k in range(SENSORS):
        angle = 2 * math.pi * k / SENSORS
        jitter = rng.normal(scale=0.3, size=(TICKS + 1, 2))
        xs = CENTRE[0] + drift[:, 0] + growth * RADIUS * math.cos(angle) + jitter[:, 0]
        ys = CENTRE[1] + drift[:, 1] + growth * RADIUS * math.sin(angle) + jitter[:, 1]
        traces.append(Trace(f"sx{k}", xs))
        traces.append(Trace(f"sy{k}", ys))
    return TraceSet(traces)


def area_query(name: str, tolerance_percent: float,
               initial_values: dict) -> PolynomialQuery:
    """(pi/n) * sum_i (x_i^2 + y_i^2) : B  — the spill's second moment."""
    weight = math.pi / SENSORS
    terms = []
    for k in range(SENSORS):
        terms.append(QueryTerm(weight, {f"sx{k}": 2}))
        terms.append(QueryTerm(weight, {f"sy{k}": 2}))
    provisional = PolynomialQuery(terms, qab=1.0, name=name)
    initial = provisional.evaluate(initial_values)
    return provisional.with_qab(initial * tolerance_percent / 100.0)


def main() -> None:
    traces = perimeter_traces()
    initial = traces.initial_values()

    # Three teams, three tolerances: the on-site team needs tight numbers,
    # the press office is fine with 5 %.
    queries = [
        area_query("onsite_team", 0.5, initial),
        area_query("regional_hq", 2.0, initial),
        area_query("press_office", 5.0, initial),
    ]
    print("spill monitoring queries:")
    for q in queries:
        print(f"  {q.name:14s} tolerance = {q.qab:12.1f} "
              f"({100 * q.qab / q.evaluate(initial):.1f}% of "
              f"{q.evaluate(initial):.0f})")

    rates = estimate_rates(traces)
    model = CostModel(rates=rates, recompute_cost=5.0)
    multi = EQIPlanner(model).plan_all(queries, initial)
    bounds = sorted(multi.coordinator.values())
    print(f"\nsensor filters installed: {len(multi.coordinator)} "
          f"(tightest {bounds[0]:.3f} m, loosest {bounds[-1]:.3f} m)")
    print("the tight on-site tolerance dictates every sensor's filter "
          "(min-merge across queries)")

    config = SimulationConfig(
        queries=queries, traces=traces, algorithm="dual_dab",
        recompute_cost=5.0, source_count=SENSORS, seed=0, fidelity_interval=2,
    )
    m = run_simulation(config).metrics
    print(f"\nover {TICKS} s of drift: {m.refreshes} sensor transmissions, "
          f"{m.recomputations} filter recomputations")
    for name, loss in sorted(m.per_query_loss_percent.items()):
        print(f"  {name:14s} fidelity {100 - loss:6.2f}%")
    naive = SENSORS * 2 * TICKS
    print(f"\nwithout filtering every sensor reports every second: "
          f"{naive} messages; filters cut that by "
          f"{100 * (1 - m.refreshes / naive):.1f}%.")


if __name__ == "__main__":
    main()
