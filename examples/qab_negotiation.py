"""QAB renegotiation via GP sensitivity analysis (extension).

Operators face the question the paper's framework poses but never
automates: *which user's accuracy bound is worth renegotiating?*  The GP
duality answer is free at solve time — the multiplier of a query's QAB
constraint is the percentage message-rate saving per percent of bound
relaxation.

This example plans several portfolio queries, ranks them by that
elasticity, then verifies the top prediction by actually re-planning with
a relaxed bound.

Run:  python examples/qab_negotiation.py
"""

from repro import CostModel, estimate_rates, scaled_scenario
from repro.filters.dual_dab import build_dual_dab_program
from repro.gp.sensitivity import analyze


def main() -> None:
    scenario = scaled_scenario(query_count=6, item_count=30, trace_length=201,
                               seed=99)
    values = scenario.initial_values
    model = CostModel(rates=estimate_rates(scenario.traces), recompute_cost=5.0)

    print("per-query QAB elasticity (message-rate % saved per % of bound "
          "relaxation):\n")
    print(f"{'query':>12s} {'objective':>11s} {'qab multiplier':>15s}")
    elasticities = {}
    solutions = {}
    for query in scenario.queries:
        program = build_dual_dab_program(query, values, model)
        solution = program.solve()
        report = analyze(program, solution)
        nu = report.multipliers.get("qab", 0.0)
        elasticities[query.name] = nu
        solutions[query.name] = (program, solution, report)
        print(f"{query.name:>12s} {solution.objective:11.4f} {nu:15.4f}")

    best = max(elasticities, key=elasticities.get)
    program, solution, report = solutions[best]
    print(f"\nmost renegotiable bound: {best} "
          f"(multiplier {elasticities[best]:.3f})")

    # Verify the first-order prediction against an actual re-solve.
    query = next(q for q in scenario.queries if q.name == best)
    relaxed = query.with_qab(query.qab * 1.25, name=f"{best}_relaxed")
    relaxed_solution = build_dual_dab_program(relaxed, values, model).solve()
    predicted = report.predicted_relative_change("qab", 1.25)
    actual = relaxed_solution.objective / solution.objective - 1.0
    print(f"relax {best}'s QAB by 25%:")
    print(f"  predicted objective change: {100 * predicted:+.2f}%")
    print(f"  actual objective change:    {100 * actual:+.2f}%")
    print("\nGP duality prices every accuracy bound — no sweep needed.")


if __name__ == "__main__":
    main()
