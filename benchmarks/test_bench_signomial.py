"""Extension bench: signomial programming vs the paper's two heuristics.

The paper (Section III-B): no known efficient technique optimises a
general PQ exactly; Half-and-Half and Different Sum are the proposed
heuristics.  The signomial planner (successive monomial condensation of
the exact two-direction Eq.-4 condition, seeded with DS) closes much of
the remaining gap; this bench quantifies it on the arbitrage workload.
"""

import pytest

from repro.dynamics import estimate_rates
from repro.experiments import format_table
from repro.filters import (
    CostModel,
    DifferentSumPlanner,
    HalfAndHalfPlanner,
    SignomialPlanner,
)
from repro.queries.signed import mixed_worst_deviation
from repro.workloads import scaled_scenario


@pytest.fixture(scope="module")
def arbitrage_world(scale):
    scenario = scaled_scenario(8, item_count=scale["item_count"],
                               trace_length=201, query_kind="arbitrage",
                               seed=61)
    model = CostModel(rates=estimate_rates(scenario.traces), recompute_cost=5.0)
    return scenario, model


def test_signomial_vs_heuristics(benchmark, arbitrage_world, save_table):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    scenario, model = arbitrage_world
    values = scenario.initial_values
    rows = []
    improvements = []
    for query in scenario.queries:
        hh = HalfAndHalfPlanner(model).plan(query, values)
        ds = DifferentSumPlanner(model).plan(query, values)
        planner = SignomialPlanner(model)
        sp = planner.plan(query, values)
        deviation = mixed_worst_deviation(query.terms, values,
                                          sp.primary, sp.secondary)
        assert deviation <= query.qab * (1 + 1e-5), "signomial plan is sound"
        assert sp.objective <= ds.objective * (1 + 1e-6), "never worse than DS"
        improvements.append(1.0 - sp.objective / ds.objective)
        rows.append({
            "query": query.name,
            "HH_objective": hh.objective,
            "DS_objective": ds.objective,
            "SP_objective": sp.objective,
            "SP_vs_DS_saving_%": 100.0 * improvements[-1],
            "SP_iterations": planner.last_trace.iterations,
        })
    save_table("signomial_vs_heuristics", format_table(
        rows, "Extension: exact-condition signomial planner vs HH/DS "
              "(estimated message rate objective)"))
    # On a workload of offsetting arbitrage halves the average saving
    # should be tangible.
    mean_saving = sum(improvements) / len(improvements)
    assert mean_saving >= 0.02, f"mean saving {mean_saving:.3f}"


def test_bench_signomial_solve(benchmark, arbitrage_world):
    scenario, model = arbitrage_world
    query = scenario.queries[0]
    values = scenario.initial_values
    planner = SignomialPlanner(model)

    benchmark(planner.plan, query, values)
