"""Sharded-cluster throughput, cross-shard overhead, and failover latency.

Runs the ``repro cluster loadgen`` flow fully in process — real protocol
bytes through the loopback transport, the same
:class:`~repro.service.cluster.router.ClusterCoordinator` the TCP path
uses — and records, in ``benchmarks/results/BENCH_cluster.json``:

* ``points``: per-shard-count loadgen reports (ticks/sec, per-shard
  recompute counts, per-shard tick cost);
* ``cross_shard_overhead``: seconds-per-tick of each sharded run
  relative to the ``shards=1`` baseline — the price of the ``B/k``
  split, partial exchange and recombination;
* ``broker_notify``: notify-latency percentiles with subscribers
  attached through the fan-out broker tier;
* ``failover``: one journal-backed kill/restore cycle — recovery wall
  time, records replayed, and a post-restore full-budget audit;
* ``resharding``: live item migrations under refresh traffic —
  migration wall-time percentiles, heartbeat detection-to-recovery
  percentiles for an auto-failover, and the epoch-fence reject counts.

Every loadgen run must finish with **zero QAB violations** and the
post-failover audit must pass; either failing fails the bench.

``REPRO_BENCH_CLUSTER=smoke`` (the CI job) runs reduced points and
leaves the committed full-scale entries untouched.
"""

from __future__ import annotations

import asyncio
import json
import os
import time as _time

from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.cluster.loadgen import run_cluster_loadgen
from repro.service.cluster.router import build_scenario_cluster
from repro.service.cluster.supervisor import ShardSupervisor

RESULT_NAME = "BENCH_cluster.json"

POINTS = {
    "smoke": dict(sources=4, queries=20, items=24, duration=15,
                  subscribers=2),
    "full": dict(sources=8, queries=100, items=40, duration=30,
                 subscribers=4),
}

MODE = os.environ.get("REPRO_BENCH_CLUSTER", "full")
POINT = POINTS["smoke"] if MODE == "smoke" else POINTS["full"]
SHARD_COUNTS = (1, 2) if MODE == "smoke" else (1, 2, 4)
FAILOVER_STEPS = 12 if MODE == "smoke" else 30


def _load(path):
    return json.loads(path.read_text()) if path.exists() else {}


def _store(path, existing):
    path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")


def _trimmed(report):
    """The report minus the bulky nested stats blobs."""
    keep = ("shards", "active_shards", "cross_shard_queries",
            "mirrored_items", "brokers", "sources", "subscribers",
            "queries", "items", "duration_steps", "elapsed_seconds",
            "ticks", "ticks_per_second", "refreshes_sent",
            "refreshes_filtered", "notifies_received",
            "notify_latency_seconds", "latency_samples", "qab_violations")
    return {key: report[key] for key in keep}


def _per_shard_costs(report):
    """Per-shard recompute/refresh counts plus amortised tick cost."""
    cluster_stats = report["server_stats"]
    if isinstance(cluster_stats.get("cluster"), dict):
        cluster_stats = cluster_stats["cluster"]   # broker runs nest them
    shards = cluster_stats.get("shards", {})
    ticks = max(report["ticks"], 1)
    out = {}
    for sid, stats in sorted(shards.items()):
        out[sid] = {
            "recomputations": stats.get("recomputations", 0),
            "refreshes_received": stats.get("refreshes_received", 0),
            "seconds_per_tick": report["elapsed_seconds"] / ticks,
        }
    return out


def test_bench_cluster_points(results_dir):
    path = results_dir / RESULT_NAME
    existing = _load(path)
    points = existing.get("points", {})
    baseline_spt = None
    overhead = existing.get("cross_shard_overhead", {})
    for shards in SHARD_COUNTS:
        report = run_cluster_loadgen(shards=shards, seed=0, **POINT)
        assert report["qab_violations"] == 0, report["qab_violation_detail"]
        assert report["ticks"] > 0 and report["refreshes_sent"] > 0
        if shards > 1:
            assert report["cross_shard_queries"] > 0
        entry = _trimmed(report)
        entry["per_shard"] = _per_shard_costs(report)
        points[f"shards_{shards}"] = entry
        seconds_per_tick = (report["elapsed_seconds"] /
                            max(report["ticks"], 1))
        if shards == 1:
            baseline_spt = seconds_per_tick
        elif baseline_spt:
            overhead[f"shards_{shards}_vs_1"] = {
                "seconds_per_tick": seconds_per_tick,
                "baseline_seconds_per_tick": baseline_spt,
                "overhead_ratio": seconds_per_tick / baseline_spt,
            }
    existing["points"] = points
    existing["cross_shard_overhead"] = overhead
    _store(path, existing)
    summary = ", ".join(
        f"{name}: {points[name]['ticks_per_second']:.0f} ticks/s"
        for name in sorted(points))
    print(f"\ncluster bench ({MODE}): {summary} -> {path}")


def test_bench_cluster_broker_notify(results_dir):
    """Notify percentiles with the fan-out tier interposed."""
    path = results_dir / RESULT_NAME
    existing = _load(path)
    report = run_cluster_loadgen(shards=2, brokers=2, seed=0, **POINT)
    assert report["qab_violations"] == 0, report["qab_violation_detail"]
    existing["broker_notify"] = {
        "brokers": report["brokers"],
        "subscribers": report["subscribers"],
        "notifies_received": report["notifies_received"],
        "latency_samples": report["latency_samples"],
        "percentiles_seconds": report["notify_latency_seconds"],
        "broker_stats": report["broker_stats"],
    }
    _store(path, existing)
    pcts = report["notify_latency_seconds"]
    rendered = ", ".join(f"{k}={v * 1e3:.2f}ms"
                        for k, v in sorted(pcts.items())) or "no samples"
    print(f"\nbroker notify ({MODE}): {rendered} -> {path}")


def test_bench_cluster_failover(results_dir, tmp_path):
    """One journal-backed kill/restore cycle under live refreshes."""
    path = results_dir / RESULT_NAME
    existing = _load(path)
    cluster, scenario, item_to_source = build_scenario_cluster(
        shards=2, query_count=POINT["queries"], item_count=POINT["items"],
        source_count=POINT["sources"], trace_length=2 * FAILOVER_STEPS + 4,
        seed=0, journal_dir=str(tmp_path / "wal"))
    supervisor = ShardSupervisor(cluster)

    async def body():
        await cluster.start()
        streams = {}
        for source_id in sorted(set(item_to_source.values())):
            owned = sorted(n for n, s in item_to_source.items()
                           if s == source_id)
            stream = cluster.connect_loopback()
            await stream.send(protocol.register_source(source_id, owned))
            await stream.receive()
            streams[source_id] = stream
        seq = {}

        async def push(steps):
            for step in steps:
                for item in sorted(item_to_source):
                    seq[item] = seq.get(item, 0) + 1
                    await streams[item_to_source[item]].send(protocol.refresh(
                        item_to_source[item], item,
                        scenario.traces[item].at(step), seq[item]))
                for _ in range(8):
                    await asyncio.sleep(0)

        await push(range(1, FAILOVER_STEPS + 1))
        victim = cluster.decomposition.active_shards[0]
        started = _time.perf_counter()
        record = await supervisor.kill_and_restore(victim)
        failover_wall = _time.perf_counter() - started
        last = 2 * FAILOVER_STEPS + 1
        await push(range(FAILOVER_STEPS + 1, last))

        client = ServiceClient(cluster.connect_loopback())
        served = await client.subscribe("*")
        truth_inputs = {item: scenario.traces[item].at(last - 1)
                        for item in item_to_source}
        audit_passed = all(
            abs(served[q.name] - q.evaluate(truth_inputs))
            <= q.qab * (1.0 + 1e-9) + 1e-12
            for q in scenario.queries)
        await client.close()
        for stream in streams.values():
            stream.close()
        await cluster.close()
        return record, failover_wall, audit_passed

    record, failover_wall, audit_passed = asyncio.run(body())
    assert audit_passed
    assert record["records_replayed"] > 0
    existing["failover"] = {
        "shards": 2,
        "killed_shard": record["shard"],
        "recovery_seconds": record["recovery_seconds"],
        "failover_seconds": record["failover_seconds"],
        "failover_wall_seconds": failover_wall,
        "records_replayed": record["records_replayed"],
        "snapshot_loaded": record["snapshot_loaded"],
        "audit_passed": audit_passed,
    }
    _store(path, existing)
    print(f"\nfailover ({MODE}): shard {record['shard']} restored in "
          f"{record['recovery_seconds'] * 1e3:.1f}ms "
          f"({record['records_replayed']} records) -> {path}")


def test_bench_cluster_resharding(results_dir, tmp_path):
    """Live migrations + one heartbeat-detected auto-failover."""
    from repro.service.client import latency_percentiles
    from repro.service.cluster.health import ShardHealthMonitor
    from repro.service.cluster.migration import ShardMigrator

    path = results_dir / RESULT_NAME
    existing = _load(path)
    moves_wanted = 2 if MODE == "smoke" else 4
    now = [0.0]
    cluster, scenario, item_to_source = build_scenario_cluster(
        shards=3, query_count=POINT["queries"], item_count=POINT["items"],
        source_count=POINT["sources"], trace_length=4 * FAILOVER_STEPS + 8,
        seed=0, journal_dir=str(tmp_path / "wal"), clock=lambda: now[0])
    supervisor = ShardSupervisor(cluster)
    monitor = ShardHealthMonitor(cluster, supervisor, clock=lambda: now[0],
                                 deadline=2.0, max_misses=2)
    migrator = ShardMigrator(cluster, clock=lambda: now[0])

    async def body():
        await cluster.start()
        streams = {}
        for source_id in sorted(set(item_to_source.values())):
            owned = sorted(n for n, s in item_to_source.items()
                           if s == source_id)
            stream = cluster.connect_loopback()
            await stream.send(protocol.register_source(source_id, owned))
            await stream.receive()
            streams[source_id] = stream
        seq = {}
        step = [0]

        async def push_step():
            step[0] += 1
            now[0] += 1.0
            for item in sorted(item_to_source):
                seq[item] = seq.get(item, 0) + 1
                await streams[item_to_source[item]].send(protocol.refresh(
                    item_to_source[item], item,
                    scenario.traces[item].at(step[0]), seq[item]))
            for _ in range(8):
                await asyncio.sleep(0)

        for _ in range(FAILOVER_STEPS):
            await push_step()

        # Phase 1: migrate items one at a time under live refreshes.
        active = cluster.decomposition.active_shards
        items = sorted(item_to_source)[:moves_wanted]
        moves = {
            item: next(s for s in active
                       if s != cluster.shard_map.shard_of(item))
            for item in items}
        migrator.start(moves)
        while migrator.active:
            await migrator.tick()
            await push_step()

        # Phase 2: crash a shard; only the heartbeat detector notices.
        victim = active[0]
        await supervisor.crash(victim)
        while not monitor.events:
            await push_step()
            await monitor.poll()

        for _ in range(FAILOVER_STEPS):
            await push_step()

        client = ServiceClient(cluster.connect_loopback())
        served = await client.subscribe("*")
        truth_inputs = {item: scenario.traces[item].at(step[0])
                        for item in item_to_source}
        audit_passed = all(
            abs(served[q.name] - q.evaluate(truth_inputs))
            <= q.qab * (1.0 + 1e-9) + 1e-12
            for q in scenario.queries)
        await client.close()
        for stream in streams.values():
            stream.close()
        await cluster.close()
        return audit_passed

    audit_passed = asyncio.run(body())
    assert audit_passed
    completed = [r for r in migrator.records if r["outcome"] == "completed"]
    assert len(completed) == (migrator.stats["moves_requested"]
                              - migrator.stats["moves_noop"])
    assert migrator.stats["moves_abandoned"] == 0
    assert monitor.events, "auto-failover never detected/recovered"
    migration_ms = sorted(r["migration_seconds"] * 1e3 for r in completed)
    detection = sorted(e["detection_to_recovery"] for e in monitor.events)
    existing["resharding"] = {
        "shards": 3,
        "moves_requested": migrator.stats["moves_requested"],
        "moves_completed": migrator.stats["moves_completed"],
        "moves_abandoned": migrator.stats["moves_abandoned"],
        "final_map_epoch": cluster.map_epoch,
        "migration_ms": latency_percentiles(migration_ms,
                                            (50.0, 95.0, 99.0)),
        "detection_to_recovery_steps": latency_percentiles(
            detection, (50.0, 95.0)),
        "auto_failovers": monitor.stats["failovers"],
        "frames_rejected_by_fencing": {
            "router": cluster.stats["fenced_frames_rejected"],
            "shards": sum(
                srv.stats["refreshes_rejected_stale_map_epoch"]
                for srv in cluster.shards.values()),
        },
        "refreshes_frozen": cluster.stats["refreshes_frozen"],
        "audit_passed": audit_passed,
    }
    _store(path, existing)
    pcts = existing["resharding"]["migration_ms"]
    rendered = ", ".join(f"{k}={v:.2f}ms" for k, v in sorted(pcts.items()))
    print(f"\nresharding ({MODE}): {len(completed)} moves ({rendered}), "
          f"detect->recover p95="
          f"{existing['resharding']['detection_to_recovery_steps'].get('p95')}"
          f" steps -> {path}")
