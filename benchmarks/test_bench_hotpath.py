"""Hot-path throughput: vectorized event loop vs the scalar reference.

Runs the same fig-6-scale workload (the paper sweeps query count at fixed
item/trace scale, §7.2) twice — ``vectorize=True`` (the default) and the
``--no-vectorize`` scalar reference — and reports event-loop throughput
(``duration_ticks / loop_seconds``; the setup-time GP solves of
``initial_plan`` are identical in both paths and excluded).  The two runs
must produce identical ``SimulationMetrics``: the vectorized path is a
bitwise-equal reimplementation, not an approximation (DESIGN.md §8).

Results land in ``benchmarks/results/BENCH_hotpath.json``.  The committed
copy is the regression baseline: CI re-runs the reduced ``smoke`` entry
(``REPRO_BENCH_HOTPATH=smoke``) and fails when the measured speedup drops
below half the committed one.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace

import pytest

from repro.simulation import SimulationConfig, run_simulation
from repro.workloads import scaled_scenario

RESULT_NAME = "BENCH_hotpath.json"

#: Repetitions per (point, path); the minimum loop time is reported so a
#: background scheduling hiccup cannot masquerade as a regression.
REPEATS = 3

POINTS = {
    "smoke": dict(query_count=40, item_count=40, trace_length=201),
    "fig6": dict(query_count=300, item_count=40, trace_length=401),
}

#: Points for the recompute-latency section (ISSUE 7).  Per-breach solve
#: latency is independent of the query count (each breach re-solves one
#: query's GP), so the fig6 entry keeps the paper's item/trace scale but
#: trims the query sweep — the full-mode reference would otherwise spend
#: many minutes on thousands of 50 ms multi-start solves.
RECOMPUTE_POINTS = {
    "smoke": dict(query_count=10, item_count=30, trace_length=151),
    "fig6": dict(query_count=40, item_count=40, trace_length=401),
}

#: 10x the default GBM volatility: secondary-DAB windows actually break.
#: At the default 0.002 a whole run produces near-zero recomputes and the
#: latency percentiles would be noise.
BREACH_VOLATILITY = 0.02

#: ``REPRO_BENCH_HOTPATH=smoke`` (the CI job) measures only the reduced
#: point and leaves the committed ``fig6`` entry untouched.
MODE = os.environ.get("REPRO_BENCH_HOTPATH", "full")
NAMES = ("smoke",) if MODE == "smoke" else ("smoke", "fig6")


def _measure(params):
    scenario = scaled_scenario(source_count=8, seed=13, **params)
    base = SimulationConfig(queries=scenario.queries, traces=scenario.traces,
                            recompute_cost=2.0, source_count=8, seed=13,
                            fidelity_interval=1)
    loops = {}
    results = {}
    for vectorize in (True, False):
        config = replace(base, vectorize=vectorize)
        runs = [run_simulation(config) for _ in range(REPEATS)]
        loops[vectorize] = min(run.loop_seconds for run in runs)
        results[vectorize] = runs[0]
    ticks = results[True].metrics.duration_ticks
    vector = results[True]
    return {
        "params": dict(params),
        "ticks": ticks,
        "loop_seconds_vectorized": loops[True],
        "loop_seconds_scalar": loops[False],
        "ticks_per_sec_vectorized": ticks / loops[True],
        "ticks_per_sec_scalar": ticks / loops[False],
        "speedup": loops[False] / loops[True],
        "gp_solves": vector.metrics.gp_solves,
        "solves_per_sec": vector.metrics.gp_solves / vector.wall_seconds,
        "metrics_identical": results[True].metrics == results[False].metrics,
    }


def _measure_recompute(params):
    """Breach-resolution latency, full multi-start solve vs delta patch.

    One run per mode; the percentiles come from the hundreds of
    within-run breach samples, so repetition buys nothing.  The two runs
    must agree on every simulation-visible metric (the delta counters are
    the only permitted difference) — the bench doubles as an end-to-end
    equivalence check at benchmark scale.
    """
    scenario = scaled_scenario(source_count=8, seed=13,
                               volatility=BREACH_VOLATILITY, **params)
    base = SimulationConfig(queries=scenario.queries, traces=scenario.traces,
                            recompute_cost=5.0, source_count=8, seed=13,
                            fidelity_interval=1)
    entry = {"params": dict(params), "volatility": BREACH_VOLATILITY}
    metrics = {}
    for mode in ("full", "delta"):
        result = run_simulation(replace(base, recompute_mode=mode))
        entry[mode] = result.recompute_latency
        metrics[mode] = result.metrics
    entry["breaches"] = metrics["full"].recomputations
    entry["patch_hit_rate"] = entry["delta"]["patch_hit_rate"]
    entry["fallback_rate"] = entry["delta"]["fallback_rate"]
    for q in ("p50", "p95", "p99"):
        entry[f"{q}_speedup"] = round(
            entry["full"][f"{q}_ms"] / entry["delta"][f"{q}_ms"], 2)
    entry["metrics_identical"] = (
        replace(metrics["delta"], delta_patches=0, delta_fallbacks=0)
        == metrics["full"])
    return entry


@pytest.fixture(scope="module")
def hotpath(results_dir):
    """Measured entries plus the committed baseline (read before writing)."""
    path = results_dir / RESULT_NAME
    baseline = json.loads(path.read_text()) if path.exists() else {}
    entries = {name: _measure(POINTS[name]) for name in NAMES}
    recompute = {name: _measure_recompute(RECOMPUTE_POINTS[name])
                 for name in NAMES}
    merged = dict(baseline)
    merged.update(entries)
    merged["recompute_latency"] = dict(
        baseline.get("recompute_latency", {}), **recompute)
    path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    return {"entries": entries, "recompute": recompute, "baseline": baseline}


def test_hotpath_metrics_identical(benchmark, hotpath):
    """The vectorized loop replays the scalar run bit for bit."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name, entry in hotpath["entries"].items():
        assert entry["metrics_identical"], name


def test_hotpath_speedup_floor(benchmark, hotpath):
    """Conservative floors — the committed JSON records the real numbers
    (≥5x on the fig6 point on the reference machine)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert hotpath["entries"]["smoke"]["speedup"] >= 1.5
    if "fig6" in hotpath["entries"]:
        assert hotpath["entries"]["fig6"]["speedup"] >= 3.0


def test_recompute_latency_acceptance(benchmark, hotpath):
    """ISSUE 7 acceptance at the fig6-family point: >=70% of breaches
    resolve via patch and the delta-mode p95 breach latency is >=3x lower
    than the full multi-start solve.  The smoke point keeps a looser p95
    floor: its small breach sample lets a handful of fallbacks (full-solve
    latency) land on the 95th percentile."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name, entry in hotpath["recompute"].items():
        assert entry["metrics_identical"], name
        assert entry["breaches"] > 0, name
        assert entry["patch_hit_rate"] >= 0.7, name
        assert entry["p50_speedup"] >= 3.0, name
    if "fig6" in hotpath["recompute"]:
        assert hotpath["recompute"]["fig6"]["p95_speedup"] >= 3.0


def test_hotpath_no_regression_vs_committed(benchmark, hotpath):
    """CI gate: the measured smoke speedup must stay within 2x of the
    committed baseline."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    committed = hotpath["baseline"].get("smoke")
    if not committed:
        pytest.skip("no committed baseline yet")
    measured = hotpath["entries"]["smoke"]["speedup"]
    assert measured >= committed["speedup"] / 2.0, (
        f"smoke speedup regressed: measured {measured:.2f}x vs committed "
        f"{committed['speedup']:.2f}x"
    )
