"""Section V "Solver" table — DAB solve times.

Paper (CVXOPT on a 2.66 GHz P4): Dual-DAB ~40-70 ms per PPQ; AAO
600-750 ms for 10 PPQs.  Our scipy-based GP must land in the same ballpark
(faster hardware, so we assert generous upper bounds and report exact
numbers).
"""

import pytest

from repro.dynamics import estimate_rates
from repro.experiments import run_solver_timing
from repro.filters import CostModel, DualDABPlanner, OptimalRefreshPlanner
from repro.workloads import scaled_scenario


@pytest.fixture(scope="module")
def world(scale):
    scenario = scaled_scenario(scale["aao_query_count"],
                               item_count=scale["item_count"],
                               trace_length=201)
    rates = estimate_rates(scenario.traces)
    return scenario, CostModel(rates=rates, recompute_cost=5.0)


def test_solver_timing_table(benchmark, world, save_table, scale):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    timing = run_solver_timing(query_count=scale["aao_query_count"],
                               item_count=scale["item_count"],
                               trace_length=201, repetitions=5)
    lines = ["Solver timing (paper: Dual-DAB 40-70 ms/PPQ, AAO 600-750 ms/10 PPQs)"]
    for key, value in timing.items():
        lines.append(f"{key:28s} {value:10.2f} ms")
    save_table("solver_timing", "\n".join(lines))
    assert timing["dual_dab_cold_ms"] < 500.0
    assert timing["dual_dab_warm_ms"] <= timing["dual_dab_cold_ms"] * 1.5


def test_bench_dual_dab_solve(benchmark, world):
    """pytest-benchmark measurement of one warm Dual-DAB solve."""
    scenario, model = world
    planner = DualDABPlanner(model)
    query = scenario.queries[0]
    values = scenario.initial_values
    planner.plan(query, values)  # warm the start

    benchmark(planner.plan, query, values)


def test_bench_optimal_refresh_solve(benchmark, world):
    scenario, model = world
    planner = OptimalRefreshPlanner(model)
    query = scenario.queries[0]
    values = scenario.initial_values
    planner.plan(query, values)

    benchmark(planner.plan, query, values)
