"""Shared benchmark configuration.

Every figure bench runs at a laptop scale by default and writes its
paper-style table to ``benchmarks/results/<name>.txt`` (the files
EXPERIMENTS.md quotes).  Set ``REPRO_BENCH_SCALE=paper`` to run the paper's
full scale (100 items, 10 000 s traces, hundreds of queries) — expect hours.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: "laptop" (default) or "paper".
SCALE = os.environ.get("REPRO_BENCH_SCALE", "laptop")

LAPTOP = {
    "query_counts": (5, 10, 20),
    "mus": (1.0, 5.0, 10.0),
    "item_count": 40,
    "trace_length": 301,
    "aao_query_count": 8,
    "aao_periods": (30, 120),
    "dissemination_counts": (5, 15),
    "coordinator_count": 5,
}

PAPER = {
    "query_counts": (200, 400, 600, 800, 1000),
    "mus": (1.0, 5.0, 10.0),
    "item_count": 100,
    "trace_length": 10_001,
    "aao_query_count": 10,
    "aao_periods": (30, 120, 600, 1500),
    "dissemination_counts": (100, 1000, 10_000),
    "coordinator_count": 10,
}


@pytest.fixture(scope="session")
def scale():
    return PAPER if SCALE == "paper" else LAPTOP


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_table(results_dir):
    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)
    return _save
