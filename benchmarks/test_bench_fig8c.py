"""Figure 8(c) — PPQs on a dissemination network of coordinators.

Paper's finding: the recompute-per-refresh baseline (WSDAB) does ~604 735
recomputations for 10 000 queries on a 10-coordinator network — orders of
magnitude above Dual-DAB — "reaffirming that for large numbers of PQs, an
approach that reduces the number of recomputations is absolutely
essential".
"""

import pytest

from repro.experiments import format_table, run_figure8c, series_to_rows


@pytest.fixture(scope="module")
def fig8c_series(scale):
    return run_figure8c(
        query_counts=scale["dissemination_counts"],
        coordinator_count=scale["coordinator_count"],
        source_count=2,
        item_count=scale["item_count"],
        trace_length=scale["trace_length"],
    )


def test_fig8c_recomputations(benchmark, fig8c_series, save_table, scale):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    save_table("fig8c_recomputations", format_table(
        series_to_rows(fig8c_series, "recomputations", "queries"),
        "Figure 8(c): recomputations on the dissemination network"))
    by_label = {s.label: {p.x: p for p in s.points} for s in fig8c_series}
    for count in scale["dissemination_counts"]:
        dual = by_label["Dual-DAB"][count]
        wsdab = by_label["WSDAB"][count]
        assert wsdab.recomputations >= 10 * max(dual.recomputations, 1), \
            "the order-of-magnitude gap of Fig. 8(c)"


def test_fig8c_gap_grows_with_queries(benchmark, fig8c_series, save_table, scale):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_label = {s.label: {p.x: p for p in s.points} for s in fig8c_series}
    counts = scale["dissemination_counts"]
    wsdab = [by_label["WSDAB"][c].recomputations for c in counts]
    # baseline recomputations scale up with query count
    for low, high in zip(wsdab, wsdab[1:]):
        assert high > low
