"""Query-bank scaling: shared-structure index vs the flat per-item path.

The ISSUE 8 tentpole claim, measured directly at the index layer: with
the number of *distinct monomial structures* fixed (100, the realistic
subscriber regime — many users watch few aggregate shapes), per-tick
refresh cost under the shared index stays roughly flat from 10^3 to 10^6
queries, while the flat path — one
:class:`~repro.queries.compiled.CompiledQueryBank` evaluation over every
affected query, exactly what ``CoordinatorCore._react`` does per refresh
in flat mode — grows linearly with bank size.

Each sweep point runs the same pinned random walk through both paths and
reports two phases:

* **quiet** (±0.2 % ticks): the monitoring steady state where the QAB
  suppresses almost every notification — pure screening cost; the
  sublinearity gate and the headline per-query speedup gate (>=10x at
  10^5, measured ~28x) apply here.
* **active** (±0.5 % ticks): enough drift that members actually cross
  their QABs — the mover sets must be *identical* between paths (the
  at-scale equivalence check); the speedup floor here is a margined
  5x (measured 8-12x across runs: mover evaluation is shared work
  both paths must do, so the ratio is noisier than the quiet phase).

The flat path is measured up to ``FLAT_MAX`` (10^5) only: its per-item
sub-bank construction alone is O(bank) and the 10^6 point would spend
minutes building state the shared index exists to avoid — the skip is
logged in the JSON (``"flat": null``), not silent.

Results land in ``benchmarks/results/BENCH_bankscale.json``; the
committed copy is the regression baseline for the CI smoke gate
(``REPRO_BENCH_BANKSCALE=smoke`` sweeps 10^3 and 3*10^4 only).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.queries.bank_index import SharedStructureBank
from repro.queries.compiled import (
    CompiledPolynomial,
    CompiledQueryBank,
    PowerTable,
)
from repro.workloads import iter_template_bank, paper_registry

RESULT_NAME = "BENCH_bankscale.json"

#: Fixed distinct-structure count across the whole sweep — the paper's
#: 80-20 story at bank scale: cost should follow this, not the bank size.
DISTINCT = 100
ITEM_COUNT = 100
TICKS = 200

#: The flat path is measured up to here; beyond it only the shared index
#: runs (the point of the feature).
FLAT_MAX = 100_000

FULL_POINTS = (1_000, 10_000, 30_000, 100_000, 1_000_000)
SMOKE_POINTS = (1_000, 30_000)

#: Per-tick multiplicative wiggle for the two walk phases.
QUIET_WIGGLE = 0.002
ACTIVE_WIGGLE = 0.005

MODE = os.environ.get("REPRO_BENCH_BANKSCALE", "full")
POINTS = SMOKE_POINTS if MODE == "smoke" else FULL_POINTS


def _walk(walk_items, wiggle, seed):
    rng = np.random.default_rng(seed)
    return [(walk_items[int(rng.integers(len(walk_items)))],
             1.0 + float(rng.uniform(-wiggle, wiggle)))
            for _ in range(TICKS)]


def _run_shared(bank, table, values0, walks, n, qab):
    values = dict(values0)
    pvec = table.vector(values)
    last_user = bank.values_all(pvec, n)
    for item, _ in walks[0]:
        bank.refresh_movers(item, pvec, last_user, qab)   # warm screening
    phases = []
    for walk in walks:
        movers = 0
        started = time.perf_counter()
        for item, factor in walk:
            values[item] *= factor
            table.update(pvec, item, values[item])
            positions, moved = bank.refresh_movers(item, pvec, last_user,
                                                   qab)
            if positions:
                movers += len(positions)
                last_user[np.asarray(positions)] = moved
        phases.append((time.perf_counter() - started, movers))
    return phases


def _run_flat(flat_queries, table, values0, walks, n, qab, bank):
    """The flat coordinator's per-refresh idiom: one pre-built per-item
    sub-bank evaluation plus a vectorized QAB compare."""
    values = dict(values0)
    pvec = table.vector(values)
    last_user = bank.values_all(pvec, n)
    started = time.perf_counter()
    sub_banks = {item: CompiledQueryBank(
        [CompiledPolynomial(q, table) for _, q in entries])
        for item, entries in flat_queries.items()}
    indices = {item: np.array([i for i, _ in entries], dtype=np.intp)
               for item, entries in flat_queries.items()}
    build_seconds = time.perf_counter() - started
    phases = []
    for walk in walks:
        movers = 0
        started = time.perf_counter()
        for item, factor in walk:
            values[item] *= factor
            table.update(pvec, item, values[item])
            sub = sub_banks[item].values_vector(pvec)
            idx = indices[item]
            moved = np.abs(sub - last_user[idx]) > qab[idx]
            if moved.any():
                movers += int(moved.sum())
                last_user[idx[moved]] = sub[moved]
        phases.append((time.perf_counter() - started, movers))
    return build_seconds, phases


def _measure_point(n):
    registry = paper_registry(ITEM_COUNT)
    rng = np.random.default_rng(99)
    values0 = {name: float(rng.uniform(5.0, 50.0))
               for name in registry.names}
    table = PowerTable()
    bank = SharedStructureBank(table)
    qab = np.empty(n)
    # Three hot items and two cold ones get refreshed — the same pinned
    # (item, factor) sequences drive both paths.
    walk_items = registry.names[:3] + registry.names[-2:]
    flat_enabled = n <= FLAT_MAX
    flat_queries = {item: [] for item in walk_items}
    started = time.perf_counter()
    for i, query in enumerate(iter_template_bank(registry, values0, n,
                                                 DISTINCT, seed=7)):
        bank.add_query(query, i)
        qab[i] = query.qab
        if flat_enabled:
            for item in walk_items:
                if item in query.variables:
                    flat_queries[item].append((i, query))
    build_seconds = time.perf_counter() - started
    walks = [_walk(walk_items, QUIET_WIGGLE, seed=5),
             _walk(walk_items, ACTIVE_WIGGLE, seed=6)]
    shared_phases = _run_shared(bank, table, values0, walks, n, qab)
    stats = bank.stats()
    entry = {
        "n": n,
        "distinct_structures": stats["distinct_structures"],
        "dedup_ratio": stats["dedup_ratio"],
        "build_seconds": round(build_seconds, 3),
        "append_p50_us": stats["update_latency_us"]["p50"],
        "nbytes": stats["nbytes"],
        "screen_skip_rate": round(
            stats["screen_skipped"]
            / max(1, stats["screen_skipped"] + stats["screen_evaluated"]),
            4),
        "template_syncs": stats["template_syncs"],
    }
    if flat_enabled:
        flat_build, flat_phases = _run_flat(flat_queries, table, values0,
                                            walks, n, qab, bank)
    else:
        flat_build, flat_phases = None, [None, None]
    for name, shared_phase, flat_phase in zip(("quiet", "active"),
                                              shared_phases, flat_phases):
        shared_seconds, shared_movers = shared_phase
        phase = {
            "shared_us_per_tick": round(shared_seconds / TICKS * 1e6, 2),
            "movers_shared": shared_movers,
        }
        if flat_phase is not None:
            flat_seconds, flat_movers = flat_phase
            phase["flat_us_per_tick"] = round(flat_seconds / TICKS * 1e6, 2)
            phase["movers_flat"] = flat_movers
            phase["speedup"] = round(flat_seconds / shared_seconds, 2)
        entry[name] = phase
    entry["flat"] = ({"build_seconds": round(flat_build, 3)}
                     if flat_enabled else None)
    if not flat_enabled:
        print(f"n={n}: flat path skipped (O(bank) sub-bank build beyond "
              f"FLAT_MAX={FLAT_MAX}); shared-only point")
    return entry


@pytest.fixture(scope="module")
def bankscale(results_dir):
    """Measured entries merged over the committed baseline."""
    path = results_dir / RESULT_NAME
    baseline = json.loads(path.read_text()) if path.exists() else {}
    points = {str(n): _measure_point(n) for n in POINTS}
    merged = dict(baseline)
    merged.setdefault("config", {}).update({
        "distinct_structures": DISTINCT,
        "item_count": ITEM_COUNT,
        "ticks_per_phase": TICKS,
        "flat_max": FLAT_MAX,
        "quiet_wiggle": QUIET_WIGGLE,
        "active_wiggle": ACTIVE_WIGGLE,
    })
    merged.setdefault("points", {}).update(points)
    path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    return {"points": points, "baseline": baseline.get("points", {})}


def test_dedup_holds_across_sweep(benchmark, bankscale):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for key, entry in bankscale["points"].items():
        assert entry["distinct_structures"] == DISTINCT, key
        assert entry["dedup_ratio"] == entry["n"] / DISTINCT, key


def test_mover_sets_identical_where_flat_measured(benchmark, bankscale):
    """The at-scale equivalence check: slack screening changes *when*
    members are evaluated, never *which* members notify."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    checked = 0
    for key, entry in bankscale["points"].items():
        if entry["flat"] is None:
            continue
        for phase in ("quiet", "active"):
            assert (entry[phase]["movers_shared"]
                    == entry[phase]["movers_flat"]), (key, phase)
        checked += entry["active"]["movers_shared"]
    assert checked > 0          # the active walk must actually notify


def test_per_tick_cost_sublinear_in_bank_size(benchmark, bankscale):
    """Quiet-phase log-log slope across the sweep: the flat path is ~1.0
    by construction; the shared index must stay well under 0.5 (measured
    ~0.05 — essentially constant, it follows DISTINCT)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    entries = sorted(bankscale["points"].values(), key=lambda e: e["n"])
    if len(entries) < 2:
        pytest.skip("need at least two sweep points")
    low, high = entries[0], entries[-1]
    slope = (np.log(high["quiet"]["shared_us_per_tick"]
                    / low["quiet"]["shared_us_per_tick"])
             / np.log(high["n"] / low["n"]))
    assert slope < 0.5, f"shared per-tick cost not sublinear: slope {slope:.3f}"


def test_speedup_floors(benchmark, bankscale):
    """ISSUE 8 acceptance: >=10x per-query speedup at 10^5 vs flat —
    carried by the quiet monitoring steady state (measured ~28x); the
    active phase keeps a margined 5x floor (measured 8-12x across
    runs).  The smoke point keeps a conservative floor for CI
    machines."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    points = bankscale["points"]
    if "100000" in points:
        assert points["100000"]["quiet"]["speedup"] >= 10.0
        assert points["100000"]["active"]["speedup"] >= 5.0
    smoke = points.get("30000")
    if smoke is not None:
        assert smoke["active"]["speedup"] >= 3.0


def test_no_regression_vs_committed(benchmark, bankscale):
    """CI gate: the measured smoke speedup must stay within 2x of the
    committed baseline."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    gated = False
    for key, entry in bankscale["points"].items():
        committed = bankscale["baseline"].get(key)
        if not committed or entry["flat"] is None:
            continue
        if committed.get("flat") is None or "speedup" not in committed.get(
                "active", {}):
            continue
        if committed["active"]["speedup"] < 1.0:
            # Tiny banks legitimately favour the flat path; ratios of
            # two ~100us timings are too noisy to gate on.
            continue
        assert entry["active"]["speedup"] >= committed["active"]["speedup"] / 2.0, (
            f"bank-scale speedup regressed at n={key}: measured "
            f"{entry['active']['speedup']:.2f}x vs committed "
            f"{committed['active']['speedup']:.2f}x")
        gated = True
    if not gated:
        pytest.skip("no committed baseline yet")
