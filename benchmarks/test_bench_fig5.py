"""Figure 5 — PPQs: Dual-DAB vs Optimal Refresh across μ.

Paper's findings reproduced here:
(a) Dual-DAB reduces recomputations by >= 9x even at μ = 1;
(b) its refresh count is only modestly higher and grows with μ;
(c) its fidelity loss is no worse than Optimal Refresh's.
"""

import pytest

from repro.experiments import run_figure5, format_table, series_to_rows


@pytest.fixture(scope="module")
def fig5_series(scale):
    return run_figure5(
        query_counts=scale["query_counts"],
        mus=scale["mus"],
        item_count=scale["item_count"],
        trace_length=scale["trace_length"],
    )


def test_fig5_recomputations(benchmark, fig5_series, save_table, scale):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = series_to_rows(fig5_series, "recomputations", "queries")
    save_table("fig5a_recomputations",
               format_table(rows, "Figure 5(a): total recomputations"))
    optimal = {p.x: p.recomputations for p in fig5_series[0].points}
    dual_mu1 = {p.x: p.recomputations for p in fig5_series[1].points}
    for count in scale["query_counts"]:
        assert dual_mu1[count] * 9 <= optimal[count], \
            "paper: >=9x fewer recomputations at mu=1"


def test_fig5_refreshes(benchmark, fig5_series, save_table, scale):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = series_to_rows(fig5_series, "refreshes", "queries")
    save_table("fig5b_refreshes",
               format_table(rows, "Figure 5(b): refreshes at the coordinator"))
    optimal = {p.x: p.refreshes for p in fig5_series[0].points}
    for series in fig5_series[1:]:
        for p in series.points:
            assert optimal[p.x] <= p.refreshes * (1 + 1e-9), \
                "Optimal Refresh is refresh-optimal"
            assert p.refreshes <= 2.5 * optimal[p.x], \
                "the refresh increase stays modest"
    # refreshes grow with mu (more stringent primaries)
    by_mu = {s.label: {p.x: p.refreshes for p in s.points} for s in fig5_series[1:]}
    for count in scale["query_counts"]:
        values = [by_mu[f"Dual-DAB, mu={mu:g}"][count] for mu in scale["mus"]]
        for low, high in zip(values, values[1:]):
            assert high >= low * (1 - 0.02)


def test_fig5_fidelity(benchmark, fig5_series, save_table, scale):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = series_to_rows(fig5_series, "fidelity_loss_percent", "queries")
    save_table("fig5c_fidelity_loss",
               format_table(rows, "Figure 5(c): loss in fidelity (%)"))
    optimal = {p.x: p.fidelity_loss_percent for p in fig5_series[0].points}
    dual = {p.x: p.fidelity_loss_percent for p in fig5_series[1].points}
    for count in scale["query_counts"]:
        assert dual[count] <= optimal[count] + 0.5, \
            "Dual-DAB fidelity is never substantially worse"


def test_fig5_total_cost(benchmark, fig5_series, save_table, scale):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = series_to_rows(fig5_series, "total_cost", "queries")
    save_table("fig5_total_cost",
               format_table(rows, "Figure 5: total cost (refreshes + mu*recomputations)"))
    optimal = {p.x: p.total_cost for p in fig5_series[0].points}
    dual_mu1 = {p.x: p.total_cost for p in fig5_series[1].points}
    for count in scale["query_counts"]:
        assert dual_mu1[count] < optimal[count]
