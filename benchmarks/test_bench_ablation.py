"""Ablations of the design choices DESIGN.md calls out.

1. Dual-DAB collapsed to single DABs (forcing the windows to the primaries)
   — isolates the value of the secondary window.
2. Recompute-envelope model: the paper's per-item max vs our union-bound
   sum (see dual_dab.build_dual_dab_program).
3. Window widening on/off — the second-pass fix for active-set degeneracy.
4. Half-and-Half QAB split ratio (the paper fixes 0.5).
5. Quantised solve cache on/off — simulator wall-time and exactness.
"""

import time

import pytest

from repro.dynamics import estimate_rates
from repro.experiments import format_table
from repro.filters import CostModel, DualDABPlanner, HalfAndHalfPlanner
from repro.simulation import SimulationConfig, run_simulation
from repro.workloads import scaled_scenario


@pytest.fixture(scope="module")
def world(scale):
    scenario = scaled_scenario(6, item_count=24, trace_length=241,
                               source_count=4, seed=31)
    rates = estimate_rates(scenario.traces)
    return scenario, CostModel(rates=rates, recompute_cost=5.0)


def test_ablation_secondary_window(benchmark, world, save_table):
    """Window headroom ablation: measure estimated recompute rate as the
    secondary window shrinks toward the primary."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    scenario, model = world
    query = scenario.queries[0]
    values = scenario.initial_values
    plan = DualDABPlanner(model).plan(query, values)
    rows = []
    for headroom in (1.0, 0.5, 0.25, 0.1, 0.0):
        shrunk = {
            item: plan.primary[item] + headroom * (plan.secondary[item] - plan.primary[item])
            for item in plan.primary
        }
        rate = max(model.rate_of(i) / shrunk[i] for i in shrunk)
        rows.append({"headroom": headroom, "est_recompute_rate": rate})
    save_table("ablation_window_headroom", format_table(
        rows, "Ablation: secondary-window headroom vs estimated recompute rate"))
    rates = [r["est_recompute_rate"] for r in rows]
    assert rates == sorted(rates), "shrinking windows raises the recompute rate"


def test_ablation_recompute_envelope(benchmark, world, save_table):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    scenario, model = world
    query = scenario.queries[0]
    values = scenario.initial_values
    rows = []
    for envelope in ("max", "sum"):
        plan = DualDABPlanner(model, recompute_envelope=envelope).plan(query, values)
        union_rate = sum(model.rate_of(i) / plan.secondary[i] for i in plan.secondary)
        refresh_rate = model.estimated_refresh_rate(plan.primary)
        rows.append({"envelope": envelope, "union_recompute_rate": union_rate,
                     "est_refresh_rate": refresh_rate})
    save_table("ablation_recompute_envelope", format_table(
        rows, "Ablation: recompute-rate envelope (paper 'max' vs union 'sum')"))
    by = {r["envelope"]: r for r in rows}
    assert by["sum"]["union_recompute_rate"] <= \
        by["max"]["union_recompute_rate"] * (1 + 1e-6)


def test_ablation_window_widening(benchmark, world, save_table):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    scenario, model = world
    query = scenario.queries[0]
    values = scenario.initial_values
    rows = []
    for widen in (False, True):
        plan = DualDABPlanner(model, widen_windows=widen,
                              recompute_envelope="max").plan(query, values)
        union_rate = sum(model.rate_of(i) / plan.secondary[i] for i in plan.secondary)
        rows.append({"widen_windows": str(widen), "union_recompute_rate": union_rate})
    save_table("ablation_window_widening", format_table(
        rows, "Ablation: second-pass window widening (under the paper's max envelope)"))
    by = {r["widen_windows"]: r for r in rows}
    assert by["True"]["union_recompute_rate"] <= \
        by["False"]["union_recompute_rate"] * (1 + 1e-6)


def test_ablation_hh_split_ratio(benchmark, save_table):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    scenario = scaled_scenario(4, item_count=24, trace_length=241,
                               query_kind="arbitrage", seed=31)
    model = CostModel(rates=estimate_rates(scenario.traces), recompute_cost=2.0)
    query = next(q for q in scenario.queries if not q.is_positive_coefficient)
    values = scenario.initial_values
    rows = []
    for ratio in (0.2, 0.35, 0.5, 0.65, 0.8):
        plan = HalfAndHalfPlanner(model, split_ratio=ratio).plan(query, values)
        rows.append({"split_ratio": ratio,
                     "est_refresh_rate": model.estimated_refresh_rate(plan.primary)})
    save_table("ablation_hh_split_ratio", format_table(
        rows, "Ablation: Half-and-Half QAB split ratio (paper fixes 0.5)"))
    # the sweep exists to show 0.5 is not always optimal; just sanity-check
    assert all(r["est_refresh_rate"] > 0 for r in rows)


def test_ablation_solve_cache(benchmark, save_table):
    """Cache on/off: identical metrics, different wall time."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    scenario = scaled_scenario(4, item_count=20, trace_length=181,
                               source_count=4, seed=33)
    rows = []
    metrics = {}
    for grid in (0.02, None):
        config = SimulationConfig(
            queries=scenario.queries, traces=scenario.traces,
            algorithm="optimal_refresh", recompute_cost=5.0,
            source_count=4, seed=33, fidelity_interval=4, cache_grid=grid,
        )
        started = time.perf_counter()
        result = run_simulation(config)
        elapsed = time.perf_counter() - started
        label = "on" if grid else "off"
        metrics[label] = result.metrics
        rows.append({"cache": label, "wall_seconds": elapsed,
                     "refreshes": result.metrics.refreshes,
                     "recomputations": result.metrics.recomputations,
                     "loss_percent": result.metrics.fidelity_loss_percent})
    save_table("ablation_solve_cache", format_table(
        rows, "Ablation: quantised solve cache (soundness-preserving)"))
    # The cache preserves soundness (quantised-up solves are feasible at
    # the true values) but plans at slightly inflated values, so counts may
    # drift by a few percent — never an order of magnitude.
    assert abs(metrics["on"].recomputations - metrics["off"].recomputations) <= \
        0.1 * metrics["off"].recomputations + 5
    assert abs(metrics["on"].refreshes - metrics["off"].refreshes) <= \
        0.1 * metrics["off"].refreshes + 5
