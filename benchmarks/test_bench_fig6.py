"""Figure 6 — effect of the data dynamics model on Dual-DAB.

Paper's findings:
(a/b) the random-walk objective (λ²/b²) yields less stringent DABs ⇒ more
      recomputations / fewer refreshes than the monotonic one;
(c)   whatever the ddm — even with no rate information (λ = 1) — the total
      cost stays far below Optimal Refresh ("reliance on the ddm is low").
"""

import pytest

from repro.experiments import (
    format_table,
    run_figure5,
    run_figure6,
    series_to_rows,
)


@pytest.fixture(scope="module")
def fig6_series(scale):
    return run_figure6(
        query_counts=scale["query_counts"],
        mus=scale["mus"][:2],
        item_count=scale["item_count"],
        trace_length=scale["trace_length"],
    )


@pytest.fixture(scope="module")
def optimal_reference(scale):
    series = run_figure5(query_counts=scale["query_counts"][-1:], mus=(1.0,),
                         item_count=scale["item_count"],
                         trace_length=scale["trace_length"])
    return series[0].points[-1]


def test_fig6_recomputations(benchmark, fig6_series, save_table):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = series_to_rows(fig6_series, "recomputations", "queries")
    save_table("fig6a_recomputations",
               format_table(rows, "Figure 6(a): recomputations by ddm"))


def test_fig6_refreshes(benchmark, fig6_series, save_table, scale):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = series_to_rows(fig6_series, "refreshes", "queries")
    save_table("fig6b_refreshes",
               format_table(rows, "Figure 6(b): refreshes by ddm"))
    by_label = {s.label: {p.x: p for p in s.points} for s in fig6_series}
    mono = by_label["Mono, mu=1"]
    walk = by_label["Random, mu=1"]
    for count in scale["query_counts"]:
        # random-walk DABs are less stringent => fewer (or equal) refreshes
        assert walk[count].refreshes <= mono[count].refreshes * 1.1


def test_fig6_total_cost(benchmark, fig6_series, optimal_reference, save_table, scale):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = series_to_rows(fig6_series, "total_cost", "queries")
    save_table("fig6c_total_cost",
               format_table(rows, "Figure 6(c): total cost by ddm"))
    largest = scale["query_counts"][-1]
    for series in fig6_series:
        point = next(p for p in series.points if p.x == largest)
        # the paper's ">= 6x better than Optimal Refresh regardless of ddm";
        # we require a conservative 3x at bench scale.
        assert point.total_cost * 3 <= optimal_reference.total_cost, series.label


def test_fig6_l1_worst_of_dual_variants(benchmark, fig6_series, save_table, scale):
    """λ = 1 discards rate information, costing more than the informed runs
    with the same μ."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_label = {s.label: {p.x: p for p in s.points} for s in fig6_series}
    l1_label = next(label for label in by_label if label.startswith("L1"))
    mu = l1_label.split("mu=")[1]
    informed = by_label[f"Mono, mu={mu}"]
    l1 = by_label[l1_label]
    largest = scale["query_counts"][-1]
    assert informed[largest].total_cost <= l1[largest].total_cost * 1.2
