"""Figure 7 — EQI vs AAO-T for a small query set, sweeping μ.

Paper's findings:
(a) AAO-T's joint primaries are less stringent ⇒ fewer refreshes than EQI;
(b) short periods (AAO-30) do many recomputations;
(c) EQI's total cost is comparable to AAO's, "hence can be used in
    practice".
"""

import pytest

from repro.experiments import format_table, run_figure7, series_to_rows


@pytest.fixture(scope="module")
def fig7_series(scale):
    return run_figure7(
        mus=scale["mus"],
        periods=scale["aao_periods"],
        query_count=scale["aao_query_count"],
        item_count=scale["item_count"],
        trace_length=scale["trace_length"],
    )


def test_fig7_refreshes(benchmark, fig7_series, save_table, scale):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = series_to_rows(fig7_series, "refreshes", "mu")
    save_table("fig7a_refreshes", format_table(rows, "Figure 7(a): refreshes"))
    eqi = {p.x: p.refreshes for p in fig7_series[0].points}
    for series in fig7_series[1:]:
        for p in series.points:
            assert p.refreshes <= eqi[p.x] * 1.2, \
                f"{series.label}: AAO primaries should not be tighter than EQI"


def test_fig7_recomputations(benchmark, fig7_series, save_table, scale):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = series_to_rows(fig7_series, "recomputations", "mu")
    save_table("fig7b_recomputations",
               format_table(rows, "Figure 7(b): recomputations"))
    by_label = {s.label: s for s in fig7_series}
    shortest = f"AAO-{min(scale['aao_periods'])}"
    duration = scale["trace_length"] - 1
    for p in by_label[shortest].points:
        assert p.recomputations >= duration // min(scale["aao_periods"]), \
            "the periodic schedule fires every T ticks"


def test_fig7_total_cost(benchmark, fig7_series, save_table, scale):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = series_to_rows(fig7_series, "total_cost", "mu")
    save_table("fig7c_total_cost", format_table(rows, "Figure 7(c): total cost"))
    eqi = {p.x: p.total_cost for p in fig7_series[0].points}
    by_label = {s.label: s for s in fig7_series}
    shortest = f"AAO-{min(scale['aao_periods'])}"
    longest = f"AAO-{max(scale['aao_periods'])}"
    for p in by_label[shortest].points:
        # frequent AAO recomputation is the expensive configuration at high mu
        if p.x >= 5.0:
            assert p.total_cost >= by_label[longest].points[-1].total_cost * 0.5
    # EQI stays comparable to the best AAO-T everywhere (within 2x)
    best_aao = {
        mu: min(p.total_cost for s in fig7_series[1:] for p in s.points if p.x == mu)
        for mu in scale["mus"]
    }
    for mu in scale["mus"]:
        assert eqi[mu] <= best_aao[mu] * 2.0
