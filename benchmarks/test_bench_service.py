"""Live-service throughput and notify latency over the loopback transport.

Runs the ``repro loadgen`` flow fully in process — real protocol bytes
through the loopback transport, the same :class:`CoordinatorServer` the
TCP path uses — and records ticks/sec, notify-latency percentiles and
refresh/recompute counts in ``benchmarks/results/BENCH_service.json``.

The run must finish with **zero QAB violations**: every served query
value within its accuracy bound of the ground truth evaluated at the
sources' live values — the paper's guarantee, audited end to end over
the wire.  A violation fails the bench.

``REPRO_BENCH_SERVICE=smoke`` (the CI job) runs a reduced point and
leaves the committed full-scale entry untouched.
"""

from __future__ import annotations

import json
import os

from repro.service.journal import Journal
from repro.service.loadgen import run_loadgen

RESULT_NAME = "BENCH_service.json"

POINTS = {
    "smoke": dict(sources=4, queries=20, items=30, duration=20, subscribers=2),
    "full": dict(sources=8, queries=100, items=40, duration=30, subscribers=4),
}

MODE = os.environ.get("REPRO_BENCH_SERVICE", "full")
NAMES = ("smoke",) if MODE == "smoke" else ("smoke", "full")

#: records per fsync-policy point in the journal overhead micro-bench.
JOURNAL_RECORDS = 500 if MODE == "smoke" else 5000


def test_bench_service(results_dir):
    path = results_dir / RESULT_NAME
    existing = json.loads(path.read_text()) if path.exists() else {}
    for name in NAMES:
        report = run_loadgen(seed=0, **POINTS[name])
        assert report["qab_violations"] == 0, report["qab_violation_detail"]
        assert report["ticks"] > 0 and report["refreshes_sent"] > 0
        existing[name] = report
    path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")
    summary = ", ".join(
        f"{name}: {existing[name]['ticks_per_second']:.0f} ticks/s"
        for name in NAMES)
    print(f"\nservice bench ({MODE}): {summary} -> {path}")


def test_bench_journal_write_overhead(results_dir, tmp_path):
    """The durability tax: per-append wall time with fsync on vs off —
    the number a deployment trades against machine-crash durability."""
    path = results_dir / RESULT_NAME
    existing = json.loads(path.read_text()) if path.exists() else {}
    record = {"t": "refresh", "item": "x0", "value": 123.456789, "seq": 1}
    entry = {"records_per_policy": JOURNAL_RECORDS}
    for policy in ("always", "interval", "off"):
        journal = Journal(str(tmp_path / policy), fsync=policy).open()
        for seq in range(JOURNAL_RECORDS):
            journal.append(dict(record, seq=seq + 1))
        stats = journal.stats()
        journal.close()
        assert stats["records"] == JOURNAL_RECORDS
        entry[policy] = {"append_ms": stats["append_ms"],
                         "fsyncs": stats["fsyncs"],
                         "wal_bytes": stats["wal_bytes"]}
    existing["journal_write_overhead"] = entry
    path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")
    rendered = ", ".join(
        f"{policy}: p50={entry[policy]['append_ms']['p50']:.3f}ms"
        for policy in ("always", "interval", "off"))
    print(f"\njournal write overhead ({JOURNAL_RECORDS} records): "
          f"{rendered} -> {path}")
