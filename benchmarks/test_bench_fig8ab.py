"""Figure 8(a)/(b) — general PQs (arbitrage): Half-and-Half vs Different Sum.

Paper's findings: DS does no more recomputations than HH — on independent
polynomials (8a) and dependent ones (8b) alike — with refresh counts within
a few percent of each other.
"""

import pytest

from repro.experiments import format_table, run_figure8ab, series_to_rows


@pytest.fixture(scope="module")
def independent_series(scale):
    return run_figure8ab(
        query_counts=scale["query_counts"],
        mus=scale["mus"][:2],
        dependent=False,
        item_count=scale["item_count"],
        trace_length=scale["trace_length"],
    )


@pytest.fixture(scope="module")
def dependent_series(scale):
    return run_figure8ab(
        query_counts=scale["query_counts"],
        mus=scale["mus"][:2],
        dependent=True,
        item_count=scale["item_count"],
        trace_length=scale["trace_length"],
    )


def _check_ds_vs_hh(series, query_counts, slack=1.3):
    by_label = {s.label: {p.x: p for p in s.points} for s in series}
    mus = sorted({label.split("mu=")[1] for label in by_label})
    for mu in mus:
        hh = by_label[f"HH, mu={mu}"]
        ds = by_label[f"DS, mu={mu}"]
        for count in query_counts:
            # DS's recomputations stay at-or-below HH's (small-count noise
            # tolerated through `slack` and the +2 absolute allowance).
            assert ds[count].recomputations <= hh[count].recomputations * slack + 2
            # refresh counts stay close (paper: < 1% apart; we allow 20%)
            assert abs(ds[count].refreshes - hh[count].refreshes) <= \
                0.2 * hh[count].refreshes


def test_fig8a_independent(benchmark, independent_series, save_table, scale):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    save_table("fig8a_recomputations_independent", format_table(
        series_to_rows(independent_series, "recomputations", "queries"),
        "Figure 8(a): recomputations, independent PQs"))
    save_table("fig8a_refreshes_independent", format_table(
        series_to_rows(independent_series, "refreshes", "queries"),
        "Figure 8(a): refreshes, independent PQs"))
    _check_ds_vs_hh(independent_series, scale["query_counts"])


def test_fig8b_dependent(benchmark, dependent_series, save_table, scale):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    save_table("fig8b_recomputations_dependent", format_table(
        series_to_rows(dependent_series, "recomputations", "queries"),
        "Figure 8(b): recomputations, dependent PQs"))
    _check_ds_vs_hh(dependent_series, scale["query_counts"])
