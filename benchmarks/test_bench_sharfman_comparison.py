"""Section V comparison with Sharfman et al. [5].

Paper's argument: [5] decomposes the QAB into n per-item sufficient
conditions, which is more stringent than the single
necessary-and-sufficient condition of Optimal Refresh — so [5] sends more
refreshes.  We reproduce the table across rate skews.
"""

import pytest

from repro.experiments import format_table, run_sharfman_comparison


def test_sharfman_comparison_table(benchmark, save_table):
    rows = benchmark.pedantic(run_sharfman_comparison,
                              kwargs={"rate_skews": (1.0, 2.0, 4.0, 10.0)},
                              rounds=1, iterations=1)
    save_table("sharfman_comparison", format_table(
        rows, "Comparison with [5]-style per-item conditions (query x*y : 50 "
              "at V = (40, 20))"))
    for row in rows:
        assert row["optimal_refresh_rate"] <= \
            row["baseline_refresh_rate"] * (1 + 1e-9)
    gaps = [r["baseline_refresh_rate"] / r["optimal_refresh_rate"] for r in rows]
    # The gap is driven by the mismatch between the rate ratio and the value
    # ratio (the baseline moves items proportionally to V); it is largest at
    # the strongest skew.
    assert max(gaps) == gaps[-1]
    assert gaps[-1] > 1.1
