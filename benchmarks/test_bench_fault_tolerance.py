"""Fault tolerance — fidelity degradation under loss and source crashes.

Not a paper figure: the paper's evaluation assumes reliable delivery.
This bench measures how the recovery protocol (epochs, leases, heartbeat
gap detection, ack/retry) degrades when that assumption is dropped — the
requirement is *graceful* degradation: fidelity loss grows with the fault
rate but never collapses, and every run completes with honest staleness
accounting.

QABs are tightened to 30% of their generated values (and fidelity sampled
every tick, random-walk dynamics) so the laptop-scale run is actually
sensitive to lost refreshes; at the default QABs the filters are loose
enough that even 20% loss is invisible.
"""

import pytest

from repro.experiments import fault_sweep_rows, format_table
from repro.simulation import (
    CrashWindow,
    FaultConfig,
    SimulationConfig,
    run_simulation,
)
from repro.workloads import scaled_scenario

LOSS_RATES = (0.0, 0.02, 0.05, 0.1, 0.2)
CRASH_DURATIONS = (0.0, 25.0, 50.0, 100.0)
#: The mid-run crash used by the loss sweep (source 1 down for 50 ticks).
CRASH = CrashWindow(1, 60.0, 110.0)


@pytest.fixture(scope="module")
def world():
    scenario = scaled_scenario(query_count=5, item_count=20, trace_length=201,
                               source_count=4, seed=13)
    queries = [q.with_qab(q.qab * 0.3) for q in scenario.queries]
    return scenario, queries


def run_with(world, fault_config):
    scenario, queries = world
    config = SimulationConfig(queries=queries, traces=scenario.traces,
                              recompute_cost=5.0, source_count=4, seed=13,
                              fidelity_interval=1, ddm="random_walk",
                              fault_config=fault_config)
    return run_simulation(config).metrics


@pytest.fixture(scope="module")
def loss_sweep(world):
    runs = []
    for loss in LOSS_RATES:
        faults = FaultConfig(loss_rate=loss, crash_windows=(CRASH,))
        runs.append((f"loss={loss:g}", run_with(world, faults)))
    return runs


@pytest.fixture(scope="module")
def crash_sweep(world):
    runs = []
    for duration in CRASH_DURATIONS:
        windows = (CrashWindow(1, 60.0, 60.0 + duration),) if duration else ()
        faults = FaultConfig(loss_rate=0.05, crash_windows=windows)
        runs.append((f"crash={duration:g}s", run_with(world, faults)))
    return runs


def test_zero_fault_config_equals_fault_free_run(benchmark, world):
    """A disabled FaultConfig must reproduce the fault-free run exactly —
    the bench's baseline row is the true no-fault simulator."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert run_with(world, FaultConfig()) == run_with(world, None)


def test_fidelity_degrades_gracefully_with_loss(benchmark, loss_sweep,
                                                save_table):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = fault_sweep_rows(loss_sweep)
    save_table("fault_loss_sweep",
               format_table(rows, "Fault tolerance: loss-rate sweep "
                                  "(crash of source 1 at t=60..110)"))
    losses = [m.fidelity_loss_percent for _label, m in loss_sweep]
    # Graceful, not collapsing: the heaviest loss rate hurts at least as
    # much as the fault-free-network run (small non-monotone wiggles are
    # expected — dropping a message also removes its downstream traffic).
    assert losses[-1] >= losses[0] - 0.5
    assert max(losses) < 50.0, "fidelity must degrade, not collapse"
    dropped = [m.messages_dropped for _label, m in loss_sweep]
    assert dropped[1] > 0 and dropped[-1] > dropped[1]


def test_recovery_protocol_engages_under_loss(benchmark, loss_sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for label, metrics in loss_sweep:
        assert metrics.recovery_resyncs == 1, label      # one crash, one resync
        assert metrics.heartbeats > 0, label
        assert metrics.staleness_exposure_seconds > 0.0, label
        assert metrics.value_probes > 0, label
        # Honest uncertainty: degraded answers are flagged, and the widened
        # bound covers the truth in the overwhelming majority of samples.
        assert metrics.degraded_samples > 0, label
        assert (metrics.uncertainty_violations
                <= 0.25 * metrics.degraded_samples), label
    lossy = [m for label, m in loss_sweep[1:]]
    assert any(m.refresh_gaps > 0 for m in lossy), \
        "heartbeat sequence gaps must detect lost refreshes"


def test_longer_crashes_cost_more_staleness(benchmark, crash_sweep,
                                            save_table):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = fault_sweep_rows(crash_sweep)
    save_table("fault_crash_sweep",
               format_table(rows, "Fault tolerance: crash-duration sweep "
                                  "(5% loss)"))
    exposures = [m.staleness_exposure_seconds for _label, m in crash_sweep]
    # Staleness exposure grows with how long the source stays dark.
    assert exposures[-1] > exposures[1] > 0.0
    losses = [m.fidelity_loss_percent for _label, m in crash_sweep]
    assert max(losses) < 50.0
