"""Micro-benchmarks of the GP substrate (pytest-benchmark)."""

import pytest

from repro.gp import GeometricProgram, Monomial
from repro.queries import parse_query
from repro.queries.deviation import deviation_posynomial


@pytest.fixture(scope="module")
def wide_program():
    """A 20-variable budget program resembling one QAB constraint."""
    variables = [Monomial.variable(f"t{i}") for i in range(20)]
    objective = variables[0] ** -1
    for v in variables[1:]:
        objective = objective + 1 / v
    gp = GeometricProgram(objective=objective)
    total = variables[0]
    for v in variables[1:]:
        total = total + v
    gp.add_constraint(total, 20.0)
    return gp


def test_bench_gp_solve_20_vars(benchmark, wide_program):
    result = benchmark(wide_program.solve)
    assert result.report.is_optimal


def test_bench_gp_warm_solve(benchmark, wide_program):
    warm = wide_program.solve().values
    result = benchmark(wide_program.solve, initial=warm)
    assert result.report.is_optimal


def test_bench_posynomial_product(benchmark):
    x, y = Monomial.variable("x"), Monomial.variable("y")
    p = (x + y + 1) ** 3

    def multiply():
        return p * p

    q = benchmark(multiply)
    assert len(q) >= len(p)


def test_bench_deviation_expansion(benchmark):
    """Expansion cost for a 14-item portfolio query — runs on every DAB
    recomputation, so it must stay cheap."""
    names = [f"x{i}" for i in range(14)]
    body = " + ".join(f"{i + 1} {a}*{b}" for i, (a, b)
                      in enumerate(zip(names[::2], names[1::2])))
    query = parse_query(body, qab=10.0)
    values = {name: 50.0 + i for i, name in enumerate(names)}

    posy = benchmark(deviation_posynomial, query.terms, values, True)
    assert len(posy) > 0
