"""Metrics — the paper's four evaluation quantities (Section V-A).

1. **Fidelity**: fraction of observation time each query's QAB is met at
   the coordinator; the paper reports *loss* in fidelity, averaged over
   queries.
2. **Number of refreshes**: refresh messages arriving at a coordinator.
3. **Number of recomputations**: DAB recomputations across all queries.
4. **Total cost**: ``refreshes + μ · recomputations``.

The collector also tracks quantities the paper discusses qualitatively:
DAB-change messages to sources, user notifications, and the GP-solve count
(to separate algorithmic recomputations from actual solver work once the
quantised cache is in play).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional


@dataclass
class QueryFidelity:
    """Per-query in-bound time accounting."""

    in_bound_ticks: int = 0
    observed_ticks: int = 0

    def record(self, in_bound: bool) -> None:
        self.observed_ticks += 1
        if in_bound:
            self.in_bound_ticks += 1

    @property
    def fidelity(self) -> float:
        """Fraction of observed time the QAB held (1.0 when never observed)."""
        if self.observed_ticks == 0:
            return 1.0
        return self.in_bound_ticks / self.observed_ticks

    @property
    def loss_percent(self) -> float:
        return 100.0 * (1.0 - self.fidelity)


@dataclass
class SimulationMetrics:
    """Immutable summary returned by a finished run."""

    refreshes: int
    recomputations: int
    recompute_cost: float
    fidelity_loss_percent: float
    per_query_loss_percent: Dict[str, float]
    recomputations_per_query: Dict[str, int]
    dab_change_messages: int
    user_notifications: int
    gp_solves: int
    duration_ticks: int

    @property
    def total_cost(self) -> float:
        """``refreshes + μ · recomputations`` — the paper's cost metric."""
        return self.refreshes + self.recompute_cost * self.recomputations


class MetricsCollector:
    """Mutable counters updated by the simulator components."""

    def __init__(self, recompute_cost: float):
        self.recompute_cost = recompute_cost
        self.refreshes = 0
        self.dab_change_messages = 0
        self.user_notifications = 0
        self.gp_solves = 0
        self._recomputations: Dict[str, int] = {}
        self._fidelity: Dict[str, QueryFidelity] = {}
        self._duration_ticks = 0

    # -- recording ----------------------------------------------------------------

    def record_refresh(self, count: int = 1) -> None:
        self.refreshes += count

    def record_recomputation(self, query_name: str, count: int = 1) -> None:
        self._recomputations[query_name] = self._recomputations.get(query_name, 0) + count

    def record_dab_change_messages(self, count: int) -> None:
        self.dab_change_messages += count

    def record_user_notification(self, count: int = 1) -> None:
        self.user_notifications += count

    def record_gp_solves(self, count: int = 1) -> None:
        self.gp_solves += count

    def record_fidelity(self, query_name: str, in_bound: bool) -> None:
        self._fidelity.setdefault(query_name, QueryFidelity()).record(in_bound)

    def record_tick(self) -> None:
        self._duration_ticks += 1

    # -- summaries ----------------------------------------------------------------

    @property
    def recomputations(self) -> int:
        return sum(self._recomputations.values())

    def fidelity_of(self, query_name: str) -> QueryFidelity:
        return self._fidelity.setdefault(query_name, QueryFidelity())

    def mean_fidelity_loss_percent(self) -> float:
        if not self._fidelity:
            return 0.0
        losses = [f.loss_percent for f in self._fidelity.values()]
        return sum(losses) / len(losses)

    def summary(self) -> SimulationMetrics:
        return SimulationMetrics(
            refreshes=self.refreshes,
            recomputations=self.recomputations,
            recompute_cost=self.recompute_cost,
            fidelity_loss_percent=self.mean_fidelity_loss_percent(),
            per_query_loss_percent={
                name: f.loss_percent for name, f in self._fidelity.items()
            },
            recomputations_per_query=dict(self._recomputations),
            dab_change_messages=self.dab_change_messages,
            user_notifications=self.user_notifications,
            gp_solves=self.gp_solves,
            duration_ticks=self._duration_ticks,
        )
