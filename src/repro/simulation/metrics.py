"""Metrics — the paper's four evaluation quantities (Section V-A).

1. **Fidelity**: fraction of observation time each query's QAB is met at
   the coordinator; the paper reports *loss* in fidelity, averaged over
   queries.
2. **Number of refreshes**: refresh messages arriving at a coordinator.
3. **Number of recomputations**: DAB recomputations across all queries.
4. **Total cost**: ``refreshes + μ · recomputations``.

The collector also tracks quantities the paper discusses qualitatively:
DAB-change messages to sources, user notifications, and the GP-solve count
(to separate algorithmic recomputations from actual solver work once the
quantised cache is in play).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence


@dataclass
class QueryFidelity:
    """Per-query in-bound time accounting."""

    in_bound_ticks: int = 0
    observed_ticks: int = 0

    def record(self, in_bound: bool) -> None:
        self.observed_ticks += 1
        if in_bound:
            self.in_bound_ticks += 1

    @property
    def fidelity(self) -> float:
        """Fraction of observed time the QAB held (1.0 when never observed)."""
        if self.observed_ticks == 0:
            return 1.0
        return self.in_bound_ticks / self.observed_ticks

    @property
    def loss_percent(self) -> float:
        return 100.0 * (1.0 - self.fidelity)


@dataclass
class SimulationMetrics:
    """Immutable summary returned by a finished run."""

    refreshes: int
    recomputations: int
    recompute_cost: float
    fidelity_loss_percent: float
    per_query_loss_percent: Dict[str, float]
    recomputations_per_query: Dict[str, int]
    dab_change_messages: int
    user_notifications: int
    gp_solves: int
    duration_ticks: int
    # -- fault-side counters (all zero on a fault-free run) ---------------------
    messages_dropped: int = 0
    messages_duplicated: int = 0
    duplicate_rejects: int = 0
    misrouted_bounds: int = 0
    dab_retries: int = 0
    dab_retry_exhausted: int = 0
    lease_expiries: int = 0
    refresh_gaps: int = 0
    value_probes: int = 0
    heartbeats: int = 0
    recovery_resyncs: int = 0
    solver_fallbacks: int = 0
    staleness_exposure_seconds: float = 0.0
    degraded_samples: int = 0
    uncertainty_violations: int = 0
    # -- delta-recompute counters (zero in full mode) ----------------------------
    delta_patches: int = 0
    delta_fallbacks: int = 0
    # -- shared bank-index counters (zero in flat mode) ---------------------------
    bank_templates: int = 0
    bank_dedup_ratio: float = 0.0

    @property
    def total_cost(self) -> float:
        """``refreshes + μ · recomputations`` — the paper's cost metric."""
        return self.refreshes + self.recompute_cost * self.recomputations

    def fault_counters(self) -> Dict[str, float]:
        """The fault-side counters as one dict (for tables / CLI output)."""
        return {
            "messages_dropped": self.messages_dropped,
            "messages_duplicated": self.messages_duplicated,
            "duplicate_rejects": self.duplicate_rejects,
            "misrouted_bounds": self.misrouted_bounds,
            "dab_retries": self.dab_retries,
            "dab_retry_exhausted": self.dab_retry_exhausted,
            "lease_expiries": self.lease_expiries,
            "refresh_gaps": self.refresh_gaps,
            "value_probes": self.value_probes,
            "heartbeats": self.heartbeats,
            "recovery_resyncs": self.recovery_resyncs,
            "solver_fallbacks": self.solver_fallbacks,
            "staleness_exposure_seconds": self.staleness_exposure_seconds,
            "degraded_samples": self.degraded_samples,
            "uncertainty_violations": self.uncertainty_violations,
        }


class MetricsCollector:
    """Mutable counters updated by the simulator components."""

    def __init__(self, recompute_cost: float):
        self.recompute_cost = recompute_cost
        self.refreshes = 0
        self.dab_change_messages = 0
        self.user_notifications = 0
        self.gp_solves = 0
        self._recomputations: Dict[str, int] = {}
        self._fidelity: Dict[str, QueryFidelity] = {}
        self._duration_ticks = 0
        # fault-side counters
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.duplicate_rejects = 0
        self.misrouted_bounds = 0
        self.dab_retries = 0
        self.dab_retry_exhausted = 0
        self.lease_expiries = 0
        self.refresh_gaps = 0
        self.value_probes = 0
        self.heartbeats = 0
        self.recovery_resyncs = 0
        self.solver_fallbacks = 0
        self.staleness_exposure_seconds = 0.0
        self.degraded_samples = 0
        self.uncertainty_violations = 0
        # delta-recompute counters
        self.delta_patches = 0
        self.delta_fallbacks = 0
        # shared bank-index counters
        self.bank_templates = 0
        self.bank_dedup_ratio = 0.0

    # -- recording ----------------------------------------------------------------

    def record_refresh(self, count: int = 1) -> None:
        self.refreshes += count

    def record_recomputation(self, query_name: str, count: int = 1) -> None:
        self._recomputations[query_name] = self._recomputations.get(query_name, 0) + count

    def record_dab_change_messages(self, count: int) -> None:
        self.dab_change_messages += count

    def record_user_notification(self, count: int = 1) -> None:
        self.user_notifications += count

    def record_gp_solves(self, count: int = 1) -> None:
        self.gp_solves += count

    def record_fidelity(self, query_name: str, in_bound: bool) -> None:
        self._fidelity.setdefault(query_name, QueryFidelity()).record(in_bound)

    def record_fidelity_batch(self, query_names: Sequence[str],
                              in_bound: Sequence[bool]) -> None:
        """One sample per query, recorded in one pass — equivalent to
        calling :meth:`record_fidelity` pairwise (the vectorized fidelity
        sampler's hot path)."""
        fidelity = self._fidelity
        for name, good in zip(query_names, in_bound):
            tracker = fidelity.get(name)
            if tracker is None:
                tracker = fidelity[name] = QueryFidelity()
            tracker.observed_ticks += 1
            if good:
                tracker.in_bound_ticks += 1

    def record_tick(self) -> None:
        self._duration_ticks += 1

    # -- fault-side recording ------------------------------------------------------

    def record_message_dropped(self, count: int = 1) -> None:
        self.messages_dropped += count

    def record_message_duplicated(self, count: int = 1) -> None:
        self.messages_duplicated += count

    def record_duplicate_reject(self, count: int = 1) -> None:
        self.duplicate_rejects += count

    def record_misrouted_bounds(self, count: int = 1) -> None:
        self.misrouted_bounds += count

    def record_dab_retry(self, count: int = 1) -> None:
        self.dab_retries += count

    def record_dab_retry_exhausted(self, count: int = 1) -> None:
        self.dab_retry_exhausted += count

    def record_lease_expiry(self, count: int = 1) -> None:
        self.lease_expiries += count

    def record_refresh_gap(self, count: int = 1) -> None:
        self.refresh_gaps += count

    def record_value_probe(self, count: int = 1) -> None:
        self.value_probes += count

    def record_heartbeat(self, count: int = 1) -> None:
        self.heartbeats += count

    def record_recovery_resync(self, count: int = 1) -> None:
        self.recovery_resyncs += count

    def record_solver_fallback(self, count: int = 1) -> None:
        self.solver_fallbacks += count

    def record_staleness_exposure(self, seconds: float) -> None:
        self.staleness_exposure_seconds += seconds

    def record_degraded_sample(self, count: int = 1) -> None:
        self.degraded_samples += count

    def record_uncertainty_violation(self, count: int = 1) -> None:
        self.uncertainty_violations += count

    def record_delta_recompute(self, patches: int, fallbacks: int) -> None:
        """Adopt a delta planner's patch/fallback totals (end of run)."""
        self.delta_patches += patches
        self.delta_fallbacks += fallbacks

    def record_bank_index(self, templates: int, dedup_ratio: float) -> None:
        """Adopt the shared bank-index's structure counts (end of run)."""
        self.bank_templates = templates
        self.bank_dedup_ratio = dedup_ratio

    # -- summaries ----------------------------------------------------------------

    @property
    def recomputations(self) -> int:
        return sum(self._recomputations.values())

    def fidelity_of(self, query_name: str) -> QueryFidelity:
        return self._fidelity.setdefault(query_name, QueryFidelity())

    def mean_fidelity_loss_percent(self) -> float:
        if not self._fidelity:
            return 0.0
        losses = [f.loss_percent for f in self._fidelity.values()]
        return sum(losses) / len(losses)

    def summary(self) -> SimulationMetrics:
        return SimulationMetrics(
            refreshes=self.refreshes,
            recomputations=self.recomputations,
            recompute_cost=self.recompute_cost,
            fidelity_loss_percent=self.mean_fidelity_loss_percent(),
            per_query_loss_percent={
                name: f.loss_percent for name, f in self._fidelity.items()
            },
            recomputations_per_query=dict(self._recomputations),
            dab_change_messages=self.dab_change_messages,
            user_notifications=self.user_notifications,
            gp_solves=self.gp_solves,
            duration_ticks=self._duration_ticks,
            messages_dropped=self.messages_dropped,
            messages_duplicated=self.messages_duplicated,
            duplicate_rejects=self.duplicate_rejects,
            misrouted_bounds=self.misrouted_bounds,
            dab_retries=self.dab_retries,
            dab_retry_exhausted=self.dab_retry_exhausted,
            lease_expiries=self.lease_expiries,
            refresh_gaps=self.refresh_gaps,
            value_probes=self.value_probes,
            heartbeats=self.heartbeats,
            recovery_resyncs=self.recovery_resyncs,
            solver_fallbacks=self.solver_fallbacks,
            staleness_exposure_seconds=self.staleness_exposure_seconds,
            degraded_samples=self.degraded_samples,
            uncertainty_violations=self.uncertainty_violations,
            delta_patches=self.delta_patches,
            delta_fallbacks=self.delta_fallbacks,
            bank_templates=self.bank_templates,
            bank_dedup_ratio=self.bank_dedup_ratio,
        )
