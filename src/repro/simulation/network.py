"""Network and computation delay models.

The paper draws node–node communication delays from a heavy-tailed Pareto
distribution with a mean around 100–120 ms (following Raunak et al.,
SIGMETRICS 2000), and models coordinator computation with Pareto delays as
well (mean 4 ms to check which QABs a refresh violates, 1 ms to push a
value to the user).  :class:`ParetoDelayModel` reproduces that; constant
and zero models support controlled tests.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.exceptions import SimulationError

#: Paper defaults, in seconds (ticks are seconds).
DEFAULT_NODE_DELAY_MEAN = 0.110
DEFAULT_CHECK_DELAY_MEAN = 0.004
DEFAULT_PUSH_DELAY_MEAN = 0.001


class DelayModel(abc.ABC):
    """Produces per-message delays in seconds."""

    @abc.abstractmethod
    def sample(self) -> float:
        """Return the next delay (>= 0)."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """The distribution mean, for reporting."""


class ZeroDelayModel(DelayModel):
    """Instant delivery — the zero-delay network of Condition 1, under
    which the QABs must hold at all times (used by correctness tests)."""

    def sample(self) -> float:
        return 0.0

    @property
    def mean(self) -> float:
        return 0.0


class ConstantDelayModel(DelayModel):
    """Every message takes exactly ``delay`` seconds."""

    def __init__(self, delay: float):
        if delay < 0.0:
            raise SimulationError(f"delay must be >= 0, got {delay!r}")
        self._delay = delay

    def sample(self) -> float:
        return self._delay

    @property
    def mean(self) -> float:
        return self._delay


class ParetoDelayModel(DelayModel):
    """Heavy-tailed Pareto delays with a given mean.

    A (Lomax-form) Pareto with shape ``a > 1`` and scale ``m`` has mean
    ``m · a / (a - 1)``; we fix the shape (default 2.5, comfortably
    heavy-tailed with finite variance) and derive the scale from the
    requested mean.
    """

    def __init__(self, mean: float = DEFAULT_NODE_DELAY_MEAN, shape: float = 2.5,
                 rng: Optional[np.random.Generator] = None, seed: int = 0):
        if mean <= 0.0:
            raise SimulationError(f"mean delay must be positive, got {mean!r}")
        if shape <= 1.0:
            raise SimulationError(f"Pareto shape must be > 1 for a finite mean, got {shape!r}")
        self._mean = mean
        self.shape = shape
        self.scale = mean * (shape - 1.0) / shape
        self._rng = rng if rng is not None else np.random.default_rng(seed)

    def sample(self) -> float:
        # numpy's pareto() is the Lomax form: scale * (1 + X) has minimum
        # `scale` and mean scale * a / (a - 1).
        return float(self.scale * (1.0 + self._rng.pareto(self.shape)))

    @property
    def mean(self) -> float:
        return self._mean


def paper_delay_models(seed: int = 0, node_mean: float = DEFAULT_NODE_DELAY_MEAN):
    """The paper's three delay sources as a (network, check, push) triple,
    each with its own substream so their draws never interleave."""
    root = np.random.SeedSequence(entropy=seed)
    streams = [np.random.default_rng(s) for s in root.spawn(3)]
    return (
        ParetoDelayModel(node_mean, rng=streams[0]),
        ParetoDelayModel(DEFAULT_CHECK_DELAY_MEAN, rng=streams[1]),
        ParetoDelayModel(DEFAULT_PUSH_DELAY_MEAN, rng=streams[2]),
    )
