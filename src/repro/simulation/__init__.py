"""Trace-driven discrete-event simulator.

Reproduces the paper's evaluation environment (Section V):

* push sources enforcing primary DABs against their traces
  (:mod:`~repro.simulation.source`),
* a coordinator caching values, serving queries, notifying users and
  recomputing DABs per policy (:mod:`~repro.simulation.coordinator`),
* heavy-tailed Pareto network and computation delays
  (:mod:`~repro.simulation.network`),
* fidelity / refresh / recomputation / total-cost metrics
  (:mod:`~repro.simulation.metrics`),
* a one-call harness (:mod:`~repro.simulation.harness`), and
* the multi-coordinator dissemination network of Figure 8(c)
  (:mod:`~repro.simulation.dissemination`).

Ticks are seconds (the traces' native resolution); message delays are
fractional seconds, so events are kept on a continuous timeline.
"""

from repro.simulation.events import Event, EventKind, EventQueue
from repro.simulation.faults import (
    CrashWindow,
    DelaySpike,
    FaultConfig,
    FaultModel,
    PartitionWindow,
    parse_crash_spec,
    parse_delay_spike_spec,
    parse_partition_spec,
)
from repro.simulation.network import (
    ConstantDelayModel,
    DelayModel,
    ParetoDelayModel,
    ZeroDelayModel,
)
from repro.simulation.metrics import MetricsCollector, QueryFidelity, SimulationMetrics
from repro.simulation.source import SourceNode, assign_items_to_sources
from repro.simulation.coordinator import Coordinator, RecomputeMode
from repro.simulation.harness import (
    AlgorithmName,
    SimulationConfig,
    SimulationResult,
    run_simulation,
)
from repro.simulation.dissemination import DisseminationConfig, run_dissemination

__all__ = [
    "Event",
    "EventKind",
    "EventQueue",
    "CrashWindow",
    "DelaySpike",
    "FaultConfig",
    "FaultModel",
    "PartitionWindow",
    "parse_crash_spec",
    "parse_delay_spike_spec",
    "parse_partition_spec",
    "DelayModel",
    "ParetoDelayModel",
    "ConstantDelayModel",
    "ZeroDelayModel",
    "MetricsCollector",
    "QueryFidelity",
    "SimulationMetrics",
    "SourceNode",
    "assign_items_to_sources",
    "Coordinator",
    "RecomputeMode",
    "AlgorithmName",
    "SimulationConfig",
    "SimulationResult",
    "run_simulation",
    "DisseminationConfig",
    "run_dissemination",
]
