"""The event loop.

The engine owns the queue and the clock.  Integer TICKs drive the sources;
a FIDELITY sample runs half a tick later so that zero-delay messages (the
Condition-1 correctness setting) are reflected in the same tick's sample.
All other events are dispatched to registered handlers.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.exceptions import SimulationError
from repro.simulation.events import Event, EventKind, EventQueue

#: Offset of the fidelity sample within a tick — after same-tick message
#: deliveries with typical (~110 ms) delays, before the next tick.
_FIDELITY_OFFSET = 0.5

#: Sentinel kind for fidelity sampling, internal to the engine.
_FIDELITY = "fidelity"


class SimulationEngine:
    """Processes events in time order for a fixed number of ticks."""

    def __init__(self, duration: int, fidelity_interval: int = 1):
        if duration < 1:
            raise SimulationError(f"duration must be >= 1 tick, got {duration!r}")
        if fidelity_interval < 1:
            raise SimulationError(
                f"fidelity interval must be >= 1 tick, got {fidelity_interval!r}"
            )
        self.duration = duration
        self.fidelity_interval = fidelity_interval
        self.queue = EventQueue()
        self._handlers: Dict[EventKind, Callable[[Event], None]] = {}
        self._tick_handlers: List[Callable[[int], None]] = []
        self._fidelity_handlers: List[Callable[[int], None]] = []

    # -- registration -------------------------------------------------------------

    def on(self, kind: EventKind, handler: Callable[[Event], None]) -> None:
        if kind in self._handlers:
            raise SimulationError(f"handler for {kind} already registered")
        self._handlers[kind] = handler

    def on_tick(self, handler: Callable[[int], None]) -> None:
        self._tick_handlers.append(handler)

    def on_fidelity_sample(self, handler: Callable[[int], None]) -> None:
        self._fidelity_handlers.append(handler)

    # -- the loop -------------------------------------------------------------------

    def run(self) -> None:
        self.queue.push(Event(0.0, EventKind.TICK))
        self.queue.push(Event(_FIDELITY_OFFSET, EventKind.TICK, {"fidelity": True}))
        horizon = float(self.duration)
        while self.queue:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > horizon + _FIDELITY_OFFSET:
                break
            event = self.queue.pop()
            if event.kind is EventKind.TICK:
                if event.payload.get("fidelity"):
                    tick = int(event.time - _FIDELITY_OFFSET)
                    for handler in self._fidelity_handlers:
                        handler(tick)
                    next_sample = event.time + self.fidelity_interval
                    if next_sample <= horizon + _FIDELITY_OFFSET:
                        self.queue.push(Event(next_sample, EventKind.TICK,
                                              {"fidelity": True}))
                else:
                    tick = int(event.time)
                    for handler in self._tick_handlers:
                        handler(tick)
                    if tick + 1 <= self.duration:
                        self.queue.push(Event(float(tick + 1), EventKind.TICK))
                continue
            handler = self._handlers.get(event.kind)
            if handler is None:
                raise SimulationError(f"no handler registered for {event.kind}")
            handler(event)
