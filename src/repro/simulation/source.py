"""Push sources.

Each :class:`SourceNode` serves a set of data items: at every tick it
samples its traces and pushes a refresh to the coordinator whenever a value
has drifted more than the item's *primary* DAB from the last pushed value
(the paper's push model: with value 5 and ``b = 1``, the next refresh fires
when the source value leaves ``[4, 6]``).  New DABs arrive asynchronously
as DAB-change messages and take effect on arrival.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.exceptions import SimulationError
from repro.dynamics.traces import TraceSet
from repro.simulation.events import Event, EventKind, EventQueue
from repro.simulation.metrics import MetricsCollector
from repro.simulation.network import DelayModel


def assign_items_to_sources(items: Sequence[str], source_count: int) -> Dict[str, int]:
    """Round-robin item→source placement (the paper's 100 items over 20
    sources)."""
    if source_count < 1:
        raise SimulationError(f"source count must be >= 1, got {source_count!r}")
    return {name: index % source_count for index, name in enumerate(items)}


class SourceNode:
    """One push source serving a subset of the items."""

    def __init__(
        self,
        source_id: int,
        items: Iterable[str],
        traces: TraceSet,
        queue: EventQueue,
        metrics: MetricsCollector,
        network_delay: DelayModel,
    ):
        self.source_id = source_id
        self.items: List[str] = list(items)
        if not self.items:
            raise SimulationError(f"source {source_id} has no items")
        self.traces = traces
        self.queue = queue
        self.metrics = metrics
        self.network_delay = network_delay
        #: Last value pushed (and acknowledged as the filter centre).
        self.last_pushed: Dict[str, float] = {
            name: traces[name].at(0) for name in self.items
        }
        #: Current primary DABs; items without a bound push every change.
        self.bounds: Dict[str, float] = {}

    # -- control-plane ---------------------------------------------------------

    def set_bounds(self, bounds: Mapping[str, float]) -> None:
        """Apply new primary DABs immediately (bootstrap path)."""
        for name, value in bounds.items():
            if name in self.last_pushed:
                self.bounds[name] = float(value)

    def on_dab_change(self, event: Event) -> None:
        """A DAB-change message arrived from the coordinator."""
        self.set_bounds(event.payload["bounds"])

    # -- data-plane --------------------------------------------------------------

    def on_tick(self, tick: int) -> None:
        """Sample traces; push refreshes for items outside their filter."""
        for name in self.items:
            value = self.traces[name].at(tick)
            bound = self.bounds.get(name)
            if bound is None:
                # No DAB yet: stay silent (the coordinator planned against
                # the same initial values, so nothing is stale).
                continue
            if abs(value - self.last_pushed[name]) > bound:
                self.last_pushed[name] = value
                self.queue.push(Event(
                    time=tick + self.network_delay.sample(),
                    kind=EventKind.REFRESH_ARRIVAL,
                    payload={"item": name, "value": value, "source_id": self.source_id},
                ))

    def __repr__(self) -> str:
        return f"SourceNode(id={self.source_id}, items={len(self.items)})"
