"""Push sources.

Each :class:`SourceNode` serves a set of data items: at every tick it
samples its traces and pushes a refresh to the coordinator whenever a value
has drifted more than the item's *primary* DAB from the last pushed value
(the paper's push model: with value 5 and ``b = 1``, the next refresh fires
when the source value leaves ``[4, 6]``).  New DABs arrive asynchronously
as DAB-change messages.

Because DAB-change messages travel over the same heavy-tailed network as
refreshes, two changes for one item can arrive out of order.  Every bound
therefore carries a per-item monotone *epoch*; a source applies a bound
only if its epoch is newer than the one it holds, so the source always
ends on the newest filter regardless of arrival order (and duplicate or
retransmitted messages are idempotent).

Under an enabled :class:`~repro.simulation.faults.FaultModel` the source
additionally honours crash windows (no pushes, no receipt while down,
followed by a resync push of every owned item on recovery), emits low-rate
heartbeats so the coordinator's staleness leases renew even for quiet
items, answers value probes, and acks DAB-changes so the coordinator can
retransmit lost ones.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.dynamics.traces import TraceSet
from repro.simulation.events import Event, EventKind, EventQueue
from repro.simulation.faults import DISABLED, FaultModel
from repro.simulation.metrics import MetricsCollector
from repro.simulation.network import DelayModel


def assign_items_to_sources(items: Sequence[str], source_count: int) -> Dict[str, int]:
    """Round-robin item→source placement (the paper's 100 items over 20
    sources)."""
    if source_count < 1:
        raise SimulationError(f"source count must be >= 1, got {source_count!r}")
    return {name: index % source_count for index, name in enumerate(items)}


class SourceNode:
    """One push source serving a subset of the items."""

    def __init__(
        self,
        source_id: int,
        items: Iterable[str],
        traces: TraceSet,
        queue: EventQueue,
        metrics: MetricsCollector,
        network_delay: DelayModel,
        fault_model: Optional[FaultModel] = None,
        vectorize: bool = False,
    ):
        self.source_id = source_id
        self.items: List[str] = list(items)
        if not self.items:
            raise SimulationError(f"source {source_id} has no items")
        self.traces = traces
        self.queue = queue
        self.metrics = metrics
        self.network_delay = network_delay
        self.faults = fault_model if fault_model is not None else DISABLED
        #: Last value pushed (and acknowledged as the filter centre).
        self.last_pushed: Dict[str, float] = {
            name: traces[name].at(0) for name in self.items
        }
        #: Current primary DABs; items without a bound push every change.
        self.bounds: Dict[str, float] = {}
        #: Highest DAB epoch applied per item (reorder/duplicate guard).
        self.epochs: Dict[str, int] = {}
        #: Per-item refresh sequence numbers; heartbeats carry them so the
        #: coordinator can detect lost refreshes as sequence gaps.
        self.seq: Dict[str, int] = {name: 0 for name in self.items}
        self._was_crashed = False
        self._uplink = f"src{source_id}->coord"
        # Hot-loop precomputation: the heartbeat period and this source's
        # crash windows are fixed for a run, so resolve them once here
        # instead of per tick.
        config = self.faults.config
        self._heartbeat_every = (
            int(max(1, round(config.heartbeat_interval)))
            if self.faults.enabled and config.heartbeat_interval > 0 else 0
        )
        self._crash_windows = tuple(
            w for w in config.crash_windows if w.source_id == source_id
        ) if self.faults.enabled else ()
        self._vectorize = bool(vectorize)
        if self._vectorize:
            # (ticks × items) slab, row-contiguous so each tick is one view;
            # plus array mirrors of last_pushed/bounds for the vector compare.
            self._slab = np.ascontiguousarray(
                traces.values_matrix(self.items).T)
            self._row = {name: i for i, name in enumerate(self.items)}
            self._last_arr = self._slab[0].copy()
            self._bounds_arr = np.full(len(self.items), np.inf)

    def _crashed(self, time: float) -> bool:
        """``faults.is_crashed(self.source_id, time)`` over the precomputed
        per-source windows (no string/id scan per tick)."""
        for window in self._crash_windows:
            if window.covers(time):
                return True
        return False

    # -- network -----------------------------------------------------------------

    def _send(self, time: float, kind: EventKind, payload: Dict[str, Any]) -> None:
        """Push one message towards the coordinator, subject to faults."""
        faults = self.faults
        if faults.drop(self._uplink, time):
            self.metrics.record_message_dropped()
            return
        delay = self.network_delay.sample() * faults.delay_factor(time)
        self.queue.push(Event(time=time + delay, kind=kind, payload=payload))
        if faults.duplicate(self._uplink, time):
            self.metrics.record_message_duplicated()
            self.queue.push(Event(time=time + self.network_delay.sample(),
                                  kind=kind, payload=dict(payload)))

    # -- control-plane ---------------------------------------------------------

    def set_bounds(self, bounds: Mapping[str, float],
                   epochs: Optional[Mapping[str, int]] = None) -> None:
        """Apply new primary DABs; reject unknown items and stale epochs.

        Without ``epochs`` (the bootstrap path) bounds apply
        unconditionally.  With ``epochs`` an item's bound is applied only
        when its epoch is strictly newer than the last applied one —
        stale-reorder and duplicate deliveries become counted no-ops.
        """
        for name, value in bounds.items():
            if name not in self.last_pushed:
                # A misrouted payload: surface it instead of silently
                # ignoring it — the coordinator's routing is wrong.
                self.metrics.record_misrouted_bounds()
                continue
            if epochs is not None:
                epoch = epochs.get(name)
                if epoch is not None and epoch <= self.epochs.get(name, -1):
                    self.metrics.record_duplicate_reject()
                    continue
                if epoch is not None:
                    self.epochs[name] = int(epoch)
            self.bounds[name] = float(value)
            if self._vectorize:
                self._bounds_arr[self._row[name]] = self.bounds[name]

    def on_dab_change(self, event: Event) -> None:
        """A DAB-change message arrived from the coordinator."""
        if self._crashed(event.time):
            # Delivered to a dead node: lost.  The coordinator's ack/retry
            # machinery redelivers after recovery.
            self.metrics.record_message_dropped()
            return
        self.set_bounds(event.payload["bounds"], event.payload.get("epochs"))
        msg_id = event.payload.get("msg_id")
        if msg_id is not None and self.faults.enabled:
            # Ack even a stale/duplicate message — delivery is what the
            # coordinator retries on; application is idempotent anyway.
            self._send(event.time, EventKind.DAB_ACK_ARRIVAL,
                       {"source_id": self.source_id, "msg_id": msg_id})

    def on_value_probe(self, event: Event) -> None:
        """The coordinator re-requested an item's value (lease expiry)."""
        if self._crashed(event.time):
            self.metrics.record_message_dropped()
            return
        name = event.payload["item"]
        if name not in self.last_pushed:
            self.metrics.record_misrouted_bounds()
            return
        tick = min(int(event.time), self.traces.duration)
        value = self.traces[name].at(tick)
        self.last_pushed[name] = value
        if self._vectorize:
            self._last_arr[self._row[name]] = value
        self.seq[name] += 1
        self._send(event.time, EventKind.REFRESH_ARRIVAL,
                   {"item": name, "value": value, "source_id": self.source_id,
                    "seq": self.seq[name], "probe_reply": True})

    # -- data-plane --------------------------------------------------------------

    def on_tick(self, tick: int) -> None:
        """Sample traces; push refreshes for items outside their filter."""
        if self.faults.enabled:
            if self._crashed(float(tick)):
                self._was_crashed = True
                return
            if self._was_crashed:
                self._was_crashed = False
                self._resync(tick)
                return
            if (self._heartbeat_every > 0 and tick > 0
                    and tick % self._heartbeat_every == 0):
                self.metrics.record_heartbeat()
                # The beacon carries per-item refresh sequence numbers so
                # the coordinator can tell "quiet because in-bound" apart
                # from "quiet because my refreshes were lost".
                self._send(float(tick), EventKind.HEARTBEAT_ARRIVAL,
                           {"source_id": self.source_id, "seqs": dict(self.seq)})
        if self._vectorize:
            self._on_tick_vectorized(tick)
            return
        for name in self.items:
            value = self.traces[name].at(tick)
            bound = self.bounds.get(name)
            if bound is None:
                # No DAB yet: stay silent (the coordinator planned against
                # the same initial values, so nothing is stale).
                continue
            if abs(value - self.last_pushed[name]) > bound:
                self.last_pushed[name] = value
                self.seq[name] += 1
                self._send(float(tick), EventKind.REFRESH_ARRIVAL,
                           {"item": name, "value": value,
                            "source_id": self.source_id, "seq": self.seq[name]})

    def _on_tick_vectorized(self, tick: int) -> None:
        """One vector compare ``|value - cached| > dab`` over the trace slab.

        Items without a DAB hold ``inf`` in the bounds array, so the strict
        ``>`` never fires for them (finite traces), exactly like the scalar
        ``bound is None`` skip.  ``flatnonzero`` yields ascending indices, so
        pushes happen in ``self.items`` order — the same network-RNG draw
        order as the scalar loop.
        """
        values = self._slab[tick] if tick < self._slab.shape[0] else self._slab[-1]
        crossed = np.flatnonzero(np.abs(values - self._last_arr) > self._bounds_arr)
        if crossed.size == 0:
            return
        for index in crossed.tolist():
            name = self.items[index]
            value = float(values[index])
            self._last_arr[index] = value
            self.last_pushed[name] = value
            self.seq[name] += 1
            self._send(float(tick), EventKind.REFRESH_ARRIVAL,
                       {"item": name, "value": value,
                        "source_id": self.source_id, "seq": self.seq[name]})

    def _resync(self, tick: int) -> None:
        """First tick back after a crash: push every owned item's current
        value so the coordinator's cache stops serving crash-stale data."""
        self.metrics.record_recovery_resync()
        for name in self.items:
            value = self.traces[name].at(tick)
            self.last_pushed[name] = value
            if self._vectorize:
                self._last_arr[self._row[name]] = value
            self.seq[name] += 1
            self._send(float(tick), EventKind.REFRESH_ARRIVAL,
                       {"item": name, "value": value, "source_id": self.source_id,
                        "seq": self.seq[name], "resync": True})

    def __repr__(self) -> str:
        return f"SourceNode(id={self.source_id}, items={len(self.items)})"
