"""One-call simulation harness.

:func:`run_simulation` wires traces, sources, a coordinator and the metrics
collector into a run of the paper's evaluation loop for a chosen algorithm:

>>> config = SimulationConfig(queries=queries, traces=traces,
...                           algorithm=AlgorithmName.DUAL_DAB,
...                           recompute_cost=5.0, duration=1000)
>>> result = run_simulation(config)
>>> result.metrics.recomputations, result.metrics.refreshes

Every experiment in :mod:`repro.experiments.figures` goes through this
entry point.
"""

from __future__ import annotations

import enum
import time as _time

import numpy as np
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.exceptions import SimulationError
from repro.dynamics.estimation import RateEstimator, SampledRateEstimator, UnitRateEstimator
from repro.dynamics.models import DataDynamicsModel
from repro.dynamics.traces import TraceSet
from repro.filters.baselines import SharfmanStyleBaseline, UniformAllocationBaseline
from repro.filters.caching import QuantisingCachePlanner
from repro.filters.cost_model import CostModel
from repro.filters.delta_recompute import (
    RECOMPUTE_MODES,
    DeltaRecomputePlanner,
    find_delta_planner,
)
from repro.filters.dual_dab import DualDABPlanner
from repro.filters.heuristics import DifferentSumPlanner, HalfAndHalfPlanner
from repro.filters.multi_query import AAOPlanner
from repro.filters.optimal_refresh import OptimalRefreshPlanner
from repro.queries.bank_index import BANK_INDEX_MODES
from repro.queries.polynomial import PolynomialQuery
from repro.simulation.coordinator import Coordinator, RecomputeMode
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import EventKind
from repro.simulation.faults import FaultConfig, FaultModel
from repro.simulation.metrics import MetricsCollector, SimulationMetrics
from repro.simulation.network import (
    DelayModel,
    ParetoDelayModel,
    ZeroDelayModel,
    DEFAULT_NODE_DELAY_MEAN,
)
from repro.simulation.source import SourceNode, assign_items_to_sources

import numpy as np


class AlgorithmName(enum.Enum):
    """The DAB-assignment algorithms the evaluation compares."""

    OPTIMAL_REFRESH = "optimal_refresh"
    DUAL_DAB = "dual_dab"
    HALF_AND_HALF = "half_and_half"
    DIFFERENT_SUM = "different_sum"
    SHARFMAN_BASELINE = "sharfman_baseline"
    UNIFORM_BASELINE = "uniform_baseline"
    AAO_T = "aao_t"
    LAQ = "laq"
    SIGNOMIAL = "signomial"

    @classmethod
    def from_string(cls, value: "AlgorithmName | str") -> "AlgorithmName":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            names = ", ".join(a.value for a in cls)
            raise SimulationError(f"unknown algorithm {value!r}; expected one of {names}")


@dataclass
class SimulationConfig:
    """Everything one run needs.

    Paper-default knobs: 20 sources, ~110 ms Pareto node delays, the
    1-minute sampled λ estimator, monotonic ddm.  ``cache_grid`` controls
    the (sound) quantised solve cache — set ``None`` to solve every
    recomputation exactly.
    """

    queries: Sequence[PolynomialQuery]
    traces: TraceSet
    algorithm: Union[AlgorithmName, str] = AlgorithmName.DUAL_DAB
    ddm: Union[DataDynamicsModel, str] = DataDynamicsModel.MONOTONIC
    recompute_cost: float = 1.0
    duration: Optional[int] = None
    source_count: int = 20
    seed: int = 0
    fidelity_interval: int = 1
    node_delay_mean: float = DEFAULT_NODE_DELAY_MEAN
    #: Coordinator compute costs (Pareto means, seconds): per-refresh QAB
    #: check (paper: 4 ms) and per-recomputation solve time.  The paper
    #: measured 40-70 ms per Dual-DAB solve on a 2008-era P4; our solver
    #: needs ~10 ms, which is the default.  Raising this reproduces the
    #: paper's congestion regime sooner.
    check_delay_mean: float = 0.004
    recompute_delay_mean: float = 0.01
    zero_delay: bool = False
    rate_estimator: Optional[RateEstimator] = None
    cache_grid: Optional[float] = 0.02
    aao_period: Optional[int] = None
    split_ratio: float = 0.5
    #: When set, the coordinator tracks λ online (EWMA over refresh
    #: arrivals) and recomputations plan with the live estimates.  Note:
    #: the quantised solve cache keys on values only, so cached plans may
    #: lag a rate change (still sound — λ never enters the constraints);
    #: set ``cache_grid=None`` for strict adaptivity.
    adaptive_rate_alpha: Optional[float] = None
    #: When true, the planning objective weights each item's λ by its
    #: co-movement with term partners (see repro.dynamics.correlation).
    correlation_aware: bool = False
    #: Fault injection (message loss, source crashes, partitions, delay
    #: spikes, duplicates) plus the recovery-protocol knobs.  ``None`` or a
    #: default ``FaultConfig()`` leaves the fault machinery provably off —
    #: the run is bit-identical to the fault-free simulator.
    fault_config: Optional[FaultConfig] = None
    #: Vectorized hot paths: slab-scanned source ticks, compiled query
    #: evaluators at the coordinator and fidelity sampler, and compiled-GP
    #: structure reuse in the planners.  Every vectorized path is bitwise
    #: identical to the scalar reference (``vectorize=False``, the CLI's
    #: ``--no-vectorize``) — metrics never differ, only wall time.
    vectorize: bool = True
    #: ``"full"`` answers every window breach with the multi-start solve
    #: (the pre-delta behaviour, bit-identical); ``"delta"`` tries a
    #: warm-started Newton-KKT coefficient patch first and falls back to
    #: the full solve when the patch's KKT residual or the QAB invariant
    #: rejects it (see :mod:`repro.filters.delta_recompute`).
    recompute_mode: str = "full"
    #: ``"flat"`` keeps the per-query compiled bank (bit-identical to the
    #: pre-index path); ``"shared"`` routes evaluation, notification
    #: screening and window checks through the structure-deduplicating
    #: :class:`~repro.queries.bank_index.SharedStructureBank` so per-tick
    #: cost scales with *distinct structures*, not bank size.
    bank_index: str = "flat"

    def __post_init__(self) -> None:
        self.algorithm = AlgorithmName.from_string(self.algorithm)
        self.ddm = DataDynamicsModel.from_string(self.ddm)
        if not self.queries:
            raise SimulationError("at least one query is required")
        if self.duration is None:
            self.duration = self.traces.duration
        if self.duration < 1 or self.duration > self.traces.duration:
            raise SimulationError(
                f"duration must be in [1, {self.traces.duration}], got {self.duration!r}"
            )
        if self.algorithm is AlgorithmName.AAO_T and (self.aao_period or 0) < 1:
            raise SimulationError("AAO_T requires aao_period >= 1")
        if self.recompute_mode not in RECOMPUTE_MODES:
            raise SimulationError(
                f"recompute_mode must be one of {RECOMPUTE_MODES}, "
                f"got {self.recompute_mode!r}")
        if self.recompute_mode == "delta":
            if self.algorithm not in _DELTA_ALGORITHMS:
                supported = ", ".join(a.value for a in _DELTA_ALGORITHMS)
                raise SimulationError(
                    f"recompute_mode='delta' supports only the dual-DAB "
                    f"planner stacks ({supported}); got "
                    f"{self.algorithm.value!r}")
            if not self.vectorize:
                raise SimulationError(
                    "recompute_mode='delta' needs the compiled-GP templates; "
                    "it cannot be combined with vectorize=False")
        if self.bank_index not in BANK_INDEX_MODES:
            raise SimulationError(
                f"bank_index must be one of {BANK_INDEX_MODES}, "
                f"got {self.bank_index!r}")
        if self.bank_index == "shared" and not self.vectorize:
            raise SimulationError(
                "bank_index='shared' needs the compiled query bank; "
                "it cannot be combined with vectorize=False")
        missing = [name for q in self.queries for name in q.variables
                   if name not in self.traces]
        if missing:
            raise SimulationError(f"no traces for items: {sorted(set(missing))[:5]} ...")

    @property
    def used_items(self) -> List[str]:
        return sorted({name for q in self.queries for name in q.variables})


@dataclass
class SimulationResult:
    """Metrics plus run provenance."""

    metrics: SimulationMetrics
    algorithm: AlgorithmName
    wall_seconds: float
    cache_hits: int = 0
    cache_misses: int = 0
    #: Wall time of the event loop alone (excludes workload construction,
    #: rate estimation and the time-zero initial plan) — the hot path the
    #: ticks/sec benchmarks measure.
    loop_seconds: float = 0.0
    #: The run's ``--recompute-mode`` and, when a delta-capable stack was
    #: wired, the breach-resolution latency summary (percentiles in ms,
    #: patch-hit/fallback rates) from the delta planner's stats.
    recompute_mode: str = "full"
    recompute_latency: Optional[Dict[str, float]] = None
    #: The run's ``--bank-index`` mode and, in ``shared`` mode, the
    #: structure-index stats plane (distinct structures, dedup ratio,
    #: screening counters, update-latency percentiles).
    bank_index: str = "flat"
    bank_stats: Optional[Dict[str, object]] = None


#: Algorithms whose planner stack routes PPQ solves through the dual-DAB
#: planner — the stacks the delta-recompute wrapper can patch.
_DELTA_ALGORITHMS = (
    AlgorithmName.DUAL_DAB,
    AlgorithmName.DIFFERENT_SUM,
    AlgorithmName.HALF_AND_HALF,
)


_SINGLE_DAB_MODES = {
    AlgorithmName.OPTIMAL_REFRESH: RecomputeMode.EVERY_REFRESH,
    AlgorithmName.SHARFMAN_BASELINE: RecomputeMode.EVERY_REFRESH,
    AlgorithmName.UNIFORM_BASELINE: RecomputeMode.EVERY_REFRESH,
    AlgorithmName.DUAL_DAB: RecomputeMode.ON_WINDOW_VIOLATION,
    AlgorithmName.HALF_AND_HALF: RecomputeMode.ON_WINDOW_VIOLATION,
    AlgorithmName.DIFFERENT_SUM: RecomputeMode.ON_WINDOW_VIOLATION,
    AlgorithmName.AAO_T: RecomputeMode.AAO_PERIODIC,
    AlgorithmName.LAQ: RecomputeMode.ON_WINDOW_VIOLATION,
    AlgorithmName.SIGNOMIAL: RecomputeMode.ON_WINDOW_VIOLATION,
}


def _dual_dab_stack(config: SimulationConfig,
                    cost_model: CostModel) -> DeltaRecomputePlanner:
    """The dual-DAB core wrapped by the delta-recompute layer.

    The wrapper goes in for *both* modes: in ``full`` mode it is a strict
    pass-through (bit-identical plans) that only times the solves, so the
    recompute-latency benchmark can compare modes on equal footing.
    """
    return DeltaRecomputePlanner(
        DualDABPlanner(cost_model, use_compiled=config.vectorize),
        mode=config.recompute_mode,
        share_templates=config.bank_index == "shared",
    )


def build_planner(config: SimulationConfig, cost_model: CostModel):
    """The per-query planner stack for an algorithm.

    Every stack is topped with a Different-Sum (or Half-and-Half) wrapper so
    general polynomials are handled transparently; for PPQ workloads the
    wrapper is a pass-through.
    """
    algorithm = config.algorithm
    use_compiled = config.vectorize
    if algorithm is AlgorithmName.OPTIMAL_REFRESH:
        return DifferentSumPlanner(
            cost_model, OptimalRefreshPlanner(cost_model, use_compiled=use_compiled))
    if algorithm in (AlgorithmName.DUAL_DAB, AlgorithmName.DIFFERENT_SUM,
                     AlgorithmName.AAO_T):
        return DifferentSumPlanner(
            cost_model, _dual_dab_stack(config, cost_model))
    if algorithm is AlgorithmName.HALF_AND_HALF:
        return HalfAndHalfPlanner(
            cost_model, _dual_dab_stack(config, cost_model),
            split_ratio=config.split_ratio)
    if algorithm is AlgorithmName.SHARFMAN_BASELINE:
        return SharfmanStyleBaseline(cost_model)
    if algorithm is AlgorithmName.UNIFORM_BASELINE:
        return UniformAllocationBaseline(cost_model)
    if algorithm is AlgorithmName.SIGNOMIAL:
        from repro.filters.signomial import SignomialPlanner

        return SignomialPlanner(cost_model)
    if algorithm is AlgorithmName.LAQ:
        from repro.filters.laq import LAQPlanner

        for query in config.queries:
            if not query.is_linear:
                raise SimulationError(
                    f"algorithm 'laq' handles degree-1 queries only; "
                    f"{query.name} has degree {query.degree}"
                )
        return LAQPlanner(cost_model)
    raise SimulationError(f"no planner stack for {algorithm!r}")


def run_simulation(config: SimulationConfig) -> SimulationResult:
    """Run one full trace-driven simulation and return its metrics."""
    started = _time.perf_counter()
    items = config.used_items

    estimator = config.rate_estimator or SampledRateEstimator()
    rates = estimator.estimate_all(config.traces, items)
    if config.correlation_aware:
        from repro.dynamics.correlation import (
            correlation_adjusted_rates,
            estimate_correlations,
        )

        correlations = estimate_correlations(config.traces, items=items)
        rates = correlation_adjusted_rates(rates, correlations, config.queries)
    cost_model = CostModel(ddm=config.ddm, rates=rates,
                           recompute_cost=config.recompute_cost)

    rate_tracker = None
    if config.adaptive_rate_alpha is not None:
        from repro.dynamics.correlation import OnlineRateTracker

        rate_tracker = OnlineRateTracker(cost_model.rates,
                                         alpha=config.adaptive_rate_alpha)
        # Share the dict: tracker updates flow straight into the planners.
        rate_tracker.rates = cost_model.rates

    planner = build_planner(config, cost_model)
    cache: Optional[QuantisingCachePlanner] = None
    if config.cache_grid is not None:
        cache = QuantisingCachePlanner(planner, grid=config.cache_grid,
                                       bank_index_mode=config.bank_index)
        planner = cache

    metrics = MetricsCollector(recompute_cost=config.recompute_cost)
    engine = SimulationEngine(config.duration, config.fidelity_interval)

    if config.zero_delay:
        network: DelayModel = ZeroDelayModel()
        check_delay: DelayModel = ZeroDelayModel()
        recompute_delay: DelayModel = ZeroDelayModel()
    else:
        root_seed = np.random.SeedSequence(entropy=config.seed)
        streams = [np.random.default_rng(s) for s in root_seed.spawn(3)]
        network = ParetoDelayModel(config.node_delay_mean, rng=streams[0])
        check_delay = ParetoDelayModel(config.check_delay_mean, rng=streams[1])
        recompute_delay = ParetoDelayModel(config.recompute_delay_mean, rng=streams[2])

    fault_model = FaultModel(config.fault_config)

    item_to_source = assign_items_to_sources(items, config.source_count)
    sources: Dict[int, SourceNode] = {}
    for source_id in sorted(set(item_to_source.values())):
        owned = [name for name in items if item_to_source[name] == source_id]
        sources[source_id] = SourceNode(
            source_id, owned, config.traces, engine.queue, metrics, network,
            fault_model=fault_model, vectorize=config.vectorize,
        )

    aao_planner = None
    if config.algorithm is AlgorithmName.AAO_T:
        aao_planner = AAOPlanner(cost_model)

    initial_values = config.traces.initial_values(items)
    coordinator = Coordinator(
        queries=config.queries,
        planner=planner,
        mode=_SINGLE_DAB_MODES[config.algorithm],
        queue=engine.queue,
        metrics=metrics,
        initial_values=initial_values,
        item_to_source=item_to_source,
        network_delay=network,
        aao_planner=aao_planner,
        aao_period=config.aao_period,
        check_delay=check_delay,
        recompute_delay=recompute_delay,
        rate_tracker=rate_tracker,
        fault_model=fault_model,
        vectorize=config.vectorize,
        recompute_strategy=config.recompute_mode,
        bank_index=config.bank_index,
    )
    coordinator.attach_sources(sources.values())
    coordinator.initial_plan()

    engine.on(EventKind.REFRESH_ARRIVAL, coordinator.on_refresh)
    engine.on(EventKind.DAB_CHANGE_ARRIVAL, coordinator.on_dab_change)
    engine.on(EventKind.AAO_PERIODIC, coordinator.on_aao_periodic)
    engine.on(EventKind.HEARTBEAT_ARRIVAL, coordinator.on_heartbeat)
    engine.on(EventKind.DAB_ACK_ARRIVAL, coordinator.on_dab_ack)
    engine.on(EventKind.RETRY_CHECK, coordinator.on_retry_check)
    engine.on(EventKind.LEASE_CHECK, coordinator.on_lease_check)
    engine.on(EventKind.VALUE_PROBE_ARRIVAL,
              lambda event: sources[event.payload["source_id"]].on_value_probe(event))
    for source in sources.values():
        engine.on_tick(source.on_tick)
    engine.on_tick(lambda _tick: metrics.record_tick())

    traces = config.traces
    queries = list(config.queries)

    faults_on = fault_model.enabled

    # Vectorized fidelity sampling: the coordinator's power table already
    # knows every (item, exponent) slot the queries need, so one slab built
    # from the traces precomputes every query's truth value at every tick,
    # and one banked evaluation per sample yields all observed values.
    # Slab powers, compiled evaluators and the bank are bitwise-identical
    # to ``query.evaluate`` (see queries/compiled.py) — metrics cannot
    # drift.
    truth_matrix = None
    if config.vectorize:
        truth_slab = coordinator.power_table.slab(traces)
        truth_matrix = np.array(
            [coordinator.compiled_query(query).evaluate_slab(truth_slab)
             for query in queries])
        qab_arr = np.array([query.qab for query in queries], dtype=float)
        query_names = [query.name for query in queries]
        last_row = truth_slab.shape[0] - 1

    def sample_fidelity(tick: int) -> None:
        if truth_matrix is not None:
            row = tick if tick <= last_row else last_row
            truth_col = truth_matrix[:, row]
            observed = coordinator.query_values_array()
            errors = np.abs(truth_col - observed)
            within = errors <= qab_arr
            metrics.record_fidelity_batch(query_names, within.tolist())
            if faults_on:
                for index, query in enumerate(queries):
                    if coordinator.suspect_items_of(query):
                        metrics.record_degraded_sample()
                        reported = coordinator.reported_bound(query,
                                                              float(tick))
                        if float(errors[index]) > reported:
                            metrics.record_uncertainty_violation()
            return
        truth_values = traces.values_at(tick, items)
        for query in queries:
            truth = query.evaluate(truth_values)
            observed = query.evaluate(coordinator.cache)
            metrics.record_fidelity(query.name, abs(truth - observed) <= query.qab)
            if faults_on and coordinator.suspect_items_of(query):
                # Served degraded: the answer carries a widened, honest
                # uncertainty; count it, and flag the (rare) case where
                # even the widened bound failed to cover the truth.
                metrics.record_degraded_sample()
                reported = coordinator.reported_bound(query, float(tick))
                if abs(truth - observed) > reported:
                    metrics.record_uncertainty_violation()

    engine.on_fidelity_sample(sample_fidelity)
    loop_started = _time.perf_counter()
    engine.run()
    loop_seconds = _time.perf_counter() - loop_started

    if cache is not None:
        metrics.record_gp_solves(cache.stats.misses)

    recompute_latency: Optional[Dict[str, float]] = None
    delta = find_delta_planner(planner)
    if delta is not None:
        metrics.record_delta_recompute(delta.stats.patches,
                                       delta.stats.fallbacks)
        recompute_latency = delta.stats.latency_summary()

    bank_stats = coordinator.bank_stats()
    if bank_stats is not None:
        metrics.record_bank_index(
            int(bank_stats.get("distinct_structures", 0)),
            float(bank_stats.get("dedup_ratio", 1.0)))

    return SimulationResult(
        metrics=metrics.summary(),
        algorithm=config.algorithm,
        wall_seconds=_time.perf_counter() - started,
        cache_hits=cache.stats.hits if cache else 0,
        cache_misses=cache.stats.misses if cache else 0,
        loop_seconds=loop_seconds,
        recompute_mode=config.recompute_mode,
        recompute_latency=recompute_latency,
        bank_index=config.bank_index,
        bank_stats=bank_stats,
    )
