"""Event primitives for the discrete-event simulator.

Events live on a continuous timeline (ticks are integers, message arrivals
fall between them).  The queue breaks time ties by insertion order, which
keeps runs deterministic.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


class EventKind(enum.Enum):
    """The event types the single-coordinator simulator processes."""

    #: Integer-tick housekeeping: sources sample traces, fidelity sampled.
    TICK = "tick"
    #: A data refresh from a source reaching a coordinator.
    REFRESH_ARRIVAL = "refresh_arrival"
    #: New primary DABs reaching a source after a recomputation.
    DAB_CHANGE_ARRIVAL = "dab_change_arrival"
    #: Periodic full AAO recomputation (the AAO-T schedule of Figure 7).
    AAO_PERIODIC = "aao_periodic"
    #: A source's liveness beacon reaching the coordinator (fault mode).
    HEARTBEAT_ARRIVAL = "heartbeat_arrival"
    #: A source's acknowledgement of a DAB-change message (fault mode).
    DAB_ACK_ARRIVAL = "dab_ack_arrival"
    #: Coordinator-local timer: is a DAB-change still unacknowledged?
    RETRY_CHECK = "retry_check"
    #: Coordinator-local timer: scan items for expired staleness leases.
    LEASE_CHECK = "lease_check"
    #: A coordinator value re-request reaching a (suspect) source.
    VALUE_PROBE_ARRIVAL = "value_probe_arrival"


@dataclass(frozen=True)
class Event:
    """One scheduled occurrence.

    ``payload`` carries kind-specific data:

    * ``REFRESH_ARRIVAL`` — ``{"item", "value", "source_id"}``
    * ``DAB_CHANGE_ARRIVAL`` — ``{"source_id", "bounds": {item: b}}``
    """

    time: float
    kind: EventKind
    payload: Dict[str, Any] = field(default_factory=dict)


class EventQueue:
    """A deterministic min-heap of events ordered by (time, priority,
    insertion).

    ``priority`` defaults to 0; lower values win time ties.  The
    coordinator requeues refreshes it was too busy to serve with priority
    ``-1`` so an earlier-arrived refresh is never starved behind
    later-inserted events that happen to tie at exactly ``busy_until``.
    """

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()

    def push(self, event: Event, priority: int = 0) -> None:
        if event.time < 0.0:
            raise ValueError(f"event time must be >= 0, got {event.time!r}")
        heapq.heappush(self._heap, (event.time, priority, next(self._counter), event))

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        _time, _priority, _seq, event = heapq.heappop(self._heap)
        return event

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
