"""Event primitives for the discrete-event simulator.

Events live on a continuous timeline (ticks are integers, message arrivals
fall between them).  The queue breaks time ties by insertion order, which
keeps runs deterministic.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


class EventKind(enum.Enum):
    """The event types the single-coordinator simulator processes."""

    #: Integer-tick housekeeping: sources sample traces, fidelity sampled.
    TICK = "tick"
    #: A data refresh from a source reaching a coordinator.
    REFRESH_ARRIVAL = "refresh_arrival"
    #: New primary DABs reaching a source after a recomputation.
    DAB_CHANGE_ARRIVAL = "dab_change_arrival"
    #: Periodic full AAO recomputation (the AAO-T schedule of Figure 7).
    AAO_PERIODIC = "aao_periodic"


@dataclass(frozen=True)
class Event:
    """One scheduled occurrence.

    ``payload`` carries kind-specific data:

    * ``REFRESH_ARRIVAL`` — ``{"item", "value", "source_id"}``
    * ``DAB_CHANGE_ARRIVAL`` — ``{"source_id", "bounds": {item: b}}``
    """

    time: float
    kind: EventKind
    payload: Dict[str, Any] = field(default_factory=dict)


class EventQueue:
    """A deterministic min-heap of events ordered by (time, insertion)."""

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()

    def push(self, event: Event) -> None:
        if event.time < 0.0:
            raise ValueError(f"event time must be >= 0, got {event.time!r}")
        heapq.heappush(self._heap, (event.time, next(self._counter), event))

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        _time, _seq, event = heapq.heappop(self._heap)
        return event

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
