"""Fault injection — the simulator's unreliable-network model.

The paper's evaluation (and its Condition 1 correctness argument) assumes
every refresh and DAB-change message is delivered, in order, to a live
peer.  This module drops that assumption so the protocol's degradation
can be measured: a :class:`FaultModel` injects per-link message loss,
source crash/recovery windows, network partitions, delay spikes and
duplicate deliveries, all from seeded RNG substreams so that

* a run with a given fault seed is exactly reproducible, and
* each link draws from its *own* substream — adding traffic (or faults)
  on one link never perturbs the fault decisions on another.

A disabled model (the default ``FaultConfig()``) is a provable no-op: no
RNG is ever created or drawn from, no extra event is scheduled, and the
simulation's event sequence is bit-identical to the fault-free path.

The recovery protocol the rest of :mod:`repro.simulation` layers on top
(per-item DAB epochs, staleness leases, ack/retry delivery, solver
fallback) is described in DESIGN.md §7.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SimulationError


@dataclass(frozen=True)
class CrashWindow:
    """Source ``source_id`` is down (no pushes, no message receipt) during
    ``[start, end)``; it recovers — and resyncs — at ``end``."""

    source_id: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0.0 or self.end <= self.start:
            raise SimulationError(
                f"crash window needs 0 <= start < end, got [{self.start}, {self.end})"
            )

    def covers(self, time: float) -> bool:
        return self.start <= time < self.end


@dataclass(frozen=True)
class PartitionWindow:
    """Every message sent during ``[start, end)`` is lost (a full network
    partition between sources and the coordinator)."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0.0 or self.end <= self.start:
            raise SimulationError(
                f"partition window needs 0 <= start < end, got [{self.start}, {self.end})"
            )

    def covers(self, time: float) -> bool:
        return self.start <= time < self.end


@dataclass(frozen=True)
class DelaySpike:
    """Messages sent during ``[start, end)`` see their delay multiplied by
    ``factor`` (congestion / a routing flap)."""

    start: float
    end: float
    factor: float = 5.0

    def __post_init__(self) -> None:
        if self.start < 0.0 or self.end <= self.start:
            raise SimulationError(
                f"delay spike needs 0 <= start < end, got [{self.start}, {self.end})"
            )
        if self.factor < 1.0:
            raise SimulationError(f"delay-spike factor must be >= 1, got {self.factor!r}")

    def covers(self, time: float) -> bool:
        return self.start <= time < self.end


@dataclass
class FaultConfig:
    """What to inject, and how the protocol degrades around it.

    The default config injects nothing and ``FaultModel(FaultConfig())``
    is a no-op; any non-trivial fault channel enables the model *and* the
    recovery machinery (heartbeats, leases, ack/retry).
    """

    #: Per-message i.i.d. loss probability on every link.
    loss_rate: float = 0.0
    #: Per-message probability that a delivered message arrives twice.
    duplicate_rate: float = 0.0
    crash_windows: Tuple[CrashWindow, ...] = ()
    partitions: Tuple[PartitionWindow, ...] = ()
    delay_spikes: Tuple[DelaySpike, ...] = ()
    #: Substream seed; independent of the simulation's delay seed.
    seed: int = 0

    # -- degradation / recovery knobs (seconds == ticks) -----------------------
    #: An item unheard-from for this long is marked suspect.
    lease_duration: float = 20.0
    #: How often the coordinator scans for expired leases.
    lease_check_interval: float = 5.0
    #: Sources heartbeat at this period so quiet items renew their leases.
    heartbeat_interval: float = 10.0
    #: First DAB-change retransmit timeout; doubles each attempt.
    retry_timeout: float = 2.0
    retry_backoff: float = 2.0
    retry_cap: float = 30.0
    retry_max: int = 8
    #: Relative drift a suspect item is conservatively assumed to have
    #: accumulated per lease duration (widens reported uncertainty).
    suspect_drift_rel: float = 0.05

    def __post_init__(self) -> None:
        if not (0.0 <= self.loss_rate < 1.0):
            raise SimulationError(f"loss rate must be in [0, 1), got {self.loss_rate!r}")
        if not (0.0 <= self.duplicate_rate < 1.0):
            raise SimulationError(
                f"duplicate rate must be in [0, 1), got {self.duplicate_rate!r}")
        self.crash_windows = tuple(self.crash_windows)
        self.partitions = tuple(self.partitions)
        self.delay_spikes = tuple(self.delay_spikes)
        for knob in ("lease_duration", "lease_check_interval", "heartbeat_interval",
                     "retry_timeout", "retry_backoff", "retry_cap"):
            if getattr(self, knob) <= 0.0:
                raise SimulationError(f"{knob} must be positive")
        if self.retry_max < 0:
            raise SimulationError(f"retry_max must be >= 0, got {self.retry_max!r}")
        if self.suspect_drift_rel < 0.0:
            raise SimulationError("suspect_drift_rel must be >= 0")

    @property
    def enabled(self) -> bool:
        """True when any fault channel can fire."""
        return bool(
            self.loss_rate > 0.0
            or self.duplicate_rate > 0.0
            or self.crash_windows
            or self.partitions
            or self.delay_spikes
        )


class FaultModel:
    """Seeded, substream-deterministic fault decisions.

    Each link (a caller-chosen string such as ``"src3->coord"``) lazily
    gets its own ``numpy`` Generator derived from ``(seed, crc32(link))``,
    so the decision stream per link depends only on the fault seed and the
    per-link message order — never on interleaving across links.
    """

    def __init__(self, config: Optional[FaultConfig] = None):
        self.config = config if config is not None else FaultConfig()
        self.enabled = self.config.enabled
        self._streams: Dict[str, np.random.Generator] = {}

    def _rng(self, link: str) -> np.random.Generator:
        rng = self._streams.get(link)
        if rng is None:
            sub = zlib.crc32(link.encode("utf-8"))
            rng = np.random.default_rng(
                np.random.SeedSequence(entropy=(self.config.seed, sub)))
            self._streams[link] = rng
        return rng

    # -- message-level decisions ------------------------------------------------

    def drop(self, link: str, time: float) -> bool:
        """Should a message sent now on ``link`` be lost?"""
        if not self.enabled:
            return False
        if any(w.covers(time) for w in self.config.partitions):
            return True
        if self.config.loss_rate > 0.0:
            return bool(self._rng(link).random() < self.config.loss_rate)
        return False

    def duplicate(self, link: str, time: float) -> bool:
        """Should a delivered message additionally arrive a second time?"""
        if not self.enabled or self.config.duplicate_rate <= 0.0:
            return False
        return bool(self._rng(link).random() < self.config.duplicate_rate)

    def delay_factor(self, time: float) -> float:
        """Multiplier applied to the sampled network delay at ``time``."""
        if not self.enabled:
            return 1.0
        factor = 1.0
        for spike in self.config.delay_spikes:
            if spike.covers(time):
                factor = max(factor, spike.factor)
        return factor

    # -- node-level state ---------------------------------------------------------

    def is_crashed(self, source_id: int, time: float) -> bool:
        if not self.enabled:
            return False
        return any(w.source_id == source_id and w.covers(time)
                   for w in self.config.crash_windows)


DISABLED = FaultModel(FaultConfig())
"""A shared always-off model, the default wherever none is supplied."""


# ---------------------------------------------------------------------------
# CLI spec parsing
# ---------------------------------------------------------------------------

def parse_crash_spec(text: str) -> Tuple[CrashWindow, ...]:
    """Parse ``"2:100:160,5:200:260"`` → crash windows (source:start:end)."""
    windows: List[CrashWindow] = []
    for piece in filter(None, (p.strip() for p in text.split(","))):
        parts = piece.split(":")
        if len(parts) != 3:
            raise SimulationError(
                f"crash spec piece must be source:start:end, got {piece!r}")
        try:
            windows.append(CrashWindow(int(parts[0]), float(parts[1]), float(parts[2])))
        except ValueError:
            raise SimulationError(f"bad number in crash spec piece {piece!r}")
    return tuple(windows)


def parse_partition_spec(text: str) -> Tuple[PartitionWindow, ...]:
    """Parse ``"50:80,120:130"`` → partition windows (start:end)."""
    windows: List[PartitionWindow] = []
    for piece in filter(None, (p.strip() for p in text.split(","))):
        parts = piece.split(":")
        if len(parts) != 2:
            raise SimulationError(f"partition piece must be start:end, got {piece!r}")
        try:
            windows.append(PartitionWindow(float(parts[0]), float(parts[1])))
        except ValueError:
            raise SimulationError(f"bad number in partition piece {piece!r}")
    return tuple(windows)


def parse_delay_spike_spec(text: str) -> Tuple[DelaySpike, ...]:
    """Parse ``"50:80:10"`` → delay spikes (start:end:factor)."""
    spikes: List[DelaySpike] = []
    for piece in filter(None, (p.strip() for p in text.split(","))):
        parts = piece.split(":")
        if len(parts) not in (2, 3):
            raise SimulationError(
                f"delay-spike piece must be start:end[:factor], got {piece!r}")
        try:
            factor = float(parts[2]) if len(parts) == 3 else 5.0
            spikes.append(DelaySpike(float(parts[0]), float(parts[1]), factor))
        except ValueError:
            raise SimulationError(f"bad number in delay-spike piece {piece!r}")
    return tuple(spikes)
