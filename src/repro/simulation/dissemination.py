"""Multi-coordinator dissemination network — the Figure 8(c) substrate.

The paper builds on its earlier cooperating-repositories work (Shah et al.,
TKDE 2004) to run PPQs over a network of 10 coordinators fed by 2 sources.
We reproduce the cost structure with a two-level tree:

    sources  →  root relay  →  child coordinators (each serving a share
                                 of the queries and its own users)

* Sources push refreshes to the root under the global min primary DAB.
* The root caches values and forwards a refresh to exactly the children
  whose own merged DAB is crossed — per-child filtering, one message per
  interested child per hop.
* Each child runs the standard coordinator logic (user notifications +
  recompute policy); its DAB changes travel back through the root, which
  re-derives the global min per item and re-programs the sources.

What makes recomputation expensive here is exactly what μ models: one
child's recomputation fans out into root bookkeeping and potentially
DAB-change messages to every source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.exceptions import SimulationError
from repro.dynamics.estimation import RateEstimator, SampledRateEstimator
from repro.dynamics.models import DataDynamicsModel
from repro.dynamics.traces import TraceSet
from repro.filters.caching import QuantisingCachePlanner
from repro.filters.cost_model import CostModel
from repro.queries.polynomial import PolynomialQuery
from repro.simulation.coordinator import Coordinator, RecomputeMode
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import Event, EventKind
from repro.simulation.faults import DISABLED, FaultConfig, FaultModel
from repro.simulation.harness import (
    AlgorithmName,
    SimulationConfig,
    SimulationResult,
    _SINGLE_DAB_MODES,
    build_planner,
)
from repro.simulation.metrics import MetricsCollector
from repro.simulation.network import DelayModel, ParetoDelayModel, ZeroDelayModel
from repro.simulation.source import SourceNode, assign_items_to_sources

#: Pseudo source-ids for the root's per-child ports (child DAB changes are
#: addressed here; real sources use ids < _PORT_BASE).
_PORT_BASE = 1_000_000


@dataclass
class DisseminationConfig:
    """Figure-8(c) style run: queries spread over ``coordinator_count``
    children, items served by ``source_count`` sources."""

    queries: Sequence[PolynomialQuery]
    traces: TraceSet
    algorithm: Union[AlgorithmName, str] = AlgorithmName.DUAL_DAB
    ddm: Union[DataDynamicsModel, str] = DataDynamicsModel.MONOTONIC
    recompute_cost: float = 5.0
    duration: Optional[int] = None
    coordinator_count: int = 10
    source_count: int = 2
    seed: int = 0
    fidelity_interval: int = 5
    zero_delay: bool = False
    node_delay_mean: float = 0.110
    rate_estimator: Optional[RateEstimator] = None
    cache_grid: Optional[float] = 0.02
    #: Fault injection on the source↔root links (loss, crashes, partitions,
    #: delay spikes, duplicates).  Root↔child forwarding shares the loss
    #: model; the ack/retry and lease machinery stay single-coordinator
    #: features for now.
    fault_config: Optional[FaultConfig] = None

    def __post_init__(self) -> None:
        self.algorithm = AlgorithmName.from_string(self.algorithm)
        self.ddm = DataDynamicsModel.from_string(self.ddm)
        if self.coordinator_count < 1:
            raise SimulationError("need at least one child coordinator")
        if not self.queries:
            raise SimulationError("at least one query is required")
        if self.duration is None:
            self.duration = self.traces.duration

    @property
    def used_items(self) -> List[str]:
        return sorted({name for q in self.queries for name in q.variables})


class _RootPort:
    """The root, seen from one child coordinator as its only 'source'."""

    def __init__(self, root: "RootRelay", child_id: int):
        self.root = root
        self.child_id = child_id
        self.source_id = _PORT_BASE + child_id

    def set_bounds(self, bounds: Mapping[str, float]) -> None:
        self.root.update_child_bounds(self.child_id, bounds, time=0.0)

    def on_dab_change(self, event: Event) -> None:
        self.root.update_child_bounds(self.child_id, event.payload["bounds"],
                                      time=event.time)


class RootRelay:
    """Caches source refreshes and forwards them per child filter."""

    def __init__(self, queue, metrics: MetricsCollector, network_delay: DelayModel,
                 initial_values: Mapping[str, float],
                 item_to_source: Mapping[str, int],
                 fault_model: Optional[FaultModel] = None):
        self.queue = queue
        self.metrics = metrics
        self.network_delay = network_delay
        self.faults = fault_model if fault_model is not None else DISABLED
        self.cache: Dict[str, float] = dict(initial_values)
        self.item_to_source = dict(item_to_source)
        #: Per-item monotone epoch for root→source DAB changes.
        self.epochs: Dict[str, int] = {}
        #: child_id -> {item: b} as last announced by that child.
        self.child_bounds: Dict[int, Dict[str, float]] = {}
        #: child_id -> {item: value} last forwarded to that child.
        self.forwarded: Dict[int, Dict[str, float]] = {}
        self._sources: Dict[int, SourceNode] = {}
        self._bootstrapped = False

    def attach_sources(self, sources: Sequence[SourceNode]) -> None:
        for source in sources:
            self._sources[source.source_id] = source

    # -- control plane -----------------------------------------------------------------

    def update_child_bounds(self, child_id: int, bounds: Mapping[str, float],
                            time: float = 0.0) -> None:
        store = self.child_bounds.setdefault(child_id, {})
        store.update({name: float(b) for name, b in bounds.items()})
        self.forwarded.setdefault(child_id, {}).update({
            name: self.cache[name] for name in bounds if name in self.cache
        })
        if self._bootstrapped:
            self._reprogram_sources(send=True, time=time)

    def bootstrap(self) -> None:
        """Push the initial global min-DABs straight into the sources."""
        self._reprogram_sources(send=False, time=0.0)
        self._bootstrapped = True

    def _global_min_bounds(self) -> Dict[str, float]:
        merged: Dict[str, float] = {}
        for bounds in self.child_bounds.values():
            for name, b in bounds.items():
                current = merged.get(name)
                if current is None or b < current:
                    merged[name] = b
        return merged

    def _reprogram_sources(self, send: bool, time: float) -> None:
        merged = self._global_min_bounds()
        if not send:
            for source_id, source in self._sources.items():
                source.set_bounds({name: bound for name, bound in merged.items()
                                   if self.item_to_source.get(name) == source_id})
            self._last_sent = dict(merged)
            return
        changed_by_source: Dict[int, Dict[str, float]] = {}
        last = getattr(self, "_last_sent", {})
        for name, bound in merged.items():
            previous = last.get(name)
            if previous is not None and abs(bound - previous) <= 1e-9 * previous:
                continue
            last[name] = bound
            self.epochs[name] = self.epochs.get(name, 0) + 1
            changed_by_source.setdefault(self.item_to_source[name], {})[name] = bound
        self._last_sent = last
        for source_id, bounds in changed_by_source.items():
            self.metrics.record_dab_change_messages(1)
            payload = {"source_id": source_id, "bounds": bounds,
                       "epochs": {name: self.epochs[name] for name in bounds}}
            link = f"root->src{source_id}"
            if self.faults.drop(link, time):
                self.metrics.record_message_dropped()
                continue
            delay = self.network_delay.sample() * self.faults.delay_factor(time)
            self.queue.push(Event(time=time + delay,
                                  kind=EventKind.DAB_CHANGE_ARRIVAL,
                                  payload=payload))
            if self.faults.duplicate(link, time):
                self.metrics.record_message_duplicated()
                self.queue.push(Event(time=time + self.network_delay.sample(),
                                      kind=EventKind.DAB_CHANGE_ARRIVAL,
                                      payload=dict(payload)))

    # -- data plane ---------------------------------------------------------------------

    def on_source_refresh(self, event: Event) -> None:
        item = event.payload["item"]
        value = float(event.payload["value"])
        self.cache[item] = value
        self.metrics.record_refresh()  # arrival at the root coordinator
        for child_id, bounds in self.child_bounds.items():
            bound = bounds.get(item)
            if bound is None:
                continue
            seen = self.forwarded.setdefault(child_id, {})
            last = seen.get(item, value)
            if item not in seen or abs(value - last) > bound:
                seen[item] = value
                if self.faults.drop(f"root->child{child_id}", event.time):
                    self.metrics.record_message_dropped()
                    continue
                delay = self.network_delay.sample() * self.faults.delay_factor(event.time)
                self.queue.push(Event(
                    time=event.time + delay,
                    kind=EventKind.REFRESH_ARRIVAL,
                    payload={"item": item, "value": value,
                             "source_id": event.payload["source_id"],
                             "dest": child_id},
                ))


@dataclass
class DisseminationResult:
    metrics: object
    algorithm: AlgorithmName
    coordinator_count: int


def run_dissemination(config: DisseminationConfig) -> DisseminationResult:
    """Run the two-level dissemination network and return summed metrics."""
    items = config.used_items
    estimator = config.rate_estimator or SampledRateEstimator()
    rates = estimator.estimate_all(config.traces, items)
    cost_model = CostModel(ddm=config.ddm, rates=rates,
                           recompute_cost=config.recompute_cost)

    metrics = MetricsCollector(recompute_cost=config.recompute_cost)
    engine = SimulationEngine(config.duration, config.fidelity_interval)
    if config.zero_delay:
        network: DelayModel = ZeroDelayModel()
    else:
        network = ParetoDelayModel(config.node_delay_mean,
                                   rng=np.random.default_rng(config.seed))

    fault_model = FaultModel(config.fault_config)

    item_to_source = assign_items_to_sources(items, config.source_count)
    sources: Dict[int, SourceNode] = {}
    for source_id in sorted(set(item_to_source.values())):
        owned = [name for name in items if item_to_source[name] == source_id]
        sources[source_id] = SourceNode(source_id, owned, config.traces,
                                        engine.queue, metrics, network,
                                        fault_model=fault_model)

    initial_values = config.traces.initial_values(items)
    root = RootRelay(engine.queue, metrics, network, initial_values, item_to_source,
                     fault_model=fault_model)
    root.attach_sources(list(sources.values()))

    # Partition queries round-robin over child coordinators.
    children: Dict[int, Coordinator] = {}
    ports: Dict[int, _RootPort] = {}
    mode = _SINGLE_DAB_MODES[config.algorithm]
    if mode is RecomputeMode.AAO_PERIODIC:
        raise SimulationError("AAO-T is not part of the dissemination experiment")
    for child_id in range(config.coordinator_count):
        child_queries = [q for i, q in enumerate(config.queries)
                         if i % config.coordinator_count == child_id]
        if not child_queries:
            continue
        # Each child gets its own planner stack (its own warm-start cache).
        child_config = SimulationConfig(
            queries=child_queries, traces=config.traces,
            algorithm=config.algorithm, ddm=config.ddm,
            recompute_cost=config.recompute_cost, duration=config.duration,
            cache_grid=None,
        )
        planner = build_planner(child_config, cost_model)
        if config.cache_grid is not None:
            planner = QuantisingCachePlanner(planner, grid=config.cache_grid)
        port = _RootPort(root, child_id)
        child_items = sorted({n for q in child_queries for n in q.variables})
        coordinator = Coordinator(
            queries=child_queries,
            planner=planner,
            mode=mode,
            queue=engine.queue,
            metrics=metrics,
            initial_values=initial_values,
            item_to_source={name: port.source_id for name in child_items},
            network_delay=network,
        )
        coordinator.attach_sources([port])
        children[child_id] = coordinator
        ports[port.source_id] = port

    for child in children.values():
        child.initial_plan()
    root.bootstrap()

    def route_refresh(event: Event) -> None:
        dest = event.payload.get("dest")
        if dest is None:
            root.on_source_refresh(event)
        else:
            children[dest].on_refresh(event)

    def route_dab_change(event: Event) -> None:
        source_id = event.payload["source_id"]
        if source_id >= _PORT_BASE:
            ports[source_id].on_dab_change(event)
        else:
            sources[source_id].on_dab_change(event)

    engine.on(EventKind.REFRESH_ARRIVAL, route_refresh)
    engine.on(EventKind.DAB_CHANGE_ARRIVAL, route_dab_change)
    # Sources heartbeat when faults are on; the root has no lease table,
    # so the beacons are absorbed here (counted at the sending source).
    engine.on(EventKind.HEARTBEAT_ARRIVAL, lambda _event: None)
    for source in sources.values():
        engine.on_tick(source.on_tick)
    engine.on_tick(lambda _tick: metrics.record_tick())

    traces = config.traces

    def sample_fidelity(tick: int) -> None:
        truth_values = traces.values_at(tick, items)
        for child in children.values():
            for query in child.queries:
                truth = query.evaluate(truth_values)
                observed = query.evaluate(child.cache)
                metrics.record_fidelity(query.name, abs(truth - observed) <= query.qab)

    engine.on_fidelity_sample(sample_fidelity)
    engine.run()

    return DisseminationResult(
        metrics=metrics.summary(),
        algorithm=config.algorithm,
        coordinator_count=config.coordinator_count,
    )
