"""The coordinator: cache, query service, recompute policy, DAB fanout.

The coordinator receives refreshes, keeps the latest value per item, and on
every refresh (a) notifies users whose query value moved beyond its QAB
since the last notification, and (b) applies the configured *recompute
policy*:

* ``EVERY_REFRESH`` — single-DAB semantics (Optimal Refresh and the
  baselines): the arriving refresh invalidates the DABs of every query that
  uses the item, so each is recomputed (the behaviour Figure 5 shows to be
  ruinous at scale);
* ``ON_WINDOW_VIOLATION`` — dual-DAB semantics: recompute a query only
  when some item left its secondary window;
* ``AAO_PERIODIC`` — the Figure-7 AAO-T hybrid: a full joint AAO solve
  every ``T`` ticks, window-violation patches with the per-query planner in
  between.

Since PR 4 the planning/recomputation state machine lives in the shared
:class:`~repro.service.core.CoordinatorCore`; this class is the simulator's
*event-loop adapter* over it — it owns everything tied to simulated time
and the simulated network: the busy-server clock, Pareto message delays,
fault injection, reliable DAB delivery (ack/retry), staleness leases and
the honest-uncertainty degradation.  The live asyncio service
(:mod:`repro.service.server`) wraps the very same core, so the simulator's
golden metrics pin the service's planning behaviour too.

After recomputations the coordinator ships changed primary DABs to the
owning sources as DAB-change messages (one message per source notified —
the overhead μ approximates).  Every bound carries a per-item monotone
epoch so a source always lands on the newest filter even when the Pareto
network reorders two in-flight changes.

Under an enabled :class:`~repro.simulation.faults.FaultModel` the
coordinator additionally runs the degradation protocol:

* **Reliable DAB delivery** — each DAB-change message gets an id and is
  retransmitted with bounded exponential backoff until the source acks it
  (application stays idempotent thanks to the epochs).
* **Staleness leases** — an item unheard-from (refresh or heartbeat) for
  longer than the lease is marked *suspect*: the coordinator re-requests
  its value from the owning source and conservatively widens the affected
  queries' reported uncertainty (:meth:`reported_bound`) instead of
  serving silently-wrong answers.
* **Solver-failure degradation** — a runtime GP solve that raises
  (infeasible / non-convergent) falls back to the previous valid plan, or
  a uniform single-DAB allocation on cold start; the failure is counted,
  never raised out of the event loop.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.filters.assignment import DABAssignment
from repro.queries.compiled import CompiledPolynomial, PowerTable
from repro.queries.polynomial import PolynomialQuery
from repro.service.core import CoordinatorCore, RecomputeMode
from repro.simulation.events import Event, EventKind, EventQueue
from repro.simulation.faults import DISABLED, FaultModel
from repro.simulation.metrics import MetricsCollector
from repro.simulation.network import DelayModel, ZeroDelayModel

__all__ = ["Coordinator", "RecomputeMode"]


class Coordinator:
    """Single-coordinator query service (the simulator's core adapter)."""

    def __init__(
        self,
        queries: Sequence[PolynomialQuery],
        planner: object,
        mode: RecomputeMode,
        queue: EventQueue,
        metrics: MetricsCollector,
        initial_values: Mapping[str, float],
        item_to_source: Mapping[str, int],
        network_delay: Optional[DelayModel] = None,
        aao_planner: Optional[object] = None,
        aao_period: Optional[int] = None,
        check_delay: Optional[DelayModel] = None,
        recompute_delay: Optional[DelayModel] = None,
        rate_tracker: Optional[object] = None,
        fault_model: Optional[FaultModel] = None,
        vectorize: bool = False,
        recompute_strategy: str = "full",
        bank_index: str = "flat",
    ):
        self.core = CoordinatorCore(
            queries=queries,
            planner=planner,
            mode=mode,
            metrics=metrics,
            initial_values=initial_values,
            item_to_source=item_to_source,
            aao_planner=aao_planner,
            aao_period=aao_period,
            vectorize=vectorize,
            recompute_hook=self._charge_recompute_time,
            recompute_strategy=recompute_strategy,
            bank_index=bank_index,
        )
        self.queue = queue
        self.metrics = metrics
        self.network_delay = network_delay if network_delay is not None else ZeroDelayModel()
        #: Coordinator compute costs: QAB-check per refresh, GP solve per
        #: recomputation.  While the coordinator is busy, arriving
        #: refreshes queue — the load effect behind the paper's fidelity
        #: differences ("the lower the number of refreshes at C, the lesser
        #: is the computational load on C and the smaller the delay
        #: perceived by the user").
        self.check_delay = check_delay if check_delay is not None else ZeroDelayModel()
        self.recompute_delay = (recompute_delay if recompute_delay is not None
                                else ZeroDelayModel())
        self.busy_until = 0.0
        #: Optional OnlineRateTracker: refreshed rates flow into subsequent
        #: recomputations through the shared cost-model dict.
        self.rate_tracker = rate_tracker
        self.item_to_source = self.core.item_to_source
        self.faults = fault_model if fault_model is not None else DISABLED
        self._sources: Dict[int, object] = {}

        # -- reliable-delivery state (fault mode only) ------------------------
        self._msg_counter = 0
        #: msg_id -> {"source_id", "bounds", "epochs", "attempt"}
        self._outstanding: Dict[int, Dict[str, Any]] = {}
        # -- staleness leases (fault mode only) -------------------------------
        #: item -> last time a refresh/heartbeat vouched for it.
        self.last_heard: Dict[str, float] = {name: 0.0 for name in self.core.item_index}
        #: item -> highest refresh sequence number received (gap detection).
        self.last_seq: Dict[str, int] = {}
        #: item -> time it became suspect (lease expired, value re-requested).
        self.suspect_since: Dict[str, float] = {}
        #: item -> last time its staleness exposure was accumulated.
        self._exposure_accounted: Dict[str, float] = {}
        self._source_items: Dict[int, List[str]] = {}
        for name, source_id in self.item_to_source.items():
            self._source_items.setdefault(source_id, []).append(name)

    def _charge_recompute_time(self) -> None:
        """Core recomputation hook: one solve occupies the busy server."""
        self.busy_until += self.recompute_delay.sample()

    # -- core delegation ----------------------------------------------------------

    @property
    def queries(self) -> List[PolynomialQuery]:
        return self.core.queries

    @property
    def planner(self) -> object:
        return self.core.planner

    @property
    def mode(self) -> RecomputeMode:
        return self.core.mode

    @property
    def aao_planner(self) -> Optional[object]:
        return self.core.aao_planner

    @property
    def aao_period(self) -> Optional[int]:
        return self.core.aao_period

    @property
    def cache(self) -> Dict[str, float]:
        return self.core.cache

    @property
    def plans(self) -> Dict[str, DABAssignment]:
        return self.core.plans

    @property
    def last_user_values(self) -> Dict[str, float]:
        return self.core.last_user_values

    @property
    def epochs(self) -> Dict[str, int]:
        return self.core.epochs

    @property
    def item_index(self) -> Dict[str, List[PolynomialQuery]]:
        return self.core.item_index

    @property
    def power_table(self) -> PowerTable:
        """The shared (item, exponent) slot registry (vectorized runs only)."""
        return self.core.power_table

    def compiled_query(self, query: PolynomialQuery) -> CompiledPolynomial:
        """The compiled evaluator for ``query`` (vectorized runs only)."""
        return self.core.compiled_query(query)

    def query_value(self, query: PolynomialQuery) -> float:
        return self.core.query_value(query)

    def query_values(self) -> List[float]:
        return self.core.query_values()

    def query_values_array(self) -> np.ndarray:
        return self.core.query_values_array()

    def bank_stats(self) -> Optional[Dict[str, Any]]:
        """Shared-structure bank-index stats (``None`` in flat mode)."""
        return self.core.bank_stats()

    # -- wiring ---------------------------------------------------------------------

    def attach_sources(self, sources: Iterable[object]) -> None:
        """Register source nodes for direct bootstrap and DAB fanout."""
        for source in sources:
            self._sources[source.source_id] = source

    # -- bootstrap --------------------------------------------------------------------

    def initial_plan(self) -> None:
        """Plan every query at the initial values and seed the sources'
        filters directly (time-zero configuration is assumed in place when
        the paper's observation window starts)."""
        merged = self.core.bootstrap()
        if self.core.mode is RecomputeMode.AAO_PERIODIC:
            self.queue.push(Event(float(self.core.aao_period),
                                  EventKind.AAO_PERIODIC))
        for source_id, source in self._sources.items():
            source.set_bounds(self.core.owned_bounds(merged, source_id))
        if self.faults.enabled:
            interval = self.faults.config.lease_check_interval
            self.queue.push(Event(interval, EventKind.LEASE_CHECK))

    # -- fanout -----------------------------------------------------------------------

    def _fanout_bound_changes(self, time: float) -> None:
        """Ship changed merged DABs to the owning sources."""
        for source_id, (bounds, epochs) in self.core.changed_bound_updates().items():
            self._send_dab_change(source_id, bounds, epochs, time)

    def _send_dab_change(self, source_id: int, bounds: Mapping[str, float],
                         epochs: Mapping[str, int], time: float,
                         msg_id: Optional[int] = None) -> None:
        """Deliver one DAB-change message, subject to faults; in fault mode
        track it for ack/retry."""
        payload: Dict[str, Any] = {"source_id": source_id, "bounds": dict(bounds),
                                   "epochs": dict(epochs)}
        if self.faults.enabled:
            if msg_id is None:
                self._msg_counter += 1
                msg_id = self._msg_counter
                self._outstanding[msg_id] = {
                    "source_id": source_id, "bounds": dict(bounds),
                    "epochs": dict(epochs), "attempt": 0,
                }
            payload["msg_id"] = msg_id
            self.queue.push(Event(
                time + self.faults.config.retry_timeout, EventKind.RETRY_CHECK,
                {"msg_id": msg_id}))
        link = f"coord->src{source_id}"
        if self.faults.drop(link, time):
            self.metrics.record_message_dropped()
            return
        delay = self.network_delay.sample() * self.faults.delay_factor(time)
        self.queue.push(Event(time=time + delay, kind=EventKind.DAB_CHANGE_ARRIVAL,
                              payload=payload))
        if self.faults.duplicate(link, time):
            self.metrics.record_message_duplicated()
            self.queue.push(Event(time=time + self.network_delay.sample(),
                                  kind=EventKind.DAB_CHANGE_ARRIVAL,
                                  payload=dict(payload)))

    # -- degradation accounting ------------------------------------------------------

    def _hear_from_item(self, name: str, time: float) -> None:
        """A refresh (or probe reply) vouched for ``name``: renew its lease
        and clear any suspicion, closing the staleness-exposure interval."""
        self.last_heard[name] = time
        if name in self.suspect_since:
            accounted = self._exposure_accounted.pop(name, time)
            self.metrics.record_staleness_exposure(max(0.0, time - accounted))
            del self.suspect_since[name]

    def suspect_items_of(self, query: PolynomialQuery) -> List[str]:
        """The query's items currently marked suspect (stale leases)."""
        return [name for name in query.variables if name in self.suspect_since]

    def reported_bound(self, query: PolynomialQuery, time: float) -> float:
        """The accuracy bound the coordinator honestly reports *now*.

        With no suspect inputs this is the query's QAB.  For each suspect
        item the bound is conservatively widened by the query's response to
        an assumed drift that grows with the item's staleness — the served
        answer carries its real uncertainty instead of a silently-broken
        QAB (the degradation Condition 1 cannot cover once deliveries are
        lost).  The widening itself lives in
        ``CoordinatorCore.uncertainty_widened_bound`` so the live server
        degrades with exactly the same float math."""
        config = self.faults.config
        cache = self.core.cache
        drifts = {}
        for name in self.suspect_items_of(query):
            staleness = max(0.0, time - self.suspect_since[name])
            drifts[name] = (config.suspect_drift_rel
                            * max(abs(cache[name]), 1e-12)
                            * (1.0 + staleness / config.lease_duration))
        return self.core.uncertainty_widened_bound(query, drifts)

    # -- event handlers -----------------------------------------------------------------

    def on_refresh(self, event: Event) -> None:
        if event.time < self.busy_until - 1e-12:
            # The coordinator is still working through earlier arrivals; the
            # refresh waits in its input queue.  Priority -1 keeps this
            # already-arrived refresh ahead of any later event that lands on
            # exactly ``busy_until`` (FIFO service, no tie starvation).
            self.queue.push(Event(self.busy_until, EventKind.REFRESH_ARRIVAL,
                                  event.payload), priority=-1)
            return
        self.busy_until = event.time + self.check_delay.sample()
        item = event.payload["item"]
        seq = event.payload.get("seq")
        if seq is not None and self.faults.enabled:
            # Sequence numbers order refresh deliveries: a duplicate or a
            # refresh that was overtaken by a newer one must not clobber
            # the cache with a stale value.  (Gated to fault mode so the
            # fault-free path is bit-identical to the original simulator.)
            if seq <= self.last_seq.get(item, 0):
                self.metrics.record_refresh()
                self.metrics.record_duplicate_reject()
                return
            self.last_seq[item] = int(seq)
        self.core.apply_refresh(item, float(event.payload["value"]))
        self._hear_from_item(item, event.time)
        if self.faults.enabled and event.payload.get("resync"):
            self.core.clear_planner_warm_starts()
        if self.rate_tracker is not None:
            self.rate_tracker.observe(item, self.core.cache[item], event.time)

        _notifications, recomputed = self.core.react_to_refresh(item)
        if recomputed:
            self._fanout_bound_changes(event.time)

    def on_aao_periodic(self, event: Event) -> None:
        """Full joint recomputation on the AAO-T schedule."""
        self.core.aao_replan()
        # A joint solve occupies the coordinator roughly per-query as long
        # as a single-query solve (the paper: 600-750 ms for 10 PPQs).
        self.busy_until = max(self.busy_until, event.time)
        for _ in self.core.queries:
            self.busy_until += self.recompute_delay.sample()
        self._fanout_bound_changes(event.time)
        self.queue.push(Event(event.time + self.core.aao_period,
                              EventKind.AAO_PERIODIC))

    def on_dab_change(self, event: Event) -> None:
        source = self._sources.get(event.payload["source_id"])
        if source is None:
            raise SimulationError(
                f"DAB change addressed to unknown source {event.payload['source_id']!r}"
            )
        source.on_dab_change(event)

    # -- fault-mode handlers -------------------------------------------------------------

    def on_dab_ack(self, event: Event) -> None:
        """A source acknowledged a DAB-change message: stop retrying it."""
        self._outstanding.pop(event.payload["msg_id"], None)

    def on_retry_check(self, event: Event) -> None:
        """Retransmit a still-unacknowledged DAB-change with backoff."""
        msg_id = event.payload["msg_id"]
        pending = self._outstanding.get(msg_id)
        if pending is None:
            return
        config = self.faults.config
        pending["attempt"] += 1
        if pending["attempt"] > config.retry_max:
            # Give up; the epoch/lease machinery bounds the damage and the
            # next genuine DAB change supersedes these bounds anyway.
            self.metrics.record_dab_retry_exhausted()
            del self._outstanding[msg_id]
            return
        self.metrics.record_dab_retry()
        backoff = min(config.retry_cap,
                      config.retry_timeout * config.retry_backoff ** pending["attempt"])
        payload = {"source_id": pending["source_id"], "bounds": dict(pending["bounds"]),
                   "epochs": dict(pending["epochs"]), "msg_id": msg_id}
        link = f"coord->src{pending['source_id']}"
        if self.faults.drop(link, event.time):
            self.metrics.record_message_dropped()
        else:
            delay = self.network_delay.sample() * self.faults.delay_factor(event.time)
            self.queue.push(Event(event.time + delay, EventKind.DAB_CHANGE_ARRIVAL,
                                  payload))
        self.queue.push(Event(event.time + backoff, EventKind.RETRY_CHECK,
                              {"msg_id": msg_id}))

    def on_heartbeat(self, event: Event) -> None:
        """A source's liveness beacon.

        A quiet item whose sequence number matches is fresh (the push
        filter guarantees an in-bound value), so its lease renews.  A
        sequence number *ahead* of what we received means refreshes were
        lost in flight — the cache may be arbitrarily stale even though
        the source is alive — so the item goes suspect and its value is
        re-requested immediately."""
        seqs = event.payload.get("seqs") or {}
        for name in self._source_items.get(event.payload["source_id"], ()):
            if name not in self.last_heard:
                continue
            expected = seqs.get(name)
            if expected is not None and expected > self.last_seq.get(name, 0):
                if name not in self.suspect_since:
                    self.suspect_since[name] = event.time
                    self._exposure_accounted[name] = event.time
                    self.metrics.record_refresh_gap()
                    self._probe(name, event.time)
            else:
                self._hear_from_item(name, event.time)

    def on_lease_check(self, event: Event) -> None:
        """Expire leases, mark items suspect, and re-request their values."""
        config = self.faults.config
        time = event.time
        for name in self.core.item_index:
            if name in self.suspect_since:
                # Accumulate exposure since the last accounting and keep
                # probing until the source answers.
                accounted = self._exposure_accounted.get(name, self.suspect_since[name])
                self.metrics.record_staleness_exposure(max(0.0, time - accounted))
                self._exposure_accounted[name] = time
                self._probe(name, time)
            elif time - self.last_heard.get(name, 0.0) > config.lease_duration:
                self.suspect_since[name] = time
                self._exposure_accounted[name] = time
                self.metrics.record_lease_expiry()
                self._probe(name, time)
        self.queue.push(Event(time + config.lease_check_interval,
                              EventKind.LEASE_CHECK))

    def _probe(self, name: str, time: float) -> None:
        """Re-request a suspect item's value from its owning source."""
        source_id = self.item_to_source.get(name)
        if source_id is None:
            return
        self.metrics.record_value_probe()
        link = f"coord->src{source_id}"
        if self.faults.drop(link, time):
            self.metrics.record_message_dropped()
            return
        delay = self.network_delay.sample() * self.faults.delay_factor(time)
        self.queue.push(Event(time + delay, EventKind.VALUE_PROBE_ARRIVAL,
                              {"item": name, "source_id": source_id}))
