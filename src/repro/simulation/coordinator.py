"""The coordinator: cache, query service, recompute policy, DAB fanout.

The coordinator receives refreshes, keeps the latest value per item, and on
every refresh (a) notifies users whose query value moved beyond its QAB
since the last notification, and (b) applies the configured *recompute
policy*:

* ``EVERY_REFRESH`` — single-DAB semantics (Optimal Refresh and the
  baselines): the arriving refresh invalidates the DABs of every query that
  uses the item, so each is recomputed (the behaviour Figure 5 shows to be
  ruinous at scale);
* ``ON_WINDOW_VIOLATION`` — dual-DAB semantics: recompute a query only
  when some item left its secondary window;
* ``AAO_PERIODIC`` — the Figure-7 AAO-T hybrid: a full joint AAO solve
  every ``T`` ticks, window-violation patches with the per-query planner in
  between.

After recomputations the coordinator ships changed primary DABs to the
owning sources as DAB-change messages (one message per source notified —
the overhead μ approximates).  Every bound carries a per-item monotone
epoch so a source always lands on the newest filter even when the Pareto
network reorders two in-flight changes.

Under an enabled :class:`~repro.simulation.faults.FaultModel` the
coordinator additionally runs the degradation protocol:

* **Reliable DAB delivery** — each DAB-change message gets an id and is
  retransmitted with bounded exponential backoff until the source acks it
  (application stays idempotent thanks to the epochs).
* **Staleness leases** — an item unheard-from (refresh or heartbeat) for
  longer than the lease is marked *suspect*: the coordinator re-requests
  its value from the owning source and conservatively widens the affected
  queries' reported uncertainty (:meth:`reported_bound`) instead of
  serving silently-wrong answers.
* **Solver-failure degradation** — a runtime GP solve that raises
  (infeasible / non-convergent) falls back to the previous valid plan, or
  a uniform single-DAB allocation on cold start; the failure is counted,
  never raised out of the event loop.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import GPError, SimulationError
from repro.filters.assignment import DABAssignment, merge_primary
from repro.queries.compiled import (
    CompiledPolynomial,
    CompiledQueryBank,
    PowerTable,
)
from repro.queries.polynomial import PolynomialQuery
from repro.simulation.events import Event, EventKind, EventQueue
from repro.simulation.faults import DISABLED, FaultModel
from repro.simulation.metrics import MetricsCollector
from repro.simulation.network import DelayModel, ZeroDelayModel

#: Relative change below which a DAB update is not worth a message.
_DAB_CHANGE_REL_TOL = 1e-9


class RecomputeMode(enum.Enum):
    EVERY_REFRESH = "every_refresh"
    ON_WINDOW_VIOLATION = "on_window_violation"
    AAO_PERIODIC = "aao_periodic"


class Coordinator:
    """Single-coordinator query service."""

    def __init__(
        self,
        queries: Sequence[PolynomialQuery],
        planner: object,
        mode: RecomputeMode,
        queue: EventQueue,
        metrics: MetricsCollector,
        initial_values: Mapping[str, float],
        item_to_source: Mapping[str, int],
        network_delay: Optional[DelayModel] = None,
        aao_planner: Optional[object] = None,
        aao_period: Optional[int] = None,
        check_delay: Optional[DelayModel] = None,
        recompute_delay: Optional[DelayModel] = None,
        rate_tracker: Optional[object] = None,
        fault_model: Optional[FaultModel] = None,
        vectorize: bool = False,
    ):
        if not queries:
            raise SimulationError("a coordinator needs at least one query")
        names = [q.name for q in queries]
        if len(set(names)) != len(names):
            raise SimulationError("query names must be unique at a coordinator")
        if mode is RecomputeMode.AAO_PERIODIC:
            if aao_planner is None or aao_period is None or aao_period < 1:
                raise SimulationError(
                    "AAO_PERIODIC mode needs an aao_planner and a period >= 1"
                )

        self.queries = list(queries)
        self.planner = planner
        self.mode = mode
        self.queue = queue
        self.metrics = metrics
        self.network_delay = network_delay if network_delay is not None else ZeroDelayModel()
        #: Coordinator compute costs: QAB-check per refresh, GP solve per
        #: recomputation.  While the coordinator is busy, arriving
        #: refreshes queue — the load effect behind the paper's fidelity
        #: differences ("the lower the number of refreshes at C, the lesser
        #: is the computational load on C and the smaller the delay
        #: perceived by the user").
        self.check_delay = check_delay if check_delay is not None else ZeroDelayModel()
        self.recompute_delay = (recompute_delay if recompute_delay is not None
                                else ZeroDelayModel())
        self.busy_until = 0.0
        #: Optional OnlineRateTracker: refreshed rates flow into subsequent
        #: recomputations through the shared cost-model dict.
        self.rate_tracker = rate_tracker
        self.aao_planner = aao_planner
        self.aao_period = aao_period
        self.item_to_source = dict(item_to_source)
        self.faults = fault_model if fault_model is not None else DISABLED

        self.cache: Dict[str, float] = {
            name: float(initial_values[name])
            for q in self.queries for name in q.variables
        }
        self.plans: Dict[str, DABAssignment] = {}
        self.last_user_values: Dict[str, float] = {}
        self._last_sent_bounds: Dict[str, float] = {}
        self._sources: Dict[int, object] = {}

        # -- vectorized fast path (bitwise-equal to the scalar one) -----------
        self._vectorize = bool(vectorize)
        self._compiled: Dict[str, CompiledPolynomial] = {}
        self._power_table: Optional[PowerTable] = None
        self._power_vector: Optional[np.ndarray] = None
        self._bank: Optional[CompiledQueryBank] = None
        self._bank_index: Dict[str, int] = {}
        #: query name -> mutable [plan, missing_ref, breach_count, flags,
        #: references, widened]; maintained incrementally as items refresh,
        #: rebuilt whenever the query's plan object changes.
        self._window_state: Dict[str, list] = {}
        if self._vectorize:
            self._power_table = PowerTable()
            for query in self.queries:
                self._compiled[query.name] = CompiledPolynomial(
                    query, self._power_table)
            self._power_vector = self._power_table.vector(self.cache)
            self._bank = CompiledQueryBank(
                [self._compiled[query.name] for query in self.queries])
            self._bank_index = {query.name: i
                                for i, query in enumerate(self.queries)}

        self.item_index: Dict[str, List[PolynomialQuery]] = {}
        for query in self.queries:
            for name in query.variables:
                self.item_index.setdefault(name, []).append(query)

        #: Vectorized notification state: per-query QABs and the last
        #: user-visible values mirrored as arrays (bank order), plus each
        #: item's affected-query indices, so one masked compare replaces the
        #: per-query notification loop in ``on_refresh``.
        self._qab_arr: Optional[np.ndarray] = None
        self._last_user_arr: Optional[np.ndarray] = None
        self._affected_idx: Dict[str, np.ndarray] = {}
        self._item_banks: Dict[str, CompiledQueryBank] = {}
        if self._vectorize:
            self._qab_arr = np.array([q.qab for q in self.queries], dtype=float)
            self._last_user_arr = np.zeros(len(self.queries))
            self._affected_idx = {
                name: np.array([self._bank_index[q.name] for q in affected],
                               dtype=np.intp)
                for name, affected in self.item_index.items()
            }
            # Per-item sub-banks: a refresh of one item only needs the
            # values of the queries containing it, so evaluating a bank
            # restricted to those rows does strictly less work than the
            # full bank while producing bitwise-identical per-query sums.
            self._item_banks = {
                name: CompiledQueryBank(
                    [self._compiled[q.name] for q in affected])
                for name, affected in self.item_index.items()
            }

        #: Per-item monotone DAB epoch (incremented on every shipped change).
        self.epochs: Dict[str, int] = {}
        # -- reliable-delivery state (fault mode only) ------------------------
        self._msg_counter = 0
        #: msg_id -> {"source_id", "bounds", "epochs", "attempt"}
        self._outstanding: Dict[int, Dict[str, Any]] = {}
        # -- staleness leases (fault mode only) -------------------------------
        #: item -> last time a refresh/heartbeat vouched for it.
        self.last_heard: Dict[str, float] = {name: 0.0 for name in self.item_index}
        #: item -> highest refresh sequence number received (gap detection).
        self.last_seq: Dict[str, int] = {}
        #: item -> time it became suspect (lease expired, value re-requested).
        self.suspect_since: Dict[str, float] = {}
        #: item -> last time its staleness exposure was accumulated.
        self._exposure_accounted: Dict[str, float] = {}
        self._source_items: Dict[int, List[str]] = {}
        for name, source_id in self.item_to_source.items():
            self._source_items.setdefault(source_id, []).append(name)

    # -- wiring ---------------------------------------------------------------------

    def attach_sources(self, sources: Iterable[object]) -> None:
        """Register source nodes for direct bootstrap and DAB fanout."""
        for source in sources:
            self._sources[source.source_id] = source

    # -- bootstrap --------------------------------------------------------------------

    def initial_plan(self) -> None:
        """Plan every query at the initial values and seed the sources'
        filters directly (time-zero configuration is assumed in place when
        the paper's observation window starts)."""
        if self.mode is RecomputeMode.AAO_PERIODIC:
            multi = self.aao_planner.plan_all(self.queries, self.cache)
            self.plans = dict(multi.per_query)
            self.queue.push(Event(float(self.aao_period), EventKind.AAO_PERIODIC))
        else:
            for query in self.queries:
                self.plans[query.name] = self._plan_query(query)
        for index, query in enumerate(self.queries):
            value = self.query_value(query)
            self.last_user_values[query.name] = value
            if self._last_user_arr is not None:
                self._last_user_arr[index] = value
        merged = merge_primary(self.plans.values())
        self._last_sent_bounds = dict(merged)
        for source_id, source in self._sources.items():
            owned = {name: bound for name, bound in merged.items()
                     if self.item_to_source.get(name) == source_id}
            source.set_bounds(owned)
        if self.faults.enabled:
            interval = self.faults.config.lease_check_interval
            self.queue.push(Event(interval, EventKind.LEASE_CHECK))

    # -- helpers ---------------------------------------------------------------------

    def _values_for(self, query: PolynomialQuery) -> Dict[str, float]:
        return {name: self.cache[name] for name in query.variables}

    @property
    def power_table(self) -> PowerTable:
        """The shared (item, exponent) slot registry (vectorized runs only)."""
        if self._power_table is None:
            raise SimulationError("coordinator was built with vectorize=False")
        return self._power_table

    def compiled_query(self, query: PolynomialQuery) -> CompiledPolynomial:
        """The compiled evaluator for ``query`` (vectorized runs only)."""
        return self._compiled[query.name]

    def query_value(self, query: PolynomialQuery) -> float:
        if self._vectorize:
            return self._compiled[query.name].evaluate_vector(self._power_vector)
        return query.evaluate(self.cache)

    def query_values(self) -> List[float]:
        """Every query's value at the current cache, in ``queries`` order —
        one banked evaluation on vectorized runs."""
        if self._vectorize:
            return self._bank.values_vector(self._power_vector).tolist()
        return [query.evaluate(self.cache) for query in self.queries]

    def query_values_array(self) -> np.ndarray:
        """Array form of :meth:`query_values` (vectorized runs only)."""
        return self._bank.values_vector(self._power_vector)

    def _window_contains(self, query: PolynomialQuery, plan: DABAssignment,
                         changed_item: Optional[str] = None) -> bool:
        """``plan.window_contains(self._values_for(query))``, incremental.

        The breach predicate per item — ``|value - ref| > secondary + 1e-12``
        on the same float64 values — is replayed exactly, but evaluated only
        when an input actually changes: ``changed_item`` names the one item
        whose cache value moved since the last check (every refresh of an
        item checks every query containing it, so flags never go stale), and
        a plan change rebuilds the query's flags from scratch.  The check
        itself is then a zero-compare.  Single-DAB plans (``secondary is
        None``, exact-equality semantics) stay on the scalar path.
        """
        if not self._vectorize or plan.secondary is None:
            return plan.window_contains(self._values_for(query))
        entry = self._window_state.get(query.name)
        if entry is not None and entry[0] is plan:
            if entry[1]:
                return False
            if changed_item is not None:
                flags = entry[3]
                old = flags.get(changed_item)
                if old is not None:
                    breached = (abs(self.cache[changed_item]
                                    - entry[4][changed_item])
                                > entry[5][changed_item])
                    if breached is not old:
                        flags[changed_item] = breached
                        entry[2] += 1 if breached else -1
            return entry[2] == 0
        variables = set(query.variables)
        missing = False
        count = 0
        flags: Dict[str, bool] = {}
        references: Dict[str, float] = {}
        widened: Dict[str, float] = {}
        for name in plan.primary:
            if name not in variables:
                continue
            reference = plan.reference_values.get(name)
            if reference is None:
                missing = True
                break
            wide = plan.secondary[name] + 1e-12
            breached = abs(self.cache[name] - reference) > wide
            flags[name] = breached
            count += breached
            references[name] = reference
            widened[name] = wide
        self._window_state[query.name] = [plan, missing, count, flags,
                                          references, widened]
        if missing:
            return False
        return count == 0

    def _clear_planner_warm_starts(self) -> None:
        """A recovered source resynced: its items may have drifted
        arbitrarily far while it was down, so solver warm starts anchored
        near the pre-crash optimum are stale — drop them before the replan
        this resync triggers (plan caches stay; they are value-keyed)."""
        for planner in (self.planner, self.aao_planner):
            clear = getattr(planner, "clear_warm_starts", None)
            if clear is not None:
                clear()

    def _plan_query(self, query: PolynomialQuery) -> DABAssignment:
        """One guarded GP solve: solver failures degrade, never escape."""
        try:
            return self.planner.plan(query, self._values_for(query))
        except GPError:
            self.metrics.record_solver_fallback()
            previous = self.plans.get(query.name)
            if previous is not None:
                return previous
            # Cold start: no valid plan to keep — fall back to the uniform
            # single-DAB split, which needs no rate information or solver.
            from repro.filters.baselines import UniformAllocationBaseline

            return UniformAllocationBaseline().plan(query, self._values_for(query))

    def _recompute(self, query: PolynomialQuery) -> None:
        plan = self._plan_query(query)
        self.plans[query.name] = plan
        self.metrics.record_recomputation(query.name)
        self.busy_until += self.recompute_delay.sample()

    def _fanout_bound_changes(self, time: float) -> None:
        """Ship changed merged DABs to the owning sources."""
        merged = merge_primary(self.plans.values())
        changed_by_source: Dict[int, Dict[str, float]] = {}
        for name, bound in merged.items():
            previous = self._last_sent_bounds.get(name)
            if previous is not None and abs(bound - previous) <= _DAB_CHANGE_REL_TOL * previous:
                continue
            self._last_sent_bounds[name] = bound
            self.epochs[name] = self.epochs.get(name, 0) + 1
            source_id = self.item_to_source.get(name)
            if source_id is not None:
                changed_by_source.setdefault(source_id, {})[name] = bound
        for source_id, bounds in changed_by_source.items():
            epochs = {name: self.epochs[name] for name in bounds}
            self.metrics.record_dab_change_messages(1)
            self._send_dab_change(source_id, bounds, epochs, time)

    def _send_dab_change(self, source_id: int, bounds: Mapping[str, float],
                         epochs: Mapping[str, int], time: float,
                         msg_id: Optional[int] = None) -> None:
        """Deliver one DAB-change message, subject to faults; in fault mode
        track it for ack/retry."""
        payload: Dict[str, Any] = {"source_id": source_id, "bounds": dict(bounds),
                                   "epochs": dict(epochs)}
        if self.faults.enabled:
            if msg_id is None:
                self._msg_counter += 1
                msg_id = self._msg_counter
                self._outstanding[msg_id] = {
                    "source_id": source_id, "bounds": dict(bounds),
                    "epochs": dict(epochs), "attempt": 0,
                }
            payload["msg_id"] = msg_id
            self.queue.push(Event(
                time + self.faults.config.retry_timeout, EventKind.RETRY_CHECK,
                {"msg_id": msg_id}))
        link = f"coord->src{source_id}"
        if self.faults.drop(link, time):
            self.metrics.record_message_dropped()
            return
        delay = self.network_delay.sample() * self.faults.delay_factor(time)
        self.queue.push(Event(time=time + delay, kind=EventKind.DAB_CHANGE_ARRIVAL,
                              payload=payload))
        if self.faults.duplicate(link, time):
            self.metrics.record_message_duplicated()
            self.queue.push(Event(time=time + self.network_delay.sample(),
                                  kind=EventKind.DAB_CHANGE_ARRIVAL,
                                  payload=dict(payload)))

    # -- degradation accounting ------------------------------------------------------

    def _hear_from_item(self, name: str, time: float) -> None:
        """A refresh (or probe reply) vouched for ``name``: renew its lease
        and clear any suspicion, closing the staleness-exposure interval."""
        self.last_heard[name] = time
        if name in self.suspect_since:
            accounted = self._exposure_accounted.pop(name, time)
            self.metrics.record_staleness_exposure(max(0.0, time - accounted))
            del self.suspect_since[name]

    def suspect_items_of(self, query: PolynomialQuery) -> List[str]:
        """The query's items currently marked suspect (stale leases)."""
        return [name for name in query.variables if name in self.suspect_since]

    def reported_bound(self, query: PolynomialQuery, time: float) -> float:
        """The accuracy bound the coordinator honestly reports *now*.

        With no suspect inputs this is the query's QAB.  For each suspect
        item the bound is conservatively widened by the query's response to
        an assumed drift that grows with the item's staleness — the served
        answer carries its real uncertainty instead of a silently-broken
        QAB (the degradation Condition 1 cannot cover once deliveries are
        lost)."""
        extra = 0.0
        config = self.faults.config
        base = self.query_value(query)
        for name in self.suspect_items_of(query):
            staleness = max(0.0, time - self.suspect_since[name])
            drift = (config.suspect_drift_rel * max(abs(self.cache[name]), 1e-12)
                     * (1.0 + staleness / config.lease_duration))
            perturbed = dict(self.cache)
            perturbed[name] = self.cache[name] + drift
            up = abs(query.evaluate(perturbed) - base)
            perturbed[name] = self.cache[name] - drift
            down = abs(query.evaluate(perturbed) - base)
            extra += max(up, down)
        return query.qab + extra

    # -- event handlers -----------------------------------------------------------------

    def on_refresh(self, event: Event) -> None:
        if event.time < self.busy_until - 1e-12:
            # The coordinator is still working through earlier arrivals; the
            # refresh waits in its input queue.  Priority -1 keeps this
            # already-arrived refresh ahead of any later event that lands on
            # exactly ``busy_until`` (FIFO service, no tie starvation).
            self.queue.push(Event(self.busy_until, EventKind.REFRESH_ARRIVAL,
                                  event.payload), priority=-1)
            return
        self.busy_until = event.time + self.check_delay.sample()
        item = event.payload["item"]
        seq = event.payload.get("seq")
        if seq is not None and self.faults.enabled:
            # Sequence numbers order refresh deliveries: a duplicate or a
            # refresh that was overtaken by a newer one must not clobber
            # the cache with a stale value.  (Gated to fault mode so the
            # fault-free path is bit-identical to the original simulator.)
            if seq <= self.last_seq.get(item, 0):
                self.metrics.record_refresh()
                self.metrics.record_duplicate_reject()
                return
            self.last_seq[item] = int(seq)
        self.cache[item] = float(event.payload["value"])
        if self._vectorize:
            self._power_table.update(self._power_vector, item, self.cache[item])
        self.metrics.record_refresh()
        self._hear_from_item(item, event.time)
        if self.faults.enabled and event.payload.get("resync"):
            self._clear_planner_warm_starts()
        if self.rate_tracker is not None:
            self.rate_tracker.observe(item, self.cache[item], event.time)

        affected = self.item_index.get(item, [])
        recomputed = False
        if self._vectorize and affected:
            # User notification, batched: one sub-bank evaluation gives
            # every affected query's value (the cache cannot change again
            # within this event), and one masked compare finds the queries
            # whose result moved beyond the QAB since the user last saw it.
            # Notifications draw no randomness, so hoisting them ahead of
            # the recompute loop leaves the event-stream state untouched.
            idx = self._affected_idx[item]
            sub = self._item_banks[item].values_vector(self._power_vector)
            moved = np.abs(sub - self._last_user_arr[idx]) > self._qab_arr[idx]
            if moved.any():
                for pos in np.nonzero(moved)[0].tolist():
                    bank_pos = int(idx[pos])
                    value = float(sub[pos])
                    self.last_user_values[self.queries[bank_pos].name] = value
                    self._last_user_arr[bank_pos] = value
                    self.metrics.record_user_notification()
            if self.mode is RecomputeMode.EVERY_REFRESH:
                for query in affected:
                    self._recompute(query)
                recomputed = True
            else:
                # The window check, inlined from ``_window_contains``'s fast
                # path: only ``item`` moved, so only its breach flag can
                # have changed since the last check of the same plan.
                plans = self.plans
                wstate = self._window_state
                cache_value = self.cache[item]
                for query in affected:
                    plan = plans.get(query.name)
                    if plan is not None:
                        entry = wstate.get(query.name)
                        if entry is not None and entry[0] is plan:
                            if entry[1]:
                                contains = False
                            else:
                                flags = entry[3]
                                old = flags.get(item)
                                if old is not None:
                                    breached = (abs(cache_value
                                                    - entry[4][item])
                                                > entry[5][item])
                                    if breached is not old:
                                        flags[item] = breached
                                        entry[2] += 1 if breached else -1
                                contains = entry[2] == 0
                        else:
                            contains = self._window_contains(query, plan,
                                                             item)
                        if contains:
                            continue
                    self._recompute(query)
                    recomputed = True
        else:
            for query in affected:
                # User notification: has the result moved beyond the QAB
                # since the last value the user saw?
                value = self.query_value(query)
                if abs(value - self.last_user_values[query.name]) > query.qab:
                    self.last_user_values[query.name] = value
                    self.metrics.record_user_notification()

                if self.mode is RecomputeMode.EVERY_REFRESH:
                    self._recompute(query)
                    recomputed = True
                else:
                    plan = self.plans.get(query.name)
                    if plan is None or not self._window_contains(query, plan):
                        self._recompute(query)
                        recomputed = True
        if recomputed:
            self._fanout_bound_changes(event.time)

    def on_aao_periodic(self, event: Event) -> None:
        """Full joint recomputation on the AAO-T schedule.

        One AAO solve is counted as a single recomputation (it is one
        coordinated DAB change, whose larger fanout is folded into μ, as in
        the paper's accounting for Figure 7)."""
        try:
            multi = self.aao_planner.plan_all(self.queries, self.cache)
        except GPError:
            # Keep serving on the previous joint plan; try again next period.
            self.metrics.record_solver_fallback()
        else:
            self.plans = dict(multi.per_query)
            self.metrics.record_recomputation("__aao__")
        # A joint solve occupies the coordinator roughly per-query as long
        # as a single-query solve (the paper: 600-750 ms for 10 PPQs).
        self.busy_until = max(self.busy_until, event.time)
        for _ in self.queries:
            self.busy_until += self.recompute_delay.sample()
        self._fanout_bound_changes(event.time)
        self.queue.push(Event(event.time + self.aao_period, EventKind.AAO_PERIODIC))

    def on_dab_change(self, event: Event) -> None:
        source = self._sources.get(event.payload["source_id"])
        if source is None:
            raise SimulationError(
                f"DAB change addressed to unknown source {event.payload['source_id']!r}"
            )
        source.on_dab_change(event)

    # -- fault-mode handlers -------------------------------------------------------------

    def on_dab_ack(self, event: Event) -> None:
        """A source acknowledged a DAB-change message: stop retrying it."""
        self._outstanding.pop(event.payload["msg_id"], None)

    def on_retry_check(self, event: Event) -> None:
        """Retransmit a still-unacknowledged DAB-change with backoff."""
        msg_id = event.payload["msg_id"]
        pending = self._outstanding.get(msg_id)
        if pending is None:
            return
        config = self.faults.config
        pending["attempt"] += 1
        if pending["attempt"] > config.retry_max:
            # Give up; the epoch/lease machinery bounds the damage and the
            # next genuine DAB change supersedes these bounds anyway.
            self.metrics.record_dab_retry_exhausted()
            del self._outstanding[msg_id]
            return
        self.metrics.record_dab_retry()
        backoff = min(config.retry_cap,
                      config.retry_timeout * config.retry_backoff ** pending["attempt"])
        payload = {"source_id": pending["source_id"], "bounds": dict(pending["bounds"]),
                   "epochs": dict(pending["epochs"]), "msg_id": msg_id}
        link = f"coord->src{pending['source_id']}"
        if self.faults.drop(link, event.time):
            self.metrics.record_message_dropped()
        else:
            delay = self.network_delay.sample() * self.faults.delay_factor(event.time)
            self.queue.push(Event(event.time + delay, EventKind.DAB_CHANGE_ARRIVAL,
                                  payload))
        self.queue.push(Event(event.time + backoff, EventKind.RETRY_CHECK,
                              {"msg_id": msg_id}))

    def on_heartbeat(self, event: Event) -> None:
        """A source's liveness beacon.

        A quiet item whose sequence number matches is fresh (the push
        filter guarantees an in-bound value), so its lease renews.  A
        sequence number *ahead* of what we received means refreshes were
        lost in flight — the cache may be arbitrarily stale even though
        the source is alive — so the item goes suspect and its value is
        re-requested immediately."""
        seqs = event.payload.get("seqs") or {}
        for name in self._source_items.get(event.payload["source_id"], ()):
            if name not in self.last_heard:
                continue
            expected = seqs.get(name)
            if expected is not None and expected > self.last_seq.get(name, 0):
                if name not in self.suspect_since:
                    self.suspect_since[name] = event.time
                    self._exposure_accounted[name] = event.time
                    self.metrics.record_refresh_gap()
                    self._probe(name, event.time)
            else:
                self._hear_from_item(name, event.time)

    def on_lease_check(self, event: Event) -> None:
        """Expire leases, mark items suspect, and re-request their values."""
        config = self.faults.config
        time = event.time
        for name in self.item_index:
            if name in self.suspect_since:
                # Accumulate exposure since the last accounting and keep
                # probing until the source answers.
                accounted = self._exposure_accounted.get(name, self.suspect_since[name])
                self.metrics.record_staleness_exposure(max(0.0, time - accounted))
                self._exposure_accounted[name] = time
                self._probe(name, time)
            elif time - self.last_heard.get(name, 0.0) > config.lease_duration:
                self.suspect_since[name] = time
                self._exposure_accounted[name] = time
                self.metrics.record_lease_expiry()
                self._probe(name, time)
        self.queue.push(Event(time + config.lease_check_interval,
                              EventKind.LEASE_CHECK))

    def _probe(self, name: str, time: float) -> None:
        """Re-request a suspect item's value from its owning source."""
        source_id = self.item_to_source.get(name)
        if source_id is None:
            return
        self.metrics.record_value_probe()
        link = f"coord->src{source_id}"
        if self.faults.drop(link, time):
            self.metrics.record_message_dropped()
            return
        delay = self.network_delay.sample() * self.faults.delay_factor(time)
        self.queue.push(Event(time + delay, EventKind.VALUE_PROBE_ARRIVAL,
                              {"item": name, "source_id": source_id}))
