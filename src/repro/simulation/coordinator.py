"""The coordinator: cache, query service, recompute policy, DAB fanout.

The coordinator receives refreshes, keeps the latest value per item, and on
every refresh (a) notifies users whose query value moved beyond its QAB
since the last notification, and (b) applies the configured *recompute
policy*:

* ``EVERY_REFRESH`` — single-DAB semantics (Optimal Refresh and the
  baselines): the arriving refresh invalidates the DABs of every query that
  uses the item, so each is recomputed (the behaviour Figure 5 shows to be
  ruinous at scale);
* ``ON_WINDOW_VIOLATION`` — dual-DAB semantics: recompute a query only
  when some item left its secondary window;
* ``AAO_PERIODIC`` — the Figure-7 AAO-T hybrid: a full joint AAO solve
  every ``T`` ticks, window-violation patches with the per-query planner in
  between.

After recomputations the coordinator ships changed primary DABs to the
owning sources as DAB-change messages (one message per source notified —
the overhead μ approximates).
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.exceptions import SimulationError
from repro.filters.assignment import DABAssignment, merge_primary
from repro.queries.polynomial import PolynomialQuery
from repro.simulation.events import Event, EventKind, EventQueue
from repro.simulation.metrics import MetricsCollector
from repro.simulation.network import DelayModel, ZeroDelayModel

#: Relative change below which a DAB update is not worth a message.
_DAB_CHANGE_REL_TOL = 1e-9


class RecomputeMode(enum.Enum):
    EVERY_REFRESH = "every_refresh"
    ON_WINDOW_VIOLATION = "on_window_violation"
    AAO_PERIODIC = "aao_periodic"


class Coordinator:
    """Single-coordinator query service."""

    def __init__(
        self,
        queries: Sequence[PolynomialQuery],
        planner: object,
        mode: RecomputeMode,
        queue: EventQueue,
        metrics: MetricsCollector,
        initial_values: Mapping[str, float],
        item_to_source: Mapping[str, int],
        network_delay: Optional[DelayModel] = None,
        aao_planner: Optional[object] = None,
        aao_period: Optional[int] = None,
        check_delay: Optional[DelayModel] = None,
        recompute_delay: Optional[DelayModel] = None,
        rate_tracker: Optional[object] = None,
    ):
        if not queries:
            raise SimulationError("a coordinator needs at least one query")
        names = [q.name for q in queries]
        if len(set(names)) != len(names):
            raise SimulationError("query names must be unique at a coordinator")
        if mode is RecomputeMode.AAO_PERIODIC:
            if aao_planner is None or aao_period is None or aao_period < 1:
                raise SimulationError(
                    "AAO_PERIODIC mode needs an aao_planner and a period >= 1"
                )

        self.queries = list(queries)
        self.planner = planner
        self.mode = mode
        self.queue = queue
        self.metrics = metrics
        self.network_delay = network_delay if network_delay is not None else ZeroDelayModel()
        #: Coordinator compute costs: QAB-check per refresh, GP solve per
        #: recomputation.  While the coordinator is busy, arriving
        #: refreshes queue — the load effect behind the paper's fidelity
        #: differences ("the lower the number of refreshes at C, the lesser
        #: is the computational load on C and the smaller the delay
        #: perceived by the user").
        self.check_delay = check_delay if check_delay is not None else ZeroDelayModel()
        self.recompute_delay = (recompute_delay if recompute_delay is not None
                                else ZeroDelayModel())
        self.busy_until = 0.0
        #: Optional OnlineRateTracker: refreshed rates flow into subsequent
        #: recomputations through the shared cost-model dict.
        self.rate_tracker = rate_tracker
        self.aao_planner = aao_planner
        self.aao_period = aao_period
        self.item_to_source = dict(item_to_source)

        self.cache: Dict[str, float] = {
            name: float(initial_values[name])
            for q in self.queries for name in q.variables
        }
        self.plans: Dict[str, DABAssignment] = {}
        self.last_user_values: Dict[str, float] = {}
        self._last_sent_bounds: Dict[str, float] = {}
        self._sources: Dict[int, object] = {}

        self.item_index: Dict[str, List[PolynomialQuery]] = {}
        for query in self.queries:
            for name in query.variables:
                self.item_index.setdefault(name, []).append(query)

    # -- wiring ---------------------------------------------------------------------

    def attach_sources(self, sources: Iterable[object]) -> None:
        """Register source nodes for direct bootstrap and DAB fanout."""
        for source in sources:
            self._sources[source.source_id] = source

    # -- bootstrap --------------------------------------------------------------------

    def initial_plan(self) -> None:
        """Plan every query at the initial values and seed the sources'
        filters directly (time-zero configuration is assumed in place when
        the paper's observation window starts)."""
        if self.mode is RecomputeMode.AAO_PERIODIC:
            multi = self.aao_planner.plan_all(self.queries, self.cache)
            self.plans = dict(multi.per_query)
            self.queue.push(Event(float(self.aao_period), EventKind.AAO_PERIODIC))
        else:
            for query in self.queries:
                self.plans[query.name] = self.planner.plan(
                    query, self._values_for(query)
                )
        for query in self.queries:
            self.last_user_values[query.name] = query.evaluate(self.cache)
        merged = merge_primary(self.plans.values())
        self._last_sent_bounds = dict(merged)
        for source in self._sources.values():
            source.set_bounds(merged)

    # -- helpers ---------------------------------------------------------------------

    def _values_for(self, query: PolynomialQuery) -> Dict[str, float]:
        return {name: self.cache[name] for name in query.variables}

    def query_value(self, query: PolynomialQuery) -> float:
        return query.evaluate(self.cache)

    def _recompute(self, query: PolynomialQuery) -> None:
        self.plans[query.name] = self.planner.plan(query, self._values_for(query))
        self.metrics.record_recomputation(query.name)
        self.busy_until += self.recompute_delay.sample()

    def _fanout_bound_changes(self, time: float) -> None:
        """Ship changed merged DABs to the owning sources."""
        merged = merge_primary(self.plans.values())
        changed_by_source: Dict[int, Dict[str, float]] = {}
        for name, bound in merged.items():
            previous = self._last_sent_bounds.get(name)
            if previous is not None and abs(bound - previous) <= _DAB_CHANGE_REL_TOL * previous:
                continue
            self._last_sent_bounds[name] = bound
            source_id = self.item_to_source.get(name)
            if source_id is not None:
                changed_by_source.setdefault(source_id, {})[name] = bound
        for source_id, bounds in changed_by_source.items():
            self.metrics.record_dab_change_messages(1)
            self.queue.push(Event(
                time=time + self.network_delay.sample(),
                kind=EventKind.DAB_CHANGE_ARRIVAL,
                payload={"source_id": source_id, "bounds": bounds},
            ))

    # -- event handlers -----------------------------------------------------------------

    def on_refresh(self, event: Event) -> None:
        if event.time < self.busy_until - 1e-12:
            # The coordinator is still working through earlier arrivals;
            # the refresh waits in its input queue.
            self.queue.push(Event(self.busy_until, EventKind.REFRESH_ARRIVAL,
                                  event.payload))
            return
        self.busy_until = event.time + self.check_delay.sample()
        item = event.payload["item"]
        self.cache[item] = float(event.payload["value"])
        self.metrics.record_refresh()
        if self.rate_tracker is not None:
            self.rate_tracker.observe(item, self.cache[item], event.time)

        affected = self.item_index.get(item, [])
        recomputed = False
        for query in affected:
            # User notification: has the result moved beyond the QAB since
            # the last value the user saw?
            value = self.query_value(query)
            if abs(value - self.last_user_values[query.name]) > query.qab:
                self.last_user_values[query.name] = value
                self.metrics.record_user_notification()

            if self.mode is RecomputeMode.EVERY_REFRESH:
                self._recompute(query)
                recomputed = True
            else:
                plan = self.plans.get(query.name)
                if plan is None or not plan.window_contains(self._values_for(query)):
                    self._recompute(query)
                    recomputed = True
        if recomputed:
            self._fanout_bound_changes(event.time)

    def on_aao_periodic(self, event: Event) -> None:
        """Full joint recomputation on the AAO-T schedule.

        One AAO solve is counted as a single recomputation (it is one
        coordinated DAB change, whose larger fanout is folded into μ, as in
        the paper's accounting for Figure 7)."""
        multi = self.aao_planner.plan_all(self.queries, self.cache)
        self.plans = dict(multi.per_query)
        self.metrics.record_recomputation("__aao__")
        # A joint solve occupies the coordinator roughly per-query as long
        # as a single-query solve (the paper: 600-750 ms for 10 PPQs).
        self.busy_until = max(self.busy_until, event.time)
        for _ in self.queries:
            self.busy_until += self.recompute_delay.sample()
        self._fanout_bound_changes(event.time)
        self.queue.push(Event(event.time + self.aao_period, EventKind.AAO_PERIODIC))

    def on_dab_change(self, event: Event) -> None:
        source = self._sources.get(event.payload["source_id"])
        if source is None:
            raise SimulationError(
                f"DAB change addressed to unknown source {event.payload['source_id']!r}"
            )
        source.on_dab_change(event)
