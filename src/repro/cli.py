"""Command-line interface.

Four subcommands mirror the library's workflow::

    repro plan "x*y : 5" --values x=2,y=2 --rates x=1,y=1 --mu 5
    repro simulate --queries 10 --items 30 --duration 300 --algorithm dual_dab
    repro figures fig5 --queries 5,10 --items 30 --trace-length 201
    repro traces --items 3 --length 10 --kind gbm

``python -m repro ...`` works identically.  Every command prints plain
text; exit code 0 on success, 2 on argument errors (argparse convention).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.exceptions import ReproError


def _parse_kv(text: str, label: str) -> Dict[str, float]:
    """Parse ``"x=2,y=3.5"`` into a dict; raises SystemExit(2) on junk."""
    out: Dict[str, float] = {}
    if not text:
        return out
    for piece in text.split(","):
        if "=" not in piece:
            raise SystemExit(f"error: {label} expects name=value pairs, got {piece!r}")
        name, _, value = piece.partition("=")
        try:
            out[name.strip()] = float(value)
        except ValueError:
            raise SystemExit(f"error: bad number in {label}: {piece!r}")
    return out


def _parse_int_list(text: str) -> List[int]:
    return [int(p) for p in text.split(",") if p]


# ---------------------------------------------------------------------------
# plan
# ---------------------------------------------------------------------------

def cmd_plan(args: argparse.Namespace) -> int:
    from repro.filters import CostModel
    from repro.filters.heuristics import dispatch_planner
    from repro.queries import parse_query

    query = parse_query(args.query, qab=args.qab)
    values = _parse_kv(args.values, "--values")
    missing = [n for n in query.variables if n not in values]
    if missing:
        raise SystemExit(f"error: no values for items: {', '.join(missing)}")
    rates = _parse_kv(args.rates, "--rates")
    model = CostModel(ddm=args.ddm, rates=rates, recompute_cost=args.mu)
    planner = dispatch_planner(model, dual=not args.single_dab,
                               heuristic=args.heuristic)
    plan = planner.plan(query, values)

    print(f"query: {query}")
    print(f"algorithm: {'optimal refresh' if args.single_dab else 'dual-DAB'} "
          f"/ {args.heuristic} (mu={args.mu:g}, ddm={model.ddm.value})")
    print(f"{'item':>10s} {'value':>12s} {'primary b':>12s} {'secondary c':>12s}")
    for item in sorted(plan.primary):
        secondary = plan.secondary[item] if plan.secondary else float("nan")
        print(f"{item:>10s} {values[item]:12.4f} {plan.primary[item]:12.6f} "
              f"{secondary:12.6f}")
    if plan.secondary is not None:
        print(f"estimated recomputation rate R = {plan.recompute_rate:.6f}/tick")
    print(f"estimated refresh rate = "
          f"{model.estimated_refresh_rate(plan.primary):.6f}/tick")
    return 0


# ---------------------------------------------------------------------------
# simulate
# ---------------------------------------------------------------------------

def _build_fault_config(args: argparse.Namespace):
    """A FaultConfig from the simulate flags, or None when nothing is set."""
    from repro.simulation import (
        FaultConfig,
        parse_crash_spec,
        parse_delay_spike_spec,
        parse_partition_spec,
    )

    config = FaultConfig(
        loss_rate=args.loss_rate,
        duplicate_rate=args.duplicate_rate,
        crash_windows=parse_crash_spec(args.crash_spec),
        partitions=parse_partition_spec(args.partition_spec),
        delay_spikes=parse_delay_spike_spec(args.delay_spike_spec),
        seed=args.fault_seed,
        lease_duration=args.lease_duration,
        heartbeat_interval=args.heartbeat_interval,
        retry_timeout=args.retry_timeout,
    )
    return config if config.enabled else None


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.experiments import (
        derive_seed,
        fault_counter_rows,
        format_table,
        run_seed_sweep,
    )
    from repro.simulation import SimulationConfig, run_simulation
    from repro.workloads import scaled_scenario

    scenario = scaled_scenario(
        query_count=args.queries, item_count=args.items,
        trace_length=args.duration + 1, source_count=args.sources,
        query_kind=args.workload, seed=args.seed,
    )
    fault_config = _build_fault_config(args)
    config = SimulationConfig(
        queries=scenario.queries, traces=scenario.traces,
        algorithm=args.algorithm, ddm=args.ddm, recompute_cost=args.mu,
        duration=args.duration, source_count=args.sources, seed=args.seed,
        fidelity_interval=args.fidelity_interval, zero_delay=args.zero_delay,
        aao_period=args.aao_period, fault_config=fault_config,
        vectorize=not args.no_vectorize,
    )
    if args.runs > 1:
        results = run_seed_sweep(config, args.runs, jobs=args.jobs)
        rows = []
        for index, result in enumerate(results):
            m = result.metrics
            rows.append({
                "run": index, "seed": derive_seed(config.seed, index),
                "refreshes": m.refreshes,
                "recomputations": m.recomputations,
                "total_cost": round(m.total_cost, 1),
                "fidelity_loss_%": round(m.fidelity_loss_percent, 3),
                "gp_solves": m.gp_solves,
            })
        print(f"algorithm={args.algorithm} queries={args.queries} "
              f"items={args.items} duration={args.duration}s mu={args.mu:g} "
              f"base_seed={args.seed} runs={args.runs} jobs={args.jobs or 1}")
        print(format_table(rows, "Seed sweep"))
        return 0
    result = run_simulation(config)
    m = result.metrics
    print(f"algorithm={args.algorithm} queries={args.queries} items={args.items} "
          f"duration={args.duration}s mu={args.mu:g} seed={args.seed}")
    print(f"refreshes            {m.refreshes}")
    print(f"recomputations       {m.recomputations}")
    print(f"total cost           {m.total_cost:.0f}")
    print(f"fidelity loss        {m.fidelity_loss_percent:.3f}%")
    print(f"user notifications   {m.user_notifications}")
    print(f"DAB-change messages  {m.dab_change_messages}")
    print(f"GP solves            {m.gp_solves} "
          f"(cache hits {result.cache_hits})")
    print(f"wall time            {result.wall_seconds:.2f}s")
    if fault_config is not None:
        print()
        print(format_table(fault_counter_rows(m), "Fault injection & recovery"))
    return 0


# ---------------------------------------------------------------------------
# figures
# ---------------------------------------------------------------------------

def cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments import (
        format_table,
        run_figure5,
        run_figure6,
        run_figure7,
        run_figure8ab,
        run_figure8c,
        run_sharfman_comparison,
        run_signomial_comparison,
        run_solver_timing,
        series_to_rows,
    )

    counts = tuple(_parse_int_list(args.queries))
    mus = tuple(float(m) for m in args.mus.split(","))
    common = dict(item_count=args.items, trace_length=args.trace_length,
                  seed=args.seed)
    sweep = dict(common, jobs=args.jobs)

    if args.figure == "fig5":
        series = run_figure5(query_counts=counts, mus=mus, **sweep)
        for metric in ("recomputations", "refreshes", "fidelity_loss_percent",
                       "total_cost"):
            print(format_table(series_to_rows(series, metric, "queries"),
                               f"Figure 5 — {metric}"))
            print()
    elif args.figure == "fig6":
        series = run_figure6(query_counts=counts, mus=mus[:2], **sweep)
        for metric in ("recomputations", "refreshes", "total_cost"):
            print(format_table(series_to_rows(series, metric, "queries"),
                               f"Figure 6 — {metric}"))
            print()
    elif args.figure == "fig7":
        series = run_figure7(mus=mus, query_count=counts[0] if counts else 8,
                             **sweep)
        for metric in ("refreshes", "recomputations", "total_cost"):
            print(format_table(series_to_rows(series, metric, "mu"),
                               f"Figure 7 — {metric}"))
            print()
    elif args.figure in ("fig8a", "fig8b"):
        series = run_figure8ab(query_counts=counts, mus=mus[:2],
                               dependent=(args.figure == "fig8b"), **sweep)
        print(format_table(series_to_rows(series, "recomputations", "queries"),
                           f"Figure 8({args.figure[-1]}) — recomputations"))
    elif args.figure == "fig8c":
        series = run_figure8c(query_counts=counts, **common)
        print(format_table(series_to_rows(series, "recomputations", "queries"),
                           "Figure 8(c) — recomputations"))
    elif args.figure == "sharfman":
        print(format_table(run_sharfman_comparison(), "Comparison with [5]"))
    elif args.figure == "signomial":
        rows = run_signomial_comparison(
            query_count=counts[0] if counts else 8,
            item_count=args.items, trace_length=args.trace_length,
            seed=args.seed)
        print(format_table(rows, "Extension: signomial planner vs HH/DS"))
    elif args.figure == "timing":
        timing = run_solver_timing(query_count=counts[0] if counts else 8,
                                   item_count=args.items)
        for key, value in timing.items():
            print(f"{key:30s} {value:10.2f} ms")
    else:  # pragma: no cover - argparse choices prevent this
        raise SystemExit(f"error: unknown figure {args.figure!r}")
    return 0


# ---------------------------------------------------------------------------
# traces
# ---------------------------------------------------------------------------

def cmd_traces(args: argparse.Namespace) -> int:
    from repro.workloads import paper_registry, paper_traces

    registry = paper_registry(args.items)
    traces = paper_traces(registry, args.length, kind=args.kind, seed=args.seed)
    names = traces.items
    print("tick," + ",".join(names))
    for tick in range(args.length):
        row = [f"{traces[name].at(tick):.6f}" for name in names]
        print(f"{tick}," + ",".join(row))
    return 0


# ---------------------------------------------------------------------------
# parser wiring
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Polynomial continuous queries over dynamic data "
                    "(Shah & Ramamritham, ICDE 2008 — reproduction)",
    )
    parser.add_argument("--profile", nargs="?", const="profile.pstats",
                        default=None, metavar="FILE",
                        help="profile the command under cProfile, dump "
                             "stats to FILE (default profile.pstats) and "
                             "print the top 20 functions by cumulative "
                             "time")
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser("plan", help="compute DABs for one query")
    plan.add_argument("query", help='e.g. "x*y : 5" or "3 x*y - 2 u*v : 5"')
    plan.add_argument("--qab", type=float, default=None,
                      help="accuracy bound (overrides the ': B' in the query)")
    plan.add_argument("--values", required=True, help="x=2,y=2")
    plan.add_argument("--rates", default="", help="x=1,y=1 (default: 1 each)")
    plan.add_argument("--mu", type=float, default=5.0,
                      help="recomputation cost in messages")
    plan.add_argument("--ddm", choices=["monotonic", "random_walk"],
                      default="monotonic")
    plan.add_argument("--single-dab", action="store_true",
                      help="Optimal Refresh instead of Dual-DAB")
    plan.add_argument("--heuristic", choices=["different_sum", "half_and_half"],
                      default="different_sum")
    plan.set_defaults(func=cmd_plan)

    simulate = sub.add_parser("simulate", help="run a trace-driven simulation")
    simulate.add_argument("--queries", type=int, default=10)
    simulate.add_argument("--items", type=int, default=30)
    simulate.add_argument("--duration", type=int, default=300)
    simulate.add_argument("--sources", type=int, default=8)
    simulate.add_argument("--algorithm", default="dual_dab",
                          choices=["optimal_refresh", "dual_dab", "half_and_half",
                                   "different_sum", "signomial",
                                   "sharfman_baseline", "uniform_baseline",
                                   "aao_t", "laq"])
    simulate.add_argument("--workload", choices=["portfolio", "arbitrage"],
                          default="portfolio")
    simulate.add_argument("--ddm", choices=["monotonic", "random_walk"],
                          default="monotonic")
    simulate.add_argument("--mu", type=float, default=5.0)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--fidelity-interval", type=int, default=2)
    simulate.add_argument("--zero-delay", action="store_true")
    simulate.add_argument("--aao-period", type=int, default=None)
    simulate.add_argument("--no-vectorize", action="store_true",
                          help="use the scalar reference implementation of "
                               "the hot paths (bit-identical metrics; "
                               "slower)")
    simulate.add_argument("--runs", type=int, default=1,
                          help="replicate the run at N derived seeds "
                               "(deterministic per-index derivation)")
    simulate.add_argument("--jobs", type=int, default=None,
                          help="worker processes for --runs > 1 "
                               "(default: serial; results are identical)")
    faults = simulate.add_argument_group(
        "fault injection",
        "inject failures and exercise the recovery protocol "
        "(epochs, leases, ack/retry); all off by default")
    faults.add_argument("--loss-rate", type=float, default=0.0,
                        help="per-message loss probability on every link")
    faults.add_argument("--duplicate-rate", type=float, default=0.0,
                        help="per-message duplicate-delivery probability")
    faults.add_argument("--crash-spec", default="",
                        help='source crash windows, e.g. "2:100:160,5:200:260" '
                             "(source:start:end)")
    faults.add_argument("--partition-spec", default="",
                        help='full-partition windows, e.g. "50:80" (start:end)')
    faults.add_argument("--delay-spike-spec", default="",
                        help='delay-spike windows, e.g. "50:80:10" '
                             "(start:end:factor)")
    faults.add_argument("--fault-seed", type=int, default=0)
    faults.add_argument("--lease-duration", type=float, default=20.0,
                        help="seconds an item may stay unheard-from before "
                             "it is marked suspect")
    faults.add_argument("--heartbeat-interval", type=float, default=10.0)
    faults.add_argument("--retry-timeout", type=float, default=2.0,
                        help="first DAB-change retransmit timeout (doubles "
                             "per attempt)")
    simulate.set_defaults(func=cmd_simulate)

    figures = sub.add_parser("figures", help="regenerate a paper figure/table")
    figures.add_argument("figure", choices=["fig5", "fig6", "fig7", "fig8a",
                                            "fig8b", "fig8c", "sharfman",
                                            "signomial", "timing"])
    figures.add_argument("--queries", default="5,10",
                         help="comma-separated query counts (x-axis)")
    figures.add_argument("--mus", default="1,5")
    figures.add_argument("--items", type=int, default=30)
    figures.add_argument("--trace-length", type=int, default=201)
    figures.add_argument("--seed", type=int, default=0)
    figures.add_argument("--jobs", type=int, default=None,
                         help="worker processes for the sweep (default: "
                              "serial; results are identical)")
    figures.set_defaults(func=cmd_figures)

    traces = sub.add_parser("traces", help="print synthetic traces as CSV")
    traces.add_argument("--items", type=int, default=3)
    traces.add_argument("--length", type=int, default=10)
    traces.add_argument("--kind", choices=["gbm", "random_walk", "monotonic"],
                        default="gbm")
    traces.add_argument("--seed", type=int, default=0)
    traces.set_defaults(func=cmd_traces)

    return parser


def _run_profiled(args: argparse.Namespace) -> int:
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return args.func(args)
    finally:
        profiler.disable()
        profiler.dump_stats(args.profile)
        print(f"\nprofile written to {args.profile}", file=sys.stderr)
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(20)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.profile is not None:
            return _run_profiled(args)
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
