"""Command-line interface.

Seven subcommands mirror the library's workflow::

    repro plan "x*y : 5" --values x=2,y=2 --rates x=1,y=1 --mu 5
    repro simulate --queries 10 --items 30 --duration 300 --algorithm dual_dab
    repro figures fig5 --queries 5,10 --items 30 --trace-length 201
    repro traces --items 3 --length 10 --kind gbm
    repro serve --queries 100 --items 40 --sources 8 --port 7410
    repro agent --source-id 0 --port 7410 --duration 300
    repro loadgen --sources 8 --queries 100 --duration 30

``serve``/``agent``/``loadgen`` are the live service layer (DESIGN.md §9):
the server and its peers must be launched with the same
``--queries/--items/--sources/--seed/--workload/--trace-length`` so both
sides derive the same deterministic scenario.  ``loadgen`` probes the
default server address and falls back to a fully in-process run over the
loopback transport when nothing is listening.

``python -m repro ...`` works identically.  Every command prints plain
text; exit code 0 on success, 2 on argument errors (argparse convention).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.exceptions import ReproError


def _parse_kv(text: str, label: str) -> Dict[str, float]:
    """Parse ``"x=2,y=3.5"`` into a dict; raises SystemExit(2) on junk."""
    out: Dict[str, float] = {}
    if not text:
        return out
    for piece in text.split(","):
        if "=" not in piece:
            raise SystemExit(f"error: {label} expects name=value pairs, got {piece!r}")
        name, _, value = piece.partition("=")
        try:
            out[name.strip()] = float(value)
        except ValueError:
            raise SystemExit(f"error: bad number in {label}: {piece!r}")
    return out


def _parse_int_list(text: str) -> List[int]:
    return [int(p) for p in text.split(",") if p]


# ---------------------------------------------------------------------------
# plan
# ---------------------------------------------------------------------------

def cmd_plan(args: argparse.Namespace) -> int:
    from repro.filters import CostModel
    from repro.filters.heuristics import dispatch_planner
    from repro.queries import parse_query

    query = parse_query(args.query, qab=args.qab)
    values = _parse_kv(args.values, "--values")
    missing = [n for n in query.variables if n not in values]
    if missing:
        raise SystemExit(f"error: no values for items: {', '.join(missing)}")
    rates = _parse_kv(args.rates, "--rates")
    model = CostModel(ddm=args.ddm, rates=rates, recompute_cost=args.mu)
    planner = dispatch_planner(model, dual=not args.single_dab,
                               heuristic=args.heuristic)
    plan = planner.plan(query, values)

    print(f"query: {query}")
    print(f"algorithm: {'optimal refresh' if args.single_dab else 'dual-DAB'} "
          f"/ {args.heuristic} (mu={args.mu:g}, ddm={model.ddm.value})")
    print(f"{'item':>10s} {'value':>12s} {'primary b':>12s} {'secondary c':>12s}")
    for item in sorted(plan.primary):
        secondary = plan.secondary[item] if plan.secondary else float("nan")
        print(f"{item:>10s} {values[item]:12.4f} {plan.primary[item]:12.6f} "
              f"{secondary:12.6f}")
    if plan.secondary is not None:
        print(f"estimated recomputation rate R = {plan.recompute_rate:.6f}/tick")
    print(f"estimated refresh rate = "
          f"{model.estimated_refresh_rate(plan.primary):.6f}/tick")
    return 0


# ---------------------------------------------------------------------------
# simulate
# ---------------------------------------------------------------------------

def _build_fault_config(args: argparse.Namespace):
    """A FaultConfig from the simulate flags, or None when nothing is set."""
    from repro.simulation import (
        FaultConfig,
        parse_crash_spec,
        parse_delay_spike_spec,
        parse_partition_spec,
    )

    config = FaultConfig(
        loss_rate=args.loss_rate,
        duplicate_rate=args.duplicate_rate,
        crash_windows=parse_crash_spec(args.crash_spec),
        partitions=parse_partition_spec(args.partition_spec),
        delay_spikes=parse_delay_spike_spec(args.delay_spike_spec),
        seed=args.fault_seed,
        lease_duration=args.lease_duration,
        heartbeat_interval=args.heartbeat_interval,
        retry_timeout=args.retry_timeout,
    )
    return config if config.enabled else None


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.experiments import (
        derive_seed,
        fault_counter_rows,
        format_table,
        run_seed_sweep,
    )
    from repro.simulation import SimulationConfig, run_simulation
    from repro.workloads import scaled_scenario

    scenario = scaled_scenario(
        query_count=args.queries, item_count=args.items,
        trace_length=args.duration + 1, source_count=args.sources,
        query_kind=args.workload, seed=args.seed,
    )
    fault_config = _build_fault_config(args)
    config = SimulationConfig(
        queries=scenario.queries, traces=scenario.traces,
        algorithm=args.algorithm, ddm=args.ddm, recompute_cost=args.mu,
        duration=args.duration, source_count=args.sources, seed=args.seed,
        fidelity_interval=args.fidelity_interval, zero_delay=args.zero_delay,
        aao_period=args.aao_period, fault_config=fault_config,
        vectorize=not args.no_vectorize,
        recompute_mode=args.recompute_mode,
        bank_index=args.bank_index,
    )
    if args.runs > 1:
        results = run_seed_sweep(config, args.runs, jobs=args.jobs)
        rows = []
        for index, result in enumerate(results):
            m = result.metrics
            rows.append({
                "run": index, "seed": derive_seed(config.seed, index),
                "refreshes": m.refreshes,
                "recomputations": m.recomputations,
                "total_cost": round(m.total_cost, 1),
                "fidelity_loss_%": round(m.fidelity_loss_percent, 3),
                "gp_solves": m.gp_solves,
            })
        print(f"algorithm={args.algorithm} queries={args.queries} "
              f"items={args.items} duration={args.duration}s mu={args.mu:g} "
              f"base_seed={args.seed} runs={args.runs} jobs={args.jobs or 1}")
        print(format_table(rows, "Seed sweep"))
        return 0
    result = run_simulation(config)
    m = result.metrics
    print(f"algorithm={args.algorithm} queries={args.queries} items={args.items} "
          f"duration={args.duration}s mu={args.mu:g} seed={args.seed}")
    print(f"refreshes            {m.refreshes}")
    print(f"recomputations       {m.recomputations}")
    print(f"total cost           {m.total_cost:.0f}")
    print(f"fidelity loss        {m.fidelity_loss_percent:.3f}%")
    print(f"user notifications   {m.user_notifications}")
    print(f"DAB-change messages  {m.dab_change_messages}")
    print(f"GP solves            {m.gp_solves} "
          f"(cache hits {result.cache_hits})")
    print(f"wall time            {result.wall_seconds:.2f}s")
    # Only the non-default mode reports its counters: full-mode output
    # stays byte-identical to the pre-delta CLI (and to itself across
    # runs — the percentiles are wall-clock readouts).
    if result.recompute_latency is not None and result.recompute_mode != "full":
        latency = result.recompute_latency
        line = (f"recompute mode       {result.recompute_mode} "
                f"(patches {latency['patches']}, "
                f"fallbacks {latency['fallbacks']}, "
                f"hit rate {latency['patch_hit_rate']:.2%})")
        print(line)
        if "p95_ms" in latency:
            print(f"recompute latency    p50 {latency['p50_ms']:.2f}ms  "
                  f"p95 {latency['p95_ms']:.2f}ms  "
                  f"p99 {latency['p99_ms']:.2f}ms")
    # Same contract for the bank index: flat output stays byte-identical.
    if result.bank_stats is not None and result.bank_index != "flat":
        bank = result.bank_stats
        print(f"bank index           {result.bank_index} "
              f"({bank['distinct_structures']} structures over "
              f"{bank['queries']} queries, "
              f"dedup {bank['dedup_ratio']:.1f}x)")
        screened = bank["screen_evaluated"] + bank["screen_skipped"]
        if screened:
            skip_rate = bank["screen_skipped"] / screened
            print(f"notify screening     {bank['screen_skipped']}/{screened} "
                  f"skipped ({skip_rate:.1%}), "
                  f"{bank['template_syncs']} template resyncs")
        update = bank.get("update_latency_us")
        if update:
            print(f"index update         p50 {update['p50']:.1f}us  "
                  f"p95 {update['p95']:.1f}us  "
                  f"({bank['appends']} appends, {bank['removals']} removals)")
    if fault_config is not None:
        print()
        print(format_table(fault_counter_rows(m), "Fault injection & recovery"))
    return 0


# ---------------------------------------------------------------------------
# figures
# ---------------------------------------------------------------------------

def cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments import (
        format_table,
        run_figure5,
        run_figure6,
        run_figure7,
        run_figure8ab,
        run_figure8c,
        run_sharfman_comparison,
        run_signomial_comparison,
        run_solver_timing,
        series_to_rows,
    )

    counts = tuple(_parse_int_list(args.queries))
    mus = tuple(float(m) for m in args.mus.split(","))
    common = dict(item_count=args.items, trace_length=args.trace_length,
                  seed=args.seed)
    sweep = dict(common, jobs=args.jobs)

    if args.figure == "fig5":
        series = run_figure5(query_counts=counts, mus=mus, **sweep)
        for metric in ("recomputations", "refreshes", "fidelity_loss_percent",
                       "total_cost"):
            print(format_table(series_to_rows(series, metric, "queries"),
                               f"Figure 5 — {metric}"))
            print()
    elif args.figure == "fig6":
        series = run_figure6(query_counts=counts, mus=mus[:2], **sweep)
        for metric in ("recomputations", "refreshes", "total_cost"):
            print(format_table(series_to_rows(series, metric, "queries"),
                               f"Figure 6 — {metric}"))
            print()
    elif args.figure == "fig7":
        series = run_figure7(mus=mus, query_count=counts[0] if counts else 8,
                             **sweep)
        for metric in ("refreshes", "recomputations", "total_cost"):
            print(format_table(series_to_rows(series, metric, "mu"),
                               f"Figure 7 — {metric}"))
            print()
    elif args.figure in ("fig8a", "fig8b"):
        series = run_figure8ab(query_counts=counts, mus=mus[:2],
                               dependent=(args.figure == "fig8b"), **sweep)
        print(format_table(series_to_rows(series, "recomputations", "queries"),
                           f"Figure 8({args.figure[-1]}) — recomputations"))
    elif args.figure == "fig8c":
        series = run_figure8c(query_counts=counts, **common)
        print(format_table(series_to_rows(series, "recomputations", "queries"),
                           "Figure 8(c) — recomputations"))
    elif args.figure == "sharfman":
        print(format_table(run_sharfman_comparison(), "Comparison with [5]"))
    elif args.figure == "signomial":
        rows = run_signomial_comparison(
            query_count=counts[0] if counts else 8,
            item_count=args.items, trace_length=args.trace_length,
            seed=args.seed)
        print(format_table(rows, "Extension: signomial planner vs HH/DS"))
    elif args.figure == "timing":
        timing = run_solver_timing(query_count=counts[0] if counts else 8,
                                   item_count=args.items)
        for key, value in timing.items():
            print(f"{key:30s} {value:10.2f} ms")
    else:  # pragma: no cover - argparse choices prevent this
        raise SystemExit(f"error: unknown figure {args.figure!r}")
    return 0


# ---------------------------------------------------------------------------
# traces
# ---------------------------------------------------------------------------

def cmd_traces(args: argparse.Namespace) -> int:
    from repro.workloads import paper_registry, paper_traces

    registry = paper_registry(args.items)
    traces = paper_traces(registry, args.length, kind=args.kind, seed=args.seed)
    names = traces.items
    print("tick," + ",".join(names))
    for tick in range(args.length):
        row = [f"{traces[name].at(tick):.6f}" for name in names]
        print(f"{tick}," + ",".join(row))
    return 0


# ---------------------------------------------------------------------------
# serve / agent / loadgen — the live service layer
# ---------------------------------------------------------------------------

DEFAULT_SERVICE_PORT = 7410


def _service_trace_length(args: argparse.Namespace) -> int:
    """Long enough for both rate estimation and the requested replay."""
    wanted = getattr(args, "duration", 0) + 2
    return max(args.trace_length, wanted)


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.journal import Journal
    from repro.service.server import build_scenario_server

    journal = None
    if args.journal:
        journal = Journal(args.journal, fsync=args.fsync,
                          snapshot_every=args.snapshot_every)
    server, scenario, item_to_source = build_scenario_server(
        query_count=args.queries, item_count=args.items,
        source_count=args.sources, trace_length=args.trace_length,
        seed=args.seed, algorithm=args.algorithm, recompute_cost=args.mu,
        workload=args.workload, recompute_mode=args.recompute_mode,
        bank_index=args.bank_index,
        journal=journal, bootstrap=journal is None,
    )
    if journal is not None:
        recovery = server.restore()
        print(f"journal {args.journal}: "
              f"snapshot@{recovery['snapshot_index']}, "
              f"{recovery['records_replayed']} records replayed in "
              f"{recovery['recovery_seconds'] * 1000:.1f}ms "
              f"(fsync={args.fsync})", flush=True)

    async def _serve() -> None:
        host, port = await server.serve_tcp(args.host, args.port)
        print(f"coordinator listening on {host}:{port} "
              f"({len(scenario.queries)} queries, {len(item_to_source)} items, "
              f"{args.sources} sources, algorithm={args.algorithm})",
              flush=True)
        try:
            await asyncio.Event().wait()     # serve until interrupted
        finally:
            await server.close()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        stats = server.server_stats()
        print(f"\nshutting down: {stats['refreshes']} refreshes, "
              f"{stats['recomputations']} recomputations, "
              f"{stats['notifies_sent']} notifies")
    return 0


def _journal_inspect_cluster(args: argparse.Namespace,
                             shard_dirs) -> int:
    """Per-shard summary for a cluster journal root (``shard-<i>``
    subdirectories, as written by ``repro cluster serve --journal``)."""
    import json as _json

    from repro.service.journal import Journal, JournalError

    summaries = {}
    for sid, path in shard_dirs:
        try:
            summaries[sid] = Journal(str(path)).describe(last=args.last)
        except JournalError as error:
            print(f"error: shard {sid}: {error}", file=sys.stderr)
            return 1
    if args.json:
        print(_json.dumps({"directory": args.directory,
                           "shards": {str(sid): summary
                                      for sid, summary in summaries.items()}},
                          indent=2, sort_keys=True))
        return 0
    print(f"cluster journal      {args.directory} "
          f"({len(summaries)} shards)")
    header = (f"  {'shard':>5s} {'records':>8s} {'wal_bytes':>10s} "
              f"{'snapshots':>9s} {'tail':>6s} {'torn':>5s}")
    print(header)
    totals = {"records": 0, "wal_bytes": 0, "snapshots": 0, "tail": 0}
    merged_counts: Dict[str, int] = {}
    for sid in sorted(summaries):
        summary = summaries[sid]
        snaps = len(summary["snapshots"])
        print(f"  {sid:>5d} {summary['records']:>8d} "
              f"{summary['wal_bytes']:>10d} {snaps:>9d} "
              f"{summary['replay_tail_records']:>6d} "
              f"{summary['torn_tail_bytes']:>5d}")
        totals["records"] += summary["records"]
        totals["wal_bytes"] += summary["wal_bytes"]
        totals["snapshots"] += snaps
        totals["tail"] += summary["replay_tail_records"]
        for kind, count in summary["records_by_type"].items():
            merged_counts[kind] = merged_counts.get(kind, 0) + count
    print(f"  {'total':>5s} {totals['records']:>8d} "
          f"{totals['wal_bytes']:>10d} {totals['snapshots']:>9d} "
          f"{totals['tail']:>6d}")
    if merged_counts:
        rendered = ", ".join(f"{kind}={count}" for kind, count
                             in sorted(merged_counts.items()))
        print(f"records by type      {rendered}")
    return 0


def cmd_journal(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.service.journal import Journal, JournalError

    root = Path(args.directory)
    shard_dirs = sorted(
        (int(path.name.split("-", 1)[1]), path)
        for path in root.glob("shard-*")
        if path.is_dir() and path.name.split("-", 1)[1].isdigit())
    if shard_dirs:
        return _journal_inspect_cluster(args, shard_dirs)
    journal = Journal(args.directory)
    try:
        summary = journal.describe(last=args.last)
    except JournalError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(f"journal              {summary['directory']}")
    print(f"WAL                  {summary['wal_bytes']} bytes, "
          f"{summary['records']} records"
          + (f" ({summary['torn_tail_bytes']} torn-tail bytes pending "
             f"truncation)" if summary["torn_tail_bytes"] else ""))
    counts = dict(summary["records_by_type"])
    if counts:
        # Canonical kinds first (shown even at zero, so the table shape
        # is stable across journals), then anything else the scan found.
        known = ("refresh", "plan", "aao", "bounds", "qadd", "qdel",
                 "adopt")
        kinds = list(known) + sorted(set(counts) - set(known))
        width = max(len(kind) for kind in kinds)
        total = sum(counts.values())
        print("records by type")
        print(f"  {'kind':<{width}s} {'count':>8s} {'share':>7s}")
        for kind in kinds:
            count = counts.get(kind, 0)
            share = count / total if total else 0.0
            print(f"  {kind:<{width}s} {count:>8d} {share:>6.1%}")
        print(f"  {'total':<{width}s} {total:>8d}")
    for snap in summary["snapshots"]:
        print(f"snapshot             {snap['file']} "
              f"(covers records 0..{snap['record_index']}, "
              f"{snap['bytes']} bytes)")
    print(f"replay tail          {summary['replay_tail_records']} records "
          f"after snapshot@{summary['latest_snapshot_index']}")
    for record in summary["last_records"]:
        print(f"  tail record        {_json.dumps(record, sort_keys=True)}")
    return 0


def cmd_agent(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.agent import agents_for_scenario
    from repro.simulation.source import assign_items_to_sources
    from repro.workloads import scaled_scenario

    trace_length = _service_trace_length(args)
    scenario = scaled_scenario(
        query_count=args.queries, item_count=args.items,
        trace_length=trace_length, source_count=args.sources,
        query_kind=args.workload, seed=args.seed,
    )
    used = sorted({v for q in scenario.queries for v in q.variables})
    item_to_source = assign_items_to_sources(used, args.sources)
    agents = agents_for_scenario(scenario, item_to_source,
                                 timestamp_refreshes=True,
                                 heartbeat_interval=args.heartbeat_interval)
    if args.source_id is not None:
        try:
            agents = {args.source_id: agents[args.source_id]}
        except KeyError:
            raise SystemExit(f"error: no items route to source {args.source_id} "
                             f"(have {sorted(agents)})")

    async def _run_all() -> int:
        results = await asyncio.gather(*[
            agent.run(args.host, args.port, scenario.traces,
                      tick_interval=args.tick_interval,
                      max_steps=args.duration)
            for agent in agents.values()
        ])
        return sum(results)

    sent = asyncio.run(_run_all())
    for source_id, agent in sorted(agents.items()):
        s = agent.stats
        print(f"source {source_id}: {s['ticks']} ticks, "
              f"{s['refreshes_sent']} refreshes sent, "
              f"{s['refreshes_filtered']} filtered, "
              f"{s['reconnects']} reconnects")
    print(f"total refreshes pushed: {sent}")
    return 0


def _probe_tcp(host: str, port: int, timeout: float = 0.5) -> bool:
    import socket

    try:
        with socket.create_connection((host, port), timeout=timeout):
            return True
    except OSError:
        return False


def cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.service.loadgen import run_loadgen

    host: Optional[str] = None
    port: Optional[int] = None
    if args.connect:
        host, _, port_text = args.connect.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            raise SystemExit(f"error: --connect expects HOST:PORT, "
                             f"got {args.connect!r}")
        host = host or "127.0.0.1"
    elif not args.in_process and _probe_tcp("127.0.0.1", DEFAULT_SERVICE_PORT):
        host, port = "127.0.0.1", DEFAULT_SERVICE_PORT

    report = run_loadgen(
        sources=args.sources, queries=args.queries, items=args.items,
        duration=args.duration, subscribers=args.subscribers,
        tick_interval=args.tick_interval, seed=args.seed,
        algorithm=args.algorithm, workload=args.workload,
        host=host, port=port, output=args.output or None,
        trace_length=args.trace_length,
    )
    print(f"transport            {report['transport']}")
    print(f"sources x subs       {report['sources']} x {report['subscribers']}")
    print(f"queries / items      {report['queries']} / {report['items']}")
    print(f"ticks                {report['ticks']} "
          f"({report['ticks_per_second']:.0f}/s)")
    print(f"refreshes sent       {report['refreshes_sent']} "
          f"(filtered {report['refreshes_filtered']})")
    print(f"notifies received    {report['notifies_received']}")
    latency = report["notify_latency_seconds"]
    if latency:
        rendered = ", ".join(f"{k}={v * 1000:.2f}ms"
                             for k, v in sorted(latency.items()))
        print(f"notify latency       {rendered} "
              f"({report['latency_samples']} samples)")
    stats = report.get("server_stats") or {}
    if stats:
        print(f"server               {stats.get('recomputations', '?')} "
              f"recomputations, {stats.get('refreshes', '?')} refreshes, "
              f"{stats.get('slow_consumer_evictions', 0)} evictions")
    print(f"QAB violations       {report['qab_violations']}")
    if report.get("output"):
        print(f"report written to    {report['output']}")
    return 1 if report["qab_violations"] else 0


def cmd_cluster_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.cluster.router import build_scenario_cluster

    cluster, scenario, item_to_source = build_scenario_cluster(
        shards=args.shards, query_count=args.queries, item_count=args.items,
        source_count=args.sources, trace_length=args.trace_length,
        seed=args.seed, algorithm=args.algorithm, recompute_cost=args.mu,
        workload=args.workload, recompute_mode=args.recompute_mode,
        bank_index=args.bank_index,
        journal_dir=args.journal or None,
        snapshot_every=args.snapshot_every, fsync=args.fsync,
    )
    decomposition = cluster.decomposition

    async def _serve() -> None:
        host, port = await cluster.serve_tcp(args.host, args.port)
        print(f"cluster router listening on {host}:{port} "
              f"({args.shards} shards, active "
              f"{list(decomposition.active_shards)}, "
              f"{len(scenario.queries)} queries "
              f"[{len(decomposition.cross_shard)} cross-shard], "
              f"{len(item_to_source)} items, {args.sources} sources, "
              f"algorithm={args.algorithm})", flush=True)
        try:
            await asyncio.Event().wait()     # serve until interrupted
        finally:
            await cluster.close()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        stats = cluster.server_stats()
        print(f"\nshutting down: {stats['refreshes_routed']} refreshes "
              f"routed, {stats['partial_notifies']} partials recombined, "
              f"{stats['notifies_sent']} notifies")
    return 0


def cmd_cluster_loadgen(args: argparse.Namespace) -> int:
    from repro.service.cluster.loadgen import run_cluster_loadgen

    report = run_cluster_loadgen(
        shards=args.shards, sources=args.sources, queries=args.queries,
        items=args.items, duration=args.duration,
        subscribers=args.subscribers, brokers=args.brokers,
        tick_interval=args.tick_interval, seed=args.seed,
        algorithm=args.algorithm, workload=args.workload,
        journal_dir=args.journal or None, output=args.output or None,
        trace_length=args.trace_length,
    )
    print(f"shards               {report['shards']} "
          f"(active {report['active_shards']})")
    print(f"cross-shard queries  {report['cross_shard_queries']} "
          f"({report['mirrored_items']} mirrored items)")
    if report["brokers"]:
        broker = report["broker_stats"] or {}
        print(f"broker tier          {report['brokers']} brokers, "
              f"{broker.get('notifies_sent', 0)} notifies fanned out")
    print(f"sources x subs       {report['sources']} x {report['subscribers']}")
    print(f"queries / items      {report['queries']} / {report['items']}")
    print(f"ticks                {report['ticks']} "
          f"({report['ticks_per_second']:.0f}/s)")
    print(f"refreshes sent       {report['refreshes_sent']} "
          f"(filtered {report['refreshes_filtered']})")
    print(f"notifies received    {report['notifies_received']}")
    latency = report["notify_latency_seconds"]
    if latency:
        rendered = ", ".join(f"{k}={v * 1000:.2f}ms"
                             for k, v in sorted(latency.items()))
        print(f"notify latency       {rendered} "
              f"({report['latency_samples']} samples)")
    print(f"QAB violations       {report['qab_violations']}")
    if report.get("output"):
        print(f"report written to    {report['output']}")
    return 1 if report["qab_violations"] else 0


def cmd_chaos_soak(args: argparse.Namespace) -> int:
    from repro.service.soak import run_chaos_soak

    kill_steps = None
    if args.kill_steps:
        try:
            kill_steps = [int(s) for s in args.kill_steps.split(",") if s]
        except ValueError:
            raise SystemExit(f"error: --kill-steps expects comma-separated "
                             f"integers, got {args.kill_steps!r}")
    report = run_chaos_soak(
        schedule=args.schedule, steps=args.steps,
        queries=args.queries, items=args.items, sources=args.sources,
        seed=args.seed, algorithm=args.algorithm, workload=args.workload,
        lease_duration=args.lease_duration,
        output=args.output or None,
        journal_dir=args.journal or None, kill_steps=kill_steps,
        snapshot_every=args.snapshot_every, fsync=args.fsync,
        shards=args.shards,
    )
    print(f"schedule             {report['schedule']} "
          f"({', '.join(report['fault_kinds'])})")
    if report.get("shards"):
        print(f"shards               {report['shards']} "
              f"(active {report['active_shards']}, "
              f"{report['cross_shard_queries']} cross-shard queries)")
    print(f"steps                {report['steps']} "
          f"(+{report['tail_steps']} recovery)")
    print(f"fault events         {report['fault_events']} "
          f"{report['fault_counts']}")
    print(f"fault trace digest   {report['fault_trace_digest'][:16]}…")
    print(f"audits               {report['audits']} "
          f"({report['audits_with_degraded']} while degraded)")
    print(f"QAB violations       {report['qab_violations_unexcused']} "
          f"unexcused, {report['qab_violations_excused_degraded']} excused "
          f"(degraded-flagged)")
    recovery = report["recovery_steps"]
    if recovery:
        rendered = ", ".join(f"{k}={v:.0f}" for k, v in sorted(recovery.items()))
        print(f"recovery (steps)     {rendered} "
              f"max={report['recovery_steps_max']:.0f} over "
              f"{report['recovery_episodes']} episodes")
    overhead = report["refresh_overhead_per_step"]
    if overhead:
        rendered = ", ".join(f"{k}={v:.0f}" for k, v in sorted(overhead.items()))
        print(f"refreshes per step   {rendered} "
              f"(total {report['refreshes_total']})")
    recovery_section = report.get("coordinator_recovery") or {}
    if recovery_section.get("kills"):
        append = recovery_section.get("journal_append_ms") or {}
        rendered = ", ".join(f"{k}={v:.2f}ms" for k, v in sorted(append.items()))
        print(f"coordinator kills    {recovery_section['kills']} at steps "
              f"{recovery_section.get('kill_steps', [])}: "
              f"{recovery_section['records_replayed_total']} records "
              f"replayed, worst recovery "
              f"{recovery_section['recovery_seconds_max'] * 1000:.1f}ms")
        if rendered:
            print(f"journal append       {rendered}")
    resharding = report.get("resharding")
    if resharding:
        print(f"resharding           {resharding['moves_completed']}/"
              f"{resharding['moves_requested']} moves "
              f"(epoch {resharding['final_map_epoch']}, "
              f"{resharding['refreshes_frozen']} refreshes frozen, "
              f"fenced {resharding['frames_rejected_by_fencing']})")
        steps_pct = resharding.get("migration_steps") or {}
        if steps_pct:
            rendered = ", ".join(f"{k}={v:.0f}"
                                 for k, v in sorted(steps_pct.items()))
            print(f"migration (steps)    {rendered}")
        d2r = resharding.get("detection_to_recovery_steps") or {}
        if d2r:
            rendered = ", ".join(f"{k}={v:.0f}" for k, v in sorted(d2r.items()))
            print(f"detect→recover       {rendered} over "
                  f"{resharding['failovers']} auto-failovers")
    if report["final_degraded_queries"]:
        print(f"STILL DEGRADED       {report['final_degraded_queries']}")
    if report.get("output"):
        print(f"report written to    {report['output']}")
    print(f"result               {'PASS' if report['passed'] else 'FAIL'}")
    return 0 if report["passed"] else 1


# ---------------------------------------------------------------------------
# parser wiring
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Polynomial continuous queries over dynamic data "
                    "(Shah & Ramamritham, ICDE 2008 — reproduction)",
    )
    parser.add_argument("--profile", nargs="?", const="profile.pstats",
                        default=None, metavar="FILE",
                        help="profile the command under cProfile, dump "
                             "stats to FILE (default profile.pstats) and "
                             "print the top 20 functions by cumulative "
                             "time")
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser("plan", help="compute DABs for one query")
    plan.add_argument("query", help='e.g. "x*y : 5" or "3 x*y - 2 u*v : 5"')
    plan.add_argument("--qab", type=float, default=None,
                      help="accuracy bound (overrides the ': B' in the query)")
    plan.add_argument("--values", required=True, help="x=2,y=2")
    plan.add_argument("--rates", default="", help="x=1,y=1 (default: 1 each)")
    plan.add_argument("--mu", type=float, default=5.0,
                      help="recomputation cost in messages")
    plan.add_argument("--ddm", choices=["monotonic", "random_walk"],
                      default="monotonic")
    plan.add_argument("--single-dab", action="store_true",
                      help="Optimal Refresh instead of Dual-DAB")
    plan.add_argument("--heuristic", choices=["different_sum", "half_and_half"],
                      default="different_sum")
    plan.set_defaults(func=cmd_plan)

    simulate = sub.add_parser("simulate", help="run a trace-driven simulation")
    simulate.add_argument("--queries", type=int, default=10)
    simulate.add_argument("--items", type=int, default=30)
    simulate.add_argument("--duration", type=int, default=300)
    simulate.add_argument("--sources", type=int, default=8)
    simulate.add_argument("--algorithm", default="dual_dab",
                          choices=["optimal_refresh", "dual_dab", "half_and_half",
                                   "different_sum", "signomial",
                                   "sharfman_baseline", "uniform_baseline",
                                   "aao_t", "laq"])
    simulate.add_argument("--workload", choices=["portfolio", "arbitrage"],
                          default="portfolio")
    simulate.add_argument("--ddm", choices=["monotonic", "random_walk"],
                          default="monotonic")
    simulate.add_argument("--mu", type=float, default=5.0)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--fidelity-interval", type=int, default=2)
    simulate.add_argument("--zero-delay", action="store_true")
    simulate.add_argument("--aao-period", type=int, default=None)
    simulate.add_argument("--no-vectorize", action="store_true",
                          help="use the scalar reference implementation of "
                               "the hot paths (bit-identical metrics; "
                               "slower)")
    simulate.add_argument("--recompute-mode", choices=["full", "delta"],
                          default="full",
                          help="how window breaches are re-solved: 'full' "
                               "(multi-start GP solve, the default) or "
                               "'delta' (warm Newton-KKT coefficient patch "
                               "with full-solve fallback)")
    simulate.add_argument("--bank-index", choices=["flat", "shared"],
                          default="flat",
                          help="query-bank layout: 'flat' (one compiled row "
                               "per query, the default) or 'shared' "
                               "(structure-deduplicating template index — "
                               "per-tick cost scales with distinct "
                               "structures, not bank size)")
    simulate.add_argument("--runs", type=int, default=1,
                          help="replicate the run at N derived seeds "
                               "(deterministic per-index derivation)")
    simulate.add_argument("--jobs", type=int, default=None,
                          help="worker processes for --runs > 1 "
                               "(default: serial; results are identical)")
    faults = simulate.add_argument_group(
        "fault injection",
        "inject failures and exercise the recovery protocol "
        "(epochs, leases, ack/retry); all off by default")
    faults.add_argument("--loss-rate", type=float, default=0.0,
                        help="per-message loss probability on every link")
    faults.add_argument("--duplicate-rate", type=float, default=0.0,
                        help="per-message duplicate-delivery probability")
    faults.add_argument("--crash-spec", default="",
                        help='source crash windows, e.g. "2:100:160,5:200:260" '
                             "(source:start:end)")
    faults.add_argument("--partition-spec", default="",
                        help='full-partition windows, e.g. "50:80" (start:end)')
    faults.add_argument("--delay-spike-spec", default="",
                        help='delay-spike windows, e.g. "50:80:10" '
                             "(start:end:factor)")
    faults.add_argument("--fault-seed", type=int, default=0)
    faults.add_argument("--lease-duration", type=float, default=20.0,
                        help="seconds an item may stay unheard-from before "
                             "it is marked suspect")
    faults.add_argument("--heartbeat-interval", type=float, default=10.0)
    faults.add_argument("--retry-timeout", type=float, default=2.0,
                        help="first DAB-change retransmit timeout (doubles "
                             "per attempt)")
    simulate.set_defaults(func=cmd_simulate)

    figures = sub.add_parser("figures", help="regenerate a paper figure/table")
    figures.add_argument("figure", choices=["fig5", "fig6", "fig7", "fig8a",
                                            "fig8b", "fig8c", "sharfman",
                                            "signomial", "timing"])
    figures.add_argument("--queries", default="5,10",
                         help="comma-separated query counts (x-axis)")
    figures.add_argument("--mus", default="1,5")
    figures.add_argument("--items", type=int, default=30)
    figures.add_argument("--trace-length", type=int, default=201)
    figures.add_argument("--seed", type=int, default=0)
    figures.add_argument("--jobs", type=int, default=None,
                         help="worker processes for the sweep (default: "
                              "serial; results are identical)")
    figures.set_defaults(func=cmd_figures)

    traces = sub.add_parser("traces", help="print synthetic traces as CSV")
    traces.add_argument("--items", type=int, default=3)
    traces.add_argument("--length", type=int, default=10)
    traces.add_argument("--kind", choices=["gbm", "random_walk", "monotonic"],
                        default="gbm")
    traces.add_argument("--seed", type=int, default=0)
    traces.set_defaults(func=cmd_traces)

    def _scenario_flags(command: argparse.ArgumentParser) -> None:
        """The deterministic-scenario knobs every service peer must agree on."""
        command.add_argument("--queries", type=int, default=100)
        command.add_argument("--items", type=int, default=40)
        command.add_argument("--sources", type=int, default=8)
        command.add_argument("--seed", type=int, default=0)
        command.add_argument("--workload", choices=["portfolio", "arbitrage"],
                             default="portfolio")
        command.add_argument("--algorithm", default="dual_dab",
                             choices=["optimal_refresh", "dual_dab",
                                      "half_and_half", "different_sum",
                                      "signomial", "sharfman_baseline",
                                      "uniform_baseline", "laq"])
        command.add_argument("--trace-length", type=int, default=301,
                             help="scenario trace length (rate estimation "
                                  "window; grown automatically to cover "
                                  "--duration where applicable)")

    serve = sub.add_parser("serve",
                           help="run the live asyncio coordinator server")
    _scenario_flags(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=DEFAULT_SERVICE_PORT)
    serve.add_argument("--mu", type=float, default=5.0,
                       help="recomputation cost in messages")
    serve.add_argument("--recompute-mode", choices=["full", "delta"],
                       default="full",
                       help="how window breaches are re-solved: 'full' "
                            "(multi-start GP solve) or 'delta' (warm "
                            "Newton-KKT patch with full-solve fallback)")
    serve.add_argument("--bank-index", choices=["flat", "shared"],
                       default="flat",
                       help="query-bank layout: 'flat' (per-query compiled "
                            "rows) or 'shared' (structure-deduplicating "
                            "template index with incremental QUERY_SUB "
                            "registration)")
    serve.add_argument("--journal", default=None, metavar="DIR",
                       help="journal coordinator state to DIR (write-ahead "
                            "log + periodic snapshots); on start, restore "
                            "from the newest snapshot and replay the tail")
    serve.add_argument("--snapshot-every", type=int, default=500,
                       help="compact a snapshot every N journal records")
    serve.add_argument("--fsync", choices=["always", "interval", "off"],
                       default="always",
                       help="journal fsync policy: what a machine crash "
                            "(not just a process kill) can lose")
    serve.set_defaults(func=cmd_serve)

    journal = sub.add_parser("journal",
                             help="inspect an on-disk coordinator journal")
    journal_sub = journal.add_subparsers(dest="journal_command", required=True)
    inspect = journal_sub.add_parser(
        "inspect", help="summarise a journal directory: WAL records, "
                        "snapshots, replay tail, torn bytes")
    inspect.add_argument("directory", help="the --journal directory")
    inspect.add_argument("--last", type=int, default=5,
                         help="show the final N records")
    inspect.add_argument("--json", action="store_true",
                         help="emit the summary as JSON")
    inspect.set_defaults(func=cmd_journal)

    agent = sub.add_parser("agent",
                           help="run source agent(s) replaying traces "
                                "against a live coordinator")
    _scenario_flags(agent)
    agent.add_argument("--host", default="127.0.0.1")
    agent.add_argument("--port", type=int, default=DEFAULT_SERVICE_PORT)
    agent.add_argument("--source-id", type=int, default=None,
                       help="run only this source (default: all of them "
                            "in one process)")
    agent.add_argument("--duration", type=int, default=300,
                       help="trace steps to replay")
    agent.add_argument("--tick-interval", type=float, default=0.0,
                       help="seconds to sleep between trace steps")
    agent.add_argument("--heartbeat-interval", type=float, default=None,
                       help="send HEARTBEAT every this many seconds")
    agent.set_defaults(func=cmd_agent)

    loadgen = sub.add_parser("loadgen",
                             help="drive N sources x M subscribers and "
                                  "audit QAB compliance")
    _scenario_flags(loadgen)
    loadgen.add_argument("--duration", type=int, default=30,
                         help="trace steps each source replays")
    loadgen.add_argument("--subscribers", type=int, default=4)
    loadgen.add_argument("--tick-interval", type=float, default=0.0)
    loadgen.add_argument("--connect", default=None, metavar="HOST:PORT",
                         help="drive a live coordinator over TCP (default: "
                              "probe 127.0.0.1:%d, else run in process)"
                              % DEFAULT_SERVICE_PORT)
    loadgen.add_argument("--in-process", action="store_true",
                         help="skip the TCP probe; always run the loopback "
                              "server in process")
    loadgen.add_argument("--output",
                         default="benchmarks/results/BENCH_service.json",
                         help="write the JSON report here ('' to skip)")
    loadgen.set_defaults(func=cmd_loadgen)

    cluster = sub.add_parser("cluster",
                             help="sharded coordinator cluster: shard "
                                  "router + fan-out broker tier")
    cluster_sub = cluster.add_subparsers(dest="cluster_command", required=True)

    cluster_serve = cluster_sub.add_parser(
        "serve", help="run an N-shard coordinator cluster behind one "
                      "TCP shard router")
    _scenario_flags(cluster_serve)
    cluster_serve.add_argument("--shards", type=int, default=2,
                               help="coordinator shard count (items "
                                    "partition by stable hash; queries "
                                    "decompose across their home shards "
                                    "under B/k sub-budgets)")
    cluster_serve.add_argument("--host", default="127.0.0.1")
    cluster_serve.add_argument("--port", type=int,
                               default=DEFAULT_SERVICE_PORT)
    cluster_serve.add_argument("--mu", type=float, default=5.0,
                               help="recomputation cost in messages")
    cluster_serve.add_argument("--recompute-mode",
                               choices=["full", "delta"], default="full")
    cluster_serve.add_argument("--bank-index", choices=["flat", "shared"],
                               default="flat")
    cluster_serve.add_argument("--journal", default=None, metavar="DIR",
                               help="journal every shard under "
                                    "DIR/shard-<i> (enables shard "
                                    "failover)")
    cluster_serve.add_argument("--snapshot-every", type=int, default=500)
    cluster_serve.add_argument("--fsync",
                               choices=["always", "interval", "off"],
                               default="always")
    cluster_serve.set_defaults(func=cmd_cluster_serve)

    cluster_loadgen = cluster_sub.add_parser(
        "loadgen", help="drive an in-process shard cluster and audit "
                        "recombined values against full-budget QAB")
    _scenario_flags(cluster_loadgen)
    cluster_loadgen.add_argument("--shards", type=int, default=2)
    cluster_loadgen.add_argument("--duration", type=int, default=30,
                                 help="trace steps each source replays")
    cluster_loadgen.add_argument("--subscribers", type=int, default=4)
    cluster_loadgen.add_argument("--brokers", type=int, default=0,
                                 help="attach subscribers through an "
                                      "N-broker fan-out tier instead of "
                                      "directly to the router")
    cluster_loadgen.add_argument("--tick-interval", type=float, default=0.0)
    cluster_loadgen.add_argument("--journal", default=None, metavar="DIR")
    cluster_loadgen.add_argument("--output", default="",
                                 help="write the JSON report here "
                                      "('' to skip)")
    cluster_loadgen.set_defaults(func=cmd_cluster_loadgen)

    soak = sub.add_parser("chaos-soak",
                          help="soak the live service under injected "
                               "wire faults and audit QAB compliance")
    soak.add_argument("--schedule", default="ci",
                      choices=["smoke", "ci", "heavy", "restart", "shards",
                               "reshard"],
                      help="named fault schedule (loss + partition + "
                           "agent crash, increasing intensity; 'restart' "
                           "adds coordinator kill/restore; 'shards' aims "
                           "the kills at cluster shards; 'reshard' crashes "
                           "shards undetected mid-migration and lets the "
                           "health monitor heal them — needs --shards > 1)")
    soak.add_argument("--shards", type=int, default=1,
                      help="run the soak against an N-shard cluster behind "
                           "the shard router (kills then fail over one "
                           "shard at a time)")
    soak.add_argument("--steps", type=int, default=None,
                      help="trace steps to soak (default: the schedule's "
                           "budget)")
    soak.add_argument("--queries", type=int, default=6)
    soak.add_argument("--items", type=int, default=16)
    soak.add_argument("--sources", type=int, default=3)
    soak.add_argument("--seed", type=int, default=1)
    soak.add_argument("--workload", choices=["portfolio", "arbitrage"],
                      default="portfolio")
    soak.add_argument("--algorithm", default="dual_dab",
                      choices=["optimal_refresh", "dual_dab",
                               "half_and_half", "different_sum",
                               "signomial", "sharfman_baseline",
                               "uniform_baseline", "laq"])
    soak.add_argument("--lease-duration", type=float, default=3.0,
                      help="staleness lease in logical steps")
    soak.add_argument("--journal", default=None, metavar="DIR",
                      help="journal the coordinator to DIR (a temp dir is "
                           "created when kills are requested without one)")
    soak.add_argument("--kill-steps", default=None, metavar="S1,S2,...",
                      help="kill/restore the coordinator at these steps "
                           "(default: the schedule's, e.g. restart=9,24)")
    soak.add_argument("--snapshot-every", type=int, default=50,
                      help="compact a snapshot every N journal records")
    soak.add_argument("--fsync", choices=["always", "interval", "off"],
                      default="always", help="journal fsync policy")
    soak.add_argument("--output",
                      default="benchmarks/results/BENCH_chaos.json",
                      help="write the JSON report here ('' to skip)")
    soak.set_defaults(func=cmd_chaos_soak)

    return parser


def _run_profiled(args: argparse.Namespace) -> int:
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return args.func(args)
    finally:
        profiler.disable()
        profiler.dump_stats(args.profile)
        print(f"\nprofile written to {args.profile}", file=sys.stderr)
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(20)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.profile is not None:
            return _run_profiled(args)
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
