"""Named experiment scenarios.

The paper's physical setup: 20 sources, 1 coordinator, 100 data items,
~10 000 s stock traces.  :func:`scaled_scenario` builds that world at any
scale factor so tests run in milliseconds, benches in seconds, and a full
paper-scale reproduction remains one call away.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.dynamics.traces import (
    GBMTraceGenerator,
    MonotonicTraceGenerator,
    RandomWalkTraceGenerator,
    TraceSet,
    generate_trace_set,
)
from repro.queries.items import ItemRegistry
from repro.queries.polynomial import PolynomialQuery
from repro.workloads.generator import (
    WorkloadConfig,
    generate_arbitrage_queries,
    generate_portfolio_queries,
)

#: Paper scale.
PAPER_ITEM_COUNT = 100
PAPER_TRACE_LENGTH = 10_000
PAPER_SOURCE_COUNT = 20

_GENERATORS = {
    "gbm": GBMTraceGenerator,
    "random_walk": RandomWalkTraceGenerator,
    "monotonic": MonotonicTraceGenerator,
}


def paper_registry(item_count: int = PAPER_ITEM_COUNT) -> ItemRegistry:
    """The item population (``x0 .. x99`` at paper scale)."""
    return ItemRegistry.numbered(item_count)


def paper_traces(registry: ItemRegistry, length: int = PAPER_TRACE_LENGTH,
                 kind: str = "gbm", seed: int = 0, **generator_kwargs) -> TraceSet:
    """Stock-like traces for the population (see DESIGN.md §2 for why GBM
    substitutes for the paper's Yahoo! downloads)."""
    try:
        generator_cls = _GENERATORS[kind]
    except KeyError:
        raise ValueError(f"unknown trace kind {kind!r}; expected one of {sorted(_GENERATORS)}")
    return generate_trace_set(registry, length, generator_cls(**generator_kwargs), seed=seed)


@dataclass
class PaperScenario:
    """A fully materialised world: items, traces and queries."""

    registry: ItemRegistry
    traces: TraceSet
    queries: List[PolynomialQuery]
    source_count: int

    @property
    def initial_values(self) -> Dict[str, float]:
        return self.traces.initial_values()


def scaled_scenario(
    query_count: int,
    item_count: int = 40,
    trace_length: int = 1200,
    source_count: int = 8,
    query_kind: str = "portfolio",
    trace_kind: str = "gbm",
    seed: int = 0,
    workload: Optional[WorkloadConfig] = None,
    **trace_kwargs,
) -> PaperScenario:
    """Build a scenario at a chosen scale.

    ``query_kind``: ``"portfolio"`` (PPQs, Figures 5–7) or ``"arbitrage"``
    (general PQs, Figure 8(a/b)).  Defaults are the bench scale; pass
    ``item_count=100, trace_length=10_000, source_count=20`` for the
    paper's full setup.
    """
    registry = paper_registry(item_count)
    traces = paper_traces(registry, trace_length, kind=trace_kind, seed=seed,
                          **trace_kwargs)
    initial = traces.initial_values()
    if query_kind == "portfolio":
        queries = generate_portfolio_queries(registry, initial, query_count,
                                             config=workload, seed=seed)
    elif query_kind == "arbitrage":
        queries = generate_arbitrage_queries(registry, initial, query_count,
                                             config=workload, seed=seed)
    else:
        raise ValueError(f"unknown query kind {query_kind!r}")
    return PaperScenario(registry=registry, traces=traces, queries=queries,
                         source_count=source_count)
