"""The 80-20 query workload of the paper's evaluation (Section V-A).

* 100 data items; group 1 holds 20 % of them, group 2 the rest.
* 80 % of each query's items come from group 1, 20 % from group 2 —
  a small hot set shared across queries, a long cold tail.
* Each query touches 12–14 distinct items; term weights are uniform in
  [1, 100].
* PPQ workloads are *global portfolio* queries ``Σ w_k · x · y : B`` with
  the QAB at 1 % of the initial query value; general-PQ workloads are
  *arbitrage* queries ``Σ w · x·y − Σ w' · u·v : B`` with the QAB at 2 %.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import InvalidQueryError, SimulationError
from repro.queries.items import ItemRegistry
from repro.queries.polynomial import PolynomialQuery
from repro.queries.terms import QueryTerm


@dataclass
class WorkloadConfig:
    """Knobs of the 80-20 generator; defaults are the paper's."""

    group1_fraction: float = 0.2
    group1_probability: float = 0.8
    pairs_per_query: Tuple[int, int] = (6, 7)
    weight_range: Tuple[float, float] = (1.0, 100.0)
    ppq_qab_fraction: float = 0.01
    pq_qab_fraction: float = 0.02
    #: For Figure 8(b): probability that an arbitrage query's negative half
    #: reuses items from its positive half ("dependent" polynomials).
    shared_item_probability: float = 0.0

    def __post_init__(self) -> None:
        if not (0.0 < self.group1_fraction < 1.0):
            raise SimulationError(f"group1 fraction must be in (0,1), got {self.group1_fraction}")
        if not (0.0 <= self.group1_probability <= 1.0):
            raise SimulationError("group1 probability must be in [0,1]")
        low, high = self.pairs_per_query
        if low < 1 or high < low:
            raise SimulationError(f"bad pairs_per_query range {self.pairs_per_query!r}")
        if self.weight_range[0] <= 0 or self.weight_range[1] < self.weight_range[0]:
            raise SimulationError(f"bad weight range {self.weight_range!r}")
        if not (0.0 <= self.shared_item_probability <= 1.0):
            raise SimulationError("shared_item_probability must be in [0,1]")


def split_items_80_20(registry: ItemRegistry,
                      config: Optional[WorkloadConfig] = None) -> Tuple[List[str], List[str]]:
    """Partition items into (group1, group2) by registry order — the first
    ``group1_fraction`` of the population is the hot set."""
    cfg = config or WorkloadConfig()
    names = registry.names
    cut = max(1, int(round(len(names) * cfg.group1_fraction)))
    return names[:cut], names[cut:]


def _draw_items(rng: np.random.Generator, group1: Sequence[str], group2: Sequence[str],
                count: int, config: WorkloadConfig,
                exclude: Sequence[str] = ()) -> List[str]:
    """Draw ``count`` distinct items, ~80 % from group 1."""
    pool1 = [n for n in group1 if n not in exclude]
    pool2 = [n for n in group2 if n not in exclude]
    chosen: List[str] = []
    taken = set()
    for _ in range(count):
        use_group1 = rng.random() < config.group1_probability
        primary_pool = pool1 if use_group1 else pool2
        fallback_pool = pool2 if use_group1 else pool1
        candidates = [n for n in primary_pool if n not in taken]
        if not candidates:
            candidates = [n for n in fallback_pool if n not in taken]
        if not candidates:
            raise SimulationError(
                f"not enough items to draw {count} distinct ones "
                f"(population {len(pool1) + len(pool2)})"
            )
        pick = candidates[int(rng.integers(len(candidates)))]
        taken.add(pick)
        chosen.append(pick)
    return chosen


def _pair_terms(rng: np.random.Generator, items: Sequence[str],
                config: WorkloadConfig, sign: float) -> List[QueryTerm]:
    """Group items into consecutive pairs and attach uniform weights."""
    terms = []
    for i in range(0, len(items) - 1, 2):
        weight = sign * rng.uniform(*config.weight_range)
        terms.append(QueryTerm.product(weight, items[i], items[i + 1]))
    return terms


def generate_portfolio_queries(
    registry: ItemRegistry,
    initial_values: Mapping[str, float],
    count: int,
    config: Optional[WorkloadConfig] = None,
    seed: int = 0,
    name_prefix: str = "portfolio",
) -> List[PolynomialQuery]:
    """``count`` global-portfolio PPQs: ``Σ w_k · x_k · y_k : B`` with the
    QAB at ``ppq_qab_fraction`` of the initial query value."""
    cfg = config or WorkloadConfig()
    group1, group2 = split_items_80_20(registry, cfg)
    rng = np.random.default_rng(seed)
    queries = []
    for index in range(count):
        pairs = int(rng.integers(cfg.pairs_per_query[0], cfg.pairs_per_query[1] + 1))
        items = _draw_items(rng, group1, group2, 2 * pairs, cfg)
        terms = _pair_terms(rng, items, cfg, sign=1.0)
        provisional = PolynomialQuery(terms, qab=1.0, name=f"{name_prefix}{index}")
        initial = provisional.evaluate(initial_values)
        qab = max(cfg.ppq_qab_fraction * abs(initial), 1e-9)
        queries.append(provisional.with_qab(qab))
    return queries


def iter_template_bank(
    registry: ItemRegistry,
    initial_values: Mapping[str, float],
    count: int,
    distinct_structures: int,
    config: Optional[WorkloadConfig] = None,
    seed: int = 0,
    name_prefix: str = "bank",
) -> Iterator[PolynomialQuery]:
    """Streaming form of :func:`generate_template_bank`: yields the same
    queries one at a time, so a 10^6-query bank never has to exist as a
    Python list (the scaling bench indexes and drops each query)."""
    cfg = config or WorkloadConfig()
    if distinct_structures < 1:
        raise SimulationError(
            f"distinct_structures must be >= 1, got {distinct_structures}")
    if distinct_structures > count:
        raise SimulationError(
            f"distinct_structures ({distinct_structures}) cannot exceed the "
            f"bank size ({count})")
    group1, group2 = split_items_80_20(registry, cfg)
    rng = np.random.default_rng(seed)
    structures: List[List[str]] = []
    for _ in range(distinct_structures):
        pairs = int(rng.integers(cfg.pairs_per_query[0],
                                 cfg.pairs_per_query[1] + 1))
        structures.append(_draw_items(rng, group1, group2, 2 * pairs, cfg))
    for index in range(count):
        items = structures[index % distinct_structures]
        terms = _pair_terms(rng, items, cfg, sign=1.0)
        provisional = PolynomialQuery(terms, qab=1.0,
                                      name=f"{name_prefix}{index}")
        initial = provisional.evaluate(initial_values)
        qab = max(cfg.ppq_qab_fraction * abs(initial), 1e-9)
        yield provisional.with_qab(qab)


def generate_template_bank(
    registry: ItemRegistry,
    initial_values: Mapping[str, float],
    count: int,
    distinct_structures: int,
    config: Optional[WorkloadConfig] = None,
    seed: int = 0,
    name_prefix: str = "bank",
) -> List[PolynomialQuery]:
    """``count`` portfolio PPQs drawn from ``distinct_structures`` monomial
    structures — the shared-bank-index scaling workload.

    A *structure* is a fixed (item, exponent) footprint; every query built
    on it gets fresh uniform weights and its own QAB, so structurally-
    identical queries are still distinct optimisation problems.  This is
    the 80-20 regime taken to bank scale: most of a large subscriber
    population watches the same few aggregate shapes over the hot items,
    so per-tick cost should follow ``distinct_structures``, not ``count``.
    """
    return list(iter_template_bank(registry, initial_values, count,
                                   distinct_structures, config=config,
                                   seed=seed, name_prefix=name_prefix))


def generate_laq_queries(
    registry: ItemRegistry,
    initial_values: Mapping[str, float],
    count: int,
    config: Optional[WorkloadConfig] = None,
    seed: int = 0,
    name_prefix: str = "laq",
) -> List[PolynomialQuery]:
    """``count`` linear aggregate queries ``Σ w_i · x_i : B`` drawn with
    the same 80-20 item popularity; the QAB uses the PPQ fraction (1 % of
    the initial value), matching the traffic/average-monitoring workloads
    the paper cites for LAQs."""
    cfg = config or WorkloadConfig()
    group1, group2 = split_items_80_20(registry, cfg)
    rng = np.random.default_rng(seed)
    queries = []
    for index in range(count):
        pairs = int(rng.integers(cfg.pairs_per_query[0], cfg.pairs_per_query[1] + 1))
        item_count = 2 * pairs  # same 12-14 item footprint as the PQs
        items = _draw_items(rng, group1, group2, item_count, cfg)
        terms = [QueryTerm(rng.uniform(*cfg.weight_range), {name: 1})
                 for name in items]
        provisional = PolynomialQuery(terms, qab=1.0, name=f"{name_prefix}{index}")
        initial = provisional.evaluate(initial_values)
        qab = max(cfg.ppq_qab_fraction * abs(initial), 1e-9)
        queries.append(provisional.with_qab(qab))
    return queries


def generate_arbitrage_queries(
    registry: ItemRegistry,
    initial_values: Mapping[str, float],
    count: int,
    config: Optional[WorkloadConfig] = None,
    seed: int = 0,
    name_prefix: str = "arbitrage",
) -> List[PolynomialQuery]:
    """``count`` arbitrage PQs: ``Σ w·x·y − Σ w'·u·v : B``.

    With ``shared_item_probability > 0`` the negative half draws (some of)
    its items from the positive half's, producing the *dependent*
    polynomials of Figure 8(b); at 0 the halves are disjoint
    (*independent*, Figure 8(a)).
    """
    cfg = config or WorkloadConfig()
    group1, group2 = split_items_80_20(registry, cfg)
    rng = np.random.default_rng(seed)
    queries = []
    for index in range(count):
        pairs = int(rng.integers(cfg.pairs_per_query[0], cfg.pairs_per_query[1] + 1))
        pos_pairs = max(1, pairs // 2)
        neg_pairs = max(1, pairs - pos_pairs)
        pos_items = _draw_items(rng, group1, group2, 2 * pos_pairs, cfg)
        if rng.random() < cfg.shared_item_probability and len(pos_items) >= 2:
            # Dependent halves: reuse positive-half items in the negative half.
            reuse = min(len(pos_items), 2 * neg_pairs)
            reused = list(rng.choice(pos_items, size=reuse, replace=False))
            fresh_needed = 2 * neg_pairs - reuse
            fresh = _draw_items(rng, group1, group2, fresh_needed, cfg,
                                exclude=pos_items) if fresh_needed else []
            neg_items = reused + fresh
        else:
            neg_items = _draw_items(rng, group1, group2, 2 * neg_pairs, cfg,
                                    exclude=pos_items)
        terms = _pair_terms(rng, pos_items, cfg, sign=1.0)
        terms += _pair_terms(rng, neg_items, cfg, sign=-1.0)
        provisional = PolynomialQuery(terms, qab=1.0, name=f"{name_prefix}{index}")
        initial = provisional.evaluate(initial_values)
        positive_mass = sum(t.evaluate(initial_values) for t in terms if t.is_positive)
        # An arbitrage value can start near zero; anchor the 2 % QAB on the
        # larger of |value| and the positive mass so bounds stay meaningful.
        qab = max(cfg.pq_qab_fraction * max(abs(initial), positive_mass * 0.1), 1e-9)
        queries.append(provisional.with_qab(qab))
    return queries
