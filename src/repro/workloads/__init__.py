"""Query workload generation — the paper's Section V-A methodology."""

from repro.workloads.generator import (
    WorkloadConfig,
    generate_arbitrage_queries,
    generate_laq_queries,
    generate_portfolio_queries,
    generate_template_bank,
    iter_template_bank,
    split_items_80_20,
)
from repro.workloads.scenarios import (
    PaperScenario,
    paper_registry,
    paper_traces,
    scaled_scenario,
)

__all__ = [
    "WorkloadConfig",
    "generate_portfolio_queries",
    "generate_arbitrage_queries",
    "generate_laq_queries",
    "generate_template_bank",
    "iter_template_bank",
    "split_items_80_20",
    "PaperScenario",
    "paper_registry",
    "paper_traces",
    "scaled_scenario",
]
