"""Solver diagnostics.

Every GP solve returns a :class:`SolveReport` alongside the solution so that
callers (and tests) can assert not just "a number came back" but that the
point is feasible and the solver converged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class SolveReport:
    """Outcome of one GP solve.

    Attributes
    ----------
    status:
        ``"optimal"``, ``"infeasible"`` or ``"failed"``.
    method:
        The scipy method that produced the accepted point.
    iterations:
        Iteration count reported by scipy.
    starts_tried:
        How many starting points were attempted before success.
    max_violation:
        Largest normalised constraint violation ``g(t) - 1`` at the solution
        (non-positive means feasible).
    residuals:
        Per-constraint violations, keyed by constraint name.
    message:
        Human-readable detail from the solver.
    """

    status: str
    method: str = ""
    iterations: int = 0
    starts_tried: int = 1
    max_violation: float = float("inf")
    residuals: Dict[str, float] = field(default_factory=dict)
    message: str = ""

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"

    def active_constraints(self, tol: float = 1e-5) -> List[str]:
        """Constraints within ``tol`` of their bound (|g - 1| small).

        For the paper's formulations the QAB constraint should always be
        active at the optimum — slack there means refreshes left on the
        table — so this is a useful optimality smoke test.
        """
        return [name for name, v in self.residuals.items() if abs(v) <= tol]

    def summary(self) -> str:
        lines = [
            f"status={self.status} method={self.method} iterations={self.iterations}",
            f"starts_tried={self.starts_tried} max_violation={self.max_violation:.3e}",
        ]
        if self.message:
            lines.append(f"message: {self.message}")
        return "\n".join(lines)
