"""Log-space GP solver built on scipy.

The substitution ``y = log t`` turns every posynomial ``f(t)`` into
``F(y) = logsumexp(A y + log c)``, a smooth convex function whose gradient is
the softmax-weighted row sum of ``A``.  The program

    minimise F0(y)  subject to  Fi(y) <= 0

is therefore a smooth convex NLP.  Monomial constraints are *linear* in
log-space and are batched into a single vector-valued constraint; the
(few) true posynomial constraints are batched into a second one — so SLSQP
sees two callbacks per iteration instead of one per constraint, which keeps
each DAB recomputation in the low milliseconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np
from scipy.optimize import NonlinearConstraint, minimize
from scipy.special import logsumexp, softmax

from repro.exceptions import InfeasibleProblemError, SolverFailedError
from repro.gp.diagnostics import SolveReport
from repro.gp.program import CompiledFunction, CompiledProgram, GeometricProgram

#: Accepted normalised constraint violation at a solution.
FEASIBILITY_TOL = 1e-6

#: Log-space variables are clipped to this box; e^30 ~ 1e13 comfortably
#: covers every quantity the paper's formulations produce.
_Y_BOUND = 30.0


@dataclass
class GPSolution:
    """A solved geometric program.

    Attributes
    ----------
    values:
        Optimal variable values in the original (positive) space.
    objective:
        Objective value at :attr:`values` (original space).
    report:
        :class:`~repro.gp.diagnostics.SolveReport` with convergence detail.
    """

    values: Dict[str, float]
    objective: float
    report: SolveReport

    def __getitem__(self, name: str) -> float:
        return self.values[name]


def _lse_value(func: CompiledFunction, y: np.ndarray) -> float:
    return float(logsumexp(func.A @ y + func.log_c))


def _lse_grad(func: CompiledFunction, y: np.ndarray) -> np.ndarray:
    weights = softmax(func.A @ y + func.log_c)
    return weights @ func.A


def _lse_hessian(func: CompiledFunction, y: np.ndarray) -> np.ndarray:
    """Hessian of ``F(y) = logsumexp(A y + log c)``:
    ``Aᵀ (diag(w) - w wᵀ) A`` with softmax weights ``w`` — positive
    semi-definite, which is what makes the log-space program convex and a
    warm Newton-KKT patch on it sound (see filters/delta_recompute.py)."""
    weights = softmax(func.A @ y + func.log_c)
    weighted = func.A * weights[:, None]
    mean = weights @ func.A
    return func.A.T @ weighted - np.outer(mean, mean)


class _ConstraintBundle:
    """All constraints of a compiled program as one vector function.

    Linear rows come from monomial (single-term) constraints:
    ``a·y + log c <= 0``.  Each multi-term posynomial contributes one
    log-sum-exp row.
    """

    def __init__(self, compiled: CompiledProgram):
        linear_rows: List[np.ndarray] = []
        linear_offsets: List[float] = []
        self.nonlinear: List[CompiledFunction] = []
        self.names: List[str] = []
        nonlinear_names: List[str] = []
        for name, func in zip(compiled.constraint_names, compiled.constraints):
            if func.A.shape[0] == 1:
                linear_rows.append(func.A[0])
                linear_offsets.append(float(func.log_c[0]))
                self.names.append(name)
            else:
                self.nonlinear.append(func)
                nonlinear_names.append(name)
        self.names.extend(nonlinear_names)
        dimension = len(compiled.variables)
        self.A_lin = (np.vstack(linear_rows) if linear_rows
                      else np.zeros((0, dimension)))
        self.c_lin = np.asarray(linear_offsets)
        self.size = self.A_lin.shape[0] + len(self.nonlinear)

    def values(self, y: np.ndarray) -> np.ndarray:
        """F_i(y) for every constraint (<= 0 means satisfied)."""
        parts = [self.A_lin @ y + self.c_lin]
        if self.nonlinear:
            parts.append(np.array([_lse_value(f, y) for f in self.nonlinear]))
        return np.concatenate(parts)

    def jacobian(self, y: np.ndarray) -> np.ndarray:
        if not self.nonlinear:
            return self.A_lin
        rows = [_lse_grad(f, y) for f in self.nonlinear]
        return np.vstack([self.A_lin, np.vstack(rows)])


def _initial_log_point(
    compiled: CompiledProgram, initial: Optional[Mapping[str, float]]
) -> np.ndarray:
    y0 = np.zeros(len(compiled.variables))
    if initial:
        for j, name in enumerate(compiled.variables):
            value = initial.get(name)
            if value is not None and value > 0.0 and math.isfinite(value):
                y0[j] = math.log(value)
    return np.clip(y0, -_Y_BOUND, _Y_BOUND)


def _restore_feasibility(bundle: _ConstraintBundle, y0: np.ndarray) -> np.ndarray:
    """Phase-1: push a start point toward the feasible region by minimising
    ``sum(max(Fi, 0)^2)`` — identically zero on the feasible set."""
    if bundle.size == 0 or float(np.max(bundle.values(y0))) <= 0.0:
        return y0

    def merit(y: np.ndarray) -> Tuple[float, np.ndarray]:
        violations = np.maximum(bundle.values(y), 0.0)
        value = float(violations @ violations)
        grad = 2.0 * (violations @ bundle.jacobian(y))
        return value, grad

    result = minimize(merit, y0, jac=True, method="BFGS",
                      options={"maxiter": 200, "gtol": 1e-10})
    return np.clip(result.x, -_Y_BOUND, _Y_BOUND)


def _solve_slsqp(compiled: CompiledProgram, bundle: _ConstraintBundle,
                 y0: np.ndarray, maxiter: int):
    constraints = []
    if bundle.size:
        constraints.append({
            "type": "ineq",
            "fun": lambda y: -bundle.values(y),
            "jac": lambda y: -bundle.jacobian(y),
        })
    return minimize(
        lambda y: _lse_value(compiled.objective, y),
        y0,
        jac=lambda y: _lse_grad(compiled.objective, y),
        method="SLSQP",
        bounds=[(-_Y_BOUND, _Y_BOUND)] * len(y0),
        constraints=constraints,
        options={"maxiter": maxiter, "ftol": 1e-10},
    )


def _solve_trust_constr(compiled: CompiledProgram, bundle: _ConstraintBundle,
                        y0: np.ndarray, maxiter: int):
    constraints = []
    if bundle.size:
        constraints.append(NonlinearConstraint(
            fun=bundle.values, lb=-np.inf, ub=0.0, jac=bundle.jacobian,
        ))
    return minimize(
        lambda y: _lse_value(compiled.objective, y),
        y0,
        jac=lambda y: _lse_grad(compiled.objective, y),
        method="trust-constr",
        constraints=constraints,
        options={"maxiter": maxiter, "gtol": 1e-9, "xtol": 1e-12},
    )


def _max_violation(bundle: _ConstraintBundle, y: np.ndarray) -> Tuple[float, Dict[str, float]]:
    if bundle.size == 0:
        return 0.0, {}
    # Report in original space: g(t) - 1 = exp(F(y)) - 1.
    violations = np.expm1(bundle.values(y))
    residuals = dict(zip(bundle.names, violations.tolist()))
    return float(np.max(violations)), residuals


def solve(
    program: GeometricProgram,
    initial: Optional[Mapping[str, float]] = None,
    max_starts: int = 4,
    maxiter: int = 300,
    seed: int = 0,
    tol: float = FEASIBILITY_TOL,
) -> GPSolution:
    """Solve a geometric program to global optimality.

    Parameters
    ----------
    program:
        The :class:`~repro.gp.program.GeometricProgram` to solve.
    initial:
        Optional warm-start values (original space).  The simulator
        recomputes DABs at values close to the previous recomputation, so
        warm starts cut solve time substantially.
    max_starts:
        Number of (increasingly perturbed) starting points to try before
        declaring failure.
    seed:
        Seed for start-point perturbations — keeps solves deterministic.

    Raises
    ------
    InfeasibleProblemError
        When no feasible point could be found from any start.
    SolverFailedError
        When scipy terminated abnormally on every start.
    """
    return solve_compiled(program.compile(), initial=initial,
                          max_starts=max_starts, maxiter=maxiter,
                          seed=seed, tol=tol)


def solve_compiled(
    compiled: CompiledProgram,
    initial: Optional[Mapping[str, float]] = None,
    max_starts: int = 4,
    maxiter: int = 300,
    seed: int = 0,
    tol: float = FEASIBILITY_TOL,
) -> GPSolution:
    """Solve an already-compiled program (see :func:`solve`).

    This is the re-entry point for compiled-GP structure reuse: planners
    keep a :class:`CompiledProgram` per query, refresh only its
    log-coefficient vectors at each recomputation, and call this directly —
    skipping the posynomial rebuild and ``compile()`` entirely.  Given
    bitwise-identical arrays and warm start, the solve trajectory (and
    hence the returned solution) is identical to the uncompiled path.
    """
    bundle = _ConstraintBundle(compiled)
    rng = np.random.default_rng(seed)
    base = _initial_log_point(compiled, initial)

    best: Optional[Tuple[np.ndarray, float]] = None
    last_message = ""
    method_used = ""
    iterations = 0
    starts = 0

    for attempt in range(max_starts):
        starts = attempt + 1
        if attempt == 0:
            y0 = base
        else:
            y0 = np.clip(base + rng.normal(scale=0.5 * attempt, size=base.shape),
                         -_Y_BOUND, _Y_BOUND)
        y0 = _restore_feasibility(bundle, y0)

        for method, runner in (("SLSQP", _solve_slsqp), ("trust-constr", _solve_trust_constr)):
            result = runner(compiled, bundle, y0, maxiter)
            last_message = str(getattr(result, "message", ""))
            y = np.asarray(result.x, dtype=float)
            if bundle.size:
                worst = float(np.max(np.expm1(bundle.values(y))))
            else:
                worst = 0.0
            if worst <= tol:
                objective = math.exp(_lse_value(compiled.objective, y))
                if best is None or objective < best[1]:
                    best = (y, objective)
                    method_used = method
                    iterations = int(getattr(result, "nit", 0) or 0)
                break  # this start produced a feasible point
        if best is not None:
            # The log-space problem is convex: one feasible converged solve
            # is globally optimal; no further starts needed.
            break

    if best is None:
        worst, residuals = _max_violation(bundle, _restore_feasibility(bundle, base))
        report = SolveReport(
            status="infeasible" if worst > tol else "failed",
            method=method_used,
            iterations=iterations,
            starts_tried=starts,
            max_violation=worst,
            residuals=residuals,
            message=last_message,
        )
        if report.status == "infeasible":
            raise InfeasibleProblemError(
                f"no feasible point found (worst violation {worst:.3e})", report
            )
        raise SolverFailedError(f"solver failed: {last_message}", report)

    y, objective = best
    worst, residuals = _max_violation(bundle, y)
    values = {
        name: float(math.exp(y[j])) for j, name in enumerate(compiled.variables)
    }
    report = SolveReport(
        status="optimal",
        method=method_used,
        iterations=iterations,
        starts_tried=starts,
        max_violation=worst,
        residuals=residuals,
        message=last_message,
    )
    return GPSolution(values=values, objective=objective, report=report)
