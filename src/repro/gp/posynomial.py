"""Posynomials: sums of monomials with positive coefficients.

Posynomials are closed under addition, multiplication and positive integer
powers; dividing by a *monomial* is allowed (and used to normalise
constraints to the GP standard form ``f(t) <= 1``).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import NotPosynomialError
from repro.gp.monomial import Monomial, Number

PosyLike = Union["Posynomial", Monomial, int, float]


def substitute(posynomial: "Posynomial", values: Mapping[str, float]) -> "Posynomial":
    """Partially evaluate: replace each variable in ``values`` (all positive)
    by its value, folding it into the coefficients."""
    monomials: List[Monomial] = []
    for term in posynomial.terms:
        coefficient = term.coefficient
        exponents: Dict[str, float] = {}
        for name, exp in term.exponents.items():
            if name in values:
                value = float(values[name])
                if value <= 0.0:
                    raise NotPosynomialError(
                        f"substituted values must be positive; {name!r} = {value!r}"
                    )
                coefficient *= value ** exp
            else:
                exponents[name] = exp
        monomials.append(Monomial(coefficient, exponents))
    return Posynomial(monomials)


def as_posynomial(value: PosyLike) -> "Posynomial":
    """Coerce a monomial or positive scalar into a posynomial."""
    if isinstance(value, Posynomial):
        return value
    if isinstance(value, Monomial):
        return Posynomial([value])
    if isinstance(value, (int, float)):
        return Posynomial([Monomial.constant(float(value))])
    raise TypeError(f"cannot interpret {value!r} as a posynomial")


class Posynomial:
    """An immutable sum of :class:`Monomial` terms.

    Like terms (identical exponent signatures) are combined at construction,
    and terms are kept in a canonical sorted order so that structurally equal
    posynomials compare equal.
    """

    __slots__ = ("_terms",)

    def __init__(self, terms: Iterable[Monomial]):
        combined: Dict[Tuple[Tuple[str, float], ...], float] = {}
        for term in terms:
            if not isinstance(term, Monomial):
                raise TypeError(f"posynomial terms must be Monomials, got {term!r}")
            combined[term.key] = combined.get(term.key, 0.0) + term.coefficient
        if not combined:
            raise NotPosynomialError("a posynomial needs at least one term")
        self._terms = tuple(
            Monomial(coeff, dict(key)) for key, coeff in sorted(combined.items())
        )

    # -- accessors -------------------------------------------------------------

    @property
    def terms(self) -> Tuple[Monomial, ...]:
        return self._terms

    @property
    def variables(self) -> Tuple[str, ...]:
        names = set()
        for term in self._terms:
            names.update(term.variables)
        return tuple(sorted(names))

    @property
    def is_monomial(self) -> bool:
        return len(self._terms) == 1

    @property
    def is_constant(self) -> bool:
        return len(self._terms) == 1 and self._terms[0].is_constant

    @property
    def constant_part(self) -> float:
        """Sum of coefficients of variable-free terms (0.0 if none)."""
        return sum(t.coefficient for t in self._terms if t.is_constant)

    @property
    def degree(self) -> float:
        return max(term.degree for term in self._terms)

    def as_monomial(self) -> Monomial:
        if not self.is_monomial:
            raise NotPosynomialError(f"{self!r} is not a monomial")
        return self._terms[0]

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, values: Mapping[str, Number]) -> float:
        return sum(term.evaluate(values) for term in self._terms)

    def exponent_matrix(self, order: Sequence[str]) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(A, log_c)`` for the log-space form.

        ``A`` is a ``(len(terms), len(order))`` array of exponents and
        ``log_c`` the log coefficients, so that in ``y = log t`` space the
        posynomial value is ``sum(exp(A @ y + log_c))``.
        """
        index = {name: j for j, name in enumerate(order)}
        A = np.zeros((len(self._terms), len(order)))
        log_c = np.empty(len(self._terms))
        for i, term in enumerate(self._terms):
            log_c[i] = math.log(term.coefficient)
            for name, exp in term.key:
                try:
                    A[i, index[name]] = exp
                except KeyError:
                    raise KeyError(
                        f"variable {name!r} of posynomial not present in ordering {order!r}"
                    ) from None
        return A, log_c

    # -- algebra ---------------------------------------------------------------

    def __add__(self, other: PosyLike) -> "Posynomial":
        try:
            other_posy = as_posynomial(other)
        except (TypeError, NotPosynomialError):
            return NotImplemented
        return Posynomial(self._terms + other_posy._terms)

    __radd__ = __add__

    def __mul__(self, other: PosyLike) -> "Posynomial":
        try:
            other_posy = as_posynomial(other)
        except (TypeError, NotPosynomialError):
            return NotImplemented
        products: List[Monomial] = []
        for a in self._terms:
            for b in other_posy._terms:
                products.append(a * b)
        return Posynomial(products)

    __rmul__ = __mul__

    def __truediv__(self, other: Union[Monomial, Number]) -> "Posynomial":
        if isinstance(other, Posynomial):
            if other.is_monomial:
                other = other.as_monomial()
            else:
                raise NotPosynomialError(
                    "a posynomial can only be divided by a monomial or a scalar"
                )
        if isinstance(other, Monomial):
            return Posynomial([t / other for t in self._terms])
        if isinstance(other, (int, float)):
            return Posynomial([t / float(other) for t in self._terms])
        return NotImplemented

    def __pow__(self, power: int) -> "Posynomial":
        if not isinstance(power, int) or power < 1:
            if self.is_monomial:
                return Posynomial([self.as_monomial() ** power])
            raise NotPosynomialError(
                "posynomials only support positive integer powers "
                f"(got {power!r}); monomials support any real power"
            )
        result = self
        for _ in range(power - 1):
            result = result * self
        return result

    # -- comparisons / protocol -------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, float, Monomial)):
            try:
                other = as_posynomial(other)
            except NotPosynomialError:
                return NotImplemented
        if not isinstance(other, Posynomial):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        return hash(self._terms)

    def __len__(self) -> int:
        return len(self._terms)

    def __iter__(self):
        return iter(self._terms)

    def __repr__(self) -> str:
        return "Posynomial(" + " + ".join(repr(t)[len("Monomial("):-1] for t in self._terms) + ")"
