"""Post-solve sensitivity analysis for geometric programs.

In the log-space convex form, the KKT stationarity condition at the
optimum ``y*`` reads ``∇F0(y*) + Σ ν_i ∇F_i(y*) = 0`` with multipliers
``ν_i >= 0`` supported on the active constraints.  GP duality gives the
multipliers a direct operational meaning: for a constraint normalised as
``g(t)/limit <= 1``,

    d log(optimal objective) / d log(limit)  =  -ν_i

i.e. **relaxing a QAB by 1 % reduces the optimal message rate by ~ν_i %**.
That answers the operator question the paper's framework poses but never
automates: which query's accuracy bound is worth renegotiating?

The multipliers are recovered by a non-negative least-squares fit of the
stationarity condition over the active constraints — exact for a converged
solve, and the fit residual is reported so callers can tell.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np
from scipy.optimize import nnls

from repro.exceptions import GPError
from repro.gp.program import CompiledFunction, CompiledProgram, GeometricProgram
from repro.gp.solver import GPSolution, _lse_grad

#: A constraint counts as active when ``|g(t) - 1|`` is below this.
ACTIVE_TOL = 1e-4


@dataclass
class SensitivityReport:
    """Multipliers and elasticities at a GP optimum.

    Attributes
    ----------
    multipliers:
        ``constraint name -> ν`` (0.0 for inactive constraints).
    elasticities:
        ``constraint name -> d log(objective) / d log(limit) = -ν``.
    stationarity_residual:
        Norm of the KKT stationarity residual after the fit; near zero for
        a converged solve.
    active:
        Names of the constraints that were active at the optimum.
    """

    multipliers: Dict[str, float]
    elasticities: Dict[str, float]
    stationarity_residual: float
    active: List[str] = field(default_factory=list)

    def most_binding(self, top: int = 3) -> List[Tuple[str, float]]:
        """Constraints whose relaxation pays off most, best first."""
        ranked = sorted(self.multipliers.items(), key=lambda kv: -kv[1])
        return [(name, value) for name, value in ranked[:top] if value > 0.0]

    def predicted_relative_change(self, constraint: str,
                                  limit_factor: float) -> float:
        """First-order predicted relative objective change when one
        constraint's limit is multiplied by ``limit_factor``."""
        if limit_factor <= 0.0:
            raise GPError(f"limit factor must be positive, got {limit_factor!r}")
        elasticity = self.elasticities.get(constraint, 0.0)
        return float(np.expm1(elasticity * np.log(limit_factor)))


def analyze(program: GeometricProgram, solution: GPSolution) -> SensitivityReport:
    """Compute constraint multipliers/elasticities at a solved optimum."""
    return analyze_compiled(program.compile(), solution.values)


def analyze_compiled(compiled: CompiledProgram,
                     values: Mapping[str, float]) -> SensitivityReport:
    """:func:`analyze` on an already-compiled program.

    The compiled-template planners keep a :class:`CompiledProgram` per
    query whose log-coefficients are refreshed in place; calling this
    directly skips the posynomial rebuild that :func:`analyze` pays and is
    what the delta-recompute path uses to seed/validate its Newton patch.
    """
    order = compiled.variables
    y = np.array([np.log(values[name]) for name in order])

    objective_grad = _lse_grad(compiled.objective, y)

    active_gradients: List[np.ndarray] = []
    active_names: List[str] = []
    for name, func in zip(compiled.constraint_names, compiled.constraints):
        value = float(np.exp(_lse_value_for(func, y)))
        if abs(value - 1.0) <= ACTIVE_TOL:
            active_gradients.append(_lse_grad(func, y))
            active_names.append(name)

    multipliers = {name: 0.0 for name in compiled.constraint_names}
    if active_gradients:
        A = np.vstack(active_gradients).T          # (n_vars, n_active)
        nu, residual = nnls(A, -objective_grad)
        for name, value in zip(active_names, nu):
            multipliers[name] = float(value)
    else:
        residual = float(np.linalg.norm(objective_grad))

    elasticities = {name: -value for name, value in multipliers.items()}
    return SensitivityReport(
        multipliers=multipliers,
        elasticities=elasticities,
        stationarity_residual=float(residual),
        active=active_names,
    )


def _lse_value_for(func: CompiledFunction, y: np.ndarray) -> float:
    from scipy.special import logsumexp

    return float(logsumexp(func.A @ y + func.log_c))


def kkt_residual(compiled: CompiledProgram, y: np.ndarray,
                 working: "List[int]", nu: np.ndarray) -> float:
    """∞-norm of the KKT residual of a working-set iterate.

    ``working`` indexes the constraints treated as equalities, ``nu`` their
    multipliers.  The residual combines stationarity
    (``∇F0 + Σ ν_i ∇F_i``) with primal feasibility of the working set
    (``F_i = 0``); dual feasibility (``ν >= 0``) and feasibility of the
    *non*-working constraints are checked separately by the caller, because
    their violation calls for an active-set update rather than more Newton
    steps.  This is the acceptance metric of the delta-recompute patch.
    """
    def value_and_grad(func: CompiledFunction):
        # Plain-numpy log-sum-exp: this runs once per accepted patch, where
        # scipy's array-API dispatch overhead would dwarf the arithmetic.
        z = func.A @ y + func.log_c
        peak = float(np.max(z))
        weights = np.exp(z - peak)
        total = float(weights.sum())
        return peak + math.log(total), (weights / total) @ func.A

    _, stationarity = value_and_grad(compiled.objective)
    primal = 0.0
    for multiplier, index in zip(nu, working):
        value, grad = value_and_grad(compiled.constraints[index])
        stationarity = stationarity + multiplier * grad
        primal = max(primal, abs(value))
    return max(float(np.max(np.abs(stationarity))), primal)


def qab_relaxation_value(program: GeometricProgram, solution: GPSolution,
                         constraint_name: str = "qab") -> float:
    """Shortcut: ν of the (normalised) QAB constraint — the % message-rate
    saving per % of QAB relaxation.  0.0 when the constraint is slack."""
    report = analyze(program, solution)
    return report.multipliers.get(constraint_name, 0.0)
