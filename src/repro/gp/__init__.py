"""Geometric programming substrate.

The paper solves its DAB-assignment formulations with CVXOPT's geometric
programming interface.  CVXOPT is not available in this environment, so this
subpackage implements the required machinery from scratch:

* :class:`~repro.gp.monomial.Monomial` and
  :class:`~repro.gp.posynomial.Posynomial` — the algebra used to build
  objectives and constraints,
* :class:`~repro.gp.program.GeometricProgram` — a model object holding a
  posynomial objective and posynomial/monomial constraints,
* :func:`~repro.gp.solver.solve` — log-space convexification solved with
  scipy (SLSQP with analytic gradients, trust-constr fallback, multi-start),
* :class:`~repro.gp.diagnostics.SolveReport` — feasibility and optimality
  diagnostics attached to every solution.

A geometric program in standard form is::

    minimise    f0(t)
    subject to  fi(t) <= 1,   i = 1..m     (posynomial constraints)
                gj(t) == 1,   j = 1..p     (monomial constraints)
                t > 0

With the substitution ``y = log t`` every posynomial becomes a log-sum-exp
function, which is smooth and convex, so a local solve is a global solve.
"""

from repro.gp.monomial import Monomial
from repro.gp.posynomial import Posynomial, as_posynomial, substitute
from repro.gp.program import Constraint, GeometricProgram
from repro.gp.solver import GPSolution, solve
from repro.gp.diagnostics import SolveReport
from repro.gp.sensitivity import SensitivityReport, analyze, qab_relaxation_value

__all__ = [
    "Monomial",
    "Posynomial",
    "as_posynomial",
    "substitute",
    "Constraint",
    "GeometricProgram",
    "GPSolution",
    "solve",
    "SolveReport",
    "SensitivityReport",
    "analyze",
    "qab_relaxation_value",
]
