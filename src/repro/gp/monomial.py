"""Monomials: the atoms of geometric programming.

A *monomial* (in the GP sense) is ``c * t1^a1 * t2^a2 * ... * tn^an`` with a
strictly positive coefficient ``c`` and arbitrary real exponents ``ai`` over
strictly positive variables.  Monomials are closed under multiplication,
division and real powers.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Tuple, Union

from repro.exceptions import NotPosynomialError

Number = Union[int, float]

#: Exponents smaller than this (in absolute value) are treated as zero so
#: that round-tripping through division does not accrete phantom variables.
_EXPONENT_EPS = 1e-12


def _normalise_exponents(exponents: Mapping[str, Number]) -> Tuple[Tuple[str, float], ...]:
    """Return a canonical, hashable representation of an exponent map.

    Variables with (numerically) zero exponents are dropped and the rest are
    sorted by variable name, so two monomials over the same variables compare
    equal regardless of construction order.
    """
    cleaned = {}
    for name, exp in exponents.items():
        if not isinstance(name, str) or not name:
            raise TypeError(f"variable names must be non-empty strings, got {name!r}")
        value = float(exp)
        if math.isnan(value) or math.isinf(value):
            raise ValueError(f"exponent for {name!r} must be finite, got {exp!r}")
        if abs(value) > _EXPONENT_EPS:
            cleaned[name] = value
    return tuple(sorted(cleaned.items()))


class Monomial:
    """``coefficient * prod(var ** exponent)`` with ``coefficient > 0``.

    Instances are immutable and hashable; like monomials (same exponent map)
    compare equal on exponents via :attr:`key`, which posynomial construction
    uses to combine terms.
    """

    __slots__ = ("_coefficient", "_exponents")

    def __init__(self, coefficient: Number = 1.0, exponents: Mapping[str, Number] = ()):
        value = float(coefficient)
        if math.isnan(value) or math.isinf(value):
            raise ValueError(f"coefficient must be finite, got {coefficient!r}")
        if value <= 0.0:
            raise NotPosynomialError(
                f"monomial coefficients must be strictly positive, got {coefficient!r}"
            )
        self._coefficient = value
        self._exponents = _normalise_exponents(dict(exponents))

    # -- construction helpers -------------------------------------------------

    @classmethod
    def variable(cls, name: str) -> "Monomial":
        """The monomial ``1.0 * name**1``."""
        return cls(1.0, {name: 1.0})

    @classmethod
    def constant(cls, value: Number) -> "Monomial":
        """The constant monomial ``value`` (must be positive)."""
        return cls(value, {})

    # -- accessors -------------------------------------------------------------

    @property
    def coefficient(self) -> float:
        return self._coefficient

    @property
    def exponents(self) -> Dict[str, float]:
        """A fresh dict mapping variable name to exponent."""
        return dict(self._exponents)

    @property
    def key(self) -> Tuple[Tuple[str, float], ...]:
        """Canonical exponent signature used to combine like terms."""
        return self._exponents

    @property
    def variables(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self._exponents)

    @property
    def degree(self) -> float:
        """Sum of exponents (the polynomial-degree analogue)."""
        return sum(exp for _, exp in self._exponents)

    @property
    def is_constant(self) -> bool:
        return not self._exponents

    def exponent_of(self, name: str) -> float:
        """Exponent of ``name`` in this monomial (0.0 if absent)."""
        for var, exp in self._exponents:
            if var == name:
                return exp
        return 0.0

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, values: Mapping[str, Number]) -> float:
        """Evaluate at a point; every variable must be present and positive."""
        result = self._coefficient
        for name, exp in self._exponents:
            try:
                value = float(values[name])
            except KeyError:
                raise KeyError(f"no value supplied for variable {name!r}") from None
            if value <= 0.0:
                raise ValueError(
                    f"GP variables must be strictly positive; {name!r} = {value!r}"
                )
            result *= value ** exp
        return result

    # -- algebra ---------------------------------------------------------------

    def __mul__(self, other: Union["Monomial", Number]) -> "Monomial":
        if isinstance(other, Monomial):
            merged: Dict[str, float] = dict(self._exponents)
            for name, exp in other._exponents:
                merged[name] = merged.get(name, 0.0) + exp
            return Monomial(self._coefficient * other._coefficient, merged)
        if isinstance(other, (int, float)):
            return Monomial(self._coefficient * float(other), dict(self._exponents))
        return NotImplemented

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Monomial", Number]) -> "Monomial":
        if isinstance(other, Monomial):
            return self * other ** -1
        if isinstance(other, (int, float)):
            if float(other) <= 0.0:
                raise NotPosynomialError("cannot divide a monomial by a non-positive scalar")
            return Monomial(self._coefficient / float(other), dict(self._exponents))
        return NotImplemented

    def __rtruediv__(self, other: Number) -> "Monomial":
        if isinstance(other, (int, float)):
            return Monomial.constant(float(other)) / self
        return NotImplemented

    def __pow__(self, power: Number) -> "Monomial":
        exponent = float(power)
        return Monomial(
            self._coefficient ** exponent,
            {name: exp * exponent for name, exp in self._exponents},
        )

    def __add__(self, other):
        # Addition leaves the monomial cone; delegate to Posynomial.
        from repro.gp.posynomial import Posynomial

        return Posynomial([self]) + other

    __radd__ = __add__

    # -- comparisons / protocol -------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Monomial):
            return NotImplemented
        return (
            self._exponents == other._exponents
            and math.isclose(self._coefficient, other._coefficient, rel_tol=1e-12, abs_tol=0.0)
        )

    def __hash__(self) -> int:
        return hash((round(self._coefficient, 12), self._exponents))

    def __repr__(self) -> str:
        if not self._exponents:
            return f"Monomial({self._coefficient:g})"
        parts = []
        for name, exp in self._exponents:
            parts.append(name if exp == 1.0 else f"{name}^{exp:g}")
        return f"Monomial({self._coefficient:g} * " + " * ".join(parts) + ")"


def variables(names: Iterable[str]) -> Tuple[Monomial, ...]:
    """Convenience: build variable monomials for each name."""
    return tuple(Monomial.variable(name) for name in names)
