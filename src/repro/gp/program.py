"""Geometric program model objects.

A :class:`GeometricProgram` owns a posynomial objective and a list of
:class:`Constraint` objects of the form ``lhs <= rhs`` where ``lhs`` is a
posynomial and ``rhs`` is a monomial (or positive scalar).  Each constraint
normalises itself to the standard form ``g(t) <= 1`` by dividing through by
the right-hand side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import NotPosynomialError
from repro.gp.monomial import Monomial
from repro.gp.posynomial import Posynomial, PosyLike, as_posynomial


@dataclass(frozen=True)
class Constraint:
    """``lhs <= rhs`` with posynomial ``lhs`` and monomial ``rhs``.

    The optional ``name`` shows up in solver diagnostics, which makes
    infeasibility reports actionable.
    """

    lhs: Posynomial
    rhs: Monomial
    name: str = ""

    @classmethod
    def leq(cls, lhs: PosyLike, rhs: PosyLike, name: str = "") -> "Constraint":
        lhs_posy = as_posynomial(lhs)
        rhs_posy = as_posynomial(rhs)
        if not rhs_posy.is_monomial:
            raise NotPosynomialError(
                "the right-hand side of a GP constraint must be a monomial; "
                "rewrite `posy1 <= posy2` as `posy1 / mono <= 1`"
            )
        return cls(lhs_posy, rhs_posy.as_monomial(), name)

    def normalised(self) -> Posynomial:
        """The constraint as ``g(t) <= 1``."""
        return self.lhs / self.rhs

    def violation(self, values: Mapping[str, float]) -> float:
        """``g(t) - 1`` at a point; positive means violated."""
        return self.normalised().evaluate(values) - 1.0

    def is_satisfied(self, values: Mapping[str, float], tol: float = 1e-8) -> bool:
        return self.violation(values) <= tol


@dataclass
class CompiledFunction:
    """Log-space representation of one posynomial: value is
    ``logsumexp(A @ y + log_c)``."""

    A: np.ndarray
    log_c: np.ndarray


@dataclass
class CompiledProgram:
    """Arrays for the solver: variable order, objective and constraints."""

    variables: Tuple[str, ...]
    objective: CompiledFunction
    constraints: List[CompiledFunction]
    constraint_names: List[str]

    def solve(self, initial: Optional[Mapping[str, float]] = None, **kwargs):
        """Solve these arrays directly; see
        :func:`repro.gp.solver.solve_compiled`.

        Planners that reuse a compiled structure mutate the ``log_c``
        vectors in place between recomputations and re-solve without
        rebuilding posynomials or recompiling.
        """
        from repro.gp.solver import solve_compiled

        return solve_compiled(self, initial=initial, **kwargs)


class GeometricProgram:
    """A standard-form geometric program.

    Example
    -------
    >>> from repro.gp import Monomial, GeometricProgram
    >>> x, y = Monomial.variable("x"), Monomial.variable("y")
    >>> gp = GeometricProgram(objective=1 / x + 1 / y)
    >>> gp.add_constraint(x + y, 2.0, name="budget")
    >>> sol = gp.solve()
    >>> round(sol.values["x"], 4)
    1.0
    """

    def __init__(self, objective: PosyLike, constraints: Sequence[Constraint] = ()):
        self._objective = as_posynomial(objective)
        self._constraints: List[Constraint] = list(constraints)

    # -- model building ---------------------------------------------------------

    @property
    def objective(self) -> Posynomial:
        return self._objective

    @property
    def constraints(self) -> Tuple[Constraint, ...]:
        return tuple(self._constraints)

    def add_constraint(self, lhs: PosyLike, rhs: PosyLike = 1.0, name: str = "") -> Constraint:
        """Add ``lhs <= rhs`` and return the created constraint."""
        constraint = Constraint.leq(lhs, rhs, name=name)
        self._constraints.append(constraint)
        return constraint

    @property
    def variables(self) -> Tuple[str, ...]:
        names = set(self._objective.variables)
        for constraint in self._constraints:
            names.update(constraint.lhs.variables)
            names.update(constraint.rhs.variables)
        return tuple(sorted(names))

    # -- compilation ------------------------------------------------------------

    def compile(self) -> CompiledProgram:
        """Lower the model to the solver's array form (exponent matrices
        and log-coefficients per posynomial, in log-variable space)."""
        order = self.variables
        if not order:
            raise NotPosynomialError("the program has no variables to optimise")
        A0, c0 = self._objective.exponent_matrix(order)
        compiled_constraints = []
        names = []
        for i, constraint in enumerate(self._constraints):
            normalised = constraint.normalised()
            if normalised.is_constant:
                # Constant constraints are either trivially true or
                # structurally infeasible; catch the latter early.
                if normalised.constant_part > 1.0 + 1e-12:
                    from repro.exceptions import InfeasibleProblemError

                    raise InfeasibleProblemError(
                        f"constraint {constraint.name or i} is constant and violated: "
                        f"{normalised.constant_part:.6g} <= 1"
                    )
                continue
            A, log_c = normalised.exponent_matrix(order)
            compiled_constraints.append(CompiledFunction(A, log_c))
            names.append(constraint.name or f"constraint[{i}]")
        return CompiledProgram(
            variables=order,
            objective=CompiledFunction(A0, c0),
            constraints=compiled_constraints,
            constraint_names=names,
        )

    # -- solving ----------------------------------------------------------------

    def solve(self, initial: Optional[Mapping[str, float]] = None, **kwargs):
        """Solve the program; see :func:`repro.gp.solver.solve`."""
        from repro.gp.solver import solve as _solve

        return _solve(self, initial=initial, **kwargs)

    def check_feasible(self, values: Mapping[str, float], tol: float = 1e-8) -> bool:
        """True when every constraint holds at ``values`` (within ``tol``)."""
        return all(c.is_satisfied(values, tol) for c in self._constraints)

    def worst_violation(self, values: Mapping[str, float]) -> Tuple[str, float]:
        """Name and signed violation of the most-violated constraint."""
        worst_name, worst = "", -math.inf
        for i, constraint in enumerate(self._constraints):
            v = constraint.violation(values)
            if v > worst:
                worst_name, worst = constraint.name or f"constraint[{i}]", v
        return worst_name, worst

    def __repr__(self) -> str:
        return (
            f"GeometricProgram({len(self.variables)} variables, "
            f"{len(self._constraints)} constraints)"
        )
