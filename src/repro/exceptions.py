"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers embedding the library can catch a single base class.  Sub-classes are
split by subsystem: geometric programming, query algebra, filter assignment
and simulation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GPError(ReproError):
    """Base class for geometric-programming errors."""


class NotPosynomialError(GPError):
    """An expression required to be a posynomial has a non-positive
    coefficient or is otherwise outside the posynomial cone."""


class InfeasibleProblemError(GPError):
    """The optimisation problem has no feasible point (or the solver could
    not find one from any start)."""

    def __init__(self, message: str, report: object = None):
        super().__init__(message)
        #: Optional :class:`repro.gp.diagnostics.SolveReport` with residuals.
        self.report = report


class SolverFailedError(GPError):
    """The numerical solver terminated abnormally on a problem that is not
    provably infeasible."""

    def __init__(self, message: str, report: object = None):
        super().__init__(message)
        self.report = report


class QueryError(ReproError):
    """Base class for polynomial-query construction/parsing errors."""


class QueryParseError(QueryError):
    """A textual query could not be parsed."""

    def __init__(self, text: str, position: int, message: str):
        super().__init__(f"{message} (at position {position} in {text!r})")
        self.text = text
        self.position = position


class InvalidQueryError(QueryError):
    """A query violates a structural requirement (e.g. non-positive QAB,
    negative exponent where integral exponents are required)."""


class FilterError(ReproError):
    """Base class for DAB-assignment errors."""


class NotPositiveCoefficientError(FilterError):
    """An algorithm restricted to positive-coefficient polynomial queries
    (PPQs) received a general polynomial query."""


class InvalidAssignmentError(FilterError):
    """A DAB assignment is structurally invalid (missing items, non-positive
    bounds, secondary smaller than primary, ...)."""


class SimulationError(ReproError):
    """Base class for simulator configuration/runtime errors."""


class TraceError(ReproError):
    """A trace is malformed (empty, non-positive values where positive
    values are required, mismatched lengths, ...)."""
