"""Data dynamics: models, synthetic traces and rate-of-change estimation.

The paper drives its evaluation with real stock traces from Yahoo! Finance
(100 items, ~10 000 s).  Those traces are not redistributable, so
:mod:`repro.dynamics.traces` generates the closest synthetic equivalents —
geometric-random-walk "stock-like" traces plus the two idealised models the
formulations assume (monotonic drift and arithmetic random walk).  The
algorithms only consume the current value and a sampled rate-of-change
estimate, both of which the synthetic traces exercise identically.

:mod:`repro.dynamics.estimation` reproduces the paper's λ estimation: sample
the trace at fixed intervals (1 minute in the paper) and average ``|Δvalue| /
Δt`` over the trace.
"""

from repro.dynamics.models import DataDynamicsModel, refresh_rate, refresh_rate_monomial
from repro.dynamics.traces import (
    Trace,
    TraceSet,
    GBMTraceGenerator,
    MonotonicTraceGenerator,
    RandomWalkTraceGenerator,
    generate_trace_set,
)
from repro.dynamics.estimation import (
    RateEstimator,
    SampledRateEstimator,
    EwmaRateEstimator,
    UnitRateEstimator,
    estimate_rates,
)
from repro.dynamics.correlation import (
    CorrelationMatrix,
    OnlineRateTracker,
    correlation_adjusted_rates,
    estimate_correlations,
)

__all__ = [
    "DataDynamicsModel",
    "refresh_rate",
    "refresh_rate_monomial",
    "Trace",
    "TraceSet",
    "GBMTraceGenerator",
    "MonotonicTraceGenerator",
    "RandomWalkTraceGenerator",
    "generate_trace_set",
    "RateEstimator",
    "SampledRateEstimator",
    "EwmaRateEstimator",
    "UnitRateEstimator",
    "estimate_rates",
    "CorrelationMatrix",
    "OnlineRateTracker",
    "correlation_adjusted_rates",
    "estimate_correlations",
]
