"""Data dynamics models (ddms) and their refresh-rate estimates.

The paper (Section III-A.1 and III-A.5) estimates how many refreshes a DAB
``b`` will cause per unit time for an item with rate-of-change ``λ``:

* **monotonic** drift at uniform rate: the value crosses a width-``b``
  filter every ``b/λ`` time units ⇒ rate ``λ / b``;
* **random walk** with per-step deviation ``λ``: first exit time of a
  width-``b`` interval scales as ``(b/λ)^2`` ⇒ rate ``λ² / b²``
  (as derived in Olston & Widom's adaptive-filters work, which the paper
  cites for this model).

These estimates shape the GP objective; the simulation then measures the
*actual* refresh counts against real traces, which is how the paper shows
its "reliance on the accuracy of the ddm is low".
"""

from __future__ import annotations

import enum

from repro.exceptions import FilterError
from repro.gp.monomial import Monomial


class DataDynamicsModel(enum.Enum):
    """How data is assumed to change when estimating refresh rates."""

    MONOTONIC = "monotonic"
    RANDOM_WALK = "random_walk"

    @classmethod
    def from_string(cls, value: "DataDynamicsModel | str") -> "DataDynamicsModel":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            names = ", ".join(m.value for m in cls)
            raise FilterError(f"unknown data dynamics model {value!r}; expected one of {names}")


def refresh_rate(model: DataDynamicsModel, rate_of_change: float, dab: float) -> float:
    """Estimated refreshes per unit time for one item.

    Parameters
    ----------
    model:
        The assumed ddm.
    rate_of_change:
        The item's λ (>= 0).
    dab:
        The (primary) DAB ``b > 0``.
    """
    if dab <= 0.0:
        raise FilterError(f"DAB must be positive, got {dab!r}")
    if rate_of_change < 0.0:
        raise FilterError(f"rate of change must be >= 0, got {rate_of_change!r}")
    if model is DataDynamicsModel.MONOTONIC:
        return rate_of_change / dab
    if model is DataDynamicsModel.RANDOM_WALK:
        return (rate_of_change / dab) ** 2
    raise FilterError(f"unhandled ddm {model!r}")


def refresh_rate_monomial(model: DataDynamicsModel, rate_of_change: float,
                          dab_variable: str) -> Monomial:
    """The refresh-rate estimate as a GP monomial in the DAB variable.

    ``λ / b`` for the monotonic model, ``λ² / b²`` for the random walk —
    exactly the objective terms of the paper's two formulations.  λ is
    floored at a tiny positive value so that static items stay inside the
    GP's positivity requirements without influencing the optimum.
    """
    lam = max(float(rate_of_change), 1e-12)
    if model is DataDynamicsModel.MONOTONIC:
        return Monomial(lam, {dab_variable: -1.0})
    if model is DataDynamicsModel.RANDOM_WALK:
        return Monomial(lam * lam, {dab_variable: -2.0})
    raise FilterError(f"unhandled ddm {model!r}")
