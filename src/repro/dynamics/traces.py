"""Synthetic traces standing in for the paper's stock-price recordings.

A :class:`Trace` is a positive time series sampled at unit ticks.  Three
generators are provided:

* :class:`GBMTraceGenerator` — geometric Brownian motion, the standard
  "looks like a stock price" model; the default substitute for the Yahoo!
  Finance traces the paper downloaded (see DESIGN.md §2).
* :class:`RandomWalkTraceGenerator` — arithmetic random walk, the ddm
  behind the paper's Section III-A.5 formulation.
* :class:`MonotonicTraceGenerator` — piecewise-monotonic drift with
  occasional direction flips, matching the Section III-A.1 model while
  still exercising DAB crossings in both directions.

All traces are clamped to a positive floor: the GP formulation requires
positive item values, and prices/rates/coordinates in the paper's workloads
are positive by nature.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import TraceError
from repro.queries.items import ItemRegistry

#: Values are clamped to ``initial * _FLOOR_FRACTION`` from below.
_FLOOR_FRACTION = 0.05


@dataclass(frozen=True)
class Trace:
    """One item's positive time series at unit-tick resolution."""

    item: str
    values: np.ndarray

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=float)
        if values.ndim != 1 or values.size < 2:
            raise TraceError(f"trace for {self.item!r} must be a 1-D series of >= 2 points")
        if not np.all(np.isfinite(values)):
            raise TraceError(f"trace for {self.item!r} contains non-finite values")
        if np.any(values <= 0.0):
            raise TraceError(
                f"trace for {self.item!r} contains non-positive values; the GP "
                "formulation requires positive data"
            )
        object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return self.values.size

    @property
    def duration(self) -> int:
        """Number of ticks covered (len - 1)."""
        return self.values.size - 1

    @property
    def initial(self) -> float:
        return float(self.values[0])

    def at(self, tick: int) -> float:
        """Value at an integer tick; the series is held constant past its end."""
        if tick < 0:
            raise TraceError(f"tick must be >= 0, got {tick}")
        index = min(tick, self.values.size - 1)
        return float(self.values[index])

    def segment(self, start: int, stop: int) -> np.ndarray:
        return self.values[start:stop]


class TraceSet:
    """Traces for a whole item population, all the same length."""

    def __init__(self, traces: Iterable[Trace]):
        self._traces: Dict[str, Trace] = {}
        length: Optional[int] = None
        for trace in traces:
            if trace.item in self._traces:
                raise TraceError(f"duplicate trace for item {trace.item!r}")
            if length is None:
                length = len(trace)
            elif len(trace) != length:
                raise TraceError(
                    f"trace for {trace.item!r} has length {len(trace)}, expected {length}"
                )
            self._traces[trace.item] = trace
        if not self._traces:
            raise TraceError("a TraceSet needs at least one trace")
        self._length = length or 0

    def __getitem__(self, item: str) -> Trace:
        try:
            return self._traces[item]
        except KeyError:
            raise KeyError(f"no trace for data item {item!r}") from None

    def __contains__(self, item: str) -> bool:
        return item in self._traces

    def __iter__(self) -> Iterator[Trace]:
        return iter(self._traces.values())

    def __len__(self) -> int:
        return len(self._traces)

    @property
    def items(self) -> List[str]:
        return list(self._traces)

    @property
    def duration(self) -> int:
        return self._length - 1

    def values_at(self, tick: int, items: Optional[Sequence[str]] = None) -> Dict[str, float]:
        names = items if items is not None else self.items
        return {name: self[name].at(tick) for name in names}

    def values_matrix(self, items: Optional[Sequence[str]] = None) -> np.ndarray:
        """``(items × ticks)`` slab stacking the requested traces.

        Row ``i`` is a bitwise copy of ``self[items[i]].values`` — the batch
        API the vectorized source tick loop scans instead of calling
        :meth:`Trace.at` item by item.
        """
        names = items if items is not None else self.items
        if not names:
            raise TraceError("values_matrix needs at least one item")
        return np.stack([self[name].values for name in names])

    def initial_values(self, items: Optional[Sequence[str]] = None) -> Dict[str, float]:
        return self.values_at(0, items)


def _clamp_positive(values: np.ndarray, initial: float) -> np.ndarray:
    floor = max(initial * _FLOOR_FRACTION, 1e-9)
    return np.maximum(values, floor)


class GBMTraceGenerator:
    """Geometric Brownian motion: ``V[t+1] = V[t] * exp(mu + sigma * N(0,1))``.

    Defaults give intraday-stock-like jitter: ~0.2% per-tick volatility and
    negligible drift, over initial prices drawn uniformly from
    ``initial_range`` (the paper's portfolios weight items 1–100, so price
    scales vary per item).
    """

    def __init__(self, *, volatility: float = 0.002, drift: float = 0.0,
                 initial_range: Tuple[float, float] = (20.0, 200.0),
                 volatility_range: Optional[Tuple[float, float]] = None):
        if volatility < 0.0:
            raise TraceError(f"volatility must be >= 0, got {volatility!r}")
        if initial_range[0] <= 0.0 or initial_range[1] < initial_range[0]:
            raise TraceError(f"bad initial range {initial_range!r}")
        if volatility_range is not None and (
                volatility_range[0] < 0.0 or volatility_range[1] < volatility_range[0]):
            raise TraceError(f"bad volatility range {volatility_range!r}")
        self.volatility = volatility
        self.drift = drift
        self.initial_range = initial_range
        #: When set, each item draws its own volatility from this range —
        #: real stocks differ widely in how fast they move, which is what
        #: makes rate-of-change information valuable (Figure 6's L1 study).
        self.volatility_range = volatility_range

    def generate(self, item: str, length: int, rng: np.random.Generator) -> Trace:
        if length < 2:
            raise TraceError(f"trace length must be >= 2, got {length}")
        initial = rng.uniform(*self.initial_range)
        volatility = (self.volatility if self.volatility_range is None
                      else rng.uniform(*self.volatility_range))
        increments = self.drift + volatility * rng.standard_normal(length - 1)
        log_path = np.concatenate(([math.log(initial)], np.cumsum(increments) + math.log(initial)))
        values = _clamp_positive(np.exp(log_path), initial)
        return Trace(item, values)


class RandomWalkTraceGenerator:
    """Arithmetic random walk with per-tick step std ``step_scale * initial``."""

    def __init__(self, *, step_scale: float = 0.002,
                 initial_range: Tuple[float, float] = (20.0, 200.0)):
        if step_scale < 0.0:
            raise TraceError(f"step scale must be >= 0, got {step_scale!r}")
        self.step_scale = step_scale
        self.initial_range = initial_range

    def generate(self, item: str, length: int, rng: np.random.Generator) -> Trace:
        if length < 2:
            raise TraceError(f"trace length must be >= 2, got {length}")
        initial = rng.uniform(*self.initial_range)
        steps = rng.normal(scale=self.step_scale * initial, size=length - 1)
        values = _clamp_positive(initial + np.concatenate(([0.0], np.cumsum(steps))), initial)
        return Trace(item, values)


class MonotonicTraceGenerator:
    """Piecewise-monotonic drift: constant slope, direction flips with a
    small per-tick probability so long runs stay monotonic (the Section
    III-A.1 assumption) while the trace remains bounded."""

    def __init__(self, *, rate_scale: float = 0.001, flip_probability: float = 0.01,
                 initial_range: Tuple[float, float] = (20.0, 200.0)):
        if rate_scale < 0.0:
            raise TraceError(f"rate scale must be >= 0, got {rate_scale!r}")
        if not (0.0 <= flip_probability <= 1.0):
            raise TraceError(f"flip probability must be in [0, 1], got {flip_probability!r}")
        self.rate_scale = rate_scale
        self.flip_probability = flip_probability
        self.initial_range = initial_range

    def generate(self, item: str, length: int, rng: np.random.Generator) -> Trace:
        if length < 2:
            raise TraceError(f"trace length must be >= 2, got {length}")
        initial = rng.uniform(*self.initial_range)
        slope = self.rate_scale * initial * rng.uniform(0.5, 1.5)
        directions = np.empty(length - 1)
        direction = 1.0 if rng.random() < 0.5 else -1.0
        flips = rng.random(length - 1) < self.flip_probability
        for i in range(length - 1):
            if flips[i]:
                direction = -direction
            directions[i] = direction
        values = _clamp_positive(
            initial + np.concatenate(([0.0], np.cumsum(slope * directions))), initial
        )
        return Trace(item, values)


def generate_trace_set(
    registry: ItemRegistry,
    length: int,
    generator: Optional[object] = None,
    seed: int = 0,
) -> TraceSet:
    """Generate one trace per registered item, reproducibly.

    Each item gets an independent substream derived from ``seed`` and the
    item's position, so adding items never perturbs existing traces.
    """
    gen = generator if generator is not None else GBMTraceGenerator()
    if not hasattr(gen, "generate"):
        raise TraceError(f"generator {gen!r} has no generate(item, length, rng) method")
    traces = []
    for index, item in enumerate(registry):
        rng = np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(index,)))
        traces.append(gen.generate(item.name, length, rng))
    return TraceSet(traces)
