"""Correlation-aware rate weighting — the paper's future-work direction
("exploit possible correlation between data [16]").

Two items that co-move (their increments correlate positively) are more
dangerous to a product term than independent ones: the worst case — both
drifting the same way — is not a tail event but the *typical* event, so
refreshes of those items threaten the QAB more often and their filters
deserve relatively more budget.  Anti-correlated items are safer than the
worst-case analysis assumes.

Because the QAB *guarantee* must remain worst-case (Condition 1 is
unconditional), correlation information is only allowed to reshape the
**objective**: :func:`correlation_adjusted_rates` scales each item's λ by
a bounded co-movement factor before it enters the refresh objective.  The
constraints — and therefore correctness — are untouched; the effect is a
different, empirically better split of the same accuracy budget.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import TraceError
from repro.dynamics.traces import TraceSet
from repro.queries.polynomial import PolynomialQuery

#: Co-movement factors are clamped to this band so a wild correlation
#: estimate can never starve or flood an item's budget.
FACTOR_BOUNDS = (0.5, 2.0)


@dataclass(frozen=True)
class CorrelationMatrix:
    """Pearson correlations of per-interval increments, item by item."""

    items: Tuple[str, ...]
    matrix: np.ndarray

    def between(self, a: str, b: str) -> float:
        try:
            i = self.items.index(a)
            j = self.items.index(b)
        except ValueError as error:
            raise KeyError(f"no correlation tracked for {error}") from None
        return float(self.matrix[i, j])


def estimate_correlations(traces: TraceSet, interval: int = 60,
                          items: Optional[Sequence[str]] = None) -> CorrelationMatrix:
    """Correlate increments sampled every ``interval`` ticks (the same
    cadence as the paper's λ estimation)."""
    if interval < 1:
        raise TraceError(f"sampling interval must be >= 1, got {interval!r}")
    names = tuple(items if items is not None else traces.items)
    increments = []
    for name in names:
        values = traces[name].values[::interval]
        if values.size < 3:
            raise TraceError(
                f"trace for {name!r} too short for interval {interval} "
                f"({values.size} samples; need >= 3)"
            )
        increments.append(np.diff(values))
    stacked = np.vstack(increments)
    with np.errstate(invalid="ignore", divide="ignore"):
        matrix = np.corrcoef(stacked)
    matrix = np.nan_to_num(np.atleast_2d(matrix), nan=0.0)
    np.fill_diagonal(matrix, 1.0)
    return CorrelationMatrix(items=names, matrix=matrix)


def co_movement_factor(item: str, partners: Iterable[str],
                       correlations: CorrelationMatrix) -> float:
    """``1 + mean correlation with the item's term partners``, clamped.

    1.0 for independent partners; up to 2.0 for perfectly co-moving ones,
    down to 0.5 for perfectly hedged ones.
    """
    coefficients = [correlations.between(item, p) for p in partners if p != item]
    if not coefficients:
        return 1.0
    factor = 1.0 + float(np.mean(coefficients))
    return float(np.clip(factor, *FACTOR_BOUNDS))


def correlation_adjusted_rates(
    rates: Mapping[str, float],
    correlations: CorrelationMatrix,
    queries: Sequence[PolynomialQuery],
) -> Dict[str, float]:
    """Scale each item's λ by its average co-movement with the partners it
    shares query terms with.

    Items never appearing next to another item keep their raw λ.
    """
    partner_sets: Dict[str, set] = {}
    for query in queries:
        for term in query.terms:
            names = term.variables
            for name in names:
                partner_sets.setdefault(name, set()).update(
                    other for other in names if other != name)
    adjusted = {}
    for name, rate in rates.items():
        partners = partner_sets.get(name)
        if not partners:
            adjusted[name] = float(rate)
            continue
        known = [p for p in partners if p in correlations.items]
        adjusted[name] = float(rate) * co_movement_factor(name, known, correlations)
    return adjusted


class OnlineRateTracker:
    """EWMA rate-of-change tracking fed by coordinator refreshes.

    The paper estimates λ offline over the whole trace; a deployed
    coordinator only sees refreshes.  This tracker updates
    ``λ̂ = (1-α)·λ̂ + α·|Δvalue|/Δtime`` on every refresh and exposes the
    live estimates through the *same dict object* handed to the cost
    model, so subsequent recomputations plan with fresh rates.
    """

    def __init__(self, initial_rates: Mapping[str, float], alpha: float = 0.1):
        if not (0.0 < alpha <= 1.0):
            raise TraceError(f"alpha must be in (0, 1], got {alpha!r}")
        self.alpha = alpha
        #: Live estimates; share this dict with CostModel.rates.
        self.rates: Dict[str, float] = {k: float(v) for k, v in initial_rates.items()}
        self._last_seen: Dict[str, Tuple[float, float]] = {}

    def observe(self, item: str, value: float, time: float) -> None:
        """Record one refresh arrival."""
        previous = self._last_seen.get(item)
        self._last_seen[item] = (value, time)
        if previous is None:
            return
        prev_value, prev_time = previous
        elapsed = time - prev_time
        if elapsed <= 0.0:
            return
        instantaneous = abs(value - prev_value) / elapsed
        current = self.rates.get(item, instantaneous)
        self.rates[item] = (1.0 - self.alpha) * current + self.alpha * instantaneous

    def rate_of(self, item: str) -> float:
        return self.rates.get(item, 0.0)
