"""Rate-of-change (λ) estimation.

The paper (Section V, "Model of Data Dynamics"): *"We estimate the current
rate of change λ(t) by sampling the traces at fixed intervals (1 min), and
the value of λ used is the average of λ(t) over the complete trace."*

:class:`SampledRateEstimator` reproduces that exactly.  Two alternatives are
provided because the paper evaluates them:

* :class:`UnitRateEstimator` — λ = 1 for every item, the "no rate
  information" curves labelled ``L1`` in Figure 6;
* :class:`EwmaRateEstimator` — an online exponentially-weighted variant
  (one of the "other ways of calculating λ" the paper reports in its
  technical-report companion [1]).
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import TraceError
from repro.dynamics.traces import Trace, TraceSet

#: The paper samples traces every minute; ticks are seconds.
DEFAULT_SAMPLE_INTERVAL = 60


class RateEstimator(abc.ABC):
    """Maps a trace to a single λ (average absolute change per tick)."""

    @abc.abstractmethod
    def estimate(self, trace: Trace) -> float:
        """Return λ >= 0 for one trace."""

    def estimate_all(self, traces: TraceSet,
                     items: Optional[Sequence[str]] = None) -> Dict[str, float]:
        names = items if items is not None else traces.items
        return {name: self.estimate(traces[name]) for name in names}


class SampledRateEstimator(RateEstimator):
    """The paper's estimator: sample every ``interval`` ticks, average
    ``|Δvalue| / interval`` over the whole trace."""

    def __init__(self, interval: int = DEFAULT_SAMPLE_INTERVAL):
        if interval < 1:
            raise TraceError(f"sampling interval must be >= 1 tick, got {interval!r}")
        self.interval = interval

    def estimate(self, trace: Trace) -> float:
        samples = trace.values[:: self.interval]
        if samples.size < 2:
            # Trace shorter than one interval: fall back to endpoints.
            samples = trace.values[[0, -1]]
            step = trace.duration
        else:
            step = self.interval
        deltas = np.abs(np.diff(samples)) / step
        return float(np.mean(deltas))


class EwmaRateEstimator(RateEstimator):
    """Exponentially weighted per-tick |Δ|; recent behaviour dominates."""

    def __init__(self, alpha: float = 0.05):
        if not (0.0 < alpha <= 1.0):
            raise TraceError(f"EWMA alpha must be in (0, 1], got {alpha!r}")
        self.alpha = alpha

    def estimate(self, trace: Trace) -> float:
        deltas = np.abs(np.diff(trace.values))
        estimate = float(deltas[0])
        for delta in deltas[1:]:
            estimate = (1.0 - self.alpha) * estimate + self.alpha * float(delta)
        return estimate


class UnitRateEstimator(RateEstimator):
    """λ = constant (default 1) for every item — the paper's ``L1``
    configuration showing the value of rate information."""

    def __init__(self, value: float = 1.0):
        if value <= 0.0:
            raise TraceError(f"unit rate must be positive, got {value!r}")
        self.value = value

    def estimate(self, trace: Trace) -> float:
        return self.value


def estimate_rates(
    traces: TraceSet,
    estimator: Optional[RateEstimator] = None,
    items: Optional[Sequence[str]] = None,
) -> Dict[str, float]:
    """Convenience wrapper: λ per item with the paper's default estimator."""
    chosen = estimator if estimator is not None else SampledRateEstimator()
    return chosen.estimate_all(traces, items)
