"""DAB assignments and their validity predicates.

A :class:`DABAssignment` is the output of every planner: primary DABs
(shipped to the sources as push filters) plus, for dual-DAB planners, the
secondary DABs that define the validity window of the primaries at the
coordinator.  ``secondary=None`` encodes single-DAB semantics — the
assignment must be recomputed on *every* refresh (Optimal Refresh and the
baselines).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.exceptions import InvalidAssignmentError
from repro.queries.deviation import max_query_deviation
from repro.queries.polynomial import PolynomialQuery


def _validate_bounds(bounds: Mapping[str, float], label: str) -> Dict[str, float]:
    cleaned = {}
    for name, value in bounds.items():
        bound = float(value)
        if not (bound > 0.0) or math.isinf(bound):
            raise InvalidAssignmentError(
                f"{label} DAB for {name!r} must be positive and finite, got {value!r}"
            )
        cleaned[name] = bound
    if not cleaned:
        raise InvalidAssignmentError(f"{label} DAB map is empty")
    return cleaned


@dataclass
class DABAssignment:
    """Primary (and optionally secondary) DABs for one query plan.

    Attributes
    ----------
    primary:
        ``item -> b`` — the filter widths the sources enforce.
    secondary:
        ``item -> c`` with ``c >= b``, or ``None`` for single-DAB plans.
    reference_values:
        The item values the plan was computed at (centre of the validity
        window).
    recompute_rate:
        The GP's ``R`` — estimated recomputations per unit time (0 for
        single-DAB plans, where every refresh recomputes).
    objective:
        The solver's objective value (estimated refreshes + μ·R), useful for
        comparing plans.
    """

    primary: Dict[str, float]
    secondary: Optional[Dict[str, float]] = None
    reference_values: Dict[str, float] = field(default_factory=dict)
    recompute_rate: float = 0.0
    objective: float = float("nan")

    def __post_init__(self) -> None:
        self.primary = _validate_bounds(self.primary, "primary")
        if self.secondary is not None:
            self.secondary = _validate_bounds(self.secondary, "secondary")
            missing = set(self.primary) - set(self.secondary)
            if missing:
                raise InvalidAssignmentError(
                    f"secondary DABs missing for items: {sorted(missing)}"
                )
            for name, b in self.primary.items():
                c = self.secondary[name]
                if c < b * (1.0 - 1e-9):
                    raise InvalidAssignmentError(
                        f"secondary DAB must dominate primary for {name!r}: c={c} < b={b}"
                    )
        self.reference_values = {k: float(v) for k, v in self.reference_values.items()}

    # -- semantics ---------------------------------------------------------------

    @property
    def is_dual(self) -> bool:
        return self.secondary is not None

    @property
    def items(self) -> Tuple[str, ...]:
        return tuple(sorted(self.primary))

    def primary_of(self, item: str) -> float:
        """The primary DAB of ``item`` (KeyError if unassigned)."""
        try:
            return self.primary[item]
        except KeyError:
            raise KeyError(f"no primary DAB for item {item!r}") from None

    def window_contains(self, values: Mapping[str, float]) -> bool:
        """Are all items inside their secondary window ``V_ref ± c``?

        Single-DAB assignments have no window: any change of the inputs
        means the plan must be recomputed, so this returns ``False``
        whenever a value differs from its reference.
        """
        if self.secondary is None:
            return all(
                math.isclose(float(values[name]), self.reference_values.get(name, float("nan")),
                             rel_tol=0.0, abs_tol=0.0)
                for name in self.primary
                if name in values
            )
        for name in self.primary:
            if name not in values:
                continue
            reference = self.reference_values.get(name)
            if reference is None:
                return False
            if abs(float(values[name]) - reference) > self.secondary[name] + 1e-12:
                return False
        return True

    def violated_items(self, values: Mapping[str, float]) -> List[str]:
        """Items outside their secondary window (all items for single-DAB
        plans once anything moved)."""
        if self.secondary is None:
            return [
                name for name in self.primary
                if name in values
                and float(values[name]) != self.reference_values.get(name)
            ]
        out = []
        for name in self.primary:
            if name not in values:
                continue
            reference = self.reference_values.get(name)
            if reference is None or abs(float(values[name]) - reference) > self.secondary[name] + 1e-12:
                out.append(name)
        return out

    def guarantees_qab(self, query: PolynomialQuery, values: Mapping[str, float],
                       tol: float = 1e-7) -> bool:
        """Condition 1 check at given values: with every item free to move
        by its primary DAB, can the query leave its QAB?"""
        deviation = max_query_deviation(query.terms, values, self.primary)
        return deviation <= query.qab * (1.0 + tol)

    def guarantees_qab_over_window(self, query: PolynomialQuery,
                                   tol: float = 1e-7) -> bool:
        """The dual-DAB guarantee: the primary DABs keep the QAB at the
        *worst point of the secondary window* (``V + c``), hence everywhere
        inside it (deviation is monotone in the base values)."""
        if self.secondary is None:
            return self.guarantees_qab(query, self.reference_values, tol)
        edge = {
            name: self.reference_values[name] + self.secondary[name]
            for name in self.primary
            if name in self.reference_values
        }
        deviation = max_query_deviation(query.terms, edge, self.primary)
        return deviation <= query.qab * (1.0 + tol)

    def restricted_to(self, items: Iterable[str]) -> "DABAssignment":
        """A copy covering only the listed items (unknown names ignored)."""
        names = [n for n in items if n in self.primary]
        return DABAssignment(
            primary={n: self.primary[n] for n in names},
            secondary=None if self.secondary is None else {n: self.secondary[n] for n in names},
            reference_values={n: self.reference_values[n] for n in names
                              if n in self.reference_values},
            recompute_rate=self.recompute_rate,
            objective=self.objective,
        )


def merge_primary(assignments: Iterable[DABAssignment]) -> Dict[str, float]:
    """Per item, the minimum primary DAB across assignments.

    This is how both EQI and the per-query planners combine plans: the
    source must satisfy the most demanding query (Section IV: "for each
    data item, we then assign the minimum primary DAB across all queries").
    """
    merged: Dict[str, float] = {}
    for assignment in assignments:
        for name, bound in assignment.primary.items():
            current = merged.get(name)
            if current is None or bound < current:
                merged[name] = bound
    if not merged:
        raise InvalidAssignmentError("cannot merge zero assignments")
    return merged


@dataclass
class MultiQueryAssignment:
    """The coordinator-level plan for a set of queries.

    ``per_query`` keeps each query's own assignment (needed for the
    per-query secondary windows and recompute accounting), ``coordinator``
    holds the merged min-primary map actually shipped to sources.
    """

    per_query: Dict[str, DABAssignment]
    coordinator: Dict[str, float]

    @classmethod
    def from_assignments(cls, assignments: Mapping[str, DABAssignment]) -> "MultiQueryAssignment":
        return cls(
            per_query=dict(assignments),
            coordinator=merge_primary(assignments.values()),
        )

    @property
    def items(self) -> Tuple[str, ...]:
        return tuple(sorted(self.coordinator))

    def primary_of(self, item: str) -> float:
        return self.coordinator[item]
