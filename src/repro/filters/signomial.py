"""Signomial programming for general polynomial queries — an extension.

The paper (Section III-B): *"to the best of our knowledge, there is no
known efficient technique which can be used to obtain an optimal solution
for [a general PQ]. The best we can hope for are solutions close to the
optimal solution."*  Its Eq.-4 condition is a *signomial* (posynomial
minus posynomial) constraint, which successive monomial condensation — the
standard inner-approximation method for signomial programs — handles with
guarantees that fit this problem perfectly:

* rewrite ``pos(b,c) - neg(b,c) <= B`` as ``pos <= B + neg``;
* at the current iterate, replace the posynomial denominator ``B + neg``
  by its arithmetic-geometric-mean monomial under-estimator ``m̃``
  (``m̃ <= B + neg`` everywhere, with equality at the iterate);
* solve the resulting *geometric* program; the new point satisfies the
  original signomial constraint (``pos <= m̃ <= B + neg``), so **every
  iterate is feasible**, and because the previous point stays feasible for
  the new inner approximation, **the objective never increases**.

Seeding with the Different-Sum solution (feasible for Eq. 4 by the paper's
Claim 1) therefore yields a plan that is never worse than DS and often
strictly better — it reclaims the slack DS gives up by ignoring that the
negative half's movement partially *offsets* the positive half's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.exceptions import FilterError, SolverFailedError, InfeasibleProblemError
from repro.gp.monomial import Monomial
from repro.gp.posynomial import Posynomial
from repro.gp.program import GeometricProgram
from repro.filters.assignment import DABAssignment
from repro.filters.cost_model import CostModel
from repro.filters.dual_dab import RECOMPUTE_RATE_VARIABLE, DualDABPlanner
from repro.filters.heuristics import DifferentSumPlanner
from repro.queries.deviation import primary_variable, secondary_variable
from repro.queries.polynomial import PolynomialQuery
from repro.queries.signed import mixed_dual_condition, mixed_worst_deviation


def condense_to_monomial(posynomial: Posynomial,
                         point: Mapping[str, float]) -> Monomial:
    """The AM-GM monomial under-estimator of a posynomial at a point.

    With weights ``δ_i = term_i(x0) / f(x0)``::

        m̃(x) = prod_i (term_i(x) / δ_i)^{δ_i}

    satisfies ``m̃ <= f`` everywhere (weighted AM-GM) and ``m̃(x0) = f(x0)``.
    """
    values = [term.evaluate(point) for term in posynomial.terms]
    total = sum(values)
    if total <= 0.0:
        raise FilterError("cannot condense a posynomial that evaluates to 0")
    coefficient = 1.0
    exponents: Dict[str, float] = {}
    for term, value in zip(posynomial.terms, values):
        delta = value / total
        if delta <= 1e-300:
            continue
        coefficient *= (term.coefficient / delta) ** delta
        for name, exp in term.exponents.items():
            exponents[name] = exponents.get(name, 0.0) + delta * exp
    return Monomial(coefficient, exponents)


@dataclass
class SignomialTrace:
    """Per-iteration record for observability and tests."""

    objectives: List[float]
    iterations: int
    converged: bool


class SignomialPlanner:
    """General-PQ planner solving the exact Eq.-4 condition by successive
    condensation, seeded with Different Sum.

    Falls back to the plain Dual-DAB planner for PPQs.  The last
    :class:`SignomialTrace` is exposed as :attr:`last_trace`.
    """

    def __init__(self, cost_model: CostModel, max_iterations: int = 8,
                 relative_tolerance: float = 1e-4):
        if max_iterations < 1:
            raise FilterError(f"max_iterations must be >= 1, got {max_iterations!r}")
        self.cost_model = cost_model
        self.max_iterations = max_iterations
        self.relative_tolerance = relative_tolerance
        self._seed_planner = DifferentSumPlanner(cost_model)
        self._ppq_planner = DualDABPlanner(cost_model)
        self.last_trace: Optional[SignomialTrace] = None

    # -- GP assembly -------------------------------------------------------------

    def _build_program(self, query: PolynomialQuery, values: Mapping[str, float],
                       conditions: Mapping[str, Tuple[Posynomial, Optional[Posynomial]]],
                       point: Mapping[str, float]) -> GeometricProgram:
        items = query.variables
        rate_var = Monomial.variable(RECOMPUTE_RATE_VARIABLE)
        objective = (
            self.cost_model.refresh_objective(items)
            + Monomial(max(self.cost_model.recompute_cost, 1e-9),
                       {RECOMPUTE_RATE_VARIABLE: 1.0})
        )
        program = GeometricProgram(objective=objective)

        for direction, (pos, neg) in conditions.items():
            if neg is None:
                program.add_constraint(pos / query.qab, 1.0,
                                       name=f"qab[{direction}]")
            else:
                denominator = Posynomial(
                    (Monomial.constant(query.qab),) + neg.terms)
                condensed = condense_to_monomial(denominator, point)
                program.add_constraint(pos / condensed, 1.0,
                                       name=f"qab[{direction}]")

        program.add_constraint(
            Posynomial([self.cost_model.recompute_rate_monomial(n) for n in items])
            / rate_var, 1.0, name="recompute")
        for name in items:
            b = Monomial.variable(primary_variable(name))
            c = Monomial.variable(secondary_variable(name))
            program.add_constraint(b / c, 1.0, name=f"order[{name}]")
            # Every item moves down in one of the two directional cases,
            # so the lower window edge must stay reachable: V - c - b >= 0.
            program.add_constraint((b + c) / float(values[name]), 1.0,
                                   name=f"window[{name}]")
        return program

    # -- planning ------------------------------------------------------------------

    def plan(self, query: PolynomialQuery, values: Mapping[str, float]) -> DABAssignment:
        if query.is_positive_coefficient:
            return self._ppq_planner.plan(query, values)

        items = query.variables
        seed = self._seed_planner.plan(query, values)
        # DS windows may touch c = V; the down-side needs b + c <= V, so
        # shrink the seed point slightly to sit strictly inside.
        point: Dict[str, float] = {}
        for name in items:
            value = float(values[name])
            b = min(seed.primary[name], 0.45 * value)
            c = min(seed.secondary[name], 0.9 * value - b)
            c = max(c, b)
            point[primary_variable(name)] = b
            point[secondary_variable(name)] = c
        point[RECOMPUTE_RATE_VARIABLE] = max(
            sum(self.cost_model.rate_of(n)
                / point[secondary_variable(n)] for n in items), 1e-9)

        conditions = {
            direction: mixed_dual_condition(query.terms, values, direction)
            for direction in ("query_up", "query_down")
        }

        def objective_at(p: Mapping[str, float]) -> float:
            refresh = sum(
                self.cost_model.rate_of(n) / p[primary_variable(n)]
                if self.cost_model.ddm.value == "monotonic"
                else (self.cost_model.rate_of(n) / p[primary_variable(n)]) ** 2
                for n in items)
            return refresh + self.cost_model.recompute_cost * p[RECOMPUTE_RATE_VARIABLE]

        objectives = [objective_at(point)]
        converged = False
        for _ in range(self.max_iterations):
            program = self._build_program(query, values, conditions, point)
            try:
                solution = program.solve(initial=point)
            except (InfeasibleProblemError, SolverFailedError):
                break  # keep the last feasible iterate
            candidate = dict(solution.values)
            if not self._feasible(query, values, candidate):
                break
            improvement = objectives[-1] - solution.objective
            point = candidate
            objectives.append(solution.objective)
            if improvement <= self.relative_tolerance * abs(objectives[-1]):
                converged = True
                break

        self.last_trace = SignomialTrace(
            objectives=objectives, iterations=len(objectives) - 1,
            converged=converged)

        primary = {n: point[primary_variable(n)] for n in items}
        secondary = {n: max(point[secondary_variable(n)], primary[n])
                     for n in items}
        return DABAssignment(
            primary=primary,
            secondary=secondary,
            reference_values={n: float(values[n]) for n in items},
            recompute_rate=point[RECOMPUTE_RATE_VARIABLE],
            objective=objectives[-1],
        )

    def _feasible(self, query: PolynomialQuery, values: Mapping[str, float],
                  point: Mapping[str, float], tol: float = 1e-6) -> bool:
        items = query.variables
        primary = {n: point[primary_variable(n)] for n in items}
        secondary = {n: point[secondary_variable(n)] for n in items}
        try:
            deviation = mixed_worst_deviation(query.terms, values,
                                              primary, secondary)
        except Exception:
            return False
        return deviation <= query.qab * (1.0 + tol)
