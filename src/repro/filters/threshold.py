"""Threshold-crossing monitoring — an extension beyond the paper.

The paper's related work ([3], [5]) and its future-work section point at
*threshold queries*: alert the user when a polynomial crosses a threshold
``T`` (arbitrage becomes profitable, a spill area exceeds a limit).  The
DAB machinery supports this directly once the QAB is made value-dependent:
while the query value is far from ``T``, large imprecision is harmless; as
it approaches, the bound must tighten.

:class:`ThresholdMonitor` maintains

    B(V) = max(theta * |P(V) - T|, floor)

— a ``theta`` fraction of the current distance to the threshold — and
replans (with any PPQ/general planner underneath) whenever the bound it
last planned with is more than ``replan_ratio`` away from the freshly
computed one.  Correctness: with the value at distance ``d`` and
``B <= theta*d``, the coordinator's view cannot silently cross the
threshold, because a true crossing moves the value by at least ``d``
while the cached view stays within ``B < d`` of the truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.exceptions import FilterError
from repro.filters.assignment import DABAssignment
from repro.filters.cost_model import CostModel
from repro.filters.heuristics import DifferentSumPlanner
from repro.queries.polynomial import PolynomialQuery


@dataclass(frozen=True)
class ThresholdQuery:
    """Alert when ``polynomial`` crosses ``threshold``.

    ``theta`` is the fraction of the distance-to-threshold granted as
    imprecision (0 < theta < 1); ``floor`` keeps the bound positive when
    the value sits on the threshold (the alert has then fired anyway).
    """

    polynomial: PolynomialQuery
    threshold: float
    theta: float = 0.5
    floor: float = 1e-6

    def __post_init__(self) -> None:
        if not (0.0 < self.theta < 1.0):
            raise FilterError(f"theta must be in (0, 1), got {self.theta!r}")
        if self.floor <= 0.0:
            raise FilterError(f"floor must be positive, got {self.floor!r}")
        if not math.isfinite(self.threshold):
            raise FilterError(f"threshold must be finite, got {self.threshold!r}")

    def distance(self, values: Mapping[str, float]) -> float:
        """|P(V) - T| at the given values."""
        return abs(self.polynomial.evaluate(values) - self.threshold)

    def accuracy_bound(self, values: Mapping[str, float]) -> float:
        """The value-dependent QAB ``B(V)``."""
        return max(self.theta * self.distance(values), self.floor)

    def crossed(self, reference_value: float, current_value: float) -> bool:
        """Has the query value crossed the threshold between two readings?"""
        return (reference_value - self.threshold) * \
               (current_value - self.threshold) <= 0.0


class ThresholdMonitor:
    """Adaptive-QAB planning for one threshold query.

    ``replan_ratio`` controls hysteresis: the monitor replans when the
    freshly computed bound differs from the planned-with bound by more
    than this multiplicative factor (both directions), so small
    oscillations in the value don't thrash the planner.
    """

    def __init__(self, query: ThresholdQuery, cost_model: CostModel,
                 planner: Optional[object] = None, replan_ratio: float = 1.5):
        if replan_ratio <= 1.0:
            raise FilterError(f"replan ratio must be > 1, got {replan_ratio!r}")
        self.query = query
        self.cost_model = cost_model
        self.planner = planner if planner is not None else DifferentSumPlanner(cost_model)
        self.replan_ratio = replan_ratio
        self._planned_bound: Optional[float] = None
        self._plan: Optional[DABAssignment] = None
        self.replan_count = 0

    @property
    def current_plan(self) -> Optional[DABAssignment]:
        return self._plan

    @property
    def planned_bound(self) -> Optional[float]:
        return self._planned_bound

    def needs_replan(self, values: Mapping[str, float]) -> bool:
        """True when the adaptive bound drifted past the hysteresis band
        (or nothing has been planned yet)."""
        if self._planned_bound is None or self._plan is None:
            return True
        if not self._plan.window_contains(values):
            return True
        fresh = self.query.accuracy_bound(values)
        ratio = fresh / self._planned_bound
        return ratio > self.replan_ratio or ratio < 1.0 / self.replan_ratio

    def plan(self, values: Mapping[str, float]) -> DABAssignment:
        """(Re)plan if needed and return the active assignment."""
        if self.needs_replan(values):
            bound = self.query.accuracy_bound(values)
            bounded_query = self.query.polynomial.with_qab(
                bound, name=f"{self.query.polynomial.name}__thr")
            self._plan = self.planner.plan(bounded_query, values)
            self._planned_bound = bound
            self.replan_count += 1
        assert self._plan is not None
        return self._plan

    def coordinator_alert(self, reference_values: Mapping[str, float],
                          cached_values: Mapping[str, float]) -> bool:
        """Should the coordinator raise the alert given its cache?

        Conservative test: alert when the cached view is within its own
        bound of the threshold — the truth may already have crossed.
        """
        cached_value = self.query.polynomial.evaluate(cached_values)
        bound = self._planned_bound if self._planned_bound is not None \
            else self.query.accuracy_bound(reference_values)
        return abs(cached_value - self.query.threshold) <= bound
