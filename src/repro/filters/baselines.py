"""Baseline DAB-assignment schemes the paper compares against.

* :class:`UniformAllocationBaseline` — no optimisation at all: the QAB is
  split equally across the query's terms and each term's share is met with
  equal per-item movement.  The "do the obvious thing" reference point.
* :class:`SharfmanStyleBaseline` — models the adapted geometric approach of
  Sharfman, Schuster & Keren (SIGMOD 2006) as the paper characterises it in
  Section V: *"instead of one necessary and sufficient condition (Equation
  1) we have to solve n sufficient conditions — one per data item. This
  results in more stringent DABs."*  Each item gets ``B / n`` of the bound
  and its DAB is the largest width whose *individual* worst-case effect on
  the query stays within that share.  (Also the "WSDAB" configuration of
  Figure 8(c).)

Both produce single-DAB assignments: like Optimal Refresh they must be
recomputed on every refresh, which is exactly why Figure 8(c)'s
recomputation counts explode.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

from repro.exceptions import FilterError
from repro.filters.assignment import DABAssignment
from repro.filters.cost_model import CostModel
from repro.queries.deviation import max_query_deviation, max_term_deviation
from repro.queries.polynomial import PolynomialQuery

#: Bisection tolerance relative to the initial bracket.
_BISECT_REL_TOL = 1e-10


def _solve_width(budget: float, deviation_at) -> float:
    """Largest ``b`` with ``deviation_at(b) <= budget`` via bracket+bisect.

    ``deviation_at`` must be continuous, increasing and 0 at 0 — true for
    every worst-case deviation in this package.
    """
    if budget <= 0.0:
        raise FilterError(f"deviation budget must be positive, got {budget!r}")
    low, high = 0.0, 1.0
    # Grow the bracket until the budget is exceeded (cap to avoid runaway
    # on degenerate inputs, e.g. items with near-zero weight).
    for _ in range(200):
        if deviation_at(high) >= budget:
            break
        low, high = high, high * 2.0
    else:
        return high  # deviation never reaches the budget: effectively unbounded
    for _ in range(200):
        mid = 0.5 * (low + high)
        if deviation_at(mid) <= budget:
            low = mid
        else:
            high = mid
        if high - low <= _BISECT_REL_TOL * max(high, 1.0):
            break
    return low if low > 0.0 else high * 0.5


class UniformAllocationBaseline:
    """Split the QAB equally over terms; within a term move items equally."""

    def __init__(self, cost_model: Optional[CostModel] = None):
        # The cost model is unused (no rate information) but accepted so the
        # baseline is drop-in compatible with the planner protocol.
        self.cost_model = cost_model

    def plan(self, query: PolynomialQuery, values: Mapping[str, float]) -> DABAssignment:
        share = query.qab / len(query.terms)
        primary: Dict[str, float] = {}
        for term in query.terms:
            width = _solve_width(
                share,
                lambda b, t=term: max_term_deviation(
                    t, values, {name: b for name in t.variables}
                ),
            )
            for name in term.variables:
                primary[name] = min(primary.get(name, width), width)
        return DABAssignment(
            primary=primary,
            secondary=None,
            reference_values={name: float(values[name]) for name in primary},
            objective=float("nan"),
        )


class SharfmanStyleBaseline:
    """Per-item sufficient conditions via a uniform multiplicative split.

    The QAB is divided equally over the terms; within a term ``w·Π x_i^{p_i}``
    whose share allows a relative growth ``ρ = share / (|w|·Π V_i^{p_i})``,
    every item is allotted the same growth factor ``g = (1+ρ)^{1/deg}`` so
    that ``Π (V_i(1+r_i))^{p_i} = Π V_i^{p_i} · (1+ρ)`` exactly, i.e.
    ``b_i = V_i (g - 1)``.  Items in several terms take the minimum.

    This is *sound* (the per-item conditions jointly imply Eq. 1) but — like
    the method of [5] as the paper characterises it — it decomposes the one
    necessary-and-sufficient condition into n per-item sufficient ones and
    ignores rate-of-change information, so its refresh cost is never below
    Optimal Refresh's and typically well above it under heterogeneous λ.
    """

    def __init__(self, cost_model: Optional[CostModel] = None):
        self.cost_model = cost_model

    def plan(self, query: PolynomialQuery, values: Mapping[str, float]) -> DABAssignment:
        share = query.qab / len(query.terms)
        primary: Dict[str, float] = {}
        for term in query.terms:
            base = 1.0
            for name, power in term.key:
                value = float(values[name])
                if value <= 0.0:
                    raise FilterError(
                        f"baseline requires positive item values; {name!r} = {value!r}"
                    )
                base *= value ** power
            relative_budget = share / (abs(term.weight) * base)
            growth = (1.0 + relative_budget) ** (1.0 / term.degree)
            for name, _power in term.key:
                width = float(values[name]) * (growth - 1.0)
                primary[name] = min(primary.get(name, width), width)
        return DABAssignment(
            primary=primary,
            secondary=None,
            reference_values={name: float(values[name]) for name in primary},
            objective=float("nan"),
        )
